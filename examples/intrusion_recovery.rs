//! Intrusion recovery: the rewriting machinery beyond replication.
//!
//! The paper's footnote notes the rewriting methods "can also be used to
//! improve the performance of optimistic replication protocols" — and the
//! authors' companion work ([AJL98], [LAJ99]) applies exactly this
//! machinery to *recovery from malicious transactions*: given a committed
//! history and a transaction later found to be malicious, back it out while
//! saving as much innocent work as possible.
//!
//! The example also exercises the operation-level substrate: the innocent
//! workload arrives as an *interleaved* schedule, from which the explicit
//! serial history `H^s` is extracted (Section 3's standing assumption).
//!
//! Run: `cargo run --example intrusion_recovery`

use std::collections::BTreeSet;

use histmerge::core::prune::undo;
use histmerge::core::rewrite::{rewrite, FixMode, RewriteAlgorithm};
use histmerge::history::interleaved::{ops_of_transaction, InterleavedSchedule};
use histmerge::history::readsfrom::affected_set;
use histmerge::history::{AugmentedHistory, TxnArena};
use histmerge::semantics::StaticAnalyzer;
use histmerge::txn::{DbState, VarId};
use histmerge::workload::canned::Bank;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bank = Bank::new();
    let mut arena = TxnArena::new();
    let payroll = VarId::new(0);
    let vendor = VarId::new(1);
    let attacker = VarId::new(2);

    // A committed day of transactions; t_evil siphons funds.
    let t1 = arena.alloc(|id| bank.deposit(id, "payroll-topup", payroll, 5_000));
    let t_evil = arena.alloc(|id| bank.transfer(id, "EVIL-siphon", payroll, attacker, 3_000));
    let t2 = arena.alloc(|id| bank.deposit(id, "payroll-bonus", payroll, 250));
    let t3 = arena.alloc(|id| bank.deposit(id, "vendor-invoice", vendor, 900));

    // The workload executed interleaved at the operation level; recover
    // the explicit serial history first.
    let mut schedule = InterleavedSchedule::new();
    for id in [t1, t_evil, t2, t3] {
        for op in ops_of_transaction(arena.get(id)) {
            schedule.push(op);
        }
    }
    println!("interleaved schedule: {schedule}");
    let serial = schedule.serial_order().expect("the committed history was serializable");
    println!("explicit serial history H^s: {serial}\n");

    let s0: DbState = [(payroll, 10_000), (vendor, 0), (attacker, 0)].into_iter().collect();
    let aug = AugmentedHistory::execute(&arena, &serial, &s0)?;
    println!("state after the attack: {}", aug.final_state());

    // Forensics flags the siphon; back it out, saving innocent work.
    let bad: BTreeSet<_> = [t_evil].into_iter().collect();
    let ag = affected_set(&arena, &serial, &bad);
    let oracle = StaticAnalyzer::new();
    let rw = rewrite(
        &arena,
        &aug,
        &bad,
        RewriteAlgorithm::CanFollowCanPrecede,
        FixMode::Lemma1,
        &oracle,
    );
    let names: Vec<&str> = rw.saved().iter().map(|id| arena.get(*id).name()).collect();
    println!(
        "\naffected by the siphon: {:?}",
        ag.iter().map(|id| arena.get(*id).name()).collect::<Vec<_>>()
    );
    println!("saved without re-execution: {names:?}");

    let recovered = undo(&arena, &aug, &rw, &ag)?;
    println!("recovered state: {recovered}");

    // The recovered state equals re-running only the innocent work. Note
    // the bonus is NOT saved: `payroll += 250` does not commute with the
    // guarded siphon near its balance threshold, so semantics-aware
    // rewriting correctly refuses to keep it.
    let clean = AugmentedHistory::execute(&arena, &rw.repaired_history(), &s0)?;
    assert_eq!(&recovered, clean.final_state());
    assert_eq!(recovered.get(attacker), 0, "siphoned funds restored");
    assert_eq!(recovered.get(payroll), 15_000);

    // Finish recovery: re-execute the innocent affected transactions on
    // the clean state (protocol step 6, minus the malicious transaction).
    let mut state = recovered;
    for (id, _) in rw.suffix() {
        if *id == t_evil {
            continue;
        }
        state = arena.get(*id).execute(&state, &histmerge::txn::Fix::empty())?.after;
        println!("re-executed {}", arena.get(*id).name());
    }
    println!("final state: {state}");
    assert_eq!(state.get(payroll), 15_250);
    assert_eq!(state.get(vendor), 900);
    assert_eq!(state.get(attacker), 0);
    println!("\nOK: the siphon is gone; innocent work saved or re-applied.");
    Ok(())
}
