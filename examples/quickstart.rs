//! Quickstart: Example 1 of the paper, end to end.
//!
//! Reproduces Figure 1 (the precedence graph), the back-out set
//! `B = {Tm3}`, the affected set `{Tm4}`, the repaired history, and the
//! merged history `H = Tb1 Tb2 Tm1 Tm2`.
//!
//! Run with: `cargo run --example quickstart`

use histmerge::core::merge::{MergeConfig, Merger};
use histmerge::history::fixtures::example1;
use histmerge::history::PrecedenceGraph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ex = example1();

    println!("== Example 1 (ICDCS 1999, Section 2.1) ==\n");
    println!("Tentative history H_m = {}", ex.hm);
    println!("Base history      H_b = {}", ex.hb);
    println!("Common initial state  = {}\n", ex.s0);

    for id in ex.hm.iter().chain(ex.hb.iter()) {
        let t = ex.arena.get(id);
        println!(
            "  {:4}  readset = {:16}  writeset = {}",
            t.name(),
            t.readset().to_string(),
            t.writeset()
        );
    }

    // Step 1: the precedence graph (Figure 1).
    let graph = PrecedenceGraph::build(&ex.arena, &ex.hm, &ex.hb);
    println!("\n-- Figure 1: precedence graph G(H_m, H_b) --");
    for (from, to, kind) in graph.edges() {
        println!("  {} -> {}   [{kind}]", ex.arena.get(*from).name(), ex.arena.get(*to).name());
    }
    println!("  acyclic: {}", graph.is_acyclic());

    // Steps 2-6: the merging protocol.
    let outcome = Merger::new(MergeConfig::default()).merge(&ex.arena, &ex.hm, &ex.hb, &ex.s0)?;

    let names = |ids: &[histmerge::txn::TxnId]| -> Vec<&str> {
        ids.iter().map(|id| ex.arena.get(*id).name()).collect()
    };
    println!("\n-- Merge outcome --");
    println!("  B (undesirable) = {:?}", names(&outcome.bad.iter().copied().collect::<Vec<_>>()));
    println!(
        "  AG (affected)   = {:?}",
        names(&outcome.affected.iter().copied().collect::<Vec<_>>())
    );
    println!("  saved           = {:?}", names(&outcome.saved));
    println!("  backed out      = {:?}", names(&outcome.backed_out));
    if let Some(merged) = &outcome.merged_history {
        let ids: Vec<_> = merged.iter().collect();
        println!("  merged history  = {:?}", names(&ids));
    }
    println!("\n  forwarded updates (step 5) = {}", outcome.forwarded);
    println!("  new master state           = {}", outcome.new_master);
    println!(
        "  re-executions (step 6)     = {:?}",
        outcome
            .reexecuted
            .iter()
            .map(|(id, ok)| (ex.arena.get(*id).name(), *ok))
            .collect::<Vec<_>>()
    );

    assert_eq!(names(&outcome.saved), vec!["Tm1", "Tm2"]);
    assert_eq!(names(&outcome.backed_out), vec!["Tm3", "Tm4"]);
    println!("\nOK: matches the paper — Tm1 and Tm2 saved, Tm3 backed out, Tm4 affected.");
    Ok(())
}
