//! Field-sales fleet: the motivating two-tier scenario, simulated.
//!
//! A fleet of sales laptops takes orders while disconnected (inventory
//! decrements, order-book increments) and synchronizes with headquarters a
//! few times a day. The example runs the SAME seeded workload under both
//! protocols and prints the Section 7.1 cost comparison:
//!
//! * **reprocessing** (two-tier baseline) re-executes every tentative
//!   order at headquarters — one forced log write per order;
//! * **merging** (the paper) installs each laptop's surviving work in a
//!   single transaction, re-executing only the conflicting orders.
//!
//! Run with: `cargo run --example field_sales`

use histmerge::replication::{Protocol, SimConfig, Simulation, SyncStrategy};
use histmerge::workload::generator::ScenarioParams;

fn main() {
    // Order-heavy workload: mostly commutative quantity updates, a few
    // guarded "sell if in stock" transactions, hot items that everyone
    // sells.
    let workload = ScenarioParams {
        n_vars: 1024,
        commutative_fraction: 0.8,
        guarded_fraction: 0.05,
        read_only_fraction: 0.1,
        writes_per_txn: 2,
        reads_per_txn: 1,
        hot_fraction: 0.05,
        hot_prob: 0.05,
        seed: 2024,
        ..ScenarioParams::default()
    };

    let config = |protocol: Protocol| SimConfig {
        n_mobiles: 8,
        duration: 600,
        base_rate: 0.1,   // headquarters' own order flow
        mobile_rate: 0.1, // per laptop while on the road
        connect_every: 100,
        protocol,
        strategy: SyncStrategy::WindowStart { window: 400 },
        workload: workload.clone(),
        base_capacity: 150.0,
        ..SimConfig::default()
    };

    println!("== Field sales: 8 laptops, 600 ticks, same seeded workload ==\n");
    let mut rows = Vec::new();
    for protocol in [Protocol::Reprocessing, Protocol::merging_default()] {
        let report = Simulation::new(config(protocol)).expect("valid sim config").run();
        let m = &report.metrics;
        println!("-- {} --", protocol.name());
        println!("  tentative orders taken : {}", m.tentative_generated);
        println!("  saved by merging       : {}", m.saved);
        println!("  backed out & re-run    : {}", m.backed_out);
        println!("  reprocessed            : {}", m.reprocessed);
        println!("  window misses          : {}", m.window_misses);
        println!("  save ratio             : {:.1}%", 100.0 * m.save_ratio());
        println!(
            "  cost: comm={:.0} baseCPU={:.0} baseIO={:.0} mobileCPU={:.0} TOTAL={:.0}",
            m.cost.comm,
            m.cost.base_cpu,
            m.cost.base_io,
            m.cost.mobile_cpu,
            m.cost.total()
        );
        println!("  peak base backlog      : {:.0}\n", m.peak_backlog);
        rows.push((protocol.name(), m.cost.total(), m.cost.base_io));
    }

    let (rep, mer) = (&rows[0], &rows[1]);
    println!(
        "Merging spends {:.0}% of the reprocessing total cost ({:.0}% of its base I/O).",
        100.0 * mer.1 / rep.1,
        100.0 * mer.2 / rep.2
    );
}
