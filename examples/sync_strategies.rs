//! Strategy 1 vs Strategy 2 (Section 2.2, Figure 2).
//!
//! Several mobile nodes are active at once. Under **Strategy 1** each
//! tentative history starts from the master state snapshotted at its own
//! disconnect time; merging one node's history retroactively changes the
//! base states other nodes snapshotted, so their merges can fail. Under
//! **Strategy 2** every history in a window starts from the window-start
//! state, merges always succeed, and the window length trades back-out
//! cost (long windows → long base histories to merge against) against
//! window misses (short windows → reconnects arrive too late to merge).
//!
//! Run with: `cargo run --example sync_strategies`

use histmerge::replication::{Protocol, SimConfig, Simulation, SyncStrategy};
use histmerge::workload::generator::ScenarioParams;

fn main() {
    let workload = ScenarioParams {
        n_vars: 48,
        commutative_fraction: 0.4,
        guarded_fraction: 0.2,
        read_only_fraction: 0.1,
        hot_fraction: 0.08,
        hot_prob: 0.6,
        seed: 7,
        ..ScenarioParams::default()
    };
    let config = |strategy: SyncStrategy| SimConfig {
        n_mobiles: 6,
        duration: 600,
        base_rate: 0.3,
        mobile_rate: 0.25,
        connect_every: 60,
        protocol: Protocol::merging_default(),
        strategy,
        workload: workload.clone(),
        ..SimConfig::default()
    };

    println!("== Multiple tentative histories (Section 2.2) ==\n");
    println!(
        "{:<28} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "strategy", "syncs", "saved", "backout", "reproc", "mrgFail", "winMiss"
    );
    let strategies = [
        SyncStrategy::PerDisconnectSnapshot,
        SyncStrategy::WindowStart { window: 75 },
        SyncStrategy::WindowStart { window: 150 },
        SyncStrategy::WindowStart { window: 300 },
        SyncStrategy::WindowStart { window: 600 },
        SyncStrategy::AdaptiveWindow { max_hb: 60 },
    ];
    for strategy in strategies {
        let label = match strategy {
            SyncStrategy::PerDisconnectSnapshot => "strategy1".to_string(),
            SyncStrategy::WindowStart { window } => format!("strategy2(window={window})"),
            SyncStrategy::AdaptiveWindow { max_hb } => format!("strategy2(adaptive hb<={max_hb})"),
        };
        let m = Simulation::new(config(strategy)).expect("valid sim config").run().metrics;
        println!(
            "{:<28} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
            label, m.syncs, m.saved, m.backed_out, m.reprocessed, m.merge_failures, m.window_misses
        );
    }
    println!(
        "\nStrategy 1 loses merges to snapshot invalidation; Strategy 2 never fails a merge\n\
         but trades window misses (short windows) against back-outs (long windows)."
    );
}
