//! Banking demo: how much tentative work each rewriting algorithm saves.
//!
//! A mobile banking terminal ran a day of tentative transactions while
//! disconnected; meanwhile the base processed its own load. One tentative
//! transaction conflicts irreconcilably and must be backed out — the four
//! rewriters differ in how much of the *remaining* work they rescue:
//!
//! * RFTC (classical) backs out the whole reads-from closure;
//! * Algorithm 1 saves the same set but enables semantic pruning;
//! * CBTR saves commuting transactions;
//! * Algorithm 2 saves the union (Theorems 3 and 4).
//!
//! Run with: `cargo run --example banking_semantics`

use std::collections::BTreeSet;

use histmerge::core::prune::{compensate, undo};
use histmerge::core::rewrite::{rewrite, FixMode, RewriteAlgorithm};
use histmerge::history::readsfrom::affected_set;
use histmerge::history::{AugmentedHistory, SerialHistory, TxnArena};
use histmerge::semantics::{OracleStack, StaticAnalyzer};
use histmerge::txn::{DbState, TxnId, VarId};
use histmerge::workload::canned::Bank;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bank = Bank::new();
    let mut arena = TxnArena::new();
    let checking = VarId::new(0);
    let savings = VarId::new(1);
    let fees = VarId::new(2);

    // The tentative day: a bad fee assessment (it will conflict with the
    // base's fee run), followed by deposits that read or touch the same
    // accounts.
    let bad_fee = arena.alloc(|id| bank.deposit(id, "bad-fee", fees, 25));
    let dep1 = arena.alloc(|id| bank.deposit(id, "dep-checking", checking, 200));
    let dep_fee = arena.alloc(|id| bank.deposit(id, "dep-fee", fees, 5));
    let dep2 = arena.alloc(|id| bank.deposit(id, "dep-savings", savings, 80));
    let audit = arena.alloc(|id| bank.audit(id, "audit", &[fees, checking]));

    let hm = SerialHistory::from_order([bad_fee, dep1, dep_fee, dep2, audit]);
    let s0: DbState = [(checking, 1000), (savings, 500), (fees, 0)].into_iter().collect();
    let aug = AugmentedHistory::execute(&arena, &hm, &s0)?;

    // Suppose conflict resolution (step 2) put the fee assessment in B.
    let bad: BTreeSet<TxnId> = [bad_fee].into_iter().collect();
    let ag = affected_set(&arena, &hm, &bad);
    println!("== Banking history ==");
    println!("H_m = {}", hm);
    println!(
        "B = {{bad-fee}}, affected = {:?}\n",
        ag.iter().map(|id| arena.get(*id).name()).collect::<Vec<_>>()
    );

    let oracle = OracleStack::new().with(Box::new(StaticAnalyzer::new()));
    println!("{:<28} {:>7}  saved transactions", "algorithm", "saved");
    for algorithm in [
        RewriteAlgorithm::ReadsFromClosure,
        RewriteAlgorithm::CanFollow,
        RewriteAlgorithm::CommutesBackward,
        RewriteAlgorithm::CanFollowCanPrecede,
    ] {
        let rw = rewrite(&arena, &aug, &bad, algorithm, FixMode::Lemma1, &oracle);
        let names: Vec<&str> = rw.saved().iter().map(|id| arena.get(*id).name()).collect();
        println!(
            "{:<28} {:>3}/{:<3}  {:?}",
            algorithm.name(),
            rw.saved().len(),
            hm.len() - 1,
            names
        );
    }

    // Pruning: both approaches yield the repaired state.
    let rw = rewrite(
        &arena,
        &aug,
        &bad,
        RewriteAlgorithm::CanFollowCanPrecede,
        FixMode::Lemma1,
        &oracle,
    );
    let by_undo = undo(&arena, &aug, &rw, &ag)?;
    let by_compensation = compensate(&arena, &aug, &rw)?;
    let by_reexecution = AugmentedHistory::execute(&arena, &rw.repaired_history(), &s0)?;
    assert_eq!(&by_undo, by_reexecution.final_state());
    assert_eq!(&by_compensation, by_reexecution.final_state());
    println!("\nrepaired state (undo == compensation == re-execution): {by_undo}");
    println!(
        "bad fee backed out: fees balance is {} (the $25 assessment is gone, the $5 deposit kept)",
        by_undo.get(fees)
    );
    Ok(())
}
