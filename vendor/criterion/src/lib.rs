//! Vendored mini benchmark harness.
//!
//! The build environment has no registry access, so this crate implements
//! the slice of the `criterion` API the workspace benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the `criterion_group!`/`criterion_main!` macros.
//!
//! `cargo bench -- --test` runs every benchmark body exactly once (the CI
//! smoke mode); otherwise each benchmark is timed over a fixed warm-up plus
//! measured iterations and reported as mean ns/iter on stdout.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { test_mode: false, filter: None, sample_size: 50 }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments (`--test` enables the
    /// run-once smoke mode; a bare string filters benchmarks by substring).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--bench" => {}
                a if !a.starts_with('-') => c.filter = Some(a.to_string()),
                _ => {}
            }
        }
        c
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the measured iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            samples: self.sample_size.unwrap_or(self.criterion.sample_size),
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(ns) if !self.criterion.test_mode => {
                println!("{full}: {ns:.0} ns/iter");
            }
            _ => println!("{full}: ok (test mode)"),
        }
    }

    /// Runs a benchmark under `id` in this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) {
        self.run(id.to_string(), f);
    }

    /// Runs a parameterized benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(id.to_string(), |b| f(b, input));
    }

    /// Ends the group (report flushing is immediate here; kept for API
    /// compatibility).
    pub fn finish(self) {}
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    report: Option<f64>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the mean wall-clock time per
    /// call. In `--test` mode the routine runs exactly once, untimed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm up, then measure.
        for _ in 0..3 {
            black_box(routine());
        }
        let iters = self.samples.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.report = Some(start.elapsed().as_nanos() as f64 / iters as f64);
    }
}

/// Declares a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { test_mode: false, filter: None, sample_size: 5 };
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut calls = 0usize;
        group.bench_function("f", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // 3 warm-up + 4 measured.
        assert_eq!(calls, 7);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true, filter: None, sample_size: 50 };
        let mut group = c.benchmark_group("g");
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &_n| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { test_mode: true, filter: Some("zzz".into()), sample_size: 5 };
        let mut group = c.benchmark_group("g");
        let mut calls = 0usize;
        group.bench_function("f", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 0);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 12).to_string(), "f/12");
    }
}
