//! Vendored mini property-testing harness.
//!
//! The build environment has no registry access, so this crate implements
//! the small slice of the `proptest` API the workspace tests use:
//!
//! * [`Strategy`] with an associated `Value`, implemented for integer and
//!   float ranges and for tuples, plus [`Strategy::prop_map`];
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   which expands each `fn name(pat in strategy, ..) { .. }` into a
//!   `#[test]` running a deterministic seeded case loop;
//! * `prop_assert!` / `prop_assert_eq!`, which panic like plain asserts
//!   but prefix the failing case's seed for reproduction.
//!
//! There is no shrinking: a failing case reports its case index and seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Strategies over collections, mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The result of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A strategy producing `Vec`s of `element` values, with a length
    /// drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans — the `prop::bool::ANY` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen_range(0u32..2) == 1
        }
    }
}

/// Runs `body` for each case of a property, with deterministic seeding.
/// Used by the [`proptest!`] expansion; not part of the public proptest API.
pub fn run_property<F: FnMut(&mut StdRng, u64)>(config: &ProptestConfig, name: &str, mut body: F) {
    // Deterministic per property name: FNV-1a over the name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    for case in 0..config.cases {
        let seed = h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        body(&mut rng, seed);
    }
}

/// Asserts a condition inside a property, reporting the failing case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property, reporting the failing case seed.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Declares property tests. Supports the subset of the upstream grammar the
/// workspace uses: an optional leading `#![proptest_config(EXPR)]`, then
/// `#[test] fn name(pat in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(&config, stringify!($name), |rng, seed| {
                let ($($arg,)+) =
                    $crate::Strategy::sample(&($($strat,)+), rng);
                let run = || { $body };
                if ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)).is_err() {
                    panic!(
                        "property {} failed (reproduce with seed {seed:#x})",
                        stringify!($name)
                    );
                }
            });
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr);) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// The usual wildcard import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};

    /// The `prop::` path alias the upstream prelude provides, so tests
    /// can write `prop::collection::vec(..)` / `prop::bool::ANY`.
    pub mod prop {
        pub use crate::{bool, collection};
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (1u32..10, 0u32..5).prop_map(|(a, b)| (a + b, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Mapped tuples uphold their construction invariant.
        #[test]
        fn mapped_tuples_hold(pair in arb_pair(), k in 0u64..3) {
            prop_assert!(pair.0 >= pair.1, "sum {} < part {}", pair.0, pair.1);
            prop_assert_eq!(k.min(2), k.min(2));
        }
    }

    proptest! {
        /// Default config also compiles and runs.
        #[test]
        fn default_config_runs(x in -5i64..=5) {
            prop_assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "reproduce with seed")]
    fn failing_property_reports_seed() {
        crate::run_property(&ProptestConfig::with_cases(1), "always_fails", |_rng, seed| {
            let run = || panic!("boom");
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)).is_err() {
                panic!("property always_fails failed (reproduce with seed {seed:#x})");
            }
        });
    }

    #[test]
    fn just_yields_value() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        use rand::SeedableRng;
        assert_eq!(Just(7u8).sample(&mut rng), 7);
    }
}
