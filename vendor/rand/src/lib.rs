//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace ships a
//! minimal deterministic implementation of the `rand` 0.8 API surface it
//! actually uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every consumer in this
//! workspace only relies on *determinism per seed*, never on specific
//! upstream values.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (integers uniform over their range, `f64` uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from a generator with their standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a [`Rng`] can sample from, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, span)` by widening multiply (small, irrelevant
/// modulo bias is acceptable for simulation workloads).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        /// Expands the seed through SplitMix64, per the xoshiro authors'
        /// recommendation.
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let x = rng.gen_range(0usize..1);
            assert_eq!(x, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!(c > n / 20, "bucket badly underfilled: {c}");
        }
    }
}
