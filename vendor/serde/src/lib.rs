//! Vendored facade for the `serde` crate.
//!
//! The build environment has no registry access; the workspace only *tags*
//! types with the serde derives (no serializer ever runs), so this facade
//! provides the trait names and re-exports the no-op derive macros. Swap in
//! the real serde by pointing the workspace dependency back at crates.io.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
