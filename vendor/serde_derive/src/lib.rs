//! Vendored no-op implementations of `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]`.
//!
//! The workspace annotates report types with serde derives so downstream
//! consumers with the real serde can serialize them, but nothing in this
//! repository invokes a serializer. With no registry access, these derives
//! expand to nothing: they exist so the attributes (including `#[serde(..)]`
//! field attributes) parse and compile.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
