//! Differential tests of the pre-sync compaction pass: squashing runs of
//! tentative transactions into composite programs must be invisible to
//! execution. Every property here is checked against the slow, obviously
//! correct formulation — replaying the uncompacted history, unioning
//! constituent footprints by hand, compensating constituents one by one —
//! over the same generated scenarios the footprint differential uses.

use proptest::prelude::*;

use histmerge::history::{run_to_final, SerialHistory, TxnArena};
use histmerge::semantics::{compact, CompactionConfig, CompactionMode};
use histmerge::txn::{Fix, TxnId, VarSet};
use histmerge::workload::generator::{generate, ScenarioParams};

fn arb_params() -> impl Strategy<Value = ScenarioParams> {
    (
        0u64..5000,  // seed
        4u32..48,    // n_vars
        2usize..16,  // n_tentative
        0usize..10,  // n_base
        0.0f64..1.0, // commutative fraction
        0.0f64..0.5, // guarded fraction
        0.0f64..0.4, // read-only fraction
        0.1f64..0.9, // hot prob
    )
        .prop_map(|(seed, n_vars, n_tentative, n_base, cf, gf, rof, hot_prob)| {
            ScenarioParams {
                n_vars,
                n_tentative,
                n_base,
                commutative_fraction: cf,
                guarded_fraction: gf * (1.0 - cf),
                read_only_fraction: rof * (1.0 - cf) * 0.5,
                hot_fraction: 0.2,
                hot_prob,
                reads_per_txn: 2,
                writes_per_txn: 2,
                seed,
            }
        })
}

fn arb_mode() -> impl Strategy<Value = CompactionMode> {
    // The vendored proptest has no `prop_oneof`; a bool draw covers both.
    (0u8..2).prop_map(|g| if g == 0 { CompactionMode::Adjacent } else { CompactionMode::Gather })
}

/// The concurrent base footprint, unioned the slow way.
fn base_footprint(arena: &TxnArena, hb: &SerialHistory) -> (VarSet, VarSet) {
    let mut reads = VarSet::new();
    let mut writes = VarSet::new();
    for id in hb.iter() {
        let t = arena.get(id);
        reads.extend_from(t.readset());
        writes.extend_from(t.writeset());
    }
    (reads, writes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a) Executing the compacted history from a fresh state produces the
    /// same final state as the uncompacted history — composites compose
    /// their constituents exactly, and gathering only reorders across
    /// conflict-free pairs.
    #[test]
    fn compacted_execution_matches_uncompacted(params in arb_params(), mode in arb_mode()) {
        let mut sc = generate(&params);
        let (hb_reads, hb_writes) = base_footprint(&sc.arena, &sc.hb);
        let config = CompactionConfig { mode, ..CompactionConfig::enabled() };
        let out = compact(&mut sc.arena, &sc.hm, &hb_reads, &hb_writes, &config);
        let legacy = run_to_final(&sc.arena, &sc.hm, &sc.s0).ok();
        let squashed = run_to_final(&sc.arena, &out.history, &sc.s0).ok();
        prop_assert_eq!(legacy, squashed, "compaction changed the executed final state");
    }

    /// (b) Compaction is idempotent: a second pass over compacted output
    /// squashes nothing further and returns the history unchanged.
    #[test]
    fn compaction_is_idempotent(params in arb_params(), mode in arb_mode()) {
        let mut sc = generate(&params);
        let (hb_reads, hb_writes) = base_footprint(&sc.arena, &sc.hb);
        let config = CompactionConfig { mode, ..CompactionConfig::enabled() };
        let once = compact(&mut sc.arena, &sc.hm, &hb_reads, &hb_writes, &config);
        let twice = compact(&mut sc.arena, &once.history, &hb_reads, &hb_writes, &config);
        prop_assert_eq!(twice.runs_squashed, 0, "second pass found new runs");
        prop_assert_eq!(twice.txns_out, twice.txns_in);
        let a: Vec<TxnId> = once.history.iter().collect();
        let b: Vec<TxnId> = twice.history.iter().collect();
        prop_assert_eq!(a, b, "second pass reordered the history");
    }

    /// (c) Accounting and footprints: the pass never grows the history,
    /// shrinks it by exactly the absorbed constituents, and every
    /// composite's masks and sets are exactly the union of its members'.
    #[test]
    fn composite_footprints_are_member_unions(params in arb_params(), mode in arb_mode()) {
        let mut sc = generate(&params);
        let (hb_reads, hb_writes) = base_footprint(&sc.arena, &sc.hb);
        let config = CompactionConfig { mode, ..CompactionConfig::enabled() };
        let out = compact(&mut sc.arena, &sc.hm, &hb_reads, &hb_writes, &config);
        prop_assert_eq!(out.txns_in, sc.hm.len());
        prop_assert_eq!(out.txns_out, out.history.len());
        prop_assert!(out.txns_out <= out.txns_in);
        let absorbed: usize = out.composites.iter().map(|(_, m)| m.len() - 1).sum();
        prop_assert_eq!(out.txns_out, out.txns_in - absorbed);
        prop_assert_eq!(out.runs_squashed, out.composites.len());
        for (composite, members) in &out.composites {
            prop_assert!(members.len() >= 2, "degenerate composite {composite:?}");
            let mut reads = VarSet::new();
            let mut writes = VarSet::new();
            for &m in members {
                let t = sc.arena.get(m);
                reads.extend_from(t.readset());
                writes.extend_from(t.writeset());
                prop_assert!(sc.hm.contains(m), "absorbed a non-member {m:?}");
            }
            let c = sc.arena.get(*composite);
            prop_assert_eq!(c.readset(), &reads, "composite readset");
            prop_assert_eq!(c.writeset(), &writes, "composite writeset");
            prop_assert!(!c.read_mask().intersects(&histmerge::txn::VarMask::from_set(&hb_writes)));
            prop_assert!(!c.write_mask().intersects(&histmerge::txn::VarMask::from_set(&hb_reads)));
            prop_assert!(!c.write_mask().intersects(&histmerge::txn::VarMask::from_set(&hb_writes)));
        }
    }

    /// (d) A composite's compensation undoes exactly what compensating its
    /// constituents in reverse order would: starting from the state the
    /// composite produced, both paths land on the same state.
    #[test]
    fn composite_compensation_matches_reverse_constituents(params in arb_params(), mode in arb_mode()) {
        let mut sc = generate(&params);
        let (hb_reads, hb_writes) = base_footprint(&sc.arena, &sc.hb);
        let config = CompactionConfig { mode, ..CompactionConfig::enabled() };
        let out = compact(&mut sc.arena, &sc.hm, &hb_reads, &hb_writes, &config);
        for (composite, members) in &out.composites {
            let c = sc.arena.get(*composite);
            if c.inverse().is_none() {
                // Some constituent has no compensating program; the
                // composite correctly declines to invent one.
                prop_assert!(members.iter().any(|&m| sc.arena.get(m).inverse().is_none()));
                continue;
            }
            let Ok(forward) = c.execute(&sc.s0, &Fix::empty()) else { continue };
            let via_composite = c.compensate(&forward.after, &Fix::empty());
            prop_assert!(via_composite.is_ok(), "composite inverse failed to run");
            let mut state = forward.after.clone();
            for &m in members.iter().rev() {
                state = sc.arena.get(m).compensate(&state, &Fix::empty()).unwrap().after;
            }
            prop_assert_eq!(&via_composite.unwrap().after, &state);
        }
    }

    /// Disabled configuration is the identity, whatever the scenario.
    #[test]
    fn disabled_compaction_is_identity(params in arb_params()) {
        let mut sc = generate(&params);
        let (hb_reads, hb_writes) = base_footprint(&sc.arena, &sc.hb);
        let out = compact(&mut sc.arena, &sc.hm, &hb_reads, &hb_writes, &CompactionConfig::default());
        prop_assert_eq!(out.runs_squashed, 0);
        prop_assert!(out.composites.is_empty());
        let a: Vec<TxnId> = sc.hm.iter().collect();
        let b: Vec<TxnId> = out.history.iter().collect();
        prop_assert_eq!(a, b);
    }
}
