//! Property-based tests of the WAL record codec (`replication::wal`).
//!
//! The framing layer is the trust boundary between the simulator and
//! whatever bytes survive a crash, so the codec must satisfy, for
//! arbitrary records and arbitrary damage:
//!
//! 1. `encode` → `decode` round-trips every record variant exactly;
//! 2. a stream of framed records decodes cleanly back to the originals;
//! 3. truncating the stream at ANY byte offset never panics and yields
//!    exactly the records whose frames fit before the cut, with the torn
//!    tail reported at the last clean record boundary;
//! 4. flipping ANY single bit never panics and yields exactly the frames
//!    before the damaged one (CRC32 detects all single-bit errors);
//! 5. an empty stream (fresh or zero-length segment) is clean and empty.
//!
//! Records are drawn from a seed so every variant — including nested
//! session records and full checkpoint snapshots — appears in the mix.

use proptest::prelude::*;

use histmerge::core::merge::InstallPlan;
use histmerge::replication::metrics::SyncRecord;
use histmerge::replication::wal::{decode_stream, frame};
use histmerge::replication::{SessionRecord, Snapshot, Tail, WalRecord};
use histmerge::txn::{DbState, TxnId, VarId};
use histmerge::workload::cost::CostReport;

fn state(seed: u64, len: u64) -> DbState {
    (0..len)
        .map(|i| {
            (VarId::new(((seed + 3 * i) % 97) as u32), (seed as i64).wrapping_mul(31) - i as i64)
        })
        .collect()
}

fn session_record(seed: u64) -> SessionRecord {
    SessionRecord {
        plan: InstallPlan {
            forwarded: state(seed, seed % 4),
            reexecute: (0..seed % 3).map(|i| TxnId::new((seed + i) as u32)).collect(),
            saved: (0..seed % 2).map(|i| TxnId::new((seed * 7 + i) as u32)).collect(),
        },
        retro_from: seed.is_multiple_of(2).then_some((seed % 11) as usize),
        sync: SyncRecord {
            tick: seed,
            mobile: (seed % 5) as usize,
            pending: (seed % 9) as usize,
            hb_len: (seed % 13) as usize,
            saved: (seed % 3) as usize,
            backed_out: (seed % 4) as usize,
            reprocessed: (seed % 2) as usize,
            merge_failed: seed.is_multiple_of(7),
            sync_ns: seed.wrapping_mul(1_000_003),
        },
        cost: CostReport { comm: seed as f64 * 0.25, ..CostReport::default() },
        reexec_done: (seed % 3) as usize,
        completed: seed % 2 == 1,
    }
}

fn snapshot(seed: u64) -> Snapshot {
    Snapshot {
        log: (0..seed % 4).map(|i| (TxnId::new((seed + i) as u32), state(seed + i, 2))).collect(),
        master: state(seed, 3),
        epoch_start: seed % 3,
        epoch_state: state(seed / 2, 2),
        epoch: seed % 5,
        ledger: (0..seed % 2).map(|i| (i, seed % 4, session_record(seed + i))).collect(),
    }
}

/// One record per seed; `seed % 8` selects the variant so every tag in
/// the taxonomy (including nested snapshots) gets exercised.
fn record(seed: u64) -> WalRecord {
    match seed % 8 {
        0 => WalRecord::Commit { txn: TxnId::new((seed / 8) as u32), after: state(seed, 3) },
        1 => WalRecord::WindowStart,
        2 => WalRecord::RetroPatch { from_index: seed / 8, updates: state(seed, 2) },
        3 => WalRecord::SessionInstall {
            mobile: seed % 6,
            seq: seed / 8,
            record: session_record(seed),
        },
        4 => WalRecord::ReexecAdvance { mobile: seed % 6, seq: seed / 8, done: seed % 17 },
        5 => WalRecord::SessionComplete { mobile: seed % 6, seq: seed / 8 },
        6 => WalRecord::SessionPrune { mobile: seed % 6, upto_seq: seed / 8 },
        _ => WalRecord::Checkpoint(Box::new(snapshot(seed))),
    }
}

/// A stream of `n` framed records plus the byte offset where each frame
/// ends (for computing the expected clean prefix after damage).
fn stream(seed: u64, n: usize) -> (Vec<WalRecord>, Vec<u8>, Vec<usize>) {
    let records: Vec<WalRecord> =
        (0..n as u64).map(|i| record(seed.wrapping_mul(131).wrapping_add(i))).collect();
    let mut buf = Vec::new();
    let mut ends = Vec::new();
    for r in &records {
        buf.extend_from_slice(&frame(&r.encode()));
        ends.push(buf.len());
    }
    (records, buf, ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every variant survives `encode` -> `decode` unchanged.
    #[test]
    fn encode_decode_round_trips(seed in 0u64..1_000_000) {
        let original = record(seed);
        let payload = original.encode();
        prop_assert_eq!(WalRecord::decode(&payload), Some(original));
    }

    /// An undamaged stream of frames decodes cleanly to the originals.
    #[test]
    fn framed_streams_decode_cleanly(seed in 0u64..1_000_000, n in 1usize..8) {
        let (records, buf, _) = stream(seed, n);
        let (decoded, tail) = decode_stream(&buf);
        prop_assert_eq!(tail, Tail::Clean);
        prop_assert_eq!(decoded, records);
    }

    /// Cutting the stream at ANY byte offset never panics: exactly the
    /// frames that fit before the cut decode, and anything else is
    /// reported as a torn tail starting at the last clean boundary.
    #[test]
    fn truncation_yields_the_clean_prefix(
        seed in 0u64..1_000_000,
        n in 1usize..6,
        cut_frac in 0.0f64..1.0,
    ) {
        let (records, buf, ends) = stream(seed, n);
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        let complete = ends.iter().filter(|&&e| e <= cut).count();

        let (decoded, tail) = decode_stream(&buf[..cut]);
        prop_assert_eq!(decoded.len(), complete);
        prop_assert_eq!(&decoded[..], &records[..complete]);
        let boundary = if complete == 0 { 0 } else { ends[complete - 1] };
        if cut == boundary {
            prop_assert_eq!(tail, Tail::Clean);
        } else {
            prop_assert_eq!(tail, Tail::Torn { offset: boundary });
        }
    }

    /// Flipping ANY single bit never panics and the CRC catches it:
    /// exactly the frames before the damaged one survive.
    #[test]
    fn bit_flips_are_caught_and_the_prefix_survives(
        seed in 0u64..1_000_000,
        n in 1usize..6,
        byte_frac in 0.0f64..1.0,
        bit in 0usize..8,
    ) {
        let (records, mut buf, ends) = stream(seed, n);
        let idx = (((buf.len() - 1) as f64) * byte_frac) as usize;
        buf[idx] ^= 1 << bit;
        // The flipped byte lives in the first frame whose end is past it.
        let damaged = ends.iter().filter(|&&e| e <= idx).count();
        let boundary = if damaged == 0 { 0 } else { ends[damaged - 1] };

        let (decoded, tail) = decode_stream(&buf);
        prop_assert_eq!(decoded.len(), damaged);
        prop_assert_eq!(&decoded[..], &records[..damaged]);
        prop_assert_eq!(tail, Tail::Torn { offset: boundary });
    }
}

/// A fresh (or compacted-away) segment: no bytes, no records, no tear.
#[test]
fn empty_stream_is_clean_and_empty() {
    let (decoded, tail) = decode_stream(&[]);
    assert!(decoded.is_empty());
    assert_eq!(tail, Tail::Clean);
}

/// A deliberately corrupted CRC field is indistinguishable from a torn
/// frame: nothing decodes, nothing panics.
#[test]
fn corrupt_crc_is_a_torn_tail_at_offset_zero() {
    let mut buf = frame(&record(0).encode());
    buf[4] ^= 0xFF;
    let (decoded, tail) = decode_stream(&buf);
    assert!(decoded.is_empty());
    assert_eq!(tail, Tail::Torn { offset: 0 });
}
