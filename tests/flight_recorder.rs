//! Integration tests for the flight recorder on a live simulation: the
//! ring stays bounded under a long faulted run, and a forced oracle
//! failure ships the last events as valid JSONL before the panic
//! propagates.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use histmerge::obs::{dump_on_failure, validate_json_line, FlightRecorder, TracerHandle};
use histmerge::replication::{
    FaultPlan, FaultRates, Protocol, SimConfig, Simulation, SyncPath, SyncStrategy,
};
use histmerge::workload::generator::ScenarioParams;

fn traced_config(tracer: TracerHandle) -> SimConfig {
    SimConfig {
        n_mobiles: 4,
        duration: 400,
        base_rate: 0.25,
        mobile_rate: 0.2,
        connect_every: 40,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::WindowStart { window: 150 },
        workload: ScenarioParams { n_vars: 64, seed: 11, ..ScenarioParams::default() },
        sync_path: SyncPath::Session,
        fault: FaultPlan::seeded(11, FaultRates::uniform(0.05)),
        check_convergence: true,
        tracer,
        ..SimConfig::default()
    }
}

#[test]
fn ring_stays_bounded_across_a_full_faulted_run() {
    let capacity = 128;
    let recorder = Arc::new(FlightRecorder::new(capacity));
    let tracer = TracerHandle::new(recorder.clone());
    let report = Simulation::new(traced_config(tracer.clone())).expect("valid sim config").run();
    assert!(report.metrics.syncs > 0, "the run synchronized");
    assert!(
        recorder.recorded() > capacity as u64,
        "a 400-tick faulted run must overflow a {capacity}-event ring \
         (recorded {})",
        recorder.recorded()
    );
    assert_eq!(recorder.len(), capacity, "the ring truncated to capacity");
    let dump = tracer.dump_jsonl().expect("the ring retains events");
    let lines: Vec<&str> = dump.lines().collect();
    assert_eq!(lines.len(), capacity);
    for line in &lines {
        validate_json_line(line).unwrap_or_else(|e| panic!("invalid JSONL {line}: {e}"));
    }
    // The session protocol, the fault plan, and the merge pipeline all
    // left events somewhere in the stream's tail.
    assert!(dump.contains("\"type\":\"session_step\""), "no session steps in tail");
    // The registry aggregated spans beyond the ring's retention.
    let snapshot = tracer.snapshot().expect("the ring keeps a registry");
    assert!(!snapshot.phases.is_empty(), "no phases timed");
}

#[test]
fn forced_oracle_failure_dumps_the_tail_as_valid_jsonl() {
    let tracer = FlightRecorder::handle(64);
    let report = Simulation::new(traced_config(tracer.clone())).expect("valid sim config").run();
    let label = "forced-oracle-failure-it";
    let dir = std::env::var_os("FLIGHT_RECORDER_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/flight-recorder"));
    let path = dir.join(format!("{label}.jsonl"));
    let _ = std::fs::remove_file(&path);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        dump_on_failure(&tracer, label, || {
            // A deliberately impossible oracle, standing in for a failed
            // convergence report or a tripped crash-matrix assertion.
            assert_eq!(report.metrics.syncs, usize::MAX, "forced oracle failure");
        });
    }));
    assert!(outcome.is_err(), "the forced failure must still fail the test");
    let body = std::fs::read_to_string(&path)
        .expect("the failure dump was written before the panic propagated");
    assert!(!body.is_empty());
    for line in body.lines() {
        validate_json_line(line).unwrap_or_else(|e| panic!("invalid JSONL {line}: {e}"));
    }
    let _ = std::fs::remove_file(&path);
}
