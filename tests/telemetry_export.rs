//! Integration tests for the PR-9 telemetry exporters: the strict JSONL
//! validator's edge cases, byte-pinned goldens for the Prometheus text
//! dump and the time-series JSON dump, and the same exporters fed from a
//! real simulation run (the shapes the E22 artifacts and the `obs_report`
//! bin consume).

use std::sync::Arc;

use histmerge::obs::{
    export, validate_json_line, FlightRecorder, Phase, Registry, TickSample, TimeSeries, Tracer,
    TracerHandle,
};
use histmerge::replication::{
    FaultPlan, Protocol, SimConfig, SimReport, Simulation, SyncPath, SyncStrategy, TelemetryConfig,
};
use histmerge::workload::generator::ScenarioParams;

// ---------------------------------------------------------------------
// validate_json_line edge cases
// ---------------------------------------------------------------------

#[test]
fn validator_accepts_escaped_quotes_and_nested_objects() {
    for line in [
        // Escaped quotes, including a backslash immediately before the
        // closing quote of a key.
        r#"{"rule\"quoted":"a\"b\\","v":1}"#,
        // Objects nested inside arrays inside objects, with every scalar
        // kind along the way.
        r#"{"a":{"b":{"c":[{"d":[1,-2.5,3e4]},null,true,false,"x"]}}}"#,
        // Escape forms (what `push_escaped` emits for control bytes).
        r#"{"msg":"tab\t nl\n bell\u0007 done"}"#,
        // The exact shapes the autopsy JSONL uses: a null partner and a
        // sentinel-free one.
        r#"{"type":"reprocess_cause","txn":9,"lost_to":18446744073709551615,"rule":"none"}"#,
        r#"{"tick":40,"edges":[{"txn":7,"lost_to":2,"weight":5}]}"#,
        // Leading/trailing whitespace around a lone value.
        "  [  {\"k\" : [ ] } , -0.5e-3 ]  ",
    ] {
        validate_json_line(line).unwrap_or_else(|e| panic!("rejected {line}: {e}"));
    }
}

#[test]
fn validator_rejects_trailing_garbage_and_malformed_nesting() {
    for line in [
        // Trailing garbage after an otherwise valid value.
        r#"{"a":1}{"b":2}"#,
        r#"{"a":1} x"#,
        r#"[1,2]]"#,
        r#"null null"#,
        // Truncated nesting and bad separators.
        r#"{"a":{"b":1}"#,
        r#"{"a":[1,2}"#,
        r#"{"a" 1}"#,
        // Broken escapes inside strings.
        r#"{"a":"\q"}"#,
        r#"{"a":"\u12g4"}"#,
        // A bare key (no quotes) and a lone closing brace.
        r#"{a:1}"#,
        "}",
    ] {
        assert!(validate_json_line(line).is_err(), "accepted malformed: {line:?}");
    }
}

// ---------------------------------------------------------------------
// Prometheus exporter goldens
// ---------------------------------------------------------------------

fn seeded_registry() -> Registry {
    let r = Registry::new();
    r.observe(Phase::MergePlan, 100);
    r.observe(Phase::MergePlan, 300);
    r.observe(Phase::Sync, 7);
    r
}

#[test]
fn prometheus_dump_golden_is_byte_stable() {
    let snapshot = seeded_registry().snapshot();
    let text = prometheus(&[("saved_total", 42.0), ("save_ratio", 0.75)], &snapshot);
    let again = prometheus(&[("saved_total", 42.0), ("save_ratio", 0.75)], &snapshot);
    assert_eq!(text, again, "the dump must be deterministic");
    let expected = "\
# TYPE histmerge_saved_total gauge
histmerge_saved_total 42
# TYPE histmerge_save_ratio gauge
histmerge_save_ratio 0.750000
# TYPE histmerge_phase_count counter
histmerge_phase_count{phase=\"merge_plan\"} 2
histmerge_phase_count{phase=\"sync\"} 1
# TYPE histmerge_phase_total counter
histmerge_phase_total{phase=\"merge_plan\"} 400
histmerge_phase_total{phase=\"sync\"} 7
# TYPE histmerge_phase_max gauge
histmerge_phase_max{phase=\"merge_plan\"} 300
histmerge_phase_max{phase=\"sync\"} 7
# TYPE histmerge_phase_p50_bound gauge
histmerge_phase_p50_bound{phase=\"merge_plan\"} 128
histmerge_phase_p50_bound{phase=\"sync\"} 8
# TYPE histmerge_phase_p99_bound gauge
histmerge_phase_p99_bound{phase=\"merge_plan\"} 512
histmerge_phase_p99_bound{phase=\"sync\"} 8
";
    assert_eq!(text, expected);
}

fn prometheus(gauges: &[(&str, f64)], snapshot: &histmerge::obs::RegistrySnapshot) -> String {
    export::prometheus_text(gauges, Some(snapshot))
}

/// Every non-comment exposition line must be `name value` or
/// `name{phase="..."} value` with a parseable value — the grammar the
/// scrape side relies on.
fn assert_prometheus_wellformed(text: &str) {
    for line in text.lines() {
        if line.starts_with("# TYPE ") {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no value: {line}"));
        assert!(name.starts_with("histmerge_"), "bad family name: {line}");
        if let Some(open) = name.find('{') {
            assert!(name.ends_with('}'), "unterminated labels: {line}");
            let labels = &name[open + 1..name.len() - 1];
            assert!(
                labels.starts_with("phase=\"") && labels.ends_with('"'),
                "bad label set: {line}"
            );
        }
        value.parse::<f64>().unwrap_or_else(|e| panic!("bad value in {line:?}: {e}"));
    }
}

// ---------------------------------------------------------------------
// Time-series dump goldens
// ---------------------------------------------------------------------

#[test]
fn timeseries_dump_golden_is_byte_pinned() {
    let ts = TimeSeries::new(5, 8);
    ts.record(0, TickSample::default);
    ts.record(5, || TickSample {
        tick: 5,
        backlog: 2.5,
        deferred: 1,
        active_sessions: 2,
        abandoned_sessions: 0,
        saved: 3,
        redone: 1,
        wal_bytes: 128,
        cohort: 2,
        defer_wait_p50: 1,
        defer_wait_p99: 4,
        merge_plan_p50: 256,
        merge_plan_p99: 1024,
    });
    ts.record(10, || TickSample { tick: 10, saved: 3, redone: 3, ..TickSample::default() });
    let json = ts.to_json();
    validate_json_line(&json).unwrap_or_else(|e| panic!("invalid dump {json}: {e}"));
    // Window 0→5 resolved 4 of which 3 saved (0.750); window 5→10
    // resolved 2 of which 0 saved (0.000).
    let expected = concat!(
        "{\"stride\":5,\"capacity\":8,\"samples\":[",
        "{\"tick\":0,\"backlog\":0.000,\"deferred\":0,\"active_sessions\":0,",
        "\"abandoned_sessions\":0,\"saved\":0,\"redone\":0,\"save_ratio\":0.000,",
        "\"wal_bytes\":0,\"cohort\":0,\"defer_wait_p50\":0,\"defer_wait_p99\":0,",
        "\"merge_plan_p50\":0,\"merge_plan_p99\":0},",
        "{\"tick\":5,\"backlog\":2.500,\"deferred\":1,\"active_sessions\":2,",
        "\"abandoned_sessions\":0,\"saved\":3,\"redone\":1,\"save_ratio\":0.750,",
        "\"wal_bytes\":128,\"cohort\":2,\"defer_wait_p50\":1,\"defer_wait_p99\":4,",
        "\"merge_plan_p50\":256,\"merge_plan_p99\":1024},",
        "{\"tick\":10,\"backlog\":0.000,\"deferred\":0,\"active_sessions\":0,",
        "\"abandoned_sessions\":0,\"saved\":3,\"redone\":3,\"save_ratio\":0.000,",
        "\"wal_bytes\":0,\"cohort\":0,\"defer_wait_p50\":0,\"defer_wait_p99\":0,",
        "\"merge_plan_p50\":0,\"merge_plan_p99\":0}]}",
    );
    assert_eq!(json, expected);
}

// ---------------------------------------------------------------------
// The same exporters fed by a real run
// ---------------------------------------------------------------------

fn telemetry_run() -> (SimReport, Arc<TimeSeries>, Arc<FlightRecorder>) {
    let recorder = Arc::new(FlightRecorder::new(1 << 14));
    let series = Arc::new(TimeSeries::new(1, 128));
    let config = SimConfig {
        n_mobiles: 4,
        duration: 300,
        base_rate: 0.25,
        mobile_rate: 0.2,
        connect_every: 40,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::WindowStart { window: 120 },
        workload: ScenarioParams { n_vars: 48, seed: 23, ..ScenarioParams::default() },
        sync_path: SyncPath::Session,
        fault: FaultPlan::none(),
        tracer: TracerHandle::new(recorder.clone()),
        telemetry: TelemetryConfig { series: Some(series.clone()), autopsy: true },
        ..SimConfig::default()
    };
    let report = Simulation::new(config).expect("valid sim config").run();
    (report, series, recorder)
}

#[test]
fn simulation_dumps_are_wellformed_and_coherent() {
    let (report, series, recorder) = telemetry_run();

    // The time-series dump: valid JSON, stable header, ticks strictly
    // increasing on the final stride, cumulative fields monotone.
    let json = series.to_json();
    validate_json_line(&json).unwrap_or_else(|e| panic!("invalid series dump: {e}"));
    assert!(json.starts_with("{\"stride\":"), "{json}");
    let samples = series.samples();
    assert!(!samples.is_empty(), "the run sampled nothing");
    let stride = series.stride();
    for pair in samples.windows(2) {
        assert!(pair[0].tick < pair[1].tick, "ticks not increasing");
        assert!(pair[0].saved <= pair[1].saved, "cumulative saved regressed");
        assert!(pair[0].redone <= pair[1].redone, "cumulative redone regressed");
    }
    for s in &samples {
        assert!(s.tick.is_multiple_of(stride), "tick {} off stride {stride}", s.tick);
    }
    // The final cumulative totals agree with the end-of-run metrics.
    let last = samples.last().unwrap();
    assert_eq!(last.saved, report.metrics.saved as u64);
    assert_eq!(last.redone, (report.metrics.backed_out + report.metrics.reprocessed) as u64);

    // The Prometheus dump built the way the E22 bin builds it: run
    // gauges plus the recorder's registry snapshot.
    let snapshot = recorder.snapshot().expect("ring registry");
    let prom = export::prometheus_text(
        &[
            ("saved_total", report.metrics.saved as f64),
            ("backed_out_total", report.metrics.backed_out as f64),
            ("reprocessed_total", report.metrics.reprocessed as f64),
        ],
        Some(&snapshot),
    );
    assert_prometheus_wellformed(&prom);
    assert!(prom.contains(&format!("histmerge_saved_total {}\n", report.metrics.saved)));
    assert!(prom.contains("histmerge_phase_count{phase=\"merge_plan\"}"), "{prom}");

    // The registry JSON dump validates and the trace dump is JSONL all
    // the way down — the exact inputs `obs_report` consumes.
    let registry = export::registry_json(&snapshot);
    validate_json_line(&registry).unwrap_or_else(|e| panic!("invalid registry dump: {e}"));
    let trace = recorder.dump_jsonl().expect("ring dump");
    assert!(!trace.is_empty());
    for line in trace.lines() {
        validate_json_line(line).unwrap_or_else(|e| panic!("invalid trace line {line}: {e}"));
    }
    // Autopsies were assembled and every sync closed one.
    let autopsies = recorder.autopsies();
    assert_eq!(autopsies.len(), report.metrics.syncs, "one autopsy per sync");
}

#[test]
fn html_report_wraps_a_real_run_self_contained() {
    let (_, series, recorder) = telemetry_run();
    let snapshot = recorder.snapshot().expect("ring registry");
    let blob = format!(
        "{{\"label\":\"telemetry-export-test\",\"timeseries\":{},\"registry\":{},\
         \"metrics\":null,\"autopsies\":[],\"events\":[]}}",
        series.to_json(),
        export::registry_json(&snapshot),
    );
    validate_json_line(&blob).unwrap_or_else(|e| panic!("invalid blob: {e}"));
    let html = export::html_report("telemetry export test", &blob);
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.contains("telemetry-export-test"));
    // Self-contained: no network fetches, and the data cannot break out
    // of its script element.
    assert!(!html.contains("src=\"http"));
    assert!(!html.contains("href=\"http"));
    assert_eq!(html.matches("</script>").count(), 2, "only the shell's own script closers");
}
