//! Differential test of the resumable session path: every simulation
//! scenario from `tests/simulation.rs`, re-run through `SyncPath::Session`
//! with `FaultPlan::none()`, must reproduce the legacy atomic handshake
//! byte-for-byte — same final master, same commit counts, same per-sync
//! records, same cost totals. Only `parallel_merge_ns` (wall clock) and
//! the WAL volume counters are exempt, via `Metrics::normalized`.
//!
//! Each scenario is additionally run a third time with durability
//! enabled: write-ahead logging must be observation-only, so the durable
//! session run must equal the legacy run on exactly the same terms — and a
//! fourth time with a flight-recorder ring tracer attached, because
//! tracing must be observation-only on exactly the same terms too. A fifth
//! run enables `reuse_merge_scratch`, pinning that carrying merge working
//! memory across windows never changes an outcome. A sixth run flips the
//! reference's event-driven scheduler back to the legacy per-tick fleet
//! scan (`SchedulerMode::TickScan`), pinning the PR-6 tentpole claim: how
//! a tick *finds* its due mobiles (O(fleet) scan vs popping a priority
//! queue) never changes what the simulation *does*. A seventh run enables
//! the pre-merge compactor: squashing pending runs into composites
//! changes what a merge *costs* (fewer, fatter transactions), but not one
//! committed byte — so that run is compared with the cost-model outputs
//! (cost totals, backlog trajectory) masked out and everything else held
//! to the same byte-identity bar. An eighth run pins the PR-8 structured
//! connectivity layer: an explicit `ConnectivityModel::AlwaysOn` with
//! unbounded admission AND a saturated duty cycle (`on_ticks == period`,
//! exercising the non-trivial trace arithmetic) must both be the
//! identity — the connectivity model adjusts schedules *after* the legacy
//! cadence draws, it never consumes or adds randomness. A ninth run
//! turns on the full PR-9 fleet telemetry (the per-tick time-series
//! collector plus merge autopsies, on top of the flight-recorder ring):
//! telemetry reads simulation state after the fact, so the fully
//! instrumented run must hold to the same byte-identity bar while the
//! series fills and every sync closes an autopsy. A tenth run turns on
//! the PR-10 tuned cohort pipeline (bounded wave re-speculation plus the
//! mask-disjoint merge fast path): both are pure mechanism — a conflict
//! the fast path skips is a conflict that was never there, and a wave
//! only precomputes exactly the merges the serial fallback would run —
//! so the tuned run must be byte-identical on every scenario, including
//! the speculative hit/retry counters.

use std::sync::Arc;

use histmerge::obs::{FlightRecorder, TimeSeries, TracerHandle};
use histmerge::replication::metrics::Metrics;
use histmerge::replication::{
    AdmissionConfig, CohortConfig, ConnectivityModel, DurabilityConfig, FaultPlan, FaultStats,
    Protocol, SchedulerMode, SimConfig, SimReport, Simulation, SyncPath, SyncStrategy,
    TelemetryConfig,
};
use histmerge::semantics::CompactionConfig;
use histmerge::workload::cost::CostReport;
use histmerge::workload::generator::ScenarioParams;

fn workload(seed: u64) -> ScenarioParams {
    ScenarioParams {
        n_vars: 64,
        commutative_fraction: 0.5,
        guarded_fraction: 0.15,
        read_only_fraction: 0.1,
        hot_fraction: 0.1,
        hot_prob: 0.3,
        seed,
        ..ScenarioParams::default()
    }
}

fn config(protocol: Protocol, seed: u64) -> SimConfig {
    SimConfig {
        n_mobiles: 4,
        duration: 400,
        base_rate: 0.25,
        mobile_rate: 0.2,
        connect_every: 50,
        protocol,
        strategy: SyncStrategy::WindowStart { window: 200 },
        workload: workload(seed),
        base_capacity: 120.0,
        ..SimConfig::default()
    }
}

/// Runs `config` through both paths — and the session path again with
/// durability enabled, with a flight-recorder ring attached, with
/// merge-scratch reuse across windows, and with full fleet telemetry
/// (time-series + autopsies) — plus a run on the legacy tick-scan
/// scheduler, and asserts the reports are identical.
fn assert_paths_agree(mut config: SimConfig, label: &str) -> SimReport {
    config.sync_path = SyncPath::Legacy;
    let legacy = Simulation::new(config.clone()).expect("valid sim config").run();
    // Sixth run: the legacy path again, but with the per-tick fleet scan
    // instead of the (default) event queue. The scheduler is pure
    // mechanism, so everything but the normalized-away scheduler counters
    // must match the reference byte-for-byte.
    let mut tickscan_config = config.clone();
    tickscan_config.scheduler = SchedulerMode::TickScan;
    tickscan_config.check_convergence = true;
    let tickscan = Simulation::new(tickscan_config).expect("valid sim config").run();
    assert_eq!(tickscan.metrics.sched.events_popped, 0, "{label}: tick scan used the queue");
    assert!(legacy.metrics.sched.events_popped > 0, "{label}: reference never popped events");
    assert_eq!(legacy.metrics.sched.fleet_scans, 0, "{label}: event mode scanned the fleet");
    config.sync_path = SyncPath::Session;
    config.fault = FaultPlan::none();
    config.check_convergence = true;
    let session = Simulation::new(config.clone()).expect("valid sim config").run();
    let mut durable_config = config.clone();
    durable_config.durability = DurabilityConfig { enabled: true, checkpoint_every: 96 };
    let durable = Simulation::new(durable_config).expect("valid sim config").run();
    // Fifth run: one MergeScratch carried across every window merge.
    // Scratch reuse is observation-free, so `normalized()` must stay
    // byte-identical to the fresh-buffers runs.
    let mut scratch_config = config.clone();
    scratch_config.reuse_merge_scratch = true;
    let scratched = Simulation::new(scratch_config).expect("valid sim config").run();
    // Seventh run: the pre-merge compactor squashes pending histories
    // before they are planned.
    let mut squash_config = config.clone();
    squash_config.compaction = CompactionConfig::enabled();
    let squashed = Simulation::new(squash_config).expect("valid sim config").run();
    // Eighth run: the structured connectivity layer spelled out
    // explicitly — AlwaysOn + unbounded admission (the defaults, made
    // loud) and a saturated duty cycle whose every `next_up` is the
    // identity. Neither may move a single byte.
    let mut explicit_config = config.clone();
    explicit_config.connectivity = ConnectivityModel::AlwaysOn;
    explicit_config.admission = AdmissionConfig::unbounded();
    let explicit = Simulation::new(explicit_config).expect("valid sim config").run();
    let mut saturated_config = config.clone();
    saturated_config.connectivity =
        ConnectivityModel::DutyCycle { period: 16, on_ticks: 16, seed: 1717 };
    let saturated = Simulation::new(saturated_config).expect("valid sim config").run();
    // Ninth run: the full PR-9 fleet telemetry — per-tick time-series
    // collection and merge autopsies on top of the flight-recorder ring.
    // Telemetry reads simulation state after the fact, so the fully
    // instrumented run must stay byte-identical too.
    let recorder = Arc::new(FlightRecorder::new(4096));
    let series = Arc::new(TimeSeries::new(1, 1024));
    let mut telemetry_config = config.clone();
    telemetry_config.tracer = TracerHandle::new(recorder.clone());
    telemetry_config.telemetry = TelemetryConfig { series: Some(series.clone()), autopsy: true };
    let instrumented = Simulation::new(telemetry_config).expect("valid sim config").run();
    assert!(!series.is_empty(), "{label}: the telemetry run sampled nothing");
    // Tenth run: the tuned cohort install pipeline — wave re-speculation
    // for invalidated cohort remainders plus the mask-disjoint merge
    // fast path. Pure mechanism, so `normalized()` (which zeroes the
    // cohort counters) must stay byte-identical, hit/retry counters
    // included.
    let mut waves_config = config.clone();
    waves_config.cohort = CohortConfig::tuned();
    let waved = Simulation::new(waves_config).expect("valid sim config").run();
    let autopsies = recorder.autopsies();
    assert!(!autopsies.is_empty(), "{label}: the telemetry run produced no autopsies");
    // Back-outs always lose to a concrete conflict partner; partner-less
    // edges are only legal for wholesale reprocess decisions, which must
    // name their policy cause instead (protocol baseline, window miss,
    // failed merge, dirty origin).
    for autopsy in &autopsies {
        for edge in autopsy.edges.iter() {
            assert!(
                edge.is_concrete() || (edge.cause != "backed-out" && !edge.cause.is_empty()),
                "{label}: autopsy at tick {} has a vague edge: {edge:?}",
                autopsy.tick
            );
        }
    }
    // Fourth run: same session config with the flight recorder listening.
    // Tracing is observation-only, so `normalized()` must stay
    // byte-identical to the untraced runs.
    let ring = FlightRecorder::handle(4096);
    config.tracer = ring.clone();
    let traced = Simulation::new(config).expect("valid sim config").run();
    assert!(
        ring.dump_jsonl().is_some_and(|dump| !dump.is_empty()),
        "{label}: the traced run recorded nothing"
    );

    for (candidate, path) in [
        (&session, "session"),
        (&durable, "session+wal"),
        (&traced, "session+trace"),
        (&scratched, "session+scratch"),
        (&tickscan, "legacy+tickscan"),
        (&explicit, "session+always-on"),
        (&saturated, "session+saturated-duty"),
        (&instrumented, "session+telemetry"),
        (&waved, "session+waves"),
    ] {
        assert_eq!(
            legacy.final_master, candidate.final_master,
            "{label}/{path}: master state diverged"
        );
        assert_eq!(
            legacy.base_commits, candidate.base_commits,
            "{label}/{path}: commit count diverged"
        );
        assert_eq!(legacy.cluster, candidate.cluster, "{label}/{path}: cluster stats diverged");
        // Covers every counter, cost total, and the full per-sync record
        // list.
        assert_eq!(
            legacy.metrics.normalized(),
            candidate.metrics.normalized(),
            "{label}/{path}: metrics diverged"
        );
        // A fault-free plan must leave no trace in the fault counters.
        assert_eq!(
            candidate.metrics.fault,
            FaultStats::default(),
            "{label}/{path}: phantom fault events"
        );
        let convergence = candidate.convergence.expect("session run checked convergence");
        assert!(convergence.holds(), "{label}/{path}: convergence oracle failed: {convergence:?}");
    }
    // The compacted run holds to the same bar with the cost model masked
    // out: planning against squashed histories legitimately changes cost
    // totals and the backlog trajectory derived from them, but must not
    // change one committed byte, a single per-sync record (kept in
    // original-transaction units), or any other counter.
    assert_eq!(legacy.final_master, squashed.final_master, "{label}/compaction: master diverged");
    assert_eq!(legacy.base_commits, squashed.base_commits, "{label}/compaction: commits diverged");
    assert_eq!(legacy.cluster, squashed.cluster, "{label}/compaction: cluster stats diverged");
    let mask_cost = |m: &Metrics| {
        let mut m = m.normalized();
        m.cost = CostReport::default();
        m.peak_backlog = 0.0;
        m.backlog_series.clear();
        m
    };
    assert_eq!(
        mask_cost(&legacy.metrics),
        mask_cost(&squashed.metrics),
        "{label}/compaction: metrics diverged beyond the cost model"
    );
    let convergence = squashed.convergence.expect("compacted run checked convergence");
    assert!(convergence.holds(), "{label}/compaction: convergence oracle failed: {convergence:?}");
    // The durable run actually logged, and every acked session's ledger
    // record was pruned (the fault-free run acks everything).
    assert!(durable.metrics.wal.records > 0, "{label}: WAL never written");
    assert!(durable.durable.is_some(), "{label}: durable artifacts missing");
    assert_eq!(durable.ledger_len, 0, "{label}: acked sessions left ledger records");
    session
}

#[test]
fn accounting_identity_scenario_matches_legacy() {
    for protocol in [Protocol::Reprocessing, Protocol::merging_default()] {
        let report = assert_paths_agree(config(protocol, 5), protocol.name());
        let m = &report.metrics;
        let resolved = m.saved + m.backed_out + m.reprocessed;
        assert!(resolved <= m.tentative_generated);
        for r in &m.records {
            assert_eq!(r.pending, r.saved + r.backed_out + r.reprocessed);
        }
    }
}

#[test]
fn merging_scenario_matches_legacy_and_stays_deterministic() {
    let a = assert_paths_agree(config(Protocol::merging_default(), 6), "merging seed 6");
    let b = assert_paths_agree(config(Protocol::merging_default(), 6), "merging seed 6 again");
    assert_eq!(a.final_master, b.final_master);
    assert!(a.metrics.saved > 0, "merging engaged through the session path");
}

#[test]
fn convergence_scenario_matches_legacy() {
    for protocol in [Protocol::Reprocessing, Protocol::merging_default()] {
        let report = assert_paths_agree(config(protocol, 7), protocol.name());
        for r in &report.metrics.records {
            assert!(r.pending > 0, "empty syncs are not recorded");
        }
    }
}

#[test]
fn scaleup_scenario_matches_legacy_at_both_fleet_sizes() {
    for n_mobiles in [4usize, 8] {
        for protocol in [Protocol::Reprocessing, Protocol::merging_default()] {
            let mut c = config(protocol, 8);
            c.n_mobiles = n_mobiles;
            assert_paths_agree(c, &format!("{} x{n_mobiles}", protocol.name()));
        }
    }
}

#[test]
fn strategy_tradeoff_scenario_matches_legacy_under_both_strategies() {
    let mut c1 = config(Protocol::merging_default(), 9);
    c1.strategy = SyncStrategy::PerDisconnectSnapshot;
    c1.workload.hot_prob = 0.8;
    c1.n_mobiles = 6;
    let s1 = assert_paths_agree(c1, "strategy1");

    let mut c2 = config(Protocol::merging_default(), 9);
    c2.strategy = SyncStrategy::WindowStart { window: 100 };
    c2.workload.hot_prob = 0.8;
    c2.n_mobiles = 6;
    let s2 = assert_paths_agree(c2, "strategy2");

    // The documented trade-offs survive the path switch.
    assert_eq!(s2.metrics.merge_failures, 0);
    assert_eq!(s1.metrics.window_misses, 0);
}
