//! Property-based tests (proptest) of the event-driven scheduler's
//! determinism contract (DESIGN.md §14):
//!
//! 1. the event queue is a *total order* — whatever order events are
//!    pushed in, they pop in `(time, kind, mobile)` order, with
//!    same-timestamp ties broken identically every run;
//! 2. RNG *domain separation* — the fault stream is forked away from the
//!    workload stream, so adding (inactive) fault events to a run never
//!    shifts a workload draw; and
//! 3. [`fork_rng`] forks are deterministic and mutually independent — how
//!    much one fork is consumed never changes a sibling fork's draws.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use histmerge::replication::{
    fork_rng, Event, EventKind, EventQueue, FaultPlan, FaultRates, Protocol, SchedulerMode,
    SimConfig, Simulation, SyncPath, SyncStrategy,
};
use histmerge::workload::generator::ScenarioParams;

fn arb_event() -> impl Strategy<Value = Event> {
    (0u64..24, prop::bool::ANY, 0usize..8).prop_map(|(time, generate, mobile)| Event {
        time,
        kind: if generate { EventKind::Generate } else { EventKind::Connect },
        mobile,
    })
}

fn sim_config(seed: u64, scheduler: SchedulerMode) -> SimConfig {
    SimConfig {
        n_mobiles: 3,
        duration: 160,
        base_rate: 0.3,
        mobile_rate: 0.17,
        connect_every: 30,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::WindowStart { window: 80 },
        workload: ScenarioParams { n_vars: 48, seed, ..ScenarioParams::default() },
        scheduler,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Popping the queue tick by tick yields exactly the stable
    /// `(time, kind, mobile)` sort of the pushed events — ties on the
    /// same timestamp (including duplicate events) included — no matter
    /// what order they were pushed in.
    #[test]
    fn pops_are_the_sorted_push_set(events in prop::collection::vec(arb_event(), 0..48)) {
        let mut queue = EventQueue::new();
        for e in &events {
            queue.push(*e);
        }
        let mut popped = Vec::new();
        for tick in 0..24 {
            while let Some(e) = queue.pop_at(tick) {
                // pop_at never releases an event early.
                prop_assert!(e.time <= tick);
                popped.push(e);
            }
        }
        prop_assert!(queue.is_empty());
        prop_assert_eq!(queue.pushed(), events.len() as u64);
        prop_assert_eq!(queue.popped(), events.len() as u64);
        let mut expected = events;
        expected.sort();
        prop_assert_eq!(popped, expected);
    }

    /// Two identically-seeded queues fed the same events in *different*
    /// orders drain identically — the heap's internal layout never leaks
    /// into the pop sequence.
    #[test]
    fn push_order_is_invisible(
        events in prop::collection::vec(arb_event(), 1..32),
        rot in 0usize..32,
    ) {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        let rot = rot % events.len();
        for e in &events {
            a.push(*e);
        }
        for e in events[rot..].iter().chain(&events[..rot]) {
            b.push(*e);
        }
        for tick in 0..24 {
            loop {
                let (x, y) = (a.pop_at(tick), b.pop_at(tick));
                prop_assert_eq!(x, y);
                if x.is_none() {
                    break;
                }
            }
        }
    }

    /// Domain separation at simulation scope: attaching a seeded fault
    /// plan whose rates are all zero (so it draws from the *fault* RNG
    /// stream without ever firing) must not move a single workload,
    /// jitter, or scheduling draw — the run is byte-identical to the
    /// plan-free run, under both schedulers.
    #[test]
    fn inactive_fault_stream_never_shifts_workload_draws(
        seed in 0u64..2000,
        fault_seed in 0u64..2000,
    ) {
        for scheduler in [SchedulerMode::EventQueue, SchedulerMode::TickScan] {
            let quiet = sim_config(seed, scheduler);
            let mut faulted = quiet.clone();
            faulted.sync_path = SyncPath::Session;
            faulted.fault = FaultPlan::seeded(fault_seed, FaultRates::zero());
            let mut clean = quiet.clone();
            clean.sync_path = SyncPath::Session;
            clean.fault = FaultPlan::none();
            let quiet = Simulation::new(quiet).expect("valid sim config").run();
            let faulted = Simulation::new(faulted).expect("valid sim config").run();
            let clean = Simulation::new(clean).expect("valid sim config").run();
            prop_assert_eq!(&faulted.final_master, &quiet.final_master);
            prop_assert_eq!(&clean.final_master, &quiet.final_master);
            prop_assert_eq!(faulted.metrics.normalized(), clean.metrics.normalized());
            prop_assert_eq!(faulted.base_commits, quiet.base_commits);
        }
    }

    /// `fork_rng` forks are a pure function of the base stream's position:
    /// re-forking from an identically-seeded base reproduces the fork, and
    /// however deeply the first fork is consumed, the next fork off the
    /// base draws the same values.
    #[test]
    fn forks_are_deterministic_and_independent(
        seed in 0u64..5000,
        consumed in 0usize..64,
    ) {
        let mut base_a = StdRng::seed_from_u64(seed);
        let mut base_b = StdRng::seed_from_u64(seed);
        let mut fork_a1 = fork_rng(&mut base_a);
        let mut fork_b1 = fork_rng(&mut base_b);
        // Determinism: same base position, same fork stream.
        prop_assert_eq!(fork_a1.gen::<u64>(), fork_b1.gen::<u64>());
        // Independence: drain fork_a1 a variable amount, fork_b1 not at
        // all — the *next* forks still agree, and so does the base.
        for _ in 0..consumed {
            let _ = fork_a1.gen::<u64>();
        }
        let mut fork_a2 = fork_rng(&mut base_a);
        let mut fork_b2 = fork_rng(&mut base_b);
        for _ in 0..4 {
            prop_assert_eq!(fork_a2.gen::<u64>(), fork_b2.gen::<u64>());
        }
        prop_assert_eq!(base_a.gen::<u64>(), base_b.gen::<u64>());
    }
}
