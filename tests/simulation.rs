//! Integration tests of the two-tier replication simulator.

use histmerge::replication::{Protocol, SimConfig, Simulation, SyncStrategy};
use histmerge::workload::generator::ScenarioParams;

fn workload(seed: u64) -> ScenarioParams {
    ScenarioParams {
        n_vars: 64,
        commutative_fraction: 0.5,
        guarded_fraction: 0.15,
        read_only_fraction: 0.1,
        hot_fraction: 0.1,
        hot_prob: 0.3,
        seed,
        ..ScenarioParams::default()
    }
}

fn config(protocol: Protocol, seed: u64) -> SimConfig {
    SimConfig {
        n_mobiles: 4,
        duration: 400,
        base_rate: 0.25,
        mobile_rate: 0.2,
        connect_every: 50,
        protocol,
        strategy: SyncStrategy::WindowStart { window: 200 },
        workload: workload(seed),
        base_capacity: 120.0,
        ..SimConfig::default()
    }
}

#[test]
fn accounting_identity_holds() {
    // Every tentative transaction is eventually saved, backed out, or
    // reprocessed — or still pending at the end of the run.
    for protocol in [Protocol::Reprocessing, Protocol::merging_default()] {
        let report = Simulation::new(config(protocol, 5)).expect("valid sim config").run();
        let m = &report.metrics;
        let resolved = m.saved + m.backed_out + m.reprocessed;
        assert!(
            resolved <= m.tentative_generated,
            "{}: resolved {} > generated {}",
            protocol.name(),
            resolved,
            m.tentative_generated
        );
        // Each sync record is internally consistent.
        for r in &m.records {
            assert_eq!(r.pending, r.saved + r.backed_out + r.reprocessed);
        }
        // Base commits = base load + installs + re-executions ≥ base load.
        assert!(report.base_commits >= m.base_generated);
    }
}

#[test]
fn merging_never_loses_updates_of_saved_transactions() {
    // After every merge, the master state must reflect the saved
    // transactions' forwarded values; the simulator's invariant is that
    // base commits replay deterministically, which `Simulation` asserts
    // internally on every commit. Here we check end-to-end determinism
    // and that merging actually engaged.
    let a =
        Simulation::new(config(Protocol::merging_default(), 6)).expect("valid sim config").run();
    let b =
        Simulation::new(config(Protocol::merging_default(), 6)).expect("valid sim config").run();
    assert_eq!(a.final_master, b.final_master);
    assert!(a.metrics.saved > 0);
}

#[test]
fn reprocessing_and_merging_both_converge() {
    // Both protocols drain all pending work across reconnections: by the
    // end, the number of syncs equals the sum over mobiles of their
    // reconnect counts, and every sync resolved its pending set.
    for protocol in [Protocol::Reprocessing, Protocol::merging_default()] {
        let report = Simulation::new(config(protocol, 7)).expect("valid sim config").run();
        for r in &report.metrics.records {
            assert!(r.pending > 0, "empty syncs are not recorded");
        }
    }
}

#[test]
fn scaleup_increases_reprocessing_base_cost_linearly() {
    // E6's shape at unit scale: doubling the mobile fleet roughly doubles
    // the base-side reprocessing cost; merging grows sublinearly in
    // base I/O because installs batch.
    let run = |protocol: Protocol, n: usize| {
        let mut c = config(protocol, 8);
        c.n_mobiles = n;
        Simulation::new(c).expect("valid sim config").run().metrics
    };
    let rep4 = run(Protocol::Reprocessing, 4);
    let rep8 = run(Protocol::Reprocessing, 8);
    assert!(rep8.cost.base_io > 1.5 * rep4.cost.base_io);

    let mer4 = run(Protocol::merging_default(), 4);
    let rep4_again = run(Protocol::Reprocessing, 4);
    assert!(mer4.cost.base_io < rep4_again.cost.base_io);
}

#[test]
fn strategy1_and_strategy2_complete_with_documented_tradeoffs() {
    let mut c1 = config(Protocol::merging_default(), 9);
    c1.strategy = SyncStrategy::PerDisconnectSnapshot;
    c1.workload.hot_prob = 0.8;
    c1.n_mobiles = 6;
    let s1 = Simulation::new(c1).expect("valid sim config").run();

    let mut c2 = config(Protocol::merging_default(), 9);
    c2.strategy = SyncStrategy::WindowStart { window: 100 };
    c2.workload.hot_prob = 0.8;
    c2.n_mobiles = 6;
    let s2 = Simulation::new(c2).expect("valid sim config").run();

    // Strategy 2 never fails a merge; Strategy 1 never misses a window.
    assert_eq!(s2.metrics.merge_failures, 0);
    assert_eq!(s1.metrics.window_misses, 0);
}
