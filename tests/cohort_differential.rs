//! Differential tests of the PR-10 cohort install pipeline: bounded wave
//! re-speculation for invalidated cohort remainders and the mask-disjoint
//! conflict-free merge fast path must both be pure mechanism. Every run
//! with [`CohortConfig::tuned`] (and each knob alone) is compared against
//! the legacy pipeline ([`CohortConfig::legacy`], the default) over
//! generated scenarios spanning protocol × strategy × cohort size, and
//! must be byte-identical on the final master, the base commit log, every
//! per-mobile sync record (saved / backed-out / reprocessed), and the full
//! cost accounting — only the normalized-away cohort counters (fast-path
//! hits, wave rounds, cache appends) may move.
//!
//! The deterministic fault-matrix sweep at the bottom runs every fault
//! kind under bounded admission with waves and the fast path on, holding
//! the convergence oracle to the same bar as the legacy fault matrix.

use proptest::prelude::*;

use histmerge::replication::{
    AdmissionConfig, CohortConfig, FaultKind, FaultPlan, FaultRates, Parallelism, Protocol,
    SimConfig, SimReport, Simulation, SyncPath, SyncStrategy,
};
use histmerge::workload::generator::ScenarioParams;

const STRATEGIES: [SyncStrategy; 3] = [
    SyncStrategy::WindowStart { window: 120 },
    SyncStrategy::AdaptiveWindow { max_hb: 60 },
    SyncStrategy::PerDisconnectSnapshot,
];

/// A cohort-heavy scenario: synchronized reconnects put the whole fleet
/// into one merge cohort, and a hot, conflict-prone workload makes
/// earlier installs invalidate later members' speculations — the regime
/// waves exist for. Compaction stays off: the strict byte-identity bar
/// here includes the cost model (the compacted regime is covered by
/// `session_differential`'s cost-masked run).
fn config(
    protocol: Protocol,
    strategy: SyncStrategy,
    n_mobiles: usize,
    seed: u64,
    hot_prob: f64,
) -> SimConfig {
    SimConfig {
        n_mobiles,
        duration: 300,
        base_rate: 0.3,
        mobile_rate: 0.25,
        connect_every: 40,
        protocol,
        strategy,
        workload: ScenarioParams {
            n_vars: 48,
            commutative_fraction: 0.5,
            guarded_fraction: 0.15,
            read_only_fraction: 0.1,
            hot_fraction: 0.15,
            hot_prob,
            seed,
            ..ScenarioParams::default()
        },
        base_capacity: 200.0,
        synchronized_reconnects: true,
        // Pin the worker count so the speculative phase engages on any
        // host; the outcome is parallelism-independent either way.
        parallelism: Parallelism::Threads(4),
        ..SimConfig::default()
    }
}

/// Runs `base` under the legacy pipeline and under `cohort`, asserting
/// byte-identity on everything the normalization contract keeps. Returns
/// both reports for mechanism-engagement assertions.
fn assert_cohort_identity(
    base: SimConfig,
    cohort: CohortConfig,
    label: &str,
) -> (SimReport, SimReport) {
    let mut legacy_config = base.clone();
    legacy_config.cohort = CohortConfig::legacy();
    let legacy = Simulation::new(legacy_config).expect("valid sim config").run();
    let mut tuned_config = base;
    tuned_config.cohort = cohort;
    tuned_config.check_convergence = true;
    let tuned = Simulation::new(tuned_config).expect("valid sim config").run();

    assert_eq!(legacy.final_master, tuned.final_master, "{label}: master state diverged");
    assert_eq!(legacy.base_commits, tuned.base_commits, "{label}: commit count diverged");
    assert_eq!(legacy.cluster, tuned.cluster, "{label}: cluster stats diverged");
    // Per-mobile saved / backed-out / reprocessed, exactly.
    assert_eq!(legacy.metrics.records, tuned.metrics.records, "{label}: sync records diverged");
    // Everything else: counters (speculative hits/retries included), cost
    // totals, backlog trajectory. Only wall clock and the cohort
    // mechanism counters are normalized away.
    assert_eq!(
        legacy.metrics.normalized(),
        tuned.metrics.normalized(),
        "{label}: metrics diverged"
    );
    let convergence = tuned.convergence.expect("tuned run checked convergence");
    assert!(convergence.holds(), "{label}: convergence oracle failed: {convergence:?}");
    (legacy, tuned)
}

proptest! {
    // Whole-simulation differentials: few, fat cases.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The full tuned pipeline (waves + fast path) is byte-identical to
    /// the legacy pipeline across protocol × strategy × cohort size.
    #[test]
    fn tuned_pipeline_matches_legacy(
        seed in 0u64..10_000,
        strategy_idx in 0usize..3,
        n_mobiles in 2usize..10,
        protocol_merging in proptest::bool::ANY,
        hot_prob in 0.2f64..0.9,
    ) {
        let protocol = if protocol_merging {
            Protocol::merging_default()
        } else {
            Protocol::Reprocessing
        };
        let strategy = STRATEGIES[strategy_idx];
        let base = config(protocol, strategy, n_mobiles, seed, hot_prob);
        let label = format!(
            "{}/{}/x{n_mobiles}/seed {seed}", protocol.name(), strategy.name()
        );
        assert_cohort_identity(base, CohortConfig::tuned(), &label);
    }

    /// Each knob alone holds the same bar: the fast path without waves,
    /// and waves without the fast path.
    #[test]
    fn each_knob_alone_matches_legacy(
        seed in 0u64..10_000,
        strategy_idx in 0usize..3,
        n_mobiles in 2usize..8,
    ) {
        let strategy = STRATEGIES[strategy_idx];
        let base = config(Protocol::merging_default(), strategy, n_mobiles, seed, 0.6);
        let fastpath_only = CohortConfig { max_waves: 0, fastpath: true };
        let waves_only = CohortConfig { max_waves: 3, fastpath: false };
        let label = format!("{}/x{n_mobiles}/seed {seed}", strategy.name());
        assert_cohort_identity(base.clone(), fastpath_only, &format!("{label}/fastpath-only"));
        assert_cohort_identity(base, waves_only, &format!("{label}/waves-only"));
    }

    /// The session path holds the bar too: a tuned session run equals the
    /// legacy session run on the same terms (waves interact with the
    /// resumable handshake only through the speculation map, which is
    /// per-reconnect either way).
    #[test]
    fn tuned_session_path_matches_legacy(
        seed in 0u64..10_000,
        n_mobiles in 2usize..8,
    ) {
        let mut base = config(
            Protocol::merging_default(),
            SyncStrategy::WindowStart { window: 120 },
            n_mobiles,
            seed,
            0.6,
        );
        base.sync_path = SyncPath::Session;
        base.fault = FaultPlan::none();
        let label = format!("session/x{n_mobiles}/seed {seed}");
        assert_cohort_identity(base, CohortConfig::tuned(), &label);
    }
}

/// The mechanisms actually engage in the regime the differentials sweep:
/// a hot synchronized cohort drives wave rounds, and a cold disjoint
/// cohort drives fast-path merges. Guards against the suite silently
/// comparing two runs that both took the legacy path everywhere.
#[test]
fn tuned_mechanisms_engage() {
    // Hot workload: earlier installs invalidate later speculations.
    let hot = config(
        Protocol::merging_default(),
        SyncStrategy::WindowStart { window: 120 },
        8,
        42,
        0.9,
    );
    let (legacy, tuned) = assert_cohort_identity(hot, CohortConfig::tuned(), "engage/hot");
    assert!(
        legacy.metrics.speculative_retries > 0,
        "hot scenario produced no invalidations to wave over"
    );
    assert!(tuned.metrics.cohort.wave_rounds > 0, "no wave ever ran");
    assert!(tuned.metrics.cohort.edge_cache_appends > 0, "edge cache never appended");
    assert_eq!(legacy.metrics.cohort.wave_rounds, 0, "legacy pipeline ran a wave");
    assert_eq!(legacy.metrics.cohort.fastpath_merges, 0, "legacy pipeline took the fast path");

    // Cold workload: wide keyspace, no hotspot — pending histories are
    // usually disjoint from the concurrent base slice.
    let mut cold = config(
        Protocol::merging_default(),
        SyncStrategy::WindowStart { window: 120 },
        6,
        43,
        0.0,
    );
    cold.workload.n_vars = 512;
    cold.workload.hot_fraction = 0.0;
    let (_, tuned) = assert_cohort_identity(cold, CohortConfig::tuned(), "engage/cold");
    assert!(tuned.metrics.cohort.fastpath_merges > 0, "no merge ever took the fast path");
}

/// The fault-matrix row: every fault kind under bounded admission with
/// waves and the fast path on. The convergence oracle must hold for every
/// schedule, exactly as the legacy fault matrix demands. `FAULT_SEEDS`
/// scales the schedules per cell (CI's fault-matrix job runs release with
/// a large matrix).
#[test]
fn seed_matrix_convergence_with_waves() {
    let seeds: u64 = std::env::var("FAULT_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(4);
    const RATES: [f64; 2] = [0.1, 0.25];
    let kinds = [
        FaultKind::MessageLoss,
        FaultKind::MessageDuplication,
        FaultKind::MessageReorder,
        FaultKind::MidMergeDisconnect,
        FaultKind::BaseCrash,
    ];
    let mut schedules = 0usize;
    for kind in kinds {
        for s in 0..seeds {
            let rate = RATES[(s as usize) % RATES.len()];
            let mut cfg = config(
                Protocol::merging_default(),
                SyncStrategy::WindowStart { window: 120 },
                6,
                900 + s,
                0.6,
            );
            cfg.sync_path = SyncPath::Session;
            cfg.fault = FaultPlan::seeded(7000 + s, FaultRates::only(kind, rate));
            cfg.admission = AdmissionConfig::bounded(3);
            cfg.cohort = CohortConfig::tuned();
            cfg.check_convergence = true;
            let report = Simulation::new(cfg).expect("valid sim config").run();
            let convergence = report.convergence.expect("oracle requested");
            assert!(
                convergence.holds(),
                "oracle failed for {kind:?} seed {s} rate {rate}: {convergence:?}"
            );
            schedules += 1;
        }
    }
    assert_eq!(schedules, kinds.len() * seeds as usize);
}
