//! Property-based tests (proptest) over randomly drawn scenarios and
//! oracle queries.

use std::collections::BTreeSet;

use proptest::prelude::*;

use histmerge::core::merge::{MergeConfig, Merger};
use histmerge::core::prune::{undo, PruneMethod};
use histmerge::core::rewrite::{rewrite, FixMode, RewriteAlgorithm};
use histmerge::history::backout::affected_weight;
use histmerge::history::readsfrom::affected_set;
use histmerge::history::{
    AugmentedHistory, BackoutStrategy, ExactMinimum, GreedyScc, PrecedenceGraph, SerialHistory,
    TwoCycleOptimal, TxnArena,
};
use histmerge::semantics::{satisfies_property1, RandomizedTester, SemanticOracle, StaticAnalyzer};
use histmerge::txn::{TxnKind, VarSet};
use histmerge::workload::generator::{generate, ScenarioParams};

fn arb_params() -> impl Strategy<Value = ScenarioParams> {
    (
        0u64..5000,  // seed
        4u32..40,    // n_vars
        2usize..14,  // n_tentative
        0usize..10,  // n_base
        0.0f64..1.0, // commutative fraction
        0.0f64..0.5, // guarded fraction
        0.0f64..0.4, // read-only fraction
        0.1f64..0.9, // hot prob
    )
        .prop_map(|(seed, n_vars, n_tentative, n_base, cf, gf, rof, hot_prob)| {
            ScenarioParams {
                n_vars,
                n_tentative,
                n_base,
                commutative_fraction: cf,
                guarded_fraction: gf * (1.0 - cf),
                read_only_fraction: rof * (1.0 - cf) * 0.5,
                hot_fraction: 0.2,
                hot_prob,
                reads_per_txn: 2,
                writes_per_txn: 2,
                seed,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full merge pipeline upholds its central invariant on arbitrary
    /// workloads: the new master state equals replaying the merged
    /// serial history from the shared initial state.
    #[test]
    fn merge_master_state_matches_merged_history(params in arb_params()) {
        let sc = generate(&params);
        let merger = Merger::new(MergeConfig::default());
        let outcome = merger.merge(&sc.arena, &sc.hm, &sc.hb, &sc.s0).unwrap();
        let merged = outcome.merged_history.clone().expect("acyclic after back-out");
        let replay = AugmentedHistory::execute(&sc.arena, &merged, &sc.s0).unwrap();
        // Every item a saved transaction wrote (and every base-written
        // item) must agree; padding items equal s0 in both.
        prop_assert_eq!(replay.final_state(), &outcome.new_master);
    }

    /// Undo pruning equals repaired-prefix re-execution for every
    /// algorithm and back-out strategy.
    #[test]
    fn undo_pruning_is_correct_everywhere(params in arb_params()) {
        let sc = generate(&params);
        let graph = PrecedenceGraph::build(&sc.arena, &sc.hm, &sc.hb);
        let weight = affected_weight(&sc.arena, &sc.hm);
        let bad = TwoCycleOptimal::new().compute(&graph, &weight).unwrap();
        let aug = AugmentedHistory::execute(&sc.arena, &sc.hm, &sc.s0).unwrap();
        let ag = affected_set(&sc.arena, &sc.hm, &bad);
        let oracle = StaticAnalyzer::new();
        for alg in [
            RewriteAlgorithm::CanFollow,
            RewriteAlgorithm::CanFollowCanPrecede,
            RewriteAlgorithm::ReadsFromClosure,
        ] {
            let rw = rewrite(&sc.arena, &aug, &bad, alg, FixMode::Lemma2, &oracle);
            let pruned = undo(&sc.arena, &aug, &rw, &ag).unwrap();
            let reexec =
                AugmentedHistory::execute(&sc.arena, &rw.repaired_history(), &sc.s0).unwrap();
            prop_assert_eq!(&pruned, reexec.final_state(), "{}", alg.name());
        }
    }

    /// Every static-analyzer "yes" is confirmed by differential execution
    /// (soundness of the conservative oracle), and every "yes" satisfies
    /// Property 1.
    #[test]
    fn static_analyzer_verdicts_are_sound(params in arb_params()) {
        let sc = generate(&params);
        let analyzer = StaticAnalyzer::new();
        let tester = RandomizedTester::with_config(48, 2000, params.seed ^ 0xABCD);
        let txns: Vec<_> = sc.arena.iter().collect();
        for (i, t1) in txns.iter().enumerate().take(6) {
            for t2 in txns.iter().skip(i).take(6) {
                if analyzer.commutes_backward_through(t2, t1) {
                    prop_assert!(
                        tester.commutes_backward_through(t2, t1),
                        "differential execution refuted {} cbt {}",
                        t2.name(),
                        t1.name()
                    );
                    prop_assert!(satisfies_property1(t2, t1, &VarSet::new()));
                }
                // A fix over the stayer's pure reads.
                let fix: VarSet = t1.read_only_set();
                if analyzer.can_precede(t2, t1, &fix) {
                    prop_assert!(
                        tester.can_precede(t2, t1, &fix),
                        "differential execution refuted can-precede {} < {}",
                        t2.name(),
                        t1.name()
                    );
                    prop_assert!(satisfies_property1(t2, t1, &fix));
                }
            }
        }
    }

    /// All back-out strategies produce valid (acyclicity-restoring,
    /// tentative-only) sets, and the exact strategy is minimal in count
    /// under unit weights.
    #[test]
    fn backout_strategies_are_valid(params in arb_params()) {
        let sc = generate(&params);
        let graph = PrecedenceGraph::build(&sc.arena, &sc.hm, &sc.hb);
        let unit = |_t| 1u64;
        let strategies: Vec<Box<dyn BackoutStrategy>> = vec![
            Box::new(ExactMinimum::new()),
            Box::new(TwoCycleOptimal::new()),
            Box::new(GreedyScc::new()),
        ];
        let mut sizes = Vec::new();
        for s in &strategies {
            let b = s.compute(&graph, &unit).unwrap();
            prop_assert!(graph.is_acyclic_without(&b), "{} left a cycle", s.name());
            for id in &b {
                prop_assert_eq!(sc.arena.get(*id).kind(), TxnKind::Tentative);
            }
            sizes.push(b.len());
        }
        // Exact (index 0) is no larger than any heuristic.
        prop_assert!(sizes[0] <= sizes[1]);
        prop_assert!(sizes[0] <= sizes[2]);
    }

    /// The interpreter is total over arbitrary fixes: pinning ANY subset of
    /// a transaction's read set to ANY values never fails, and the after
    /// state covers the same items.
    #[test]
    fn interpreter_total_under_arbitrary_fixes(
        params in arb_params(),
        pin_value in -10_000i64..10_000,
    ) {
        use histmerge::txn::Fix;
        let sc = generate(&params);
        for txn in sc.arena.iter().take(8) {
            // Pin every pure read to the arbitrary value.
            let fix: Fix = txn.read_only_set().iter().map(|v| (v, pin_value)).collect();
            let out = txn.execute(&sc.s0, &fix).unwrap();
            prop_assert_eq!(out.after.vars(), sc.s0.vars());
            // Pinned items must be observed at the pinned value if read.
            for var in fix.vars().iter() {
                if let Some(seen) = out.read_value(var) {
                    prop_assert_eq!(seen, pin_value);
                }
            }
        }
    }

    /// Lowering a serial history to the operation level and re-serializing
    /// recovers an equivalent serial order (the explicit `H^s` extraction
    /// the rewriting model assumes), and the transaction log extracted
    /// from the augmented history faithfully records reads and before
    /// images.
    #[test]
    fn interleaved_and_log_roundtrip(params in arb_params()) {
        use histmerge::history::interleaved::{ops_of_transaction, InterleavedSchedule};
        use histmerge::history::log::TxnLog;
        let sc = generate(&params);
        // Serial lowering: one transaction's ops at a time.
        let mut sched = InterleavedSchedule::new();
        for id in sc.hm.iter() {
            for op in ops_of_transaction(sc.arena.get(id)) {
                sched.push(op);
            }
        }
        let serial = sched.serial_order().expect("serial lowering is serializable");
        // The recovered order is conflict-equivalent to the original:
        // replaying it yields the same final state.
        let orig = AugmentedHistory::execute(&sc.arena, &sc.hm, &sc.s0).unwrap();
        let re = AugmentedHistory::execute(&sc.arena, &serial, &sc.s0).unwrap();
        prop_assert!(re.final_state_equivalent(&orig));

        // Log round-trip.
        let log = TxnLog::from_augmented(&orig);
        let logged = log.serial_history();
        prop_assert_eq!(logged.order(), sc.hm.order());
        for (i, id) in sc.hm.iter().enumerate() {
            let txn = sc.arena.get(id);
            for var in txn.writeset().iter() {
                prop_assert_eq!(
                    log.before_image(id, var),
                    Some(orig.before_state(i).get(var))
                );
            }
        }
        prop_assert!(log.encoded_size() > 0 || sc.hm.is_empty());
    }

    /// The compensation path agrees with undo wherever inverses exist —
    /// exercised through the banking library (all-deposit workloads).
    #[test]
    fn compensation_agrees_with_undo_on_deposits(
        seed in 0u64..2000,
        n in 2usize..10,
        accounts in 1u32..4,
    ) {
        use histmerge::workload::canned::Bank;
        use rand::{Rng, SeedableRng};
        let bank = Bank::new();
        let mut arena = TxnArena::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let hm: SerialHistory = (0..n)
            .map(|i| {
                let acct = histmerge::txn::VarId::new(rng.gen_range(0..accounts));
                let amt = rng.gen_range(1..100);
                arena.alloc(|id| bank.deposit(id, &format!("d{i}"), acct, amt))
            })
            .collect();
        let s0 = histmerge::txn::DbState::uniform(accounts, 100);
        let aug = AugmentedHistory::execute(&arena, &hm, &s0).unwrap();
        // Arbitrarily mark the first transaction bad.
        let bad: BTreeSet<_> = hm.iter().take(1).collect();
        let ag = affected_set(&arena, &hm, &bad);
        let oracle = StaticAnalyzer::new();
        let rw = rewrite(&arena, &aug, &bad, RewriteAlgorithm::CanFollowCanPrecede,
                         FixMode::Lemma1, &oracle);
        let by_undo = undo(&arena, &aug, &rw, &ag).unwrap();
        let by_comp = histmerge::core::prune::compensate(&arena, &aug, &rw).unwrap();
        prop_assert_eq!(&by_undo, &by_comp);
        let _ = PruneMethod::Compensate.name();
    }
}
