//! Two mobiles merging into the same window, one after the other —
//! Section 2.2's Strategy 2 invariant exercised directly (no simulator).
//!
//! Both tentative histories take the window-start state as their original
//! state. Mobile A merges first; its installed updates and re-executed
//! back-outs extend the base history. Mobile B then merges against the
//! extended `H_b` — and must still find it mergeable, because `H_b` still
//! begins at the shared window-start state.

use histmerge::core::merge::{MergeConfig, Merger};
use histmerge::history::{AugmentedHistory, SerialHistory, TxnArena};
use histmerge::replication::BaseNode;
use histmerge::txn::{DbState, TxnKind, VarId};
use histmerge::workload::canned::Bank;

fn v(i: u32) -> VarId {
    VarId::new(i)
}

/// Deposits for mobile `m`, re-tagged tentative.
fn deposits(
    bank: &Bank,
    arena: &mut TxnArena,
    prefix: &str,
    accounts: &[u32],
    amount: i64,
) -> SerialHistory {
    accounts
        .iter()
        .map(|acct| {
            arena.alloc(|id| bank.deposit(id, &format!("{prefix}-{acct}"), v(*acct), amount))
        })
        .collect()
}

#[test]
fn sequential_merges_share_the_window_state() {
    let bank = Bank::new();
    let mut arena = TxnArena::new();
    let s0 = DbState::uniform(6, 100);
    let mut base = BaseNode::new(s0.clone());

    // Base activity within the window: a deposit on account 0.
    let b1 = arena
        .alloc(|id| bank.deposit(id, "base-dep", v(0), 10).with_kind(TxnKind::Base).with_id(id));
    base.commit(&arena, b1);

    // Mobile A worked on accounts 0 and 1 from the window-start state.
    let hm_a = deposits(&bank, &mut arena, "A", &[0, 1], 5);
    // Mobile B worked on accounts 0 and 2, also from the window-start state.
    let hm_b = deposits(&bank, &mut arena, "B", &[0, 2], 7);

    let merger = Merger::new(MergeConfig::default());

    // Merge A against H_b = [base-dep].
    let out_a = merger.merge(&arena, &hm_a, &base.epoch_history(), base.epoch_state()).unwrap();
    // A's account-0 deposit forms a 2-cycle with the base deposit and is
    // backed out (members of B are never rescued by semantics — only
    // AFFECTED transactions are); the account-1 deposit is saved.
    assert_eq!(out_a.saved.len(), 1);
    assert_eq!(out_a.backed_out.len(), 1);
    let _ = base.install_updates(&mut arena, &out_a.forwarded);
    for id in &out_a.backed_out {
        base.reexecute(&mut arena, *id);
    }
    assert_eq!(base.master().get(v(0)), 115); // 100 + 10 + 5
    assert_eq!(base.master().get(v(1)), 105);

    // Merge B against the EXTENDED H_b = [base-dep, install].
    let out_b = merger.merge(&arena, &hm_b, &base.epoch_history(), base.epoch_state()).unwrap();
    let _ = base.install_updates(&mut arena, &out_b.forwarded);
    for id in &out_b.backed_out {
        base.reexecute(&mut arena, *id);
    }

    // All of B's work lands too (account 0 contention resolved by
    // commutativity or re-execution, never lost).
    assert_eq!(base.master().get(v(0)), 122); // 100 + 10 + 5 + 7
    assert_eq!(base.master().get(v(2)), 107);
    assert_eq!(base.master().get(v(1)), 105); // A's work untouched by B's merge

    // The final master replays deterministically from the window state
    // through the full committed history.
    let replay = AugmentedHistory::execute(&arena, &base.epoch_history(), &s0).unwrap();
    assert_eq!(replay.final_state(), base.master());
}

#[test]
fn second_merge_sees_firsts_install_as_conflict_when_not_commuting() {
    // Same shape, but with withdrawals: mobile B's guarded withdrawal on
    // account 0 conflicts with A's installed update and is backed out, then
    // re-executed on the merged master.
    let bank = Bank::new();
    let mut arena = TxnArena::new();
    let s0 = DbState::uniform(4, 100);
    let mut base = BaseNode::new(s0.clone());

    let hm_a = deposits(&bank, &mut arena, "A", &[0], 50);
    let wd = arena.alloc(|id| bank.withdraw(id, "B-wd", v(0), 120));
    let hm_b = SerialHistory::from_order([wd]);

    let merger = Merger::new(MergeConfig::default());
    let out_a = merger.merge(&arena, &hm_a, &base.epoch_history(), base.epoch_state()).unwrap();
    let _ = base.install_updates(&mut arena, &out_a.forwarded);
    assert_eq!(base.master().get(v(0)), 150);

    let out_b = merger.merge(&arena, &hm_b, &base.epoch_history(), base.epoch_state()).unwrap();
    // B's withdrawal ran tentatively against the window state (balance
    // 100 < 120: its guard skipped). Against the merged base it conflicts
    // with the install and is backed out...
    assert_eq!(out_b.backed_out, vec![wd]);
    // ... and its re-execution now CLEARS (150 >= 120): the user learns the
    // withdrawal went through after all.
    assert_eq!(out_b.reexecuted, vec![(wd, true)]);
    for id in &out_b.backed_out {
        base.reexecute(&mut arena, *id);
    }
    assert_eq!(base.master().get(v(0)), 30); // 150 - 120
}
