//! The parallel merge pipeline's determinism contract: a simulation run
//! with a worker pool is byte-identical to the serial run — same final
//! master, same save counts, same per-sync records — across seeds and
//! both Strategy-2 variants. Parallelism may only change wall-clock time.

use histmerge::replication::metrics::SyncRecord;
use histmerge::replication::{Parallelism, Protocol, SimConfig, Simulation, SyncStrategy};
use histmerge::workload::generator::ScenarioParams;

fn config(strategy: SyncStrategy, seed: u64, parallelism: Parallelism) -> SimConfig {
    SimConfig {
        n_mobiles: 5,
        duration: 500,
        base_rate: 0.3,
        mobile_rate: 0.25,
        connect_every: 40,
        protocol: Protocol::merging_default(),
        strategy,
        parallelism,
        // All mobiles reconnect in the same tick, so every sync goes
        // through the batched (speculative) path.
        synchronized_reconnects: true,
        workload: ScenarioParams {
            n_vars: 64,
            commutative_fraction: 0.5,
            guarded_fraction: 0.15,
            read_only_fraction: 0.1,
            hot_fraction: 0.1,
            hot_prob: 0.35,
            seed,
            ..ScenarioParams::default()
        },
        ..SimConfig::default()
    }
}

fn record_key(r: &SyncRecord) -> (u64, usize, usize, usize, usize, usize, usize, bool) {
    (r.tick, r.mobile, r.pending, r.hb_len, r.saved, r.backed_out, r.reprocessed, r.merge_failed)
}

#[test]
fn parallel_runs_match_serial_across_seeds_and_strategies() {
    let strategies =
        [SyncStrategy::WindowStart { window: 200 }, SyncStrategy::AdaptiveWindow { max_hb: 60 }];
    let mut speculative_hits = 0;
    for strategy in strategies {
        for seed in [11u64, 12, 13] {
            // Threads(4), not Auto: Auto degrades to serial on a 1-CPU
            // host and would test nothing.
            let serial = Simulation::new(config(strategy, seed, Parallelism::Serial))
                .expect("valid sim config")
                .run();
            let parallel = Simulation::new(config(strategy, seed, Parallelism::Threads(4)))
                .expect("valid sim config")
                .run();

            assert_eq!(
                serial.final_master, parallel.final_master,
                "final master diverged: {strategy:?} seed {seed}"
            );
            assert_eq!(
                serial.metrics.saved, parallel.metrics.saved,
                "saved diverged: {strategy:?} seed {seed}"
            );
            assert_eq!(
                serial.metrics.records.iter().map(record_key).collect::<Vec<_>>(),
                parallel.metrics.records.iter().map(record_key).collect::<Vec<_>>(),
                "sync records diverged: {strategy:?} seed {seed}"
            );
            assert_eq!(serial.metrics.speculative_hits, 0);
            speculative_hits += parallel.metrics.speculative_hits;
        }
    }
    // The parallel runs must actually have exercised the speculative
    // install path somewhere, or the comparison above proved nothing.
    assert!(speculative_hits > 0, "no batch was ever merged speculatively");
}
