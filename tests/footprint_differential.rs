//! Differential tests of the hot-path data layout: the interned footprint
//! bitsets, the closure table, and copy-on-write history execution must
//! give byte-identical answers to the slow, obviously-correct set-based
//! formulations they replaced. Every reference implementation here is
//! written against `VarSet`/`BTreeMap` primitives only, so a bug in the
//! word-wise layout cannot hide in a shared helper.

use std::collections::BTreeSet;

use proptest::prelude::*;

use histmerge::history::readsfrom::affected_set;
use histmerge::history::{run_to_final, AugmentedHistory, ClosureTable, SerialHistory, TxnArena};
use histmerge::txn::{DbState, Fix, TxnId, VarId, VarMask};
use histmerge::workload::generator::{generate, ScenarioParams};

fn arb_params() -> impl Strategy<Value = ScenarioParams> {
    (
        0u64..5000,  // seed
        4u32..48,    // n_vars
        2usize..16,  // n_tentative
        0usize..10,  // n_base
        0.0f64..1.0, // commutative fraction
        0.0f64..0.5, // guarded fraction
        0.0f64..0.4, // read-only fraction
        0.1f64..0.9, // hot prob
    )
        .prop_map(|(seed, n_vars, n_tentative, n_base, cf, gf, rof, hot_prob)| {
            ScenarioParams {
                n_vars,
                n_tentative,
                n_base,
                commutative_fraction: cf,
                guarded_fraction: gf * (1.0 - cf),
                read_only_fraction: rof * (1.0 - cf) * 0.5,
                hot_fraction: 0.2,
                hot_prob,
                reads_per_txn: 2,
                writes_per_txn: 2,
                seed,
            }
        })
}

/// Every transaction id in a scenario, in history order.
fn all_ids(hm: &SerialHistory, hb: &SerialHistory) -> Vec<TxnId> {
    hm.iter().chain(hb.iter()).collect()
}

/// The affected set computed the slow way: a forward scan over a
/// per-variable taint set, `VarSet` membership tests only.
fn reference_affected(
    arena: &TxnArena,
    hm: &SerialHistory,
    bad: &BTreeSet<TxnId>,
) -> BTreeSet<TxnId> {
    let mut tainted: BTreeSet<VarId> = BTreeSet::new();
    let mut affected = BTreeSet::new();
    for id in hm.iter() {
        let txn = arena.get(id);
        let is_bad = bad.contains(&id);
        let reads_tainted = !is_bad && txn.readset().iter().any(|v| tainted.contains(&v));
        if reads_tainted {
            affected.insert(id);
        }
        let taints = is_bad || reads_tainted;
        for v in txn.writeset().iter() {
            if taints {
                tainted.insert(v);
            } else {
                tainted.remove(&v);
            }
        }
    }
    affected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Admission-time bitsets answer every pairwise conflict question
    /// exactly as the `VarSet` intersections they interned.
    #[test]
    fn bitset_conflicts_match_varset_answers(params in arb_params()) {
        let sc = generate(&params);
        let ids = all_ids(&sc.hm, &sc.hb);
        for &a in &ids {
            for &b in &ids {
                let (ta, tb) = (sc.arena.get(a), sc.arena.get(b));
                let set_conflict = ta.readset().intersects(tb.writeset())
                    || ta.writeset().intersects(tb.readset())
                    || ta.writeset().intersects(tb.writeset());
                prop_assert_eq!(sc.arena.conflicts(a, b), set_conflict, "{a:?} vs {b:?}");
                prop_assert_eq!(
                    sc.arena.reads_overlap_writes(a, b),
                    ta.readset().intersects(tb.writeset()),
                    "{a:?} reads vs {b:?} writes"
                );
            }
        }
    }

    /// Program footprint masks agree with the originating `VarSet`s on
    /// membership and pairwise overlap.
    #[test]
    fn footprint_masks_match_varsets(params in arb_params()) {
        let sc = generate(&params);
        let ids = all_ids(&sc.hm, &sc.hb);
        for &a in &ids {
            let ta = sc.arena.get(a);
            prop_assert_eq!(ta.read_mask(), &VarMask::from_set(ta.readset()));
            prop_assert_eq!(ta.write_mask(), &VarMask::from_set(ta.writeset()));
            for &b in &ids {
                let tb = sc.arena.get(b);
                prop_assert_eq!(
                    ta.write_mask().intersects(tb.read_mask()),
                    ta.writeset().intersects(tb.readset())
                );
                prop_assert_eq!(
                    ta.write_mask().intersects(tb.write_mask()),
                    ta.writeset().intersects(tb.writeset())
                );
            }
        }
    }

    /// The closure table's weights and affected sets equal the reference
    /// forward scan — per singleton, and for composite back-out sets.
    #[test]
    fn closure_table_matches_reference_scan(params in arb_params()) {
        let sc = generate(&params);
        let table = ClosureTable::build(&sc.arena, &sc.hm);
        let weights = table.weights();
        let order: Vec<TxnId> = sc.hm.iter().collect();
        for &id in &order {
            let singleton: BTreeSet<TxnId> = [id].into_iter().collect();
            let expect = reference_affected(&sc.arena, &sc.hm, &singleton);
            prop_assert_eq!(
                weights.get(&id).copied().unwrap_or(1),
                1 + expect.len() as u64,
                "weight of {id:?}"
            );
            prop_assert_eq!(&table.affected_of(&singleton), &expect, "AG({id:?})");
            prop_assert_eq!(&affected_set(&sc.arena, &sc.hm, &singleton), &expect);
        }
        // Composite sets: every third transaction, and the full history.
        let every_third: BTreeSet<TxnId> = order.iter().step_by(3).copied().collect();
        let everything: BTreeSet<TxnId> = order.iter().copied().collect();
        for bad in [every_third, everything] {
            let expect = reference_affected(&sc.arena, &sc.hm, &bad);
            prop_assert_eq!(&table.affected_of(&bad), &expect);
            prop_assert_eq!(&affected_set(&sc.arena, &sc.hm, &bad), &expect);
        }
    }

    /// Copy-on-write history execution matches a clone-per-step replay
    /// state-for-state: every intermediate state, every final state, and
    /// the log-free `run_to_final` fast path.
    #[test]
    fn cow_execution_matches_clone_execution(params in arb_params()) {
        let sc = generate(&params);
        for history in [&sc.hm, &sc.hb] {
            let aug = AugmentedHistory::execute(&sc.arena, history, &sc.s0).unwrap();
            // The reference replay: clone the full state at every step.
            let mut state: DbState = sc.s0.clone();
            for (i, id) in history.iter().enumerate() {
                prop_assert_eq!(&aug.before_state(i), &state, "state before step {i}");
                let out = sc.arena.get(id).execute(&state, &Fix::empty()).unwrap();
                state = out.after;
                prop_assert_eq!(&aug.after_state(i), &state, "state after step {i}");
            }
            prop_assert_eq!(aug.final_state(), &state);
            prop_assert_eq!(&run_to_final(&sc.arena, history, &sc.s0).unwrap(), &state);
        }
    }
}
