//! Property-based tests of the structured connectivity layer
//! (`replication::connectivity`) and the storm-safe admission control it
//! feeds.
//!
//! Four families:
//!
//! 1. link traces are pure functions of `(model, seed, mobile, tick)` —
//!    re-instantiating a model replays the identical trace, and `next_up`
//!    really is the *next* up-tick (nothing up is skipped in between);
//! 2. `AlwaysOn` (and unbounded admission) is the identity at the
//!    simulation level: explicit defaults reproduce the implicit-default
//!    run byte-for-byte, for arbitrary workload seeds;
//! 3. under any outage storm, admission control keeps every merge cohort
//!    within its bound;
//! 4. the deferred queue always drains: every shed reconnect is
//!    eventually admitted (`shed == deferred_drained`) when the storm
//!    ends inside the horizon.

use proptest::prelude::*;

use histmerge::replication::{
    AdmissionConfig, ConnectivityModel, LinkTrace, Protocol, SimConfig, Simulation, SyncPath,
    SyncStrategy,
};
use histmerge::workload::generator::ScenarioParams;

fn config(workload_seed: u64) -> SimConfig {
    SimConfig {
        n_mobiles: 3,
        duration: 240,
        base_rate: 0.25,
        mobile_rate: 0.2,
        connect_every: 40,
        protocol: Protocol::merging_default(),
        strategy: SyncStrategy::WindowStart { window: 120 },
        workload: ScenarioParams {
            n_vars: 48,
            commutative_fraction: 0.5,
            guarded_fraction: 0.15,
            read_only_fraction: 0.1,
            hot_fraction: 0.1,
            hot_prob: 0.4,
            seed: workload_seed,
            ..ScenarioParams::default()
        },
        base_capacity: 120.0,
        sync_path: SyncPath::Session,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Re-instantiating a model from the same parameters replays the
    /// byte-identical trace — the phases are derived by hashing, never by
    /// drawing from shared RNG state.
    #[test]
    fn traces_are_deterministic_under_seed_reuse(
        seed in 0u64..10_000,
        period in 1u64..64,
        on_frac in 1u64..=64,
        mobile in 0usize..512,
        tick in 0u64..100_000,
    ) {
        let on_ticks = (on_frac % period).max(1);
        let a = ConnectivityModel::DutyCycle { period, on_ticks, seed };
        let b = ConnectivityModel::DutyCycle { period, on_ticks, seed };
        prop_assert_eq!(a.link_up(mobile, tick), b.link_up(mobile, tick));
        prop_assert_eq!(a.next_up(mobile, tick), b.next_up(mobile, tick));
        prop_assert_eq!(a.fault_scale(mobile, tick), b.fault_scale(mobile, tick));
        let h = ConnectivityModel::CellHandoff {
            interval: period.max(2),
            handoff_ticks: on_ticks.min(period.max(2)),
            fault_boost: 2.5,
            seed,
        };
        let h2 = h;
        prop_assert_eq!(h.fault_scale(mobile, tick), h2.fault_scale(mobile, tick));
    }

    /// `next_up` lands on an up-tick, never moves backwards, and skips
    /// nothing: every tick strictly between `from` and the answer is down.
    #[test]
    fn next_up_is_the_earliest_up_tick(
        seed in 0u64..10_000,
        period in 1u64..48,
        on_frac in 1u64..=48,
        mobile in 0usize..64,
        from in 0u64..10_000,
    ) {
        let on_ticks = (on_frac % period).max(1);
        let model = ConnectivityModel::DutyCycle { period, on_ticks, seed };
        let up = model.next_up(mobile, from);
        prop_assert!(up >= from);
        prop_assert!(up - from < period, "next_up overshot a full period");
        prop_assert!(model.link_up(mobile, up), "next_up landed on a down tick");
        for t in from..up {
            prop_assert!(!model.link_up(mobile, t), "next_up skipped up tick {t}");
        }
    }

    /// The outage window is exact and fleet-wide, and the fault boost is
    /// confined to the post-outage surge.
    #[test]
    fn outage_storm_window_is_exact(
        start in 0u64..5_000,
        outage in 1u64..200,
        surge in 1u64..200,
        mobile in 0usize..64,
        probe in 0u64..6_000,
    ) {
        let model = ConnectivityModel::OutageStorm {
            start,
            outage_ticks: outage,
            surge_ticks: surge,
            fault_boost: 3.0,
        };
        let down = probe >= start && probe < start + outage;
        prop_assert_eq!(model.link_up(mobile, probe), !down);
        if down {
            prop_assert_eq!(model.next_up(mobile, probe), start + outage);
        } else {
            prop_assert_eq!(model.next_up(mobile, probe), probe);
        }
        let surging = probe >= start + outage && probe < start + outage + surge;
        prop_assert_eq!(model.fault_scale(mobile, probe), if surging { 3.0 } else { 1.0 });
    }
}

proptest! {
    // Simulation-level properties run fewer, fatter cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Spelling out the defaults (`AlwaysOn`, unbounded admission) is the
    /// identity for any workload seed: the connectivity layer adjusts
    /// schedules after the legacy cadence draws and never touches RNG
    /// state.
    #[test]
    fn explicit_always_on_reproduces_the_default_run(seed in 0u64..10_000) {
        let implicit = Simulation::new(config(seed)).expect("valid sim config").run();
        let mut explicit_cfg = config(seed);
        explicit_cfg.connectivity = ConnectivityModel::AlwaysOn;
        explicit_cfg.admission = AdmissionConfig::unbounded();
        let explicit = Simulation::new(explicit_cfg).expect("valid sim config").run();
        prop_assert_eq!(&implicit.final_master, &explicit.final_master);
        prop_assert_eq!(implicit.base_commits, explicit.base_commits);
        prop_assert_eq!(implicit.metrics.normalized(), explicit.metrics.normalized());
    }

    /// Whatever the storm geometry, no merge cohort ever exceeds the
    /// admission bound, and every shed reconnect is eventually admitted
    /// (the deferred queue drains to empty once the storm passes).
    #[test]
    fn storm_reconnects_respect_the_admission_bound(
        seed in 0u64..10_000,
        cap in 1usize..=3,
        start in 40u64..100,
        outage in 8u64..40,
    ) {
        let mut cfg = config(seed);
        cfg.synchronized_reconnects = true; // worst case: whole-fleet cohorts
        cfg.connectivity = ConnectivityModel::OutageStorm {
            start,
            outage_ticks: outage,
            surge_ticks: 10,
            fault_boost: 1.0,
        };
        cfg.admission = AdmissionConfig::bounded(cap);
        cfg.check_convergence = true;
        let report = Simulation::new(cfg).expect("valid sim config").run();
        prop_assert!(
            report.metrics.batch_sizes.iter().all(|&b| b <= cap),
            "cohort exceeded the admission bound {cap}: {:?}",
            report.metrics.batch_sizes
        );
        let storm = report.metrics.storm;
        // The storm ends by tick 140 and the horizon is 240: everything
        // shed must have been re-admitted.
        prop_assert_eq!(storm.shed, storm.deferred_drained, "deferred queue left residue");
        prop_assert_eq!(report.metrics.defer_waits.len() as u64, storm.deferred_drained);
        prop_assert!(report.convergence.expect("oracle requested").holds());
    }
}
