//! Theorem-level invariants checked over a sweep of generated scenarios.
//!
//! For every seeded random scenario (no blind writes — the paper's
//! rewriting-model assumption) and every back-out set computed by the
//! two-cycle strategy, we verify:
//!
//! * **Theorem 2** — Algorithm 1's (and 2's) rewritten history is
//!   final-state equivalent to the original; the repaired prefix carries
//!   empty fixes and preserves relative orders.
//! * **Theorem 3** — Algorithm 1 saves exactly the same set as the
//!   reads-from transitive-closure back-out, in the same order.
//! * **Theorem 4** — CBTR's saved set is a subset of Algorithm 2's (with
//!   the Property-1-respecting static analyzer).
//! * **Theorem 5 / Lemma 4** — undo pruning and compensation both produce
//!   the state of re-executing the repaired prefix.

use std::collections::BTreeSet;

use histmerge::core::prune::undo;
use histmerge::core::rewrite::{rewrite, FixMode, RewriteAlgorithm};
use histmerge::history::backout::affected_weight;
use histmerge::history::readsfrom::affected_set;
use histmerge::history::{AugmentedHistory, BackoutStrategy, PrecedenceGraph, TwoCycleOptimal};
use histmerge::semantics::StaticAnalyzer;
use histmerge::txn::TxnId;
use histmerge::workload::generator::{generate, Scenario, ScenarioParams};

/// Sweeps seeds × contention levels, returning scenarios together with a
/// computed back-out set (skipping conflict-free draws).
fn scenarios() -> Vec<(Scenario, BTreeSet<TxnId>)> {
    let mut out = Vec::new();
    for seed in 0..12u64 {
        for hot_prob in [0.3, 0.7] {
            let params = ScenarioParams {
                n_vars: 24,
                n_tentative: 12,
                n_base: 8,
                hot_fraction: 0.15,
                hot_prob,
                commutative_fraction: 0.4,
                guarded_fraction: 0.2,
                read_only_fraction: 0.1,
                seed,
                ..ScenarioParams::default()
            };
            let sc = generate(&params);
            let graph = PrecedenceGraph::build(&sc.arena, &sc.hm, &sc.hb);
            let weight = affected_weight(&sc.arena, &sc.hm);
            let bad = TwoCycleOptimal::new().compute(&graph, &weight).unwrap();
            if !bad.is_empty() {
                out.push((sc, bad));
            }
        }
    }
    assert!(out.len() >= 10, "not enough conflicting scenarios generated: {}", out.len());
    out
}

fn augmented(sc: &Scenario) -> AugmentedHistory {
    AugmentedHistory::execute(&sc.arena, &sc.hm, &sc.s0).unwrap()
}

#[test]
fn theorem2_final_state_equivalence_and_prefix_shape() {
    let oracle = StaticAnalyzer::new();
    for (sc, bad) in scenarios() {
        let aug = augmented(&sc);
        for (alg, fix_mode) in [
            (RewriteAlgorithm::CanFollow, FixMode::Lemma1),
            (RewriteAlgorithm::CanFollow, FixMode::Lemma2),
            (RewriteAlgorithm::CanFollowCanPrecede, FixMode::Lemma1),
            (RewriteAlgorithm::CanFollowCanPrecede, FixMode::Lemma2),
            (RewriteAlgorithm::CommutesBackward, FixMode::Lemma1),
        ] {
            let rw = rewrite(&sc.arena, &aug, &bad, alg, fix_mode, &oracle);
            // (4) Final-state equivalence of the full rewritten history.
            let replay =
                AugmentedHistory::execute_with_fixes(&sc.arena, rw.entries(), &sc.s0).unwrap();
            assert!(
                replay.final_state_equivalent(&aug),
                "{} {:?} broke final-state equivalence",
                alg.name(),
                fix_mode,
            );
            // (3) Prefix fixes are empty.
            assert!(rw.prefix().iter().all(|(_, f)| f.is_empty()), "{}", alg.name());
            // (1) The prefix contains no bad transactions.
            assert!(rw.saved().iter().all(|t| !bad.contains(t)));
            // (2) Relative orders preserved.
            let pos = |id: TxnId| sc.hm.position(id).unwrap();
            assert!(rw.saved().windows(2).all(|w| pos(w[0]) < pos(w[1])));
            assert!(rw.pruned().windows(2).all(|w| pos(w[0]) < pos(w[1])));
        }
    }
}

#[test]
fn theorem3_algorithm1_equals_rftc() {
    let oracle = StaticAnalyzer::new();
    for (sc, bad) in scenarios() {
        let aug = augmented(&sc);
        let alg1 =
            rewrite(&sc.arena, &aug, &bad, RewriteAlgorithm::CanFollow, FixMode::Lemma1, &oracle);
        let rftc = rewrite(
            &sc.arena,
            &aug,
            &bad,
            RewriteAlgorithm::ReadsFromClosure,
            FixMode::Lemma1,
            &oracle,
        );
        assert_eq!(alg1.saved(), rftc.saved(), "Theorem 3 violated (seed scenario)");
        // Also: the saved set is exactly G − AG.
        let ag = affected_set(&sc.arena, &sc.hm, &bad);
        let expected: Vec<TxnId> =
            sc.hm.iter().filter(|t| !bad.contains(t) && !ag.contains(t)).collect();
        assert_eq!(alg1.saved(), expected);
    }
}

#[test]
fn theorem4_cbtr_subset_of_algorithm2() {
    let oracle = StaticAnalyzer::new();
    let mut strict = 0usize;
    for (sc, bad) in scenarios() {
        let aug = augmented(&sc);
        let cbtr = rewrite(
            &sc.arena,
            &aug,
            &bad,
            RewriteAlgorithm::CommutesBackward,
            FixMode::Lemma1,
            &oracle,
        );
        let fpr = rewrite(
            &sc.arena,
            &aug,
            &bad,
            RewriteAlgorithm::CanFollowCanPrecede,
            FixMode::Lemma1,
            &oracle,
        );
        let cbtr_saved: BTreeSet<TxnId> = cbtr.saved().into_iter().collect();
        let fpr_saved: BTreeSet<TxnId> = fpr.saved().into_iter().collect();
        assert!(cbtr_saved.is_subset(&fpr_saved), "Theorem 4 violated: CBTR ⊄ FPR");
        if cbtr_saved.len() < fpr_saved.len() {
            strict += 1;
        }
        // Algorithm 2 also dominates Algorithm 1 by construction.
        let alg1 =
            rewrite(&sc.arena, &aug, &bad, RewriteAlgorithm::CanFollow, FixMode::Lemma1, &oracle);
        let alg1_saved: BTreeSet<TxnId> = alg1.saved().into_iter().collect();
        assert!(alg1_saved.is_subset(&fpr_saved), "Algorithm 2 lost a can-follow save");
    }
    assert!(strict > 0, "the sweep never exercised a strict improvement");
}

#[test]
fn theorem5_undo_matches_prefix_reexecution() {
    let oracle = StaticAnalyzer::new();
    for (sc, bad) in scenarios() {
        let aug = augmented(&sc);
        let ag = affected_set(&sc.arena, &sc.hm, &bad);
        for alg in [
            RewriteAlgorithm::CanFollow,
            RewriteAlgorithm::CanFollowCanPrecede,
            RewriteAlgorithm::CommutesBackward,
            RewriteAlgorithm::ReadsFromClosure,
        ] {
            let rw = rewrite(&sc.arena, &aug, &bad, alg, FixMode::Lemma1, &oracle);
            let pruned = undo(&sc.arena, &aug, &rw, &ag).unwrap();
            let reexec =
                AugmentedHistory::execute(&sc.arena, &rw.repaired_history(), &sc.s0).unwrap();
            assert_eq!(&pruned, reexec.final_state(), "Theorem 5 violated for {}", alg.name());
        }
    }
}

#[test]
fn theorem1_backout_restores_acyclicity_and_merged_history() {
    for (sc, bad) in scenarios() {
        let graph = PrecedenceGraph::build(&sc.arena, &sc.hm, &sc.hb);
        assert!(!graph.is_acyclic(), "scenario was supposed to conflict");
        let ag = affected_set(&sc.arena, &sc.hm, &bad);
        let removed: BTreeSet<TxnId> = bad.union(&ag).copied().collect();
        assert!(graph.is_acyclic_without(&removed));
        let merged = graph.merged_history_without(&removed).unwrap();
        // The merged history contains every base transaction and every
        // saved tentative transaction exactly once.
        assert_eq!(merged.len(), sc.hb.len() + sc.hm.len() - removed.len());
        for id in sc.hb.iter() {
            assert!(merged.contains(id));
        }
    }
}
