//! The crash-point torture matrix (`replication::recovery`).
//!
//! A durability-enabled session run leaves behind its WAL storage with a
//! full mutation journal ([`DurableReport`]). This suite kills the base
//! at **every** journal boundary — and mid-record, via torn and
//! bit-flipped appends — and asserts the recovery oracle each time:
//!
//! * recovery reconstructs exactly the durable prefix: the recovered
//!   committed log is a prefix of the final log, and it never shrinks as
//!   the crash point advances (durability is monotone);
//! * the convergence oracle holds post-recovery: replaying the recovered
//!   history serially from the initial state reproduces the recovered
//!   master (Strategy-2 runs; retroactive patching makes replay
//!   inapplicable, as in the live oracle);
//! * a crash *after* the final write recovers the live end state exactly
//!   — log, master, epoch, window state, and session ledger;
//! * a torn or bit-flipped in-flight write recovers the same state as a
//!   crash just before it (the damage is discarded, flagged `torn`).
//!
//! `CRASH_SEEDS` scales the number of workload seeds per cell; CI's
//! crash-recovery matrix runs the release build with a larger value.

use histmerge::history::AugmentedHistory;
use histmerge::obs::{dump_on_failure, FlightRecorder, TracerHandle};
use histmerge::replication::wal::StorageOp;
use histmerge::replication::{
    recover, DurabilityConfig, DurableReport, FaultPlan, FaultRates, Protocol, Recovered,
    RecoveryError, SimConfig, Simulation, SyncPath, SyncStrategy, Tear, TornStorage,
};
use histmerge::workload::generator::ScenarioParams;

fn crash_seeds() -> u64 {
    std::env::var("CRASH_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(2)
}

fn config(seed: u64, strategy: SyncStrategy, fault: FaultPlan) -> SimConfig {
    SimConfig {
        n_mobiles: 3,
        duration: 120,
        base_rate: 0.3,
        mobile_rate: 0.25,
        connect_every: 30,
        protocol: Protocol::merging_default(),
        strategy,
        workload: ScenarioParams {
            n_vars: 32,
            commutative_fraction: 0.4,
            guarded_fraction: 0.2,
            read_only_fraction: 0.1,
            hot_fraction: 0.1,
            hot_prob: 0.5,
            seed,
            ..ScenarioParams::default()
        },
        base_capacity: 120.0,
        sync_path: SyncPath::Session,
        fault,
        check_convergence: true,
        durability: DurabilityConfig { enabled: true, checkpoint_every: 64 },
        ..SimConfig::default()
    }
}

/// Runs the durable scenario with a flight recorder listening, returning
/// the durable artifacts plus the tracer so torture assertions can dump
/// the run's tail on failure.
fn durable_run(
    seed: u64,
    strategy: SyncStrategy,
    fault: FaultPlan,
) -> (DurableReport, TracerHandle) {
    let tracer = FlightRecorder::handle(512);
    let mut cfg = config(seed, strategy, fault);
    cfg.tracer = tracer.clone();
    let report = Simulation::new(cfg).expect("valid sim config").run();
    assert!(report.convergence.expect("oracle requested").holds());
    (report.durable.expect("durability enabled"), tracer)
}

/// Replaying the recovered history serially from the initial state must
/// reproduce the recovered master — the convergence oracle, applied to a
/// recovered prefix.
fn assert_recovered_converges(durable: &DurableReport, r: &Recovered, label: &str) {
    let history = r.base.full_history();
    let aug = AugmentedHistory::execute(&durable.arena, &history, &durable.initial)
        .unwrap_or_else(|e| panic!("{label}: recovered history does not replay: {e:?}"));
    assert_eq!(
        aug.final_state(),
        r.base.master(),
        "{label}: serial replay of the recovered history diverges from the recovered master"
    );
}

/// A crash after the final write must recover the live end state exactly.
fn assert_full_recovery_is_exact(durable: &DurableReport, label: &str) {
    let r = recover(&durable.arena, &durable.storage).expect("full log recovers");
    assert!(!r.torn, "{label}: undamaged log reported torn");
    assert_eq!(r.base.log(), &durable.log[..], "{label}: recovered log != live log");
    assert_eq!(r.epoch, durable.epoch, "{label}: epoch diverged");
    assert_eq!(r.base.epoch_start(), durable.epoch_start, "{label}: window start diverged");
    assert_eq!(r.base.epoch_state(), &durable.epoch_state, "{label}: window state diverged");
    assert_eq!(r.ledger, durable.ledger, "{label}: session ledger diverged");
}

/// The matrix core: crash cleanly at every journal boundary. With
/// `append_only` (Strategy 2 — no retroactive patching) the recovered log
/// must be a byte-exact prefix of the final log and the serial-replay
/// oracle must hold at every point.
fn torture_clean_boundaries(durable: &DurableReport, append_only: bool, label: &str) {
    let ops = durable.storage.op_count();
    assert!(ops > 0, "{label}: durable run journaled nothing");
    let mut prev_commits = 0usize;
    for k in 0..=ops {
        let crashed = TornStorage::at_crash_point(&durable.storage, k, Tear::Clean);
        match recover(&durable.arena, crashed.storage()) {
            Err(RecoveryError::NoCheckpoint) => {
                // Legitimate only before the genesis checkpoint landed.
                assert_eq!(prev_commits, 0, "{label}@{k}: checkpoint lost after commits");
            }
            Ok(r) => {
                let committed = r.base.committed();
                assert!(
                    committed >= prev_commits,
                    "{label}@{k}: durability regressed ({committed} < {prev_commits})"
                );
                prev_commits = committed;
                assert!(committed <= durable.log.len(), "{label}@{k}: phantom commits");
                if append_only {
                    assert_eq!(
                        r.base.log(),
                        &durable.log[..committed],
                        "{label}@{k}: recovered log is not the durable prefix"
                    );
                    assert_recovered_converges(durable, &r, &format!("{label}@{k}"));
                }
            }
        }
    }
    assert_eq!(prev_commits, durable.log.len(), "{label}: final crash point lost commits");
}

/// Mid-record damage: every in-flight append, torn short or bit-flipped,
/// must recover exactly what a clean crash *before* that write recovers —
/// the damaged suffix is discarded, never misread.
fn torture_torn_writes(durable: &DurableReport, label: &str) {
    for (k, op) in durable.storage.ops().iter().enumerate() {
        let StorageOp::Append(_, bytes) = op else { continue };
        if bytes.len() <= 8 {
            continue;
        }
        let tears = [
            Tear::Truncate { keep: bytes.len() / 2 },
            Tear::Truncate { keep: bytes.len() - 1 },
            Tear::FlipBit { byte: bytes.len() / 2, bit: 3 },
        ];
        let clean = recover(
            &durable.arena,
            TornStorage::at_crash_point(&durable.storage, k, Tear::Clean).storage(),
        );
        for tear in tears {
            let damaged = TornStorage::at_crash_point(&durable.storage, k, tear);
            match (&clean, recover(&durable.arena, damaged.storage())) {
                (Err(e), Err(e2)) => assert_eq!(*e, e2, "{label}@{k}: {tear:?} changed the error"),
                (Ok(c), Ok(r)) => {
                    assert!(r.torn, "{label}@{k}: {tear:?} not flagged torn");
                    assert_eq!(r.base.log(), c.base.log(), "{label}@{k}: {tear:?} changed the log");
                    assert_eq!(
                        r.base.master(),
                        c.base.master(),
                        "{label}@{k}: {tear:?} changed the master"
                    );
                    assert_eq!(r.epoch, c.epoch, "{label}@{k}: {tear:?} changed the epoch");
                    assert_eq!(r.ledger, c.ledger, "{label}@{k}: {tear:?} changed the ledger");
                }
                (clean, damaged) => panic!(
                    "{label}@{k}: {tear:?} flipped recoverability: clean {clean:?} vs {damaged:?}"
                ),
            }
        }
    }
}

/// Strategy 2 (window-start snapshots): the base log is append-only, so
/// the full matrix applies — prefix exactness, serial-replay convergence
/// at every crash point, and torn-write equivalence. Runs fault-free and
/// under a mixed 15% fault schedule.
#[test]
fn crash_point_matrix_window_start() {
    let strategy = SyncStrategy::WindowStart { window: 80 };
    for seed in 0..crash_seeds() {
        for (fault, kind) in [
            (FaultPlan::none(), "fault-free"),
            (FaultPlan::seeded(seed, FaultRates::uniform(0.15)), "faulted"),
        ] {
            let label = format!("window-start/{kind}/seed{seed}");
            let (durable, tracer) = durable_run(seed, strategy, fault);
            dump_on_failure(&tracer, &format!("crash-matrix-{kind}-seed{seed}"), || {
                assert!(durable.storage.op_count() > 8, "{label}: run too small to torture");
                torture_clean_boundaries(&durable, true, &label);
                torture_torn_writes(&durable, &label);
                assert_full_recovery_is_exact(&durable, &label);
            });
        }
    }
}

/// Strategy 1 (per-disconnect snapshots): retroactive patches edit
/// recorded after-states in place, so prefix bytes may be rewritten later
/// and serial replay is inapplicable (as in the live oracle). Recovery
/// must still never panic, never regress, and reproduce the live end
/// state from the full log.
#[test]
fn crash_point_matrix_per_disconnect_snapshot() {
    for seed in 0..crash_seeds() {
        let label = format!("per-disconnect/seed{seed}");
        let (durable, tracer) =
            durable_run(seed, SyncStrategy::PerDisconnectSnapshot, FaultPlan::none());
        dump_on_failure(&tracer, &format!("crash-matrix-per-disconnect-seed{seed}"), || {
            torture_clean_boundaries(&durable, false, &label);
            torture_torn_writes(&durable, &label);
            assert_full_recovery_is_exact(&durable, &label);
        });
    }
}

/// Checkpoint compaction must not shrink what a crash can recover: with
/// frequent checkpoints, every clean boundary still recovers the exact
/// durable prefix even though old segments are deleted mid-journal.
#[test]
fn compaction_never_loses_durable_commits() {
    let tracer = FlightRecorder::handle(512);
    let mut cfg = config(11, SyncStrategy::WindowStart { window: 80 }, FaultPlan::none());
    cfg.durability.checkpoint_every = 16;
    cfg.tracer = tracer.clone();
    let report = Simulation::new(cfg).expect("valid sim config").run();
    let durable = report.durable.expect("durability enabled");
    dump_on_failure(&tracer, "crash-matrix-compaction", || {
        assert!(
            durable.storage.ops().iter().any(|op| matches!(op, StorageOp::Delete(_))),
            "checkpoint interval 16 never compacted — the test is vacuous"
        );
        torture_clean_boundaries(&durable, true, "compaction");
        assert_full_recovery_is_exact(&durable, "compaction");
    });
}
