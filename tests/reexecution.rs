//! Protocol step 6: failed re-executions are reported with reasons.

use histmerge::core::merge::{MergeConfig, Merger};
use histmerge::history::{SerialHistory, TxnArena};
use histmerge::txn::{DbState, TxnKind, VarId};
use histmerge::workload::canned::{Bank, Reservations};

fn v(i: u32) -> VarId {
    VarId::new(i)
}

#[test]
fn insufficient_funds_reexecution_fails() {
    // Base and mobile both withdraw from the same account. The base
    // withdrawal is durable; the tentative one is backed out and no longer
    // clears on the new master.
    let bank = Bank::new();
    let mut arena = TxnArena::new();
    let tm = arena.alloc(|id| {
        bank.withdraw(id, "mobile-withdraw", v(0), 50).with_kind(TxnKind::Tentative).with_id(id)
    });
    let tb = arena.alloc(|id| {
        bank.withdraw(id, "base-withdraw", v(0), 80).with_kind(TxnKind::Base).with_id(id)
    });
    let s0: DbState = [(v(0), 100)].into_iter().collect();
    let outcome = Merger::new(MergeConfig::default())
        .merge(&arena, &SerialHistory::from_order([tm]), &SerialHistory::from_order([tb]), &s0)
        .unwrap();
    // The tentative withdrawal conflicts (2-cycle on the balance) and is
    // backed out...
    assert_eq!(outcome.backed_out, vec![tm]);
    // ... and its re-execution on the post-base state (balance 20) fails
    // its precondition (20 < 50): reported to the user.
    assert_eq!(outcome.reexecuted, vec![(tm, false)]);
    assert_eq!(outcome.new_master.get(v(0)), 20);
}

#[test]
fn sufficient_funds_reexecution_succeeds() {
    let bank = Bank::new();
    let mut arena = TxnArena::new();
    let tm = arena.alloc(|id| {
        bank.withdraw(id, "mobile-withdraw", v(0), 50).with_kind(TxnKind::Tentative).with_id(id)
    });
    let tb = arena.alloc(|id| {
        bank.withdraw(id, "base-withdraw", v(0), 30).with_kind(TxnKind::Base).with_id(id)
    });
    let s0: DbState = [(v(0), 100)].into_iter().collect();
    let outcome = Merger::new(MergeConfig::default())
        .merge(&arena, &SerialHistory::from_order([tm]), &SerialHistory::from_order([tb]), &s0)
        .unwrap();
    assert_eq!(outcome.reexecuted, vec![(tm, true)]);
    // Both withdrawals applied: 100 - 30 - 50.
    let replayed_balance = 100 - 30 - 50;
    // new_master only reflects the base + forwarded (nothing saved);
    // re-execution effects are reported, applied by the caller (the
    // simulator commits them as base transactions).
    assert_eq!(outcome.new_master.get(v(0)), 70);
    let _ = replayed_balance;
}

#[test]
fn overbooked_reservation_reported() {
    // One seat left; the base sells it first. The tentative reservation is
    // backed out and its re-execution is reported as failed.
    let res = Reservations::new();
    let mut arena = TxnArena::new();
    let (seats, booked_base, booked_mobile) = (v(0), v(1), v(2));
    let tm = arena.alloc(|id| {
        res.reserve(id, "mobile-reserve", seats, booked_mobile)
            .with_kind(TxnKind::Tentative)
            .with_id(id)
    });
    let tb = arena.alloc(|id| {
        res.reserve(id, "base-reserve", seats, booked_base).with_kind(TxnKind::Base).with_id(id)
    });
    let s0: DbState = [(seats, 1), (booked_base, 0), (booked_mobile, 0)].into_iter().collect();
    let outcome = Merger::new(MergeConfig::default())
        .merge(&arena, &SerialHistory::from_order([tm]), &SerialHistory::from_order([tb]), &s0)
        .unwrap();
    assert_eq!(outcome.backed_out, vec![tm]);
    assert_eq!(outcome.reexecuted, vec![(tm, false)], "no seats left: user informed");
    assert_eq!(outcome.new_master.get(seats), 0);
    assert_eq!(outcome.new_master.get(booked_base), 1);
    assert_eq!(outcome.new_master.get(booked_mobile), 0);
}
