//! Snapshot test pinning the JSON shape of [`Metrics`] (including the
//! nested `fault` and `wal` blocks). The vendored serde is a no-op, so
//! serialization is hand-rolled in `Metrics::to_json`; this test is the
//! contract downstream artifact consumers (CI uploads, experiment
//! post-processing) rely on. Field additions must update the literal
//! below — that is the point.

use histmerge::obs::validate_json_line;
use histmerge::replication::metrics::{Metrics, SyncRecord};
use histmerge::replication::{
    CohortStats, CompactionStats, FaultStats, SchedStats, StormStats, WalStats,
};
use histmerge::workload::cost::CostReport;

fn populated_metrics() -> Metrics {
    let mut m = Metrics {
        tentative_generated: 120,
        base_generated: 45,
        window_misses: 2,
        peak_backlog: 17.25,
        backlog_series: vec![(0, 0.0), (10, 3.5), (20, 17.25)],
        batch_sizes: vec![1, 2],
        parallel_merge_ns: 987_654,
        speculative_hits: 3,
        speculative_retries: 1,
        retro_patches: 4,
        fault: FaultStats {
            dropped: 5,
            duplicated: 4,
            reordered: 3,
            mid_merge_disconnects: 2,
            base_crashes: 1,
            retries: 9,
            abandoned_sessions: 1,
            ledger_resumes: 2,
            duplicate_installs_suppressed: 1,
            recovered_sessions: 2,
            trimmed_txns: 6,
            double_resolutions: 0,
            ledger_gaps: 1,
        },
        wal: WalStats {
            records: 200,
            bytes: 8192,
            checkpoints: 3,
            segments_retired: 2,
            pruned_records: 11,
            shadow_recoveries: 1,
        },
        sched: SchedStats { fleet_scans: 800, events_pushed: 96, events_popped: 90 },
        compaction: CompactionStats { txns_in: 9, txns_out: 6, runs_squashed: 2 },
        cohort: CohortStats { fastpath_merges: 5, wave_rounds: 1, edge_cache_appends: 33 },
        storm: StormStats {
            shed: 7,
            deferred_drained: 7,
            deferred_peak: 4,
            defer_wait_ticks: 12,
            defer_wait_max: 3,
            backoff_reschedules: 2,
            backoff_delay_ticks: 10,
        },
        defer_waits: vec![3, 1, 2, 1],
        ..Metrics::default()
    };
    m.record(
        SyncRecord {
            tick: 40,
            mobile: 0,
            pending: 5,
            hb_len: 8,
            saved: 3,
            backed_out: 2,
            reprocessed: 0,
            merge_failed: false,
            sync_ns: 12_345,
        },
        CostReport { comm: 1.5, base_cpu: 2.0, base_io: 0.5, mobile_cpu: 0.25 },
    );
    m.record(
        SyncRecord {
            tick: 80,
            mobile: 1,
            pending: 4,
            hb_len: 0,
            saved: 0,
            backed_out: 0,
            reprocessed: 4,
            merge_failed: true,
            sync_ns: 0,
        },
        CostReport { comm: 1.0, base_cpu: 3.0, base_io: 1.5, mobile_cpu: 0.0 },
    );
    m
}

#[test]
fn metrics_json_shape_is_pinned() {
    let json = populated_metrics().to_json();
    validate_json_line(&json).unwrap_or_else(|e| panic!("invalid JSON {json}: {e}"));
    assert_eq!(
        json,
        concat!(
            "{\"tentative_generated\":120,\"base_generated\":45,\"saved\":3,",
            "\"backed_out\":2,\"reprocessed\":4,\"syncs\":2,\"merge_failures\":1,",
            "\"window_misses\":2,",
            "\"cost\":{\"comm\":2.500,\"base_cpu\":5.000,\"base_io\":2.000,\"mobile_cpu\":0.250},",
            "\"peak_backlog\":17.250,\"backlog_samples\":3,\"records\":2,\"batches\":2,",
            "\"parallel_merge_ns\":987654,\"speculative_hits\":3,\"speculative_retries\":1,",
            "\"retro_patches\":4,",
            "\"fault\":{\"dropped\":5,\"duplicated\":4,\"reordered\":3,",
            "\"mid_merge_disconnects\":2,\"base_crashes\":1,\"retries\":9,",
            "\"abandoned_sessions\":1,\"ledger_resumes\":2,\"duplicate_installs_suppressed\":1,",
            "\"recovered_sessions\":2,\"trimmed_txns\":6,\"double_resolutions\":0,",
            "\"ledger_gaps\":1},",
            "\"wal\":{\"records\":200,\"bytes\":8192,\"checkpoints\":3,",
            "\"segments_retired\":2,\"pruned_records\":11,\"shadow_recoveries\":1},",
            "\"sched\":{\"fleet_scans\":800,\"events_pushed\":96,\"events_popped\":90},",
            "\"compaction\":{\"txns_in\":9,\"txns_out\":6,\"runs_squashed\":2},",
            "\"cohort\":{\"fastpath_merges\":5,\"wave_rounds\":1,\"edge_cache_appends\":33},",
            "\"storm\":{\"shed\":7,\"deferred_drained\":7,\"deferred_peak\":4,",
            "\"defer_wait_ticks\":12,\"defer_wait_max\":3,",
            "\"backoff_reschedules\":2,\"backoff_delay_ticks\":10},",
            // defer_waits [3,1,2,1] sorted -> [1,1,2,3]: p50 = 2nd (1),
            // p99 = 4th (3), nearest-rank.
            "\"defer_waits\":{\"count\":4,\"p50\":1,\"p99\":3}}"
        )
    );
}

#[test]
fn default_metrics_json_is_all_zeroes_and_valid() {
    let json = Metrics::default().to_json();
    validate_json_line(&json).unwrap_or_else(|e| panic!("invalid JSON {json}: {e}"));
    assert!(json.starts_with("{\"tentative_generated\":0,"));
    assert!(json.contains("\"fault\":{\"dropped\":0,"));
    assert!(json.contains("\"wal\":{\"records\":0,"));
    assert!(json.contains("\"sched\":{\"fleet_scans\":0,"));
    assert!(json.contains("\"compaction\":{\"txns_in\":0,\"txns_out\":0,\"runs_squashed\":0}"));
    assert!(json.contains(
        "\"cohort\":{\"fastpath_merges\":0,\"wave_rounds\":0,\"edge_cache_appends\":0}"
    ));
    assert!(json.ends_with(
        "\"storm\":{\"shed\":0,\"deferred_drained\":0,\"deferred_peak\":0,\
         \"defer_wait_ticks\":0,\"defer_wait_max\":0,\
         \"backoff_reschedules\":0,\"backoff_delay_ticks\":0},\
         \"defer_waits\":{\"count\":0,\"p50\":0,\"p99\":0}}"
    ));
}

/// `normalized()` is unchanged when compaction is off: a run with the
/// knob disabled carries an all-zero block, so pre-compaction comparison
/// baselines keep working untouched.
#[test]
fn normalized_is_unchanged_when_compaction_is_off() {
    let mut m = populated_metrics();
    m.compaction = CompactionStats::default();
    assert_eq!(m.normalized(), populated_metrics().normalized());
    assert_eq!(m.normalized().compaction, CompactionStats::default());
}

/// The cohort block is mechanism accounting (fast-path hits, wave
/// rounds, cache appends): `normalized()` zeroes it, so wave-enabled
/// runs stay comparable against legacy-pipeline baselines.
#[test]
fn normalized_strips_cohort_counters() {
    let mut m = populated_metrics();
    m.cohort = CohortStats::default();
    assert_eq!(m.normalized(), populated_metrics().normalized());
    assert_eq!(m.normalized().cohort, CohortStats::default());
}
