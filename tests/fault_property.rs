//! Property-based tests of fault-injected sync sessions.
//!
//! Three families, per the fault model in `replication::fault`:
//!
//! 1. the convergence oracle holds over arbitrary `(seed, rate, strategy)`
//!    draws — after any fault schedule, the committed history replayed
//!    through the serial path reproduces the final master;
//! 2. duplicated messages never double-install (session-ledger
//!    idempotence);
//! 3. a fault plan whose rates are all zero reproduces the legacy path
//!    byte-for-byte, whatever its seed.
//!
//! The deterministic seed-matrix test at the bottom sweeps every fault
//! kind x strategy; `FAULT_SEEDS` scales the number of schedules per cell
//! (CI runs the release build with a large matrix, the default keeps
//! debug-mode `cargo test` fast).

use proptest::prelude::*;

use histmerge::obs::{dump_on_failure, FlightRecorder};
use histmerge::replication::{
    AdmissionConfig, ConnectivityModel, FaultKind, FaultPlan, FaultRates, FaultStats, Protocol,
    RetryBackoff, SimConfig, Simulation, SyncPath, SyncStrategy,
};
use histmerge::semantics::CompactionConfig;
use histmerge::workload::canned_mix::{CannedFlavor, CannedMixParams};
use histmerge::workload::generator::ScenarioParams;

const STRATEGIES: [SyncStrategy; 3] = [
    SyncStrategy::WindowStart { window: 120 },
    SyncStrategy::AdaptiveWindow { max_hb: 60 },
    SyncStrategy::PerDisconnectSnapshot,
];

fn config(workload_seed: u64, strategy: SyncStrategy, fault: FaultPlan) -> SimConfig {
    SimConfig {
        n_mobiles: 3,
        duration: 240,
        base_rate: 0.25,
        mobile_rate: 0.2,
        connect_every: 40,
        protocol: Protocol::merging_default(),
        strategy,
        workload: ScenarioParams {
            n_vars: 48,
            commutative_fraction: 0.5,
            guarded_fraction: 0.15,
            read_only_fraction: 0.1,
            hot_fraction: 0.1,
            hot_prob: 0.4,
            seed: workload_seed,
            ..ScenarioParams::default()
        },
        base_capacity: 120.0,
        sync_path: SyncPath::Session,
        fault,
        check_convergence: true,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// After ANY mixed fault schedule, the surviving committed history
    /// replays to the final master and no tentative transaction is
    /// resolved twice.
    #[test]
    fn convergence_oracle_holds_under_arbitrary_fault_mix(
        seed in 0u64..10_000,
        rate in 0.02f64..0.35,
        strategy_idx in 0usize..3,
    ) {
        let fault = FaultPlan::seeded(seed, FaultRates::uniform(rate));
        let report = Simulation::new(config(seed, STRATEGIES[strategy_idx], fault)).expect("valid sim config").run();
        let convergence = report.convergence.expect("oracle requested");
        prop_assert!(
            convergence.holds(),
            "oracle failed for seed {seed} rate {rate} strategy {}: {convergence:?}",
            STRATEGIES[strategy_idx].name()
        );
    }

    /// Duplicated messages are absorbed by the session ledger: no install
    /// or re-execution ever runs twice, and — since duplication drops
    /// nothing — the run matches the fault-free session run exactly.
    #[test]
    fn duplicated_messages_never_double_install(
        seed in 0u64..10_000,
        rate in 0.2f64..1.0,
        strategy_idx in 0usize..3,
    ) {
        let strategy = STRATEGIES[strategy_idx];
        let fault = FaultPlan::seeded(seed, FaultRates::only(FaultKind::MessageDuplication, rate));
        let faulted = Simulation::new(config(seed, strategy, fault)).expect("valid sim config").run();
        prop_assert_eq!(faulted.metrics.fault.double_resolutions, 0);
        prop_assert!(faulted.convergence.expect("oracle requested").holds());

        let clean = Simulation::new(config(seed, strategy, FaultPlan::none())).expect("valid sim config").run();
        prop_assert_eq!(&faulted.final_master, &clean.final_master);
        prop_assert_eq!(faulted.base_commits, clean.base_commits);
        prop_assert_eq!(&faulted.metrics.records, &clean.metrics.records);
    }

    /// An all-zero-rate plan is inert whatever its seed: the session path
    /// reproduces today's legacy reports byte-for-byte.
    #[test]
    fn zero_rate_plans_reproduce_legacy_reports(
        seed in 0u64..10_000,
        fault_seed in 0u64..10_000,
        strategy_idx in 0usize..3,
    ) {
        let strategy = STRATEGIES[strategy_idx];
        let fault = FaultPlan::seeded(fault_seed, FaultRates::zero());
        let session = Simulation::new(config(seed, strategy, fault)).expect("valid sim config").run();

        let mut legacy_config = config(seed, strategy, FaultPlan::none());
        legacy_config.sync_path = SyncPath::Legacy;
        legacy_config.check_convergence = false;
        let legacy = Simulation::new(legacy_config).expect("valid sim config").run();

        prop_assert_eq!(&session.final_master, &legacy.final_master);
        prop_assert_eq!(session.base_commits, legacy.base_commits);
        prop_assert_eq!(&session.cluster, &legacy.cluster);
        prop_assert_eq!(session.metrics.normalized(), legacy.metrics.normalized());
        prop_assert_eq!(session.metrics.fault, FaultStats::default());
    }
}

/// The deterministic sweep: every fault kind under every strategy, across
/// `FAULT_SEEDS` schedules per cell at rotating rates. CI's fault-matrix
/// job runs this in release with a large `FAULT_SEEDS`; the default keeps
/// the debug-mode suite quick.
#[test]
fn seed_matrix_convergence_oracle() {
    let seeds: u64 = std::env::var("FAULT_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(4);
    const RATES: [f64; 3] = [0.05, 0.15, 0.3];
    let strategies =
        [SyncStrategy::WindowStart { window: 120 }, SyncStrategy::PerDisconnectSnapshot];
    let mut schedules = 0usize;
    for kind in FaultKind::ALL {
        for strategy in strategies {
            for seed in 0..seeds {
                let rate = RATES[(seed % RATES.len() as u64) as usize];
                let fault = FaultPlan::seeded(seed, FaultRates::only(kind, rate));
                // Each cell runs with a flight recorder attached; a failed
                // oracle ships the run's last events as JSONL (CI uploads
                // the dump directory as an artifact).
                let tracer = FlightRecorder::handle(512);
                let mut cfg = config(seed, strategy, fault);
                cfg.tracer = tracer.clone();
                let label = format!("fault-matrix-{}-{}-seed{seed}", kind.name(), strategy.name());
                dump_on_failure(&tracer, &label, || {
                    let report = Simulation::new(cfg).expect("valid sim config").run();
                    let convergence = report.convergence.expect("oracle requested");
                    assert!(
                        convergence.holds(),
                        "oracle failed: kind {} strategy {} seed {seed} rate {rate}: \
                         {convergence:?}",
                        kind.name(),
                        strategy.name()
                    );
                });
                schedules += 1;
            }
        }
    }
    assert_eq!(schedules, FaultKind::ALL.len() * strategies.len() * seeds as usize);
}

/// The compaction row of the matrix: every fault kind against sessions
/// whose pending histories were squashed by the pre-merge compactor. Two
/// oracles per cell: the faulted compacted run must converge with zero
/// double resolutions (a composite install is idempotent under the
/// `(mobile, seq)` ledger key exactly like a plain install), and it must
/// commit the byte-identical base state the faulted *uncompacted* run
/// commits — compaction draws no randomness, so the fault schedule and
/// every committed value line up one-to-one.
#[test]
fn compaction_fault_matrix_converges() {
    let seeds: u64 = std::env::var("FAULT_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(4);
    const RATES: [f64; 3] = [0.05, 0.15, 0.3];
    let strategies =
        [SyncStrategy::WindowStart { window: 120 }, SyncStrategy::PerDisconnectSnapshot];
    for kind in FaultKind::ALL {
        for strategy in strategies {
            for seed in 0..seeds {
                let rate = RATES[(seed % RATES.len() as u64) as usize];
                let tracer = FlightRecorder::handle(512);
                let make = |compacted: bool| {
                    let fault = FaultPlan::seeded(seed, FaultRates::only(kind, rate));
                    let mut cfg = config(seed, strategy, fault);
                    if compacted {
                        cfg.compaction = CompactionConfig::enabled();
                        cfg.tracer = tracer.clone();
                    }
                    cfg
                };
                let label = format!(
                    "compaction-fault-matrix-{}-{}-seed{seed}",
                    kind.name(),
                    strategy.name()
                );
                dump_on_failure(&tracer, &label, || {
                    let squashed = Simulation::new(make(true)).expect("valid sim config").run();
                    let convergence = squashed.convergence.expect("oracle requested");
                    assert!(
                        convergence.holds(),
                        "compacted oracle failed: kind {} strategy {} seed {seed} rate {rate}: \
                         {convergence:?}",
                        kind.name(),
                        strategy.name()
                    );
                    assert_eq!(squashed.metrics.fault.double_resolutions, 0);
                    let plain = Simulation::new(make(false)).expect("valid sim config").run();
                    assert_eq!(
                        plain.final_master, squashed.final_master,
                        "committed state drifted"
                    );
                    assert_eq!(plain.base_commits, squashed.base_commits);
                    assert_eq!(plain.metrics.saved, squashed.metrics.saved);
                    assert_eq!(plain.metrics.reprocessed, squashed.metrics.reprocessed);
                });
            }
        }
    }
}

/// The inventory row of the matrix: the compensation-heavy canned
/// workload (reservations whose cancels are declared inverses) under
/// every fault kind. Sessions that abandon mid-booking leave tentative
/// reservations to be pruned by compensation at the next reconnect; the
/// oracle must hold over every schedule.
#[test]
fn inventory_fault_matrix_converges() {
    let seeds: u64 = std::env::var("FAULT_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(4);
    const RATES: [f64; 3] = [0.05, 0.15, 0.3];
    let strategies =
        [SyncStrategy::WindowStart { window: 120 }, SyncStrategy::PerDisconnectSnapshot];
    for kind in FaultKind::ALL {
        for strategy in strategies {
            for seed in 0..seeds {
                let rate = RATES[(seed % RATES.len() as u64) as usize];
                let tracer = FlightRecorder::handle(512);
                let fault = FaultPlan::seeded(seed, FaultRates::only(kind, rate));
                let mut cfg = config(seed, strategy, fault);
                cfg.canned = Some(CannedMixParams {
                    n_accounts: 12,
                    n_prices: 6,
                    flavor: CannedFlavor::Inventory,
                    seed,
                    ..CannedMixParams::default()
                });
                cfg.tracer = tracer.clone();
                let label =
                    format!("inventory-matrix-{}-{}-seed{seed}", kind.name(), strategy.name());
                dump_on_failure(&tracer, &label, || {
                    let report = Simulation::new(cfg).expect("valid sim config").run();
                    let convergence = report.convergence.expect("oracle requested");
                    assert!(
                        convergence.holds(),
                        "inventory oracle failed: kind {} strategy {} seed {seed} rate {rate}: \
                         {convergence:?}",
                        kind.name(),
                        strategy.name()
                    );
                    assert_eq!(report.metrics.fault.double_resolutions, 0);
                });
            }
        }
    }
}

/// Extracts a numeric JSON field from one JSONL trace line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Regression for the abandon path: a session that burns its retry budget
/// leaves the mobile's tentative log and ledger record intact, and the
/// *next* reconnection resumes from the ledger and completes. The trace's
/// `session-abandoned` invariant events are cross-checked against the
/// sync records: abandoned mobiles really do come back.
#[test]
fn abandoned_sessions_recover_on_the_next_reconnect() {
    let tracer = FlightRecorder::handle(16_384);
    let fault = FaultPlan::seeded(7, FaultRates::only(FaultKind::MessageLoss, 0.45));
    let mut cfg = config(7, SyncStrategy::WindowStart { window: 120 }, fault);
    cfg.tracer = tracer.clone();
    cfg.session.backoff = RetryBackoff::enabled();
    let report = dump_on_failure(&tracer, "abandoned-recovery", || {
        let report = Simulation::new(cfg).expect("valid sim config").run();
        let m = &report.metrics;
        assert!(m.fault.abandoned_sessions > 0, "fault rate too low to abandon: {:?}", m.fault);
        assert!(m.syncs > 0, "fault rate too high for any session to complete");
        assert!(
            m.fault.ledger_resumes > 0,
            "an abandoned session must resume from its ledger record: {:?}",
            m.fault
        );
        assert!(report.convergence.as_ref().expect("oracle requested").holds());
        report
    });
    let dump = tracer.dump_jsonl().expect("recorder attached");
    let abandons: Vec<(u64, u64)> = dump
        .lines()
        .filter(|line| line.contains("\"name\":\"session-abandoned\""))
        .map(|line| {
            (field_u64(line, "mobile").expect("mobile"), field_u64(line, "tick").expect("tick"))
        })
        .collect();
    assert!(!abandons.is_empty(), "abandons counted but never traced");
    let recovered = abandons.iter().any(|&(mobile, tick)| {
        report.metrics.records.iter().any(|r| r.mobile as u64 == mobile && r.tick > tick)
    });
    assert!(recovered, "no abandoned mobile ever completed a later session: {abandons:?}");
}

/// The storm row of the matrix: every fault kind, correlated into the
/// post-outage surge window by `OutageStorm`'s trace-conditioned boost,
/// against a base protected by admission control and retry backoff.
/// Every cell must converge with bounded batches and a fully drained
/// deferred queue; for the non-dropping kinds (duplication, reordering —
/// absorbed by the session ledger) the committed state must additionally
/// be byte-identical to the same-trace fault-free run.
#[test]
fn storm_matrix_converges_under_admission_control() {
    let seeds: u64 = std::env::var("FAULT_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(4);
    const CAP: usize = 2;
    let strategies =
        [SyncStrategy::WindowStart { window: 120 }, SyncStrategy::PerDisconnectSnapshot];
    for kind in FaultKind::ALL {
        for strategy in strategies {
            for seed in 0..seeds {
                let tracer = FlightRecorder::handle(512);
                let make = |fault: FaultPlan| {
                    let mut cfg = config(seed, strategy, fault);
                    cfg.connectivity = ConnectivityModel::OutageStorm {
                        start: 80,
                        outage_ticks: 24,
                        surge_ticks: 16,
                        fault_boost: 3.0,
                    };
                    cfg.admission = AdmissionConfig::bounded(CAP);
                    cfg.session.backoff = RetryBackoff::enabled();
                    cfg
                };
                let label = format!("storm-matrix-{}-{}-seed{seed}", kind.name(), strategy.name());
                dump_on_failure(&tracer, &label, || {
                    let mut cfg = make(FaultPlan::seeded(seed, FaultRates::only(kind, 0.1)));
                    cfg.tracer = tracer.clone();
                    let faulted = Simulation::new(cfg).expect("valid sim config").run();
                    let convergence = faulted.convergence.as_ref().expect("oracle requested");
                    assert!(
                        convergence.holds(),
                        "storm oracle failed: kind {} strategy {} seed {seed}: {convergence:?}",
                        kind.name(),
                        strategy.name()
                    );
                    assert!(
                        faulted.metrics.batch_sizes.iter().all(|&b| b <= CAP),
                        "admission cap violated under storm"
                    );
                    let storm = faulted.metrics.storm;
                    assert_eq!(
                        storm.shed, storm.deferred_drained,
                        "deferred queue left residue after the storm"
                    );
                    if matches!(kind, FaultKind::MessageDuplication | FaultKind::MessageReorder) {
                        // Nothing was dropped, so the schedule is the
                        // fault-free schedule and the ledger absorbed
                        // every repeat: byte-identical committed state.
                        let clean = Simulation::new(make(FaultPlan::none())).expect("valid").run();
                        assert_eq!(faulted.final_master, clean.final_master);
                        assert_eq!(faulted.base_commits, clean.base_commits);
                        // The faulted run carries the flight recorder, so
                        // its records have wall-clock sync_ns; compare the
                        // normalized (timing-stripped) records.
                        assert_eq!(
                            faulted.metrics.normalized().records,
                            clean.metrics.normalized().records
                        );
                    }
                });
            }
        }
    }
}
