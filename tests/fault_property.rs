//! Property-based tests of fault-injected sync sessions.
//!
//! Three families, per the fault model in `replication::fault`:
//!
//! 1. the convergence oracle holds over arbitrary `(seed, rate, strategy)`
//!    draws — after any fault schedule, the committed history replayed
//!    through the serial path reproduces the final master;
//! 2. duplicated messages never double-install (session-ledger
//!    idempotence);
//! 3. a fault plan whose rates are all zero reproduces the legacy path
//!    byte-for-byte, whatever its seed.
//!
//! The deterministic seed-matrix test at the bottom sweeps every fault
//! kind x strategy; `FAULT_SEEDS` scales the number of schedules per cell
//! (CI runs the release build with a large matrix, the default keeps
//! debug-mode `cargo test` fast).

use proptest::prelude::*;

use histmerge::obs::{dump_on_failure, FlightRecorder};
use histmerge::replication::{
    FaultKind, FaultPlan, FaultRates, FaultStats, Protocol, SimConfig, Simulation, SyncPath,
    SyncStrategy,
};
use histmerge::semantics::CompactionConfig;
use histmerge::workload::generator::ScenarioParams;

const STRATEGIES: [SyncStrategy; 3] = [
    SyncStrategy::WindowStart { window: 120 },
    SyncStrategy::AdaptiveWindow { max_hb: 60 },
    SyncStrategy::PerDisconnectSnapshot,
];

fn config(workload_seed: u64, strategy: SyncStrategy, fault: FaultPlan) -> SimConfig {
    SimConfig {
        n_mobiles: 3,
        duration: 240,
        base_rate: 0.25,
        mobile_rate: 0.2,
        connect_every: 40,
        protocol: Protocol::merging_default(),
        strategy,
        workload: ScenarioParams {
            n_vars: 48,
            commutative_fraction: 0.5,
            guarded_fraction: 0.15,
            read_only_fraction: 0.1,
            hot_fraction: 0.1,
            hot_prob: 0.4,
            seed: workload_seed,
            ..ScenarioParams::default()
        },
        base_capacity: 120.0,
        sync_path: SyncPath::Session,
        fault,
        check_convergence: true,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// After ANY mixed fault schedule, the surviving committed history
    /// replays to the final master and no tentative transaction is
    /// resolved twice.
    #[test]
    fn convergence_oracle_holds_under_arbitrary_fault_mix(
        seed in 0u64..10_000,
        rate in 0.02f64..0.35,
        strategy_idx in 0usize..3,
    ) {
        let fault = FaultPlan::seeded(seed, FaultRates::uniform(rate));
        let report = Simulation::new(config(seed, STRATEGIES[strategy_idx], fault)).expect("valid sim config").run();
        let convergence = report.convergence.expect("oracle requested");
        prop_assert!(
            convergence.holds(),
            "oracle failed for seed {seed} rate {rate} strategy {}: {convergence:?}",
            STRATEGIES[strategy_idx].name()
        );
    }

    /// Duplicated messages are absorbed by the session ledger: no install
    /// or re-execution ever runs twice, and — since duplication drops
    /// nothing — the run matches the fault-free session run exactly.
    #[test]
    fn duplicated_messages_never_double_install(
        seed in 0u64..10_000,
        rate in 0.2f64..1.0,
        strategy_idx in 0usize..3,
    ) {
        let strategy = STRATEGIES[strategy_idx];
        let fault = FaultPlan::seeded(seed, FaultRates::only(FaultKind::MessageDuplication, rate));
        let faulted = Simulation::new(config(seed, strategy, fault)).expect("valid sim config").run();
        prop_assert_eq!(faulted.metrics.fault.double_resolutions, 0);
        prop_assert!(faulted.convergence.expect("oracle requested").holds());

        let clean = Simulation::new(config(seed, strategy, FaultPlan::none())).expect("valid sim config").run();
        prop_assert_eq!(&faulted.final_master, &clean.final_master);
        prop_assert_eq!(faulted.base_commits, clean.base_commits);
        prop_assert_eq!(&faulted.metrics.records, &clean.metrics.records);
    }

    /// An all-zero-rate plan is inert whatever its seed: the session path
    /// reproduces today's legacy reports byte-for-byte.
    #[test]
    fn zero_rate_plans_reproduce_legacy_reports(
        seed in 0u64..10_000,
        fault_seed in 0u64..10_000,
        strategy_idx in 0usize..3,
    ) {
        let strategy = STRATEGIES[strategy_idx];
        let fault = FaultPlan::seeded(fault_seed, FaultRates::zero());
        let session = Simulation::new(config(seed, strategy, fault)).expect("valid sim config").run();

        let mut legacy_config = config(seed, strategy, FaultPlan::none());
        legacy_config.sync_path = SyncPath::Legacy;
        legacy_config.check_convergence = false;
        let legacy = Simulation::new(legacy_config).expect("valid sim config").run();

        prop_assert_eq!(&session.final_master, &legacy.final_master);
        prop_assert_eq!(session.base_commits, legacy.base_commits);
        prop_assert_eq!(&session.cluster, &legacy.cluster);
        prop_assert_eq!(session.metrics.normalized(), legacy.metrics.normalized());
        prop_assert_eq!(session.metrics.fault, FaultStats::default());
    }
}

/// The deterministic sweep: every fault kind under every strategy, across
/// `FAULT_SEEDS` schedules per cell at rotating rates. CI's fault-matrix
/// job runs this in release with a large `FAULT_SEEDS`; the default keeps
/// the debug-mode suite quick.
#[test]
fn seed_matrix_convergence_oracle() {
    let seeds: u64 = std::env::var("FAULT_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(4);
    const RATES: [f64; 3] = [0.05, 0.15, 0.3];
    let strategies =
        [SyncStrategy::WindowStart { window: 120 }, SyncStrategy::PerDisconnectSnapshot];
    let mut schedules = 0usize;
    for kind in FaultKind::ALL {
        for strategy in strategies {
            for seed in 0..seeds {
                let rate = RATES[(seed % RATES.len() as u64) as usize];
                let fault = FaultPlan::seeded(seed, FaultRates::only(kind, rate));
                // Each cell runs with a flight recorder attached; a failed
                // oracle ships the run's last events as JSONL (CI uploads
                // the dump directory as an artifact).
                let tracer = FlightRecorder::handle(512);
                let mut cfg = config(seed, strategy, fault);
                cfg.tracer = tracer.clone();
                let label = format!("fault-matrix-{}-{}-seed{seed}", kind.name(), strategy.name());
                dump_on_failure(&tracer, &label, || {
                    let report = Simulation::new(cfg).expect("valid sim config").run();
                    let convergence = report.convergence.expect("oracle requested");
                    assert!(
                        convergence.holds(),
                        "oracle failed: kind {} strategy {} seed {seed} rate {rate}: \
                         {convergence:?}",
                        kind.name(),
                        strategy.name()
                    );
                });
                schedules += 1;
            }
        }
    }
    assert_eq!(schedules, FaultKind::ALL.len() * strategies.len() * seeds as usize);
}

/// The compaction row of the matrix: every fault kind against sessions
/// whose pending histories were squashed by the pre-merge compactor. Two
/// oracles per cell: the faulted compacted run must converge with zero
/// double resolutions (a composite install is idempotent under the
/// `(mobile, seq)` ledger key exactly like a plain install), and it must
/// commit the byte-identical base state the faulted *uncompacted* run
/// commits — compaction draws no randomness, so the fault schedule and
/// every committed value line up one-to-one.
#[test]
fn compaction_fault_matrix_converges() {
    let seeds: u64 = std::env::var("FAULT_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(4);
    const RATES: [f64; 3] = [0.05, 0.15, 0.3];
    let strategies =
        [SyncStrategy::WindowStart { window: 120 }, SyncStrategy::PerDisconnectSnapshot];
    for kind in FaultKind::ALL {
        for strategy in strategies {
            for seed in 0..seeds {
                let rate = RATES[(seed % RATES.len() as u64) as usize];
                let tracer = FlightRecorder::handle(512);
                let make = |compacted: bool| {
                    let fault = FaultPlan::seeded(seed, FaultRates::only(kind, rate));
                    let mut cfg = config(seed, strategy, fault);
                    if compacted {
                        cfg.compaction = CompactionConfig::enabled();
                        cfg.tracer = tracer.clone();
                    }
                    cfg
                };
                let label = format!(
                    "compaction-fault-matrix-{}-{}-seed{seed}",
                    kind.name(),
                    strategy.name()
                );
                dump_on_failure(&tracer, &label, || {
                    let squashed = Simulation::new(make(true)).expect("valid sim config").run();
                    let convergence = squashed.convergence.expect("oracle requested");
                    assert!(
                        convergence.holds(),
                        "compacted oracle failed: kind {} strategy {} seed {seed} rate {rate}: \
                         {convergence:?}",
                        kind.name(),
                        strategy.name()
                    );
                    assert_eq!(squashed.metrics.fault.double_resolutions, 0);
                    let plain = Simulation::new(make(false)).expect("valid sim config").run();
                    assert_eq!(
                        plain.final_master, squashed.final_master,
                        "committed state drifted"
                    );
                    assert_eq!(plain.base_commits, squashed.base_commits);
                    assert_eq!(plain.metrics.saved, squashed.metrics.saved);
                    assert_eq!(plain.metrics.reprocessed, squashed.metrics.reprocessed);
                });
            }
        }
    }
}
