//! The `histmerge` command-line tool: run paper scenarios and simulations
//! from the shell.
//!
//! ```text
//! histmerge example1                 reproduce Example 1 / Figure 1
//! histmerge merge [SEED]             merge one generated scenario, show the outcome
//! histmerge simulate [OPTIONS]       run the two-tier simulator
//! histmerge help                     this message
//! ```

use std::process::ExitCode;

use histmerge::core::merge::{MergeConfig, Merger};
use histmerge::history::fixtures::example1;
use histmerge::history::PrecedenceGraph;
use histmerge::replication::{Protocol, SimConfig, Simulation, SyncStrategy};
use histmerge::workload::generator::{generate, ScenarioParams};

const HELP: &str = "\
histmerge — history merging for two-tier replicated mobile data (ICDCS 1999)

USAGE:
    histmerge example1             reproduce Example 1 / Figure 1 of the paper
    histmerge merge [SEED]         merge one generated scenario (default seed 42)
    histmerge simulate [KEY=VAL]*  run the two-tier simulator, e.g.
                                   histmerge simulate mobiles=8 ticks=600 \\
                                       protocol=merging window=200 seed=7
    histmerge help                 show this message

SIMULATE KEYS (defaults in parentheses):
    mobiles   number of mobile nodes (4)
    ticks     simulation length (400)
    protocol  merging | reprocessing (merging)
    window    strategy-2 window ticks, or 'snapshot' for strategy 1 (100)
    connect   mean ticks between reconnects (50)
    seed      workload seed (42)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("example1") => cmd_example1(),
        Some("merge") => cmd_merge(args.get(1).map(String::as_str)),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("help") | None => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{HELP}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_example1() -> ExitCode {
    let ex = example1();
    let graph = PrecedenceGraph::build(&ex.arena, &ex.hm, &ex.hb);
    println!("H_m = {}", ex.hm);
    println!("H_b = {}\n", ex.hb);
    println!("precedence graph (Figure 1):");
    for (from, to, kind) in graph.edges() {
        println!("  {} -> {}  [{kind}]", ex.arena.get(*from).name(), ex.arena.get(*to).name());
    }
    match Merger::new(MergeConfig::default()).merge(&ex.arena, &ex.hm, &ex.hb, &ex.s0) {
        Ok(outcome) => {
            let names = |ids: &[histmerge::txn::TxnId]| {
                ids.iter().map(|i| ex.arena.get(*i).name()).collect::<Vec<_>>().join(" ")
            };
            println!("\nB         = {}", names(&outcome.bad.iter().copied().collect::<Vec<_>>()));
            println!(
                "affected  = {}",
                names(&outcome.affected.iter().copied().collect::<Vec<_>>())
            );
            println!("saved     = {}", names(&outcome.saved));
            println!("backed out= {}", names(&outcome.backed_out));
            println!("new master= {}", outcome.new_master);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("merge failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_merge(seed: Option<&str>) -> ExitCode {
    let seed: u64 = match seed.unwrap_or("42").parse() {
        Ok(s) => s,
        Err(_) => {
            eprintln!("SEED must be an integer");
            return ExitCode::FAILURE;
        }
    };
    let sc = generate(&ScenarioParams {
        n_vars: 32,
        n_tentative: 12,
        n_base: 8,
        hot_fraction: 0.15,
        hot_prob: 0.5,
        seed,
        ..ScenarioParams::default()
    });
    match Merger::new(MergeConfig::default()).merge(&sc.arena, &sc.hm, &sc.hb, &sc.s0) {
        Ok(outcome) => {
            println!("scenario seed {seed}: |Hm| = {}, |Hb| = {}", sc.hm.len(), sc.hb.len());
            println!("B = {:?}", outcome.bad.iter().map(|t| t.to_string()).collect::<Vec<_>>());
            println!(
                "saved {} / {} tentative transactions; {} backed out and re-executed",
                outcome.saved.len(),
                sc.hm.len(),
                outcome.backed_out.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("merge failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_simulate(kvs: &[String]) -> ExitCode {
    let mut mobiles = 4usize;
    let mut ticks = 400u64;
    let mut protocol = Protocol::merging_default();
    let mut window: Option<u64> = Some(100);
    let mut connect = 50u64;
    let mut seed = 42u64;

    for kv in kvs {
        let Some((k, v)) = kv.split_once('=') else {
            eprintln!("expected KEY=VAL, got `{kv}`");
            return ExitCode::FAILURE;
        };
        let ok = match k {
            "mobiles" => v.parse().map(|x| mobiles = x).is_ok(),
            "ticks" => v.parse().map(|x| ticks = x).is_ok(),
            "connect" => v.parse().map(|x| connect = x).is_ok(),
            "seed" => v.parse().map(|x| seed = x).is_ok(),
            "window" => {
                if v == "snapshot" {
                    window = None;
                    true
                } else {
                    v.parse().map(|x| window = Some(x)).is_ok()
                }
            }
            "protocol" => match v {
                "merging" => {
                    protocol = Protocol::merging_default();
                    true
                }
                "reprocessing" => {
                    protocol = Protocol::Reprocessing;
                    true
                }
                _ => false,
            },
            _ => false,
        };
        if !ok {
            eprintln!("bad option `{kv}`\n\n{HELP}");
            return ExitCode::FAILURE;
        }
    }

    let strategy = match window {
        Some(w) => SyncStrategy::WindowStart { window: w },
        None => SyncStrategy::PerDisconnectSnapshot,
    };
    let config = SimConfig {
        n_mobiles: mobiles,
        duration: ticks,
        connect_every: connect,
        protocol,
        strategy,
        workload: ScenarioParams { seed, ..ScenarioParams::default() },
        ..SimConfig::default()
    };
    let report = Simulation::new(config).expect("valid sim config").run();
    let m = &report.metrics;
    println!("protocol            : {}", protocol.name());
    println!("strategy            : {}", strategy.name());
    println!("tentative generated : {}", m.tentative_generated);
    println!("saved by merging    : {}", m.saved);
    println!("backed out          : {}", m.backed_out);
    println!("reprocessed         : {}", m.reprocessed);
    println!("merge failures      : {}", m.merge_failures);
    println!("window misses       : {}", m.window_misses);
    println!("save ratio          : {:.1}%", 100.0 * m.save_ratio());
    println!(
        "cost                : comm={:.0} baseCPU={:.0} baseIO={:.0} mobileCPU={:.0} total={:.0}",
        m.cost.comm,
        m.cost.base_cpu,
        m.cost.base_io,
        m.cost.mobile_cpu,
        m.cost.total()
    );
    println!("peak base backlog   : {:.0}", m.peak_backlog);
    ExitCode::SUCCESS
}
