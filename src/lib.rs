//! # histmerge
//!
//! A Rust implementation of *"Incorporating Transaction Semantics to Reduce
//! Reprocessing Overhead in Replicated Mobile Data Applications"*
//! (Peng Liu, Paul Ammann, Sushil Jajodia — ICDCS 1999).
//!
//! Two-tier replication (Gray et al., SIGMOD 1996) lets disconnected mobile
//! nodes run *tentative* transactions that are re-executed from scratch at
//! the always-connected base nodes upon reconnection. `histmerge` implements
//! the paper's alternative: **merge** the tentative history into the base
//! history, back out only the transactions whose conflicts demand it, and
//! save the rest — using a family of semantics-aware history *rewriting*
//! algorithms.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`txn`] — the transaction language, interpreter, states and fixes;
//! * [`history`] — serial/augmented histories, the precedence graph,
//!   back-out strategies;
//! * [`semantics`] — can-follow / commutativity / can-precede oracles;
//! * [`core`] — the rewriting algorithms (Algorithms 1 & 2 plus the RFTC
//!   and CBTR baselines), pruning (compensation & undo), and the merge
//!   pipeline;
//! * [`replication`] — a deterministic two-tier replication simulator with
//!   both the reprocessing baseline and the merging protocol;
//! * [`workload`] — canned transaction libraries, scenario generators, and
//!   the Section 7.1 cost model;
//! * [`obs`] — flight-recorder tracing, phase timers, and trace-checked
//!   invariants (dependency-free, disabled by default).
//!
//! # Quickstart
//!
//! Reproduce Example 1 of the paper end to end:
//!
//! ```rust
//! use histmerge::core::merge::{MergeConfig, Merger};
//! use histmerge::history::fixtures::example1;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ex = example1();
//! let outcome = Merger::new(MergeConfig::default())
//!     .merge(&ex.arena, &ex.hm, &ex.hb, &ex.s0)?;
//! assert_eq!(outcome.saved, vec![ex.m[0], ex.m[1]]); // Tm1, Tm2 saved
//! assert_eq!(outcome.backed_out.len(), 2);           // Tm3, Tm4 backed out
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use histmerge_core as core;
pub use histmerge_history as history;
pub use histmerge_obs as obs;
pub use histmerge_replication as replication;
pub use histmerge_semantics as semantics;
pub use histmerge_txn as txn;
pub use histmerge_workload as workload;
