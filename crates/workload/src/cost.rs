//! The cost model of Section 7.1.
//!
//! The paper compares the merging protocol against plain two-tier
//! reprocessing by decomposing both into (1) communication between mobile
//! and base nodes, (2) computing at the mobile node, and (3) computing at
//! the base node (CPU and forced-log I/O). This module renders that
//! decomposition executable: experiments plug in measured aggregates
//! (history lengths, saved counts, read/write set sizes, precedence-graph
//! size) and obtain comparable cost reports.
//!
//! Absolute constants are configurable and deliberately unit-free; the
//! experiments report *shapes* — who wins as `|SAV|` grows, where the
//! crossover sits — not wall-clock times.

use serde::Serialize;

/// Tunable cost constants. Defaults are chosen to reflect the paper's
/// qualitative discussion: per-transaction query processing and forced-log
/// I/O dominate base-node costs, communication is per-message plus
/// per-byte, and mobile-side graph/rewrite work is cheap per entry but
/// quadratic in history length for rewriting.
#[derive(Debug, Clone, Serialize)]
pub struct CostParams {
    /// Fixed cost per message exchanged between a mobile and a base node.
    pub cost_per_message: f64,
    /// Cost per byte transmitted.
    pub cost_per_byte: f64,
    /// Bytes to ship one transaction's code and input arguments
    /// (reprocessing; canned systems may send a type tag instead — lower
    /// this constant to model that).
    pub bytes_txn_code: u64,
    /// Bytes to ship one transaction's execution result back.
    pub bytes_result: u64,
    /// Bytes per read/write-set entry shipped for graph construction.
    pub bytes_rw_entry: u64,
    /// Bytes per forwarded update entry (item id + value).
    pub bytes_update_entry: u64,
    /// Bytes per precedence-graph edge of `G(H_m)` shipped to the base.
    pub bytes_graph_edge: u64,
    /// Base CPU: transforming one tentative transaction into a base
    /// transaction.
    pub base_transform_per_txn: f64,
    /// Base CPU: query processing (parse, validate, optimize, execute) per
    /// statement.
    pub base_query_per_stmt: f64,
    /// Base CPU: concurrency control per transaction.
    pub base_cc_per_txn: f64,
    /// Base I/O: one forced log write.
    pub base_io_force: f64,
    /// Base CPU: building `G(H_m, H_b)` per log entry scanned.
    pub base_graph_per_entry: f64,
    /// Base CPU: computing `B`, per precedence-graph edge — Davidson's
    /// back-out strategies (two-cycle detection, greedy cycle breaking)
    /// are near-linear in the number of conflict edges.
    pub base_backout_per_edge: f64,
    /// Mobile CPU: building `G(H_m)` per log entry.
    pub mobile_graph_per_entry: f64,
    /// Mobile CPU: rewriting, per transaction pair (Algorithms 1 and 2 are
    /// `O(n^2)`).
    pub mobile_rewrite_per_pair: f64,
    /// Mobile CPU: pruning, per pruned transaction.
    pub mobile_prune_per_txn: f64,
    /// Mobile CPU: informing the user about one re-executed transaction.
    pub mobile_inform_per_txn: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            cost_per_message: 50.0,
            cost_per_byte: 0.01,
            bytes_txn_code: 512,
            bytes_result: 64,
            bytes_rw_entry: 8,
            bytes_update_entry: 16,
            bytes_graph_edge: 8,
            base_transform_per_txn: 5.0,
            base_query_per_stmt: 10.0,
            base_cc_per_txn: 3.0,
            base_io_force: 20.0,
            base_graph_per_entry: 0.5,
            base_backout_per_edge: 0.05,
            mobile_graph_per_entry: 0.5,
            mobile_rewrite_per_pair: 0.05,
            mobile_prune_per_txn: 2.0,
            mobile_inform_per_txn: 0.5,
        }
    }
}

/// A cost report, decomposed as in Section 7.1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct CostReport {
    /// Communication between the mobile node and the base nodes.
    pub comm: f64,
    /// CPU at the base node.
    pub base_cpu: f64,
    /// Forced-log I/O at the base node.
    pub base_io: f64,
    /// CPU at the mobile node.
    pub mobile_cpu: f64,
}

impl CostReport {
    /// Total cost across all components.
    pub fn total(&self) -> f64 {
        self.comm + self.base_cpu + self.base_io + self.mobile_cpu
    }

    /// Component-wise sum.
    pub fn add(&self, other: &CostReport) -> CostReport {
        CostReport {
            comm: self.comm + other.comm,
            base_cpu: self.base_cpu + other.base_cpu,
            base_io: self.base_io + other.base_io,
            mobile_cpu: self.mobile_cpu + other.mobile_cpu,
        }
    }
}

/// Aggregates describing a batch of transactions to reprocess the old way.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ReprocessStats {
    /// Number of transactions re-executed at the base.
    pub n_txns: usize,
    /// Total statements across those transactions.
    pub total_stmts: usize,
}

/// Cost of reprocessing `stats.n_txns` tentative transactions under plain
/// two-tier replication: ship code and arguments up, execute each as a
/// fresh base transaction (query processing, concurrency control, one
/// forced log write per commit), ship results back, inform the user.
pub fn reprocessing_cost(p: &CostParams, stats: &ReprocessStats) -> CostReport {
    let n = stats.n_txns as f64;
    if stats.n_txns == 0 {
        return CostReport::default();
    }
    let bytes = n * (p.bytes_txn_code + p.bytes_result) as f64;
    CostReport {
        comm: 2.0 * p.cost_per_message + bytes * p.cost_per_byte,
        base_cpu: n * (p.base_transform_per_txn + p.base_cc_per_txn)
            + stats.total_stmts as f64 * p.base_query_per_stmt,
        base_io: n * p.base_io_force,
        mobile_cpu: n * p.mobile_inform_per_txn,
    }
}

/// Aggregates describing one merge.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct MergeStats {
    /// Tentative history length.
    pub hm_len: usize,
    /// Base history length (the sub-history since the common start state).
    pub hb_len: usize,
    /// Total read/write-set entries across `H_m` (shipped for graph
    /// construction).
    pub rw_entries: usize,
    /// Edges of the mobile-side precedence graph `G(H_m)` (shipped to the
    /// base for graph construction).
    pub graph_edges: usize,
    /// Edges of the full precedence graph `G(H_m, H_b)` (back-out input).
    pub full_graph_edges: usize,
    /// Transactions saved by the rewrite.
    pub n_saved: usize,
    /// Transactions backed out (will be reprocessed the old way).
    pub n_backed_out: usize,
    /// Total statements across backed-out transactions.
    pub backed_out_stmts: usize,
    /// Distinct items whose final values are forwarded (step 5).
    pub forwarded_items: usize,
}

/// Cost of the merging protocol (Section 2.1 steps 1–6) for one merge.
///
/// Includes the old-way reprocessing of the backed-out transactions
/// (step 6), so a merge that saves nothing costs strictly more than plain
/// reprocessing — matching the paper's conclusion that "when the size of
/// SAV is very small the merging protocol will probably lose".
pub fn merging_cost(p: &CostParams, stats: &MergeStats) -> CostReport {
    // Step 1 communication: ship read/write sets and G(H_m); step 2 reply:
    // ship B back; step 5: forward updates (one message, one forced log).
    let up_bytes = stats.rw_entries as f64 * p.bytes_rw_entry as f64
        + stats.graph_edges as f64 * p.bytes_graph_edge as f64;
    let b_bytes = stats.n_backed_out as f64 * p.bytes_rw_entry as f64;
    let fwd_bytes = stats.forwarded_items as f64 * p.bytes_update_entry as f64;
    let comm = 3.0 * p.cost_per_message + (up_bytes + b_bytes + fwd_bytes) * p.cost_per_byte;

    // Base: build G(H_m, H_b) from the logs, compute B, install the
    // forwarded updates within a single transaction (one forced log write).
    let nodes = (stats.hm_len + stats.hb_len) as f64;
    let base_cpu = nodes * p.base_graph_per_entry
        + stats.full_graph_edges as f64 * p.base_backout_per_edge
        + stats.forwarded_items as f64 * p.base_query_per_stmt
        + p.base_cc_per_txn;
    let base_io = p.base_io_force;

    // Mobile: build G(H_m), rewrite (O(n^2)), prune the suffix.
    let n = stats.hm_len as f64;
    let mobile_cpu = n * p.mobile_graph_per_entry
        + n * n * p.mobile_rewrite_per_pair
        + stats.n_backed_out as f64 * p.mobile_prune_per_txn;

    let merge = CostReport { comm, base_cpu, base_io, mobile_cpu };
    // Step 6: reprocess the backed-out transactions the old way.
    let reexec = reprocessing_cost(
        p,
        &ReprocessStats { n_txns: stats.n_backed_out, total_stmts: stats.backed_out_stmts },
    );
    merge.add(&reexec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_transactions_cost_nothing_to_reprocess() {
        let p = CostParams::default();
        let r = reprocessing_cost(&p, &ReprocessStats::default());
        assert_eq!(r.total(), 0.0);
    }

    #[test]
    fn reprocessing_scales_linearly() {
        let p = CostParams::default();
        let one = reprocessing_cost(&p, &ReprocessStats { n_txns: 1, total_stmts: 3 });
        let ten = reprocessing_cost(&p, &ReprocessStats { n_txns: 10, total_stmts: 30 });
        // Linear in everything except the fixed two messages.
        let fixed = 2.0 * p.cost_per_message;
        assert!((ten.total() - fixed - 10.0 * (one.total() - fixed)).abs() < 1e-9);
        assert!(ten.base_io > one.base_io);
    }

    #[test]
    fn merging_wins_when_sav_is_large() {
        // 100 tentative transactions, all saved: merging pays one forced
        // log write instead of 100.
        let p = CostParams::default();
        let merge = merging_cost(
            &p,
            &MergeStats {
                hm_len: 100,
                hb_len: 50,
                rw_entries: 400,
                graph_edges: 300,
                full_graph_edges: 900,
                n_saved: 100,
                n_backed_out: 0,
                backed_out_stmts: 0,
                forwarded_items: 120,
            },
        );
        let reprocess = reprocessing_cost(&p, &ReprocessStats { n_txns: 100, total_stmts: 300 });
        assert!(
            merge.total() < reprocess.total(),
            "merge {} !< reprocess {}",
            merge.total(),
            reprocess.total()
        );
        assert!(merge.base_io < reprocess.base_io);
    }

    #[test]
    fn merging_loses_when_sav_is_empty() {
        // Everything backed out: the merge machinery is pure overhead on
        // top of the reprocessing it still has to do.
        let p = CostParams::default();
        let merge = merging_cost(
            &p,
            &MergeStats {
                hm_len: 20,
                hb_len: 50,
                rw_entries: 80,
                graph_edges: 60,
                full_graph_edges: 400,
                n_saved: 0,
                n_backed_out: 20,
                backed_out_stmts: 60,
                forwarded_items: 0,
            },
        );
        let reprocess = reprocessing_cost(&p, &ReprocessStats { n_txns: 20, total_stmts: 60 });
        assert!(merge.total() > reprocess.total());
    }

    #[test]
    fn report_arithmetic() {
        let a = CostReport { comm: 1.0, base_cpu: 2.0, base_io: 3.0, mobile_cpu: 4.0 };
        let b = CostReport { comm: 10.0, ..Default::default() };
        let c = a.add(&b);
        assert_eq!(c.comm, 11.0);
        assert_eq!(c.total(), 20.0);
        assert_eq!(a.total(), 10.0);
    }

    #[test]
    fn default_params_are_positive() {
        let p = CostParams::default();
        assert!(p.cost_per_message > 0.0);
        assert!(p.base_io_force > 0.0);
        assert!(p.base_backout_per_edge > 0.0);
        assert!(p.mobile_rewrite_per_pair > 0.0);
    }
}
