//! A streaming canned workload: the paper's "canned system" setting for
//! the replication simulator.
//!
//! Two flavors, selected by [`CannedFlavor`]:
//!
//! * [`CannedFlavor::BankPromo`] (the default) mixes the [`Bank`] and
//!   [`Promotions`] libraries — additive/scale commutativity plus the
//!   correlated-guard pairs only the declared tables can see;
//! * [`CannedFlavor::Inventory`] mixes the [`Inventory`] and
//!   [`Reservations`] libraries — restock/sell/cap stock movements plus
//!   compensation-heavy reserve/cancel paths, where every booking
//!   movement declares its inverse (Section 6.1 pruning by compensation).
//!
//! Either flavor runs over one shared type registry, so every generated
//! transaction carries its type id and the stacked declared tables apply
//! — the full Section 5.1 canned-system configuration (offline-verified
//! relations consulted in O(1) at merge time).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use histmerge_history::TxnArena;
use histmerge_semantics::{OracleStack, StaticAnalyzer};
use histmerge_txn::registry::TypeRegistry;
use histmerge_txn::{DbState, TxnId, TxnKind, VarId};

use crate::canned::{Bank, Inventory, Promotions, Reservations};

/// Which canned library pair the mix streams from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CannedFlavor {
    /// Bank accounts + seasonal promotions (the original mix).
    #[default]
    BankPromo,
    /// Inventory stock + flight reservations with compensating cancels.
    Inventory,
}

/// Parameters of a canned mix.
///
/// The fraction fields are interpreted per flavor — the same four-way
/// roll drives both:
///
/// | field | BankPromo | Inventory |
/// |---|---|---|
/// | `deposit_frac` | deposits | restocks |
/// | `withdraw_frac` | withdrawals | sells |
/// | `bonus_frac` | bonuses (rest: rebates) | reserves (rest: cancels) |
/// | `n_accounts` | bank accounts | flights (each a seats/booked pair) |
/// | `n_prices` | promoted prices | stock items |
#[derive(Debug, Clone)]
pub struct CannedMixParams {
    /// Number of bank accounts (BankPromo) or flights (Inventory).
    pub n_accounts: u32,
    /// Number of promoted price items (BankPromo) or stock items
    /// (Inventory).
    pub n_prices: u32,
    /// Fraction of deposits / restocks.
    pub deposit_frac: f64,
    /// Fraction of withdrawals / sells.
    pub withdraw_frac: f64,
    /// Fraction of seasonal bonuses / reservations (the rest are rebates
    /// / cancels).
    pub bonus_frac: f64,
    /// Which library pair to stream from.
    pub flavor: CannedFlavor,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CannedMixParams {
    fn default() -> Self {
        CannedMixParams {
            n_accounts: 16,
            n_prices: 8,
            deposit_frac: 0.5,
            withdraw_frac: 0.1,
            bonus_frac: 0.25,
            flavor: CannedFlavor::BankPromo,
            seed: 42,
        }
    }
}

/// The flavor-specific libraries, registered over one shared registry.
#[derive(Debug)]
enum Libraries {
    BankPromo { bank: Bank, promo: Promotions },
    Inventory { inv: Inventory, res: Reservations },
}

/// Streaming generator of typed canned transactions.
///
/// Variable layout (BankPromo): item 0 is the shared `season` indicator;
/// items `1..=n_prices` are promoted prices; the following `n_accounts`
/// items are bank accounts.
///
/// Variable layout (Inventory): item 0 is reserved; items `1..=n_prices`
/// are stock items; then `n_accounts` *pairs* of `(seats, booked)` items,
/// one pair per flight.
#[derive(Debug)]
pub struct CannedMix {
    params: CannedMixParams,
    libs: Libraries,
    rng: StdRng,
    counter: usize,
}

impl CannedMix {
    /// Creates the mix with a shared registry across both libraries.
    pub fn new(params: CannedMixParams) -> Self {
        let mut registry = TypeRegistry::new();
        let libs = match params.flavor {
            CannedFlavor::BankPromo => Libraries::BankPromo {
                bank: Bank::register_in(&mut registry),
                promo: Promotions::register_in(&mut registry),
            },
            CannedFlavor::Inventory => Libraries::Inventory {
                inv: Inventory::register_in(&mut registry),
                res: Reservations::register_in(&mut registry),
            },
        };
        let rng = StdRng::seed_from_u64(params.seed);
        CannedMix { params, libs, rng, counter: 0 }
    }

    /// The `season` indicator item (BankPromo layout).
    pub fn season(&self) -> VarId {
        VarId::new(0)
    }

    /// The `i`-th price (BankPromo) or stock (Inventory) item.
    pub fn price(&self, i: u32) -> VarId {
        VarId::new(1 + (i % self.params.n_prices.max(1)))
    }

    /// The `i`-th account item (BankPromo layout).
    pub fn account(&self, i: u32) -> VarId {
        VarId::new(1 + self.params.n_prices + (i % self.params.n_accounts.max(1)))
    }

    /// The `i`-th flight's free-seat item (Inventory layout).
    pub fn seats(&self, i: u32) -> VarId {
        VarId::new(1 + self.params.n_prices + 2 * (i % self.params.n_accounts.max(1)))
    }

    /// The `i`-th flight's booking tally (Inventory layout).
    pub fn booked(&self, i: u32) -> VarId {
        VarId::new(2 + self.params.n_prices + 2 * (i % self.params.n_accounts.max(1)))
    }

    /// The initial state matching the layout. BankPromo: balances and
    /// prices at 500, the season in-season (> 200). Inventory: stock at
    /// 500, every flight opened with 4 free seats and 4 live bookings —
    /// small counters on purpose, so reserve/cancel guards trip near the
    /// boundary and the compensation paths stay hot.
    pub fn initial_state(&self) -> DbState {
        match self.params.flavor {
            CannedFlavor::BankPromo => {
                let n = 1 + self.params.n_prices + self.params.n_accounts;
                let mut s = DbState::uniform(n, 500);
                s.set(self.season(), 250);
                s
            }
            CannedFlavor::Inventory => {
                let n = 1 + self.params.n_prices + 2 * self.params.n_accounts;
                let mut s = DbState::uniform(n, 500);
                s.set(VarId::new(0), 0);
                for flight in 0..self.params.n_accounts {
                    s.set(self.seats(flight), 4);
                    s.set(self.booked(flight), 4);
                }
                s
            }
        }
    }

    /// The canned-system oracle: static analysis plus both libraries'
    /// offline-verified tables.
    pub fn oracle(&self) -> OracleStack {
        let stack = OracleStack::new().with(Box::new(StaticAnalyzer::new()));
        match &self.libs {
            Libraries::BankPromo { bank, promo } => stack
                .with(Box::new(bank.declared_relations()))
                .with(Box::new(promo.declared_relations())),
            Libraries::Inventory { inv, res } => stack
                .with(Box::new(inv.declared_relations()))
                .with(Box::new(res.declared_relations())),
        }
    }

    /// Allocates the next random canned transaction. Both flavors draw
    /// from the RNG in the same positions, so a seed's draw sequence is
    /// flavor-independent.
    pub fn next_txn(&mut self, arena: &mut TxnArena, kind: TxnKind) -> TxnId {
        let (deposit_frac, withdraw_frac, bonus_frac) =
            (self.params.deposit_frac, self.params.withdraw_frac, self.params.bonus_frac);
        let (n_accounts, n_prices) = (self.params.n_accounts.max(1), self.params.n_prices.max(1));
        let roll: f64 = self.rng.gen();
        self.counter += 1;
        let name =
            format!("{}{}", if kind == TxnKind::Tentative { "m" } else { "b" }, self.counter);
        let season = self.season();
        let acct_pick = self.rng.gen_range(0..n_accounts);
        let price_pick = self.rng.gen_range(0..n_prices);
        let amt = self.rng.gen_range(1..100);
        let (seats, booked) = (self.seats(acct_pick), self.booked(acct_pick));
        match &self.libs {
            Libraries::BankPromo { bank, promo } => {
                if roll < deposit_frac {
                    let acct = self.account(acct_pick);
                    arena.alloc(|id| bank.deposit(id, &name, acct, amt).with_kind(kind).with_id(id))
                } else if roll < deposit_frac + withdraw_frac {
                    let acct = self.account(acct_pick);
                    arena
                        .alloc(|id| bank.withdraw(id, &name, acct, amt).with_kind(kind).with_id(id))
                } else if roll < deposit_frac + withdraw_frac + bonus_frac {
                    let price = self.price(price_pick);
                    arena.alloc(|id| {
                        promo.bonus(id, &name, season, price).with_kind(kind).with_id(id)
                    })
                } else {
                    let price = self.price(price_pick);
                    arena.alloc(|id| {
                        promo.rebate(id, &name, season, price).with_kind(kind).with_id(id)
                    })
                }
            }
            Libraries::Inventory { inv, res } => {
                if roll < deposit_frac {
                    let item = self.price(price_pick);
                    arena.alloc(|id| {
                        inv.restock(id, &name, item, amt % 20 + 1).with_kind(kind).with_id(id)
                    })
                } else if roll < deposit_frac + withdraw_frac {
                    let item = self.price(price_pick);
                    arena.alloc(|id| {
                        inv.sell(id, &name, item, amt % 10 + 1).with_kind(kind).with_id(id)
                    })
                } else if roll < deposit_frac + withdraw_frac + bonus_frac {
                    arena.alloc(|id| {
                        res.reserve(id, &name, seats, booked).with_kind(kind).with_id(id)
                    })
                } else {
                    arena.alloc(|id| {
                        res.cancel(id, &name, seats, booked).with_kind(kind).with_id(id)
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_semantics::SemanticOracle;

    #[test]
    fn layout_is_disjoint() {
        let mix = CannedMix::new(CannedMixParams::default());
        assert_eq!(mix.season().index(), 0);
        assert!(mix.price(0).index() >= 1);
        assert!(mix.account(0).index() > mix.price(7).index());
        let s = mix.initial_state();
        assert_eq!(s.get(mix.season()), 250);
        assert_eq!(s.get(mix.account(3)), 500);
    }

    #[test]
    fn inventory_layout_pairs_are_disjoint() {
        let mix = CannedMix::new(CannedMixParams {
            flavor: CannedFlavor::Inventory,
            ..CannedMixParams::default()
        });
        let n = mix.params.n_accounts;
        let mut seen = std::collections::HashSet::new();
        for flight in 0..n {
            assert!(seen.insert(mix.seats(flight)), "seats var reused");
            assert!(seen.insert(mix.booked(flight)), "booked var reused");
            assert!(mix.seats(flight).index() > mix.price(7).index());
        }
        let s = mix.initial_state();
        assert_eq!(s.get(mix.seats(0)), 4);
        assert_eq!(s.get(mix.booked(0)), 4);
        assert_eq!(s.get(mix.price(0)), 500);
    }

    #[test]
    fn generates_typed_transactions() {
        for flavor in [CannedFlavor::BankPromo, CannedFlavor::Inventory] {
            let mut mix = CannedMix::new(CannedMixParams { flavor, ..CannedMixParams::default() });
            let mut arena = TxnArena::new();
            let mut typed = 0;
            for _ in 0..50 {
                let id = mix.next_txn(&mut arena, TxnKind::Tentative);
                if arena.get(id).type_id().is_some() {
                    typed += 1;
                }
            }
            assert_eq!(typed, 50, "every canned transaction carries its type ({flavor:?})");
        }
    }

    #[test]
    fn oracle_knows_promotions() {
        let mut mix = CannedMix::new(CannedMixParams {
            bonus_frac: 1.0,
            deposit_frac: 0.0,
            withdraw_frac: 0.0,
            ..Default::default()
        });
        let mut arena = TxnArena::new();
        let a = mix.next_txn(&mut arena, TxnKind::Tentative);
        let b = mix.next_txn(&mut arena, TxnKind::Tentative);
        let oracle = mix.oracle();
        // Bonuses on the same price commute via correlated guards — only
        // the declared layer knows.
        let (ta, tb) = (arena.get(a), arena.get(b));
        if ta.writeset() == tb.writeset() {
            assert!(oracle.commutes_backward_through(tb, ta));
        }
    }

    #[test]
    fn inventory_flavor_streams_compensatable_bookings() {
        let mut mix = CannedMix::new(CannedMixParams {
            flavor: CannedFlavor::Inventory,
            bonus_frac: 1.0,
            deposit_frac: 0.0,
            withdraw_frac: 0.0,
            ..CannedMixParams::default()
        });
        let mut arena = TxnArena::new();
        let oracle = mix.oracle();
        let a = mix.next_txn(&mut arena, TxnKind::Tentative);
        let b = mix.next_txn(&mut arena, TxnKind::Tentative);
        let (ta, tb) = (arena.get(a), arena.get(b));
        // Every reservation ships its compensation.
        assert!(ta.inverse().is_some(), "reserve must declare its cancel");
        assert!(tb.inverse().is_some());
        // Same-type pairs commute per the declared table.
        if ta.writeset() == tb.writeset() {
            assert!(oracle.commutes_backward_through(tb, ta));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed, flavor| {
            let mut mix = CannedMix::new(CannedMixParams { seed, flavor, ..Default::default() });
            let mut arena = TxnArena::new();
            (0..20)
                .map(|_| {
                    let id = mix.next_txn(&mut arena, TxnKind::Tentative);
                    arena.get(id).writeset().to_string()
                })
                .collect::<Vec<_>>()
        };
        for flavor in [CannedFlavor::BankPromo, CannedFlavor::Inventory] {
            assert_eq!(gen(5, flavor), gen(5, flavor));
            assert_ne!(gen(5, flavor), gen(6, flavor));
        }
    }
}
