//! A streaming canned workload: the paper's "canned system" setting for
//! the replication simulator.
//!
//! Mixes the [`Bank`] and [`Promotions`] libraries over a shared type
//! registry, so every generated transaction carries its type id and the
//! stacked declared tables apply — the full Section 5.1 canned-system
//! configuration (offline-verified relations consulted in O(1) at merge
//! time).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use histmerge_history::TxnArena;
use histmerge_semantics::{OracleStack, StaticAnalyzer};
use histmerge_txn::registry::TypeRegistry;
use histmerge_txn::{DbState, TxnId, TxnKind, VarId};

use crate::canned::{Bank, Promotions};

/// Parameters of a canned banking + promotions mix.
#[derive(Debug, Clone)]
pub struct CannedMixParams {
    /// Number of bank accounts.
    pub n_accounts: u32,
    /// Number of promoted price items.
    pub n_prices: u32,
    /// Fraction of deposits.
    pub deposit_frac: f64,
    /// Fraction of withdrawals.
    pub withdraw_frac: f64,
    /// Fraction of seasonal bonuses (the rest are rebates).
    pub bonus_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CannedMixParams {
    fn default() -> Self {
        CannedMixParams {
            n_accounts: 16,
            n_prices: 8,
            deposit_frac: 0.5,
            withdraw_frac: 0.1,
            bonus_frac: 0.25,
            seed: 42,
        }
    }
}

/// Streaming generator of typed canned transactions.
///
/// Variable layout: item 0 is the shared `season` indicator; items
/// `1..=n_prices` are promoted prices; the following `n_accounts` items are
/// bank accounts.
#[derive(Debug)]
pub struct CannedMix {
    params: CannedMixParams,
    bank: Bank,
    promo: Promotions,
    rng: StdRng,
    counter: usize,
}

impl CannedMix {
    /// Creates the mix with a shared registry across both libraries.
    pub fn new(params: CannedMixParams) -> Self {
        let mut registry = TypeRegistry::new();
        let bank = Bank::register_in(&mut registry);
        let promo = Promotions::register_in(&mut registry);
        let rng = StdRng::seed_from_u64(params.seed);
        CannedMix { params, bank, promo, rng, counter: 0 }
    }

    /// The `season` indicator item.
    pub fn season(&self) -> VarId {
        VarId::new(0)
    }

    /// The `i`-th price item.
    pub fn price(&self, i: u32) -> VarId {
        VarId::new(1 + (i % self.params.n_prices.max(1)))
    }

    /// The `i`-th account item.
    pub fn account(&self, i: u32) -> VarId {
        VarId::new(1 + self.params.n_prices + (i % self.params.n_accounts.max(1)))
    }

    /// The initial state matching the layout: balances and prices at 500,
    /// the season in-season (> 200).
    pub fn initial_state(&self) -> DbState {
        let n = 1 + self.params.n_prices + self.params.n_accounts;
        let mut s = DbState::uniform(n, 500);
        s.set(self.season(), 250);
        s
    }

    /// The canned-system oracle: static analysis plus both libraries'
    /// offline-verified tables.
    pub fn oracle(&self) -> OracleStack {
        OracleStack::new()
            .with(Box::new(StaticAnalyzer::new()))
            .with(Box::new(self.bank.declared_relations()))
            .with(Box::new(self.promo.declared_relations()))
    }

    /// Allocates the next random canned transaction.
    pub fn next_txn(&mut self, arena: &mut TxnArena, kind: TxnKind) -> TxnId {
        let (deposit_frac, withdraw_frac, bonus_frac) =
            (self.params.deposit_frac, self.params.withdraw_frac, self.params.bonus_frac);
        let (n_accounts, n_prices) = (self.params.n_accounts.max(1), self.params.n_prices.max(1));
        let roll: f64 = self.rng.gen();
        self.counter += 1;
        let name =
            format!("{}{}", if kind == TxnKind::Tentative { "m" } else { "b" }, self.counter);
        let season = self.season();
        let acct_pick = self.rng.gen_range(0..n_accounts);
        let price_pick = self.rng.gen_range(0..n_prices);
        let amt = self.rng.gen_range(1..100);
        if roll < deposit_frac {
            let acct = self.account(acct_pick);
            arena.alloc(|id| self.bank.deposit(id, &name, acct, amt).with_kind(kind).with_id(id))
        } else if roll < deposit_frac + withdraw_frac {
            let acct = self.account(acct_pick);
            arena.alloc(|id| self.bank.withdraw(id, &name, acct, amt).with_kind(kind).with_id(id))
        } else if roll < deposit_frac + withdraw_frac + bonus_frac {
            let price = self.price(price_pick);
            arena.alloc(|id| self.promo.bonus(id, &name, season, price).with_kind(kind).with_id(id))
        } else {
            let price = self.price(price_pick);
            arena
                .alloc(|id| self.promo.rebate(id, &name, season, price).with_kind(kind).with_id(id))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_semantics::SemanticOracle;

    #[test]
    fn layout_is_disjoint() {
        let mix = CannedMix::new(CannedMixParams::default());
        assert_eq!(mix.season().index(), 0);
        assert!(mix.price(0).index() >= 1);
        assert!(mix.account(0).index() > mix.price(7).index());
        let s = mix.initial_state();
        assert_eq!(s.get(mix.season()), 250);
        assert_eq!(s.get(mix.account(3)), 500);
    }

    #[test]
    fn generates_typed_transactions() {
        let mut mix = CannedMix::new(CannedMixParams::default());
        let mut arena = TxnArena::new();
        let mut typed = 0;
        for _ in 0..50 {
            let id = mix.next_txn(&mut arena, TxnKind::Tentative);
            if arena.get(id).type_id().is_some() {
                typed += 1;
            }
        }
        assert_eq!(typed, 50, "every canned transaction carries its type");
    }

    #[test]
    fn oracle_knows_promotions() {
        let mut mix = CannedMix::new(CannedMixParams {
            bonus_frac: 1.0,
            deposit_frac: 0.0,
            withdraw_frac: 0.0,
            ..Default::default()
        });
        let mut arena = TxnArena::new();
        let a = mix.next_txn(&mut arena, TxnKind::Tentative);
        let b = mix.next_txn(&mut arena, TxnKind::Tentative);
        let oracle = mix.oracle();
        // Bonuses on the same price commute via correlated guards — only
        // the declared layer knows.
        let (ta, tb) = (arena.get(a), arena.get(b));
        if ta.writeset() == tb.writeset() {
            assert!(oracle.commutes_backward_through(tb, ta));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            let mut mix = CannedMix::new(CannedMixParams { seed, ..Default::default() });
            let mut arena = TxnArena::new();
            (0..20)
                .map(|_| {
                    let id = mix.next_txn(&mut arena, TxnKind::Tentative);
                    arena.get(id).writeset().to_string()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(5), gen(5));
        assert_ne!(gen(5), gen(6));
    }
}
