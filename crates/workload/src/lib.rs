//! Workloads for `histmerge`: canned transaction libraries, random merge
//! scenarios, and the Section 7.1 cost model.
//!
//! Section 5.1 of the paper targets "canned systems which are widely used
//! in real applications such as banking systems and airline ticket
//! reservation systems". This crate provides:
//!
//! * [`canned`] — a banking / inventory / reservation transaction library
//!   with declared inverse (compensating) programs and a pre-verified
//!   [`DeclaredTable`](histmerge_semantics::DeclaredTable) of type-level
//!   semantic relations (the paper's offline pre-detection);
//! * [`generator`] — seeded random merge scenarios (a tentative history
//!   plus a base history over a shared initial state) with knobs for
//!   hotspot skew, read/write set sizes, and the fraction of commutative
//!   and guarded transactions;
//! * [`cost`] — the cost model of Section 7.1, decomposing both the
//!   reprocessing (two-tier) and merging protocols into communication,
//!   base-node CPU, base-node I/O, and mobile-node CPU costs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canned;
pub mod canned_mix;
pub mod cost;
pub mod generator;
