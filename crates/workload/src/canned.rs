//! Canned transaction libraries: banking, inventory, reservations.
//!
//! Each library is a factory for [`Transaction`]s of a small set of
//! *types*, with:
//!
//! * forward programs honouring the paper's structural assumptions (no
//!   blind writes, one update per item);
//! * declared inverse (compensating) programs, enabling the Section 6.1
//!   pruning approach;
//! * a [`DeclaredTable`] of type-level semantic relations, pre-verified
//!   offline as Section 5.1 prescribes for canned systems (and
//!   cross-checked against differential execution in this module's tests).

use std::sync::Arc;

use histmerge_semantics::{CanPrecedePolicy, DeclaredTable};
use histmerge_txn::registry::{TxnTypeId, TypeRegistry};
use histmerge_txn::{Expr, Program, ProgramBuilder, Transaction, TxnId, TxnKind, Value, VarId};

/// The banking library: accounts are data items holding balances.
///
/// | type | effect | commutes with |
/// |---|---|---|
/// | `deposit` | `bal += amt` | deposit, accrue? no — deposit only |
/// | `withdraw` | `if bal >= amt then bal -= amt` | nothing (guard reads bal) |
/// | `accrue` | `bal *= factor` | accrue |
/// | `audit` | read-only | (not declared: Property 1) |
///
/// # Example
///
/// ```rust
/// use histmerge_workload::canned::Bank;
/// use histmerge_txn::{DbState, Fix, TxnId, VarId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let bank = Bank::new();
/// let acct = VarId::new(0);
/// let t = bank.deposit(TxnId::new(0), "dep", acct, 100);
/// let s: DbState = [(acct, 25)].into_iter().collect();
/// assert_eq!(t.execute(&s, &Fix::empty())?.after.get(acct), 125);
/// // Compensation undoes it.
/// let out = t.execute(&s, &Fix::empty())?;
/// assert_eq!(t.compensate(&out.after, &Fix::empty())?.after, s);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Bank {
    registry: TypeRegistry,
    deposit: TxnTypeId,
    withdraw: TxnTypeId,
    accrue: TxnTypeId,
    audit: TxnTypeId,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// Creates the library with a private registry.
    pub fn new() -> Self {
        let mut registry = TypeRegistry::new();
        Self::register_in(&mut registry)
    }

    /// Registers the library's types in a shared registry — required when
    /// mixing several canned libraries in one system, so type ids stay
    /// distinct and their declared tables can be stacked safely.
    pub fn register_in(registry: &mut TypeRegistry) -> Self {
        let deposit = registry.register("bank.deposit");
        let withdraw = registry.register("bank.withdraw");
        let accrue = registry.register("bank.accrue");
        let audit = registry.register("bank.audit");
        Bank { registry: registry.clone(), deposit, withdraw, accrue, audit }
    }

    /// The type registry (for reports).
    pub fn registry(&self) -> &TypeRegistry {
        &self.registry
    }

    /// The offline-verified relation table of Section 5.1.
    ///
    /// Deposits on any accounts commute with deposits; accruals commute
    /// with accruals. Withdraws commute with nothing (their guard reads
    /// the balance). The table complements the
    /// [`StaticAnalyzer`](histmerge_semantics::StaticAnalyzer), which
    /// derives the same facts for same-type pairs; declaring them makes
    /// detection O(1) at merge time, as the paper intends for canned
    /// systems.
    pub fn declared_relations(&self) -> DeclaredTable {
        DeclaredTable::new()
            .declare_commuting_pair(self.deposit, self.deposit, CanPrecedePolicy::Always)
            .declare_commuting_pair(self.accrue, self.accrue, CanPrecedePolicy::Always)
    }

    /// `deposit(acct, amt)`: `acct += amt`. Inverse: `acct -= amt`.
    pub fn deposit(&self, id: TxnId, name: &str, acct: VarId, amt: Value) -> Transaction {
        let fwd: Arc<Program> = Arc::new(
            ProgramBuilder::new(name)
                .read(acct)
                .update(acct, Expr::var(acct) + Expr::konst(amt))
                .build()
                .expect("deposit is well formed"),
        );
        let inv: Arc<Program> = Arc::new(
            ProgramBuilder::new(format!("{name}^-1"))
                .read(acct)
                .update(acct, Expr::var(acct) - Expr::konst(amt))
                .build()
                .expect("deposit inverse is well formed"),
        );
        Transaction::new(id, name, TxnKind::Tentative, fwd, vec![])
            .with_inverse(inv)
            .with_type(self.deposit)
    }

    /// `withdraw(acct, amt)`: `if acct >= amt then acct -= amt`.
    /// Inverse: the mirrored conditional (correct under the same fix, or
    /// immediately after the forward run when the guard re-evaluates the
    /// same way; canned systems record the branch — modeled by fixes).
    pub fn withdraw(&self, id: TxnId, name: &str, acct: VarId, amt: Value) -> Transaction {
        let fwd: Arc<Program> = Arc::new(
            ProgramBuilder::new(name)
                .read(acct)
                .branch(
                    Expr::var(acct).ge(Expr::konst(amt)),
                    |b| b.update(acct, Expr::var(acct) - Expr::konst(amt)),
                    |b| b,
                )
                .build()
                .expect("withdraw is well formed"),
        );
        let inv: Arc<Program> = Arc::new(
            ProgramBuilder::new(format!("{name}^-1"))
                .read(acct)
                .branch(
                    Expr::var(acct).ge(Expr::konst(0)),
                    |b| b.update(acct, Expr::var(acct) + Expr::konst(amt)),
                    |b| b,
                )
                .build()
                .expect("withdraw inverse is well formed"),
        );
        Transaction::new(id, name, TxnKind::Tentative, fwd, vec![])
            .with_inverse(inv)
            .with_type(self.withdraw)
            .with_precondition(Expr::var(acct).ge(Expr::konst(amt)))
    }

    /// `transfer(src, dst, amt)`: `if src >= amt then src -= amt, dst += amt`.
    /// No inverse is declared (transfers are pruned via undo).
    pub fn transfer(
        &self,
        id: TxnId,
        name: &str,
        src: VarId,
        dst: VarId,
        amt: Value,
    ) -> Transaction {
        let fwd: Arc<Program> = Arc::new(
            ProgramBuilder::new(name)
                .read(src)
                .read(dst)
                .branch(
                    Expr::var(src).ge(Expr::konst(amt)),
                    |b| {
                        b.update(src, Expr::var(src) - Expr::konst(amt))
                            .update(dst, Expr::var(dst) + Expr::konst(amt))
                    },
                    |b| b,
                )
                .build()
                .expect("transfer is well formed"),
        );
        Transaction::new(id, name, TxnKind::Tentative, fwd, vec![])
            .with_precondition(Expr::var(src).ge(Expr::konst(amt)))
    }

    /// `accrue(acct, percent)`: `acct *= (100 + percent) / 100` — modeled
    /// as an integer scale `acct *= factor` to stay in the Scale class.
    pub fn accrue(&self, id: TxnId, name: &str, acct: VarId, factor: Value) -> Transaction {
        let fwd: Arc<Program> = Arc::new(
            ProgramBuilder::new(name)
                .read(acct)
                .update(acct, Expr::var(acct) * Expr::konst(factor))
                .build()
                .expect("accrue is well formed"),
        );
        Transaction::new(id, name, TxnKind::Tentative, fwd, vec![]).with_type(self.accrue)
    }

    /// `audit(accts)`: read-only sweep.
    pub fn audit(&self, id: TxnId, name: &str, accts: &[VarId]) -> Transaction {
        let mut b = ProgramBuilder::new(name);
        for a in accts {
            b = b.read(*a);
        }
        let fwd: Arc<Program> = Arc::new(b.build().expect("audit is well formed"));
        Transaction::new(id, name, TxnKind::Tentative, fwd, vec![]).with_type(self.audit)
    }
}

/// The inventory library: items hold stock counts.
#[derive(Debug, Clone)]
pub struct Inventory {
    registry: TypeRegistry,
    restock: TxnTypeId,
    sell: TxnTypeId,
    cap: TxnTypeId,
}

impl Default for Inventory {
    fn default() -> Self {
        Self::new()
    }
}

impl Inventory {
    /// Creates the library with a private registry.
    pub fn new() -> Self {
        let mut registry = TypeRegistry::new();
        Self::register_in(&mut registry)
    }

    /// Registers the library's types in a shared registry (see
    /// [`Bank::register_in`]).
    pub fn register_in(registry: &mut TypeRegistry) -> Self {
        let restock = registry.register("inv.restock");
        let sell = registry.register("inv.sell");
        let cap = registry.register("inv.cap");
        Inventory { registry: registry.clone(), restock, sell, cap }
    }

    /// The type registry.
    pub fn registry(&self) -> &TypeRegistry {
        &self.registry
    }

    /// Restocks commute with restocks; caps commute with caps.
    pub fn declared_relations(&self) -> DeclaredTable {
        DeclaredTable::new()
            .declare_commuting_pair(self.restock, self.restock, CanPrecedePolicy::Always)
            .declare_commuting_pair(self.cap, self.cap, CanPrecedePolicy::Always)
    }

    /// `restock(item, n)`: `item += n`. Inverse declared.
    pub fn restock(&self, id: TxnId, name: &str, item: VarId, n: Value) -> Transaction {
        let fwd: Arc<Program> = Arc::new(
            ProgramBuilder::new(name)
                .read(item)
                .update(item, Expr::var(item) + Expr::konst(n))
                .build()
                .expect("restock is well formed"),
        );
        let inv: Arc<Program> = Arc::new(
            ProgramBuilder::new(format!("{name}^-1"))
                .read(item)
                .update(item, Expr::var(item) - Expr::konst(n))
                .build()
                .expect("restock inverse is well formed"),
        );
        Transaction::new(id, name, TxnKind::Tentative, fwd, vec![])
            .with_inverse(inv)
            .with_type(self.restock)
    }

    /// `sell(item, n)`: `if item >= n then item -= n`.
    pub fn sell(&self, id: TxnId, name: &str, item: VarId, n: Value) -> Transaction {
        let fwd: Arc<Program> = Arc::new(
            ProgramBuilder::new(name)
                .read(item)
                .branch(
                    Expr::var(item).ge(Expr::konst(n)),
                    |b| b.update(item, Expr::var(item) - Expr::konst(n)),
                    |b| b,
                )
                .build()
                .expect("sell is well formed"),
        );
        Transaction::new(id, name, TxnKind::Tentative, fwd, vec![])
            .with_type(self.sell)
            .with_precondition(Expr::var(item).ge(Expr::konst(n)))
    }

    /// `cap(item, max)`: `item := min(item, max)` — a shelf-space cap.
    pub fn cap(&self, id: TxnId, name: &str, item: VarId, max: Value) -> Transaction {
        let fwd: Arc<Program> = Arc::new(
            ProgramBuilder::new(name)
                .read(item)
                .update(item, Expr::var(item).min(Expr::konst(max)))
                .build()
                .expect("cap is well formed"),
        );
        Transaction::new(id, name, TxnKind::Tentative, fwd, vec![]).with_type(self.cap)
    }
}

/// The promotions library: seasonal price adjustments whose commutativity
/// hinges on *correlated guards* — the history-`H5` pattern of Section 5.1.
///
/// Both transaction types branch on the same `season` item and apply,
/// per branch, operations that commute *within* the branch (`+100`/`-10`
/// when in season, `*2`/`*3` off season). The pair therefore commutes —
/// but no branch-insensitive analysis can see it, and a fix pinning the
/// stayer's `season` read *breaks* it. Exactly the case the paper's
/// canned-system tables ([`CanPrecedePolicy::UnlessFixPinsGuards`]) exist
/// for.
#[derive(Debug, Clone)]
pub struct Promotions {
    registry: TypeRegistry,
    bonus: TxnTypeId,
    rebate: TxnTypeId,
}

impl Default for Promotions {
    fn default() -> Self {
        Self::new()
    }
}

impl Promotions {
    /// Creates the library with a private registry.
    pub fn new() -> Self {
        let mut registry = TypeRegistry::new();
        Self::register_in(&mut registry)
    }

    /// Registers the library's types in a shared registry (see
    /// [`Bank::register_in`]).
    pub fn register_in(registry: &mut TypeRegistry) -> Self {
        let bonus = registry.register("promo.bonus");
        let rebate = registry.register("promo.rebate");
        Promotions { registry: registry.clone(), bonus, rebate }
    }

    /// The type registry.
    pub fn registry(&self) -> &TypeRegistry {
        &self.registry
    }

    /// All pairs among {bonus, rebate} commute through guard correlation;
    /// none survives a fix that pins the stayer's `season` read.
    pub fn declared_relations(&self) -> DeclaredTable {
        DeclaredTable::new()
            .declare_commuting_pair(self.bonus, self.rebate, CanPrecedePolicy::UnlessFixPinsGuards)
            .declare_commuting_pair(self.bonus, self.bonus, CanPrecedePolicy::UnlessFixPinsGuards)
            .declare_commuting_pair(self.rebate, self.rebate, CanPrecedePolicy::UnlessFixPinsGuards)
    }

    /// `bonus(season, price)`: `if season > 200 then price += 100 else
    /// price *= 2`.
    pub fn bonus(&self, id: TxnId, name: &str, season: VarId, price: VarId) -> Transaction {
        let fwd: Arc<Program> = Arc::new(
            ProgramBuilder::new(name)
                .read(season)
                .read(price)
                .branch(
                    Expr::var(season).gt(Expr::konst(200)),
                    |b| b.update(price, Expr::var(price) + Expr::konst(100)),
                    |b| b.update(price, Expr::var(price) * Expr::konst(2)),
                )
                .build()
                .expect("bonus is well formed"),
        );
        Transaction::new(id, name, TxnKind::Tentative, fwd, vec![]).with_type(self.bonus)
    }

    /// `rebate(season, price)`: `if season > 200 then price -= 10 else
    /// price *= 3`.
    pub fn rebate(&self, id: TxnId, name: &str, season: VarId, price: VarId) -> Transaction {
        let fwd: Arc<Program> = Arc::new(
            ProgramBuilder::new(name)
                .read(season)
                .read(price)
                .branch(
                    Expr::var(season).gt(Expr::konst(200)),
                    |b| b.update(price, Expr::var(price) - Expr::konst(10)),
                    |b| b.update(price, Expr::var(price) * Expr::konst(3)),
                )
                .build()
                .expect("rebate is well formed"),
        );
        Transaction::new(id, name, TxnKind::Tentative, fwd, vec![]).with_type(self.rebate)
    }
}

/// The reservation library: flights hold free-seat counts and booking
/// tallies, and every booking movement declares its compensation — the
/// cancel path is the paper's Section 6.1 compensation-heavy setting,
/// where pruning a tentative reservation means running its declared
/// inverse rather than undo/redo.
#[derive(Debug, Clone)]
pub struct Reservations {
    registry: TypeRegistry,
    reserve: TxnTypeId,
    cancel: TxnTypeId,
}

impl Default for Reservations {
    fn default() -> Self {
        Self::new()
    }
}

impl Reservations {
    /// Creates the library with a private registry.
    pub fn new() -> Self {
        let mut registry = TypeRegistry::new();
        Self::register_in(&mut registry)
    }

    /// Registers the library's types in a shared registry (see
    /// [`Bank::register_in`]).
    pub fn register_in(registry: &mut TypeRegistry) -> Self {
        let reserve = registry.register("res.reserve");
        let cancel = registry.register("res.cancel");
        Reservations { registry: registry.clone(), reserve, cancel }
    }

    /// The type registry.
    pub fn registry(&self) -> &TypeRegistry {
        &self.registry
    }

    /// The offline-verified relation table: same-type pairs commute (two
    /// reserves, or two cancels, run the identical guarded movement, so
    /// either order reaches the same state — verified for the library's
    /// var layout, where a flight's `(seats, booked)` pair is private to
    /// the flight). Reserve/cancel pairs are NOT declared: each guards on
    /// the counter the other writes.
    pub fn declared_relations(&self) -> DeclaredTable {
        DeclaredTable::new()
            .declare_commuting_pair(self.reserve, self.reserve, CanPrecedePolicy::Always)
            .declare_commuting_pair(self.cancel, self.cancel, CanPrecedePolicy::Always)
    }

    /// The guarded seat movement shared by both directions: `if guard > 0
    /// then guard -= 1, other += 1`.
    fn movement(name: &str, guard: VarId, other: VarId) -> Arc<Program> {
        Arc::new(
            ProgramBuilder::new(name)
                .read(guard)
                .read(other)
                .branch(
                    Expr::var(guard).gt(Expr::konst(0)),
                    |b| {
                        b.update(guard, Expr::var(guard) - Expr::konst(1))
                            .update(other, Expr::var(other) + Expr::konst(1))
                    },
                    |b| b,
                )
                .build()
                .expect("seat movement is well formed"),
        )
    }

    /// `reserve(seats, booked)`: `if seats > 0 then seats -= 1, booked += 1`.
    /// Inverse: the cancel movement (correct under the same fix, or
    /// immediately after the forward run — see [`Bank::withdraw`]).
    pub fn reserve(&self, id: TxnId, name: &str, seats: VarId, booked: VarId) -> Transaction {
        let fwd = Self::movement(name, seats, booked);
        let inv = Self::movement(&format!("{name}^-1"), booked, seats);
        Transaction::new(id, name, TxnKind::Tentative, fwd, vec![])
            .with_inverse(inv)
            .with_type(self.reserve)
            .with_precondition(Expr::var(seats).gt(Expr::konst(0)))
    }

    /// `cancel(seats, booked)`: `if booked > 0 then seats += 1, booked -= 1`.
    /// Inverse: the reserve movement — cancels are compensations, and
    /// compensations compensate back.
    pub fn cancel(&self, id: TxnId, name: &str, seats: VarId, booked: VarId) -> Transaction {
        let fwd = Self::movement(name, booked, seats);
        let inv = Self::movement(&format!("{name}^-1"), seats, booked);
        Transaction::new(id, name, TxnKind::Tentative, fwd, vec![])
            .with_inverse(inv)
            .with_type(self.cancel)
            .with_precondition(Expr::var(booked).gt(Expr::konst(0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_semantics::{RandomizedTester, SemanticOracle, StaticAnalyzer};
    use histmerge_txn::{DbState, Fix, VarSet};

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn t(i: u32) -> TxnId {
        TxnId::new(i)
    }

    #[test]
    fn bank_deposit_and_inverse_roundtrip() {
        let bank = Bank::new();
        let dep = bank.deposit(t(0), "dep", v(0), 40);
        let s: DbState = [(v(0), 10)].into_iter().collect();
        let out = dep.execute(&s, &Fix::empty()).unwrap();
        assert_eq!(out.after.get(v(0)), 50);
        assert_eq!(dep.compensate(&out.after, &Fix::empty()).unwrap().after, s);
    }

    #[test]
    fn bank_withdraw_guards_balance() {
        let bank = Bank::new();
        let w = bank.withdraw(t(0), "wd", v(0), 100);
        let rich: DbState = [(v(0), 150)].into_iter().collect();
        assert_eq!(w.execute(&rich, &Fix::empty()).unwrap().after.get(v(0)), 50);
        let poor: DbState = [(v(0), 50)].into_iter().collect();
        assert_eq!(w.execute(&poor, &Fix::empty()).unwrap().after.get(v(0)), 50);
    }

    #[test]
    fn bank_transfer_moves_funds() {
        let bank = Bank::new();
        let tr = bank.transfer(t(0), "tr", v(0), v(1), 30);
        let s: DbState = [(v(0), 100), (v(1), 0)].into_iter().collect();
        let out = tr.execute(&s, &Fix::empty()).unwrap();
        assert_eq!(out.after.get(v(0)), 70);
        assert_eq!(out.after.get(v(1)), 30);
    }

    #[test]
    fn declared_bank_relations_are_sound() {
        // Cross-check every declared `true` against differential execution
        // — the offline verification the paper assumes for canned systems.
        let bank = Bank::new();
        let table = bank.declared_relations();
        let tester = RandomizedTester::with_config(128, 500, 7);
        let d1 = bank.deposit(t(0), "d1", v(0), 10);
        let d2 = bank.deposit(t(1), "d2", v(0), 25);
        let a1 = bank.accrue(t(2), "a1", v(0), 3);
        let a2 = bank.accrue(t(3), "a2", v(0), 5);
        for (x, y) in [(&d1, &d2), (&a1, &a2)] {
            assert!(table.commutes_backward_through(x, y));
            assert!(tester.commutes_backward_through(x, y), "declared pair refuted");
            assert!(table.can_precede(x, y, &VarSet::new()));
            assert!(tester.can_precede(x, y, &VarSet::new()));
        }
        // Deposit/accrue must NOT be declared (they do not commute).
        assert!(!table.commutes_backward_through(&d1, &a1));
        assert!(!tester.commutes_backward_through(&d1, &a1));
    }

    #[test]
    fn static_analyzer_agrees_on_same_account_deposits() {
        let bank = Bank::new();
        let d1 = bank.deposit(t(0), "d1", v(0), 10);
        let d2 = bank.deposit(t(1), "d2", v(0), 25);
        assert!(StaticAnalyzer::new().commutes_backward_through(&d1, &d2));
    }

    #[test]
    fn withdraws_do_not_commute() {
        // Two withdraws on the same account can disagree near the zero
        // boundary, so neither the table nor the tester accepts them.
        let bank = Bank::new();
        let table = bank.declared_relations();
        let w1 = bank.withdraw(t(0), "w1", v(0), 100);
        let w2 = bank.withdraw(t(1), "w2", v(0), 80);
        assert!(!table.commutes_backward_through(&w1, &w2));
        let tester = RandomizedTester::with_config(256, 200, 11);
        assert!(!tester.commutes_backward_through(&w1, &w2));
    }

    #[test]
    fn inventory_restock_sell_cap() {
        let inv = Inventory::new();
        let s: DbState = [(v(0), 5)].into_iter().collect();
        let r = inv.restock(t(0), "r", v(0), 10);
        let after = r.execute(&s, &Fix::empty()).unwrap().after;
        assert_eq!(after.get(v(0)), 15);
        let sell = inv.sell(t(1), "s", v(0), 20);
        assert_eq!(sell.execute(&after, &Fix::empty()).unwrap().after.get(v(0)), 15);
        let cap = inv.cap(t(2), "c", v(0), 8);
        assert_eq!(cap.execute(&after, &Fix::empty()).unwrap().after.get(v(0)), 8);
        // Caps commute with caps (min is associative-commutative in bound).
        let cap2 = inv.cap(t(3), "c2", v(0), 12);
        assert!(inv.declared_relations().commutes_backward_through(&cap, &cap2));
        let tester = RandomizedTester::new();
        assert!(tester.commutes_backward_through(&cap, &cap2));
    }

    #[test]
    fn reservations_roundtrip() {
        let res = Reservations::new();
        let s: DbState = [(v(0), 1), (v(1), 0)].into_iter().collect();
        let reserve = res.reserve(t(0), "r", v(0), v(1));
        let booked = reserve.execute(&s, &Fix::empty()).unwrap().after;
        assert_eq!(booked.get(v(0)), 0);
        assert_eq!(booked.get(v(1)), 1);
        // Second reservation fails (no seats): state unchanged.
        let again = reserve.execute(&booked, &Fix::empty()).unwrap().after;
        assert_eq!(again, booked);
        let cancel = res.cancel(t(1), "c", v(0), v(1));
        assert_eq!(cancel.execute(&booked, &Fix::empty()).unwrap().after, s);
        assert_eq!(res.registry().len(), 2);
    }

    #[test]
    fn reservations_compensate_and_commute_same_type() {
        let res = Reservations::new();
        let s: DbState = [(v(0), 3), (v(1), 2)].into_iter().collect();
        // The declared inverse undoes a fired reservation...
        let reserve = res.reserve(t(0), "r", v(0), v(1));
        let after = reserve.execute(&s, &Fix::empty()).unwrap().after;
        assert_eq!(reserve.compensate(&after, &Fix::empty()).unwrap().after, s);
        // ...and a fired cancel.
        let cancel = res.cancel(t(1), "c", v(0), v(1));
        let after = cancel.execute(&s, &Fix::empty()).unwrap().after;
        assert_eq!(cancel.compensate(&after, &Fix::empty()).unwrap().after, s);
        // Same-type pairs are declared and dynamically confirmed, even on
        // the same flight (the movement is identical, so order is moot).
        let table = res.declared_relations();
        let tester = RandomizedTester::with_config(128, 500, 17);
        let r2 = res.reserve(t(2), "r2", v(0), v(1));
        assert!(table.commutes_backward_through(&reserve, &r2));
        assert!(tester.commutes_backward_through(&reserve, &r2), "declared pair refuted");
        let c2 = res.cancel(t(3), "c2", v(0), v(1));
        assert!(table.commutes_backward_through(&cancel, &c2));
        assert!(tester.commutes_backward_through(&cancel, &c2), "declared pair refuted");
        // Reserve/cancel is NOT declared: each guards the other's write.
        assert!(!table.commutes_backward_through(&reserve, &cancel));
    }

    #[test]
    fn promotions_commute_via_correlated_guards() {
        let promo = Promotions::new();
        let table = promo.declared_relations();
        let tester = RandomizedTester::with_config(128, 500, 13);
        let bonus = promo.bonus(t(0), "bonus", v(0), v(1));
        let rebate = promo.rebate(t(1), "rebate", v(0), v(1));
        // Declared AND dynamically confirmed: they commute …
        assert!(table.commutes_backward_through(&rebate, &bonus));
        assert!(tester.commutes_backward_through(&rebate, &bonus));
        // … but the static analyzer cannot see branch correlation.
        assert!(!StaticAnalyzer::new().commutes_backward_through(&rebate, &bonus));
        // A fix pinning the stayer's guard breaks the relation — the table
        // knows (policy) and the tester confirms.
        let guard_fix: VarSet = [v(0)].into_iter().collect();
        assert!(!table.can_precede(&rebate, &bonus, &guard_fix));
        assert!(!tester.can_precede(&rebate, &bonus, &guard_fix));
        // A fix elsewhere is harmless.
        let other_fix: VarSet = [v(7)].into_iter().collect();
        assert!(table.can_precede(&rebate, &bonus, &other_fix));
    }

    #[test]
    fn promotions_declarations_validate() {
        use histmerge_semantics::validate::validate_declarations;
        let promo = Promotions::new();
        let table = promo.declared_relations();
        let instances = vec![
            promo.bonus(t(0), "b1", v(0), v(1)),
            promo.rebate(t(1), "r1", v(0), v(1)),
            promo.bonus(t(2), "b2", v(0), v(1)),
        ];
        let tester = RandomizedTester::with_config(96, 500, 29);
        let violations = validate_declarations(&table, &instances, &tester);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn registries_have_distinct_types() {
        let bank = Bank::new();
        assert_eq!(bank.registry().len(), 4);
        let audit = bank.audit(t(0), "a", &[v(0), v(1)]);
        assert!(audit.writeset().is_empty());
        assert_eq!(audit.readset().len(), 2);
        let inv = Inventory::new();
        assert_eq!(inv.registry().len(), 3);
    }
}
