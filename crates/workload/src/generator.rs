//! Seeded random merge scenarios.
//!
//! A scenario is a tentative history `H_m` and a base history `H_b` over a
//! shared variable space and initial state — exactly the input of the
//! merging protocol. Knobs control the conflict structure:
//!
//! * `hot_fraction` / `hot_prob` — hotspot skew (more contention, more
//!   cycles in the precedence graph);
//! * `commutative_fraction` — share of pure-increment transactions, the
//!   regime where Algorithm 2 and CBTR shine;
//! * `guarded_fraction` — share of conditional transactions (guard reads a
//!   pure-read item), exercising fixes and can-precede;
//! * `read_only_fraction` — share of read-only transactions.
//!
//! Generated transactions never blind-write, matching the paper's
//! rewriting model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use histmerge_history::{SerialHistory, TxnArena};
use histmerge_txn::{DbState, Expr, Program, ProgramBuilder, Transaction, TxnKind, VarId};
use std::sync::Arc;

/// Parameters of a random merge scenario.
#[derive(Debug, Clone)]
pub struct ScenarioParams {
    /// Number of data items (replicated on every node).
    pub n_vars: u32,
    /// Length of the tentative history.
    pub n_tentative: usize,
    /// Length of the base history.
    pub n_base: usize,
    /// Fraction of transactions that are pure increments (commutative).
    pub commutative_fraction: f64,
    /// Fraction of transactions that are guarded increments.
    pub guarded_fraction: f64,
    /// Fraction of transactions that are read-only.
    pub read_only_fraction: f64,
    /// Extra pure-read items per read-write transaction.
    pub reads_per_txn: usize,
    /// Items written per read-write transaction.
    pub writes_per_txn: usize,
    /// Fraction of the variable space considered "hot".
    pub hot_fraction: f64,
    /// Probability that an item pick lands in the hot set.
    pub hot_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            n_vars: 64,
            n_tentative: 20,
            n_base: 20,
            commutative_fraction: 0.3,
            guarded_fraction: 0.2,
            read_only_fraction: 0.1,
            reads_per_txn: 2,
            writes_per_txn: 2,
            hot_fraction: 0.1,
            hot_prob: 0.5,
            seed: 42,
        }
    }
}

/// A generated merge scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Arena owning all transactions.
    pub arena: TxnArena,
    /// The tentative history.
    pub hm: SerialHistory,
    /// The base history.
    pub hb: SerialHistory,
    /// The shared initial state.
    pub s0: DbState,
}

/// Generates a scenario from `params` (deterministic per seed).
pub fn generate(params: &ScenarioParams) -> Scenario {
    let mut arena = TxnArena::new();
    let mut factory = TxnFactory::new(params.clone());

    let hm: SerialHistory =
        (0..params.n_tentative).map(|_| factory.next_txn(&mut arena, TxnKind::Tentative)).collect();
    let hb: SerialHistory =
        (0..params.n_base).map(|_| factory.next_txn(&mut arena, TxnKind::Base)).collect();
    let s0 = initial_state(params);
    Scenario { arena, hm, hb, s0 }
}

/// The initial state matching [`generate`]: every item starts at 1000, so
/// guards have headroom both ways.
pub fn initial_state(params: &ScenarioParams) -> DbState {
    DbState::uniform(params.n_vars, 1000)
}

/// A streaming transaction generator with the same distribution as
/// [`generate`], for simulators that create transactions on the fly.
#[derive(Debug)]
pub struct TxnFactory {
    params: ScenarioParams,
    rng: StdRng,
    counter: usize,
}

impl TxnFactory {
    /// Creates a factory seeded from `params.seed`.
    pub fn new(params: ScenarioParams) -> Self {
        let rng = StdRng::seed_from_u64(params.seed);
        TxnFactory { params, rng, counter: 0 }
    }

    /// Allocates the next random transaction in `arena`.
    pub fn next_txn(&mut self, arena: &mut TxnArena, kind: TxnKind) -> histmerge_txn::TxnId {
        let mut gen = TxnGen { params: &self.params, rng: &mut self.rng, counter: self.counter };
        let id = gen.next_txn(arena, kind);
        self.counter = gen.counter;
        id
    }
}

struct TxnGen<'a> {
    params: &'a ScenarioParams,
    rng: &'a mut StdRng,
    counter: usize,
}

impl TxnGen<'_> {
    fn pick_var(&mut self) -> VarId {
        let n = self.params.n_vars.max(1);
        let hot = ((self.params.hot_fraction * n as f64).ceil() as u32).clamp(1, n);
        if self.rng.gen_bool(self.params.hot_prob.clamp(0.0, 1.0)) {
            VarId::new(self.rng.gen_range(0..hot))
        } else {
            VarId::new(self.rng.gen_range(0..n))
        }
    }

    fn pick_distinct(&mut self, k: usize, exclude: &[VarId]) -> Vec<VarId> {
        let mut out: Vec<VarId> = Vec::new();
        let mut budget = 10 * (k + 1) * 4;
        while out.len() < k && budget > 0 {
            budget -= 1;
            let v = self.pick_var();
            if !out.contains(&v) && !exclude.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    fn next_txn(&mut self, arena: &mut TxnArena, kind: TxnKind) -> histmerge_txn::TxnId {
        let p = self.params;
        let roll: f64 = self.rng.gen();
        let program = if roll < p.commutative_fraction {
            self.increment_txn()
        } else if roll < p.commutative_fraction + p.guarded_fraction {
            self.guarded_txn()
        } else if roll < p.commutative_fraction + p.guarded_fraction + p.read_only_fraction {
            self.read_only_txn()
        } else {
            self.rw_txn()
        };
        self.counter += 1;
        let name =
            format!("{}{}", if kind == TxnKind::Tentative { "Tm" } else { "Tb" }, self.counter);
        let prog = Arc::new(program);
        arena.alloc(|id| Transaction::new(id, name, kind, prog, vec![]))
    }

    /// Pure increments: `v += c` on 1..=writes_per_txn items. Commutative
    /// with other increments on any item set.
    fn increment_txn(&mut self) -> Program {
        let k = self.rng.gen_range(1..=self.params.writes_per_txn.max(1));
        let vars = self.pick_distinct(k, &[]);
        let mut b = ProgramBuilder::new(format!("inc{}", self.counter));
        for v in &vars {
            b = b.read(*v);
        }
        for v in &vars {
            let c = self.rng.gen_range(1..50);
            b = b.update(*v, Expr::var(*v) + Expr::konst(c));
        }
        b.build().expect("increment txn is well formed")
    }

    /// Guarded increment: `if g > c then v += c1 else v += c2`, where the
    /// guard item `g` is read-only for this transaction.
    fn guarded_txn(&mut self) -> Program {
        let g = self.pick_var();
        let vs = self.pick_distinct(1, &[g]);
        let v = vs.first().copied().unwrap_or(g);
        let threshold = self.rng.gen_range(500..1500);
        let c1 = self.rng.gen_range(1..50);
        let c2 = self.rng.gen_range(1..50);
        ProgramBuilder::new(format!("grd{}", self.counter))
            .read(g)
            .read(v)
            .branch(
                Expr::var(g).gt(Expr::konst(threshold)),
                |b| b.update(v, Expr::var(v) + Expr::konst(c1)),
                |b| b.update(v, Expr::var(v) + Expr::konst(c2)),
            )
            .build()
            .expect("guarded txn is well formed")
    }

    /// Read-only: reads 1..=reads_per_txn+1 items.
    fn read_only_txn(&mut self) -> Program {
        let k = self.rng.gen_range(1..=self.params.reads_per_txn.max(1) + 1);
        let vars = self.pick_distinct(k, &[]);
        let mut b = ProgramBuilder::new(format!("ro{}", self.counter));
        for v in vars {
            b = b.read(v);
        }
        b.build().expect("read-only txn is well formed")
    }

    /// General read-write: writes depend on reads (non-commutative).
    fn rw_txn(&mut self) -> Program {
        let w = self.rng.gen_range(1..=self.params.writes_per_txn.max(1));
        let writes = self.pick_distinct(w, &[]);
        let r = self.rng.gen_range(0..=self.params.reads_per_txn);
        let reads = self.pick_distinct(r, &writes);
        let mut b = ProgramBuilder::new(format!("rw{}", self.counter));
        for v in reads.iter().chain(writes.iter()) {
            b = b.read(*v);
        }
        for v in &writes {
            // v := v + (first extra read, if any) + c — reading another
            // item makes the transaction genuinely order-sensitive.
            let mut expr = Expr::var(*v);
            if let Some(dep) = reads.first() {
                expr = expr + Expr::var(*dep);
            }
            let c = self.rng.gen_range(-20..20);
            b = b.update(*v, expr + Expr::konst(c));
        }
        b.build().expect("rw txn is well formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_history::AugmentedHistory;

    #[test]
    fn generation_is_deterministic() {
        let params = ScenarioParams::default();
        let a = generate(&params);
        let b = generate(&params);
        assert_eq!(a.hm.order(), b.hm.order());
        for (x, y) in a.arena.iter().zip(b.arena.iter()) {
            assert_eq!(x.name(), y.name());
            assert_eq!(x.readset(), y.readset());
            assert_eq!(x.writeset(), y.writeset());
        }
        let c = generate(&ScenarioParams { seed: 43, ..params });
        let same = a
            .arena
            .iter()
            .zip(c.arena.iter())
            .all(|(x, y)| x.readset() == y.readset() && x.writeset() == y.writeset());
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn histories_have_requested_lengths() {
        let params = ScenarioParams { n_tentative: 7, n_base: 3, ..ScenarioParams::default() };
        let s = generate(&params);
        assert_eq!(s.hm.len(), 7);
        assert_eq!(s.hb.len(), 3);
        assert_eq!(s.arena.len(), 10);
    }

    #[test]
    fn no_blind_writes_generated() {
        let s = generate(&ScenarioParams { n_tentative: 50, n_base: 50, ..Default::default() });
        for txn in s.arena.iter() {
            assert!(!txn.program().has_blind_writes(), "{} blind-writes", txn.name());
        }
    }

    #[test]
    fn both_histories_execute_from_s0() {
        let s = generate(&ScenarioParams::default());
        AugmentedHistory::execute(&s.arena, &s.hm, &s.s0).expect("H_m executes");
        AugmentedHistory::execute(&s.arena, &s.hb, &s.s0).expect("H_b executes");
    }

    #[test]
    fn commutative_only_workload_is_all_increments() {
        let s = generate(&ScenarioParams {
            commutative_fraction: 1.0,
            guarded_fraction: 0.0,
            read_only_fraction: 0.0,
            n_tentative: 30,
            n_base: 0,
            ..Default::default()
        });
        for txn in s.arena.iter() {
            assert_eq!(txn.readset(), txn.writeset(), "{}", txn.name());
        }
    }

    #[test]
    fn read_only_workload_writes_nothing() {
        let s = generate(&ScenarioParams {
            commutative_fraction: 0.0,
            guarded_fraction: 0.0,
            read_only_fraction: 1.0,
            n_tentative: 10,
            n_base: 10,
            ..Default::default()
        });
        for txn in s.arena.iter() {
            assert!(txn.writeset().is_empty());
        }
    }

    #[test]
    fn hotspot_skew_concentrates_conflicts() {
        // With an extreme hotspot, most transactions touch item 0.
        let s = generate(&ScenarioParams {
            hot_fraction: 0.01,
            hot_prob: 1.0,
            n_tentative: 20,
            n_base: 0,
            commutative_fraction: 1.0,
            guarded_fraction: 0.0,
            read_only_fraction: 0.0,
            writes_per_txn: 1,
            ..Default::default()
        });
        let touching_v0 = s.arena.iter().filter(|t| t.readset().contains(VarId::new(0))).count();
        assert_eq!(touching_v0, 20);
    }
}
