//! Assembled merge autopsies.
//!
//! The simulator emits autopsy evidence as plain [`crate::TraceEvent`]s
//! — a run of [`crate::TraceEvent::BackoutEdge`] /
//! [`crate::TraceEvent::ReprocessCause`] lines closed by one
//! [`crate::TraceEvent::MergeSummary`]. The flight recorder reassembles
//! those runs into [`MergeAutopsy`] values so tests and experiment bins
//! can assert on structured explanations ("which conflict edge doomed
//! this transaction, against which base commit") instead of grepping
//! JSONL.

use crate::event::NO_PARTNER;
use crate::json::push_escaped;

/// Why one transaction was not saved: the conflict edge (or wholesale
/// reprocessing cause) the merge charged it with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutopsyEdge {
    /// The transaction's raw id.
    pub txn: u64,
    /// The decision: `"backed-out"` for a merge back-out, otherwise the
    /// reprocessing cause (`dirty-origin`, `protocol-reprocessing`,
    /// `window-miss`, `merge-failed`, `ledger-gap`).
    pub cause: &'static str,
    /// The partner it lost to, `None` when no concrete edge was found.
    pub lost_to: Option<u64>,
    /// The precedence/conflict rule relating them (`"none"` when no
    /// partner).
    pub rule: &'static str,
    /// The transaction's read|write summary mask.
    pub txn_mask: u64,
    /// The partner's read|write summary mask (0 when none).
    pub other_mask: u64,
    /// The reads-from closure weight charged (0 for reprocessing).
    pub weight: u64,
}

impl AutopsyEdge {
    /// `true` when the edge names a concrete partner transaction.
    pub fn is_concrete(&self) -> bool {
        self.lost_to.is_some()
    }

    pub(crate) fn from_backout(
        txn: u64,
        lost_to: u64,
        rule: &'static str,
        txn_mask: u64,
        other_mask: u64,
        weight: u64,
    ) -> AutopsyEdge {
        AutopsyEdge {
            txn,
            cause: "backed-out",
            lost_to: (lost_to != NO_PARTNER).then_some(lost_to),
            rule,
            txn_mask,
            other_mask,
            weight,
        }
    }

    pub(crate) fn from_reprocess(
        txn: u64,
        cause: &'static str,
        lost_to: u64,
        rule: &'static str,
        txn_mask: u64,
        other_mask: u64,
    ) -> AutopsyEdge {
        AutopsyEdge {
            txn,
            cause,
            lost_to: (lost_to != NO_PARTNER).then_some(lost_to),
            rule,
            txn_mask,
            other_mask,
            weight: 0,
        }
    }
}

/// One synchronization's assembled autopsy: the per-sync summary plus
/// every conflict edge charged against a transaction that was not saved.
/// Counts are in original-transaction units, matching `Metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeAutopsy {
    /// Simulation tick of the sync.
    pub tick: u64,
    /// Mobile node id.
    pub mobile: usize,
    /// Pending tentative transactions offered.
    pub pending: usize,
    /// Transactions saved from reprocessing.
    pub saved: usize,
    /// Transactions backed out and re-executed.
    pub backed_out: usize,
    /// Transactions reprocessed wholesale.
    pub reprocessed: usize,
    /// Precedence clusters the planner saw (0 when no merge ran).
    pub clusters: usize,
    /// Composites the pre-merge compactor squashed into the plan.
    pub squashed: usize,
    /// Merge-plan span nanoseconds (0 when no plan was computed).
    pub plan_ns: u64,
    /// One edge per backed-out or reprocessed transaction.
    pub edges: Vec<AutopsyEdge>,
}

impl MergeAutopsy {
    /// Edges charged to merge back-outs.
    pub fn backout_edges(&self) -> impl Iterator<Item = &AutopsyEdge> {
        self.edges.iter().filter(|e| e.cause == "backed-out")
    }

    /// Edges charged to wholesale reprocessing.
    pub fn reprocess_edges(&self) -> impl Iterator<Item = &AutopsyEdge> {
        self.edges.iter().filter(|e| e.cause != "backed-out")
    }

    /// Renders the autopsy as one JSON object (stable key order), for
    /// embedding in the HTML report's data blob.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.edges.len() * 120);
        out.push_str("{\"tick\":");
        out.push_str(&self.tick.to_string());
        push_num(&mut out, "mobile", self.mobile as u64);
        push_num(&mut out, "pending", self.pending as u64);
        push_num(&mut out, "saved", self.saved as u64);
        push_num(&mut out, "backed_out", self.backed_out as u64);
        push_num(&mut out, "reprocessed", self.reprocessed as u64);
        push_num(&mut out, "clusters", self.clusters as u64);
        push_num(&mut out, "squashed", self.squashed as u64);
        push_num(&mut out, "plan_ns", self.plan_ns);
        out.push_str(",\"edges\":[");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"txn\":");
            out.push_str(&e.txn.to_string());
            out.push_str(",\"cause\":\"");
            push_escaped(&mut out, e.cause);
            out.push('"');
            out.push_str(",\"lost_to\":");
            match e.lost_to {
                Some(id) => out.push_str(&id.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"rule\":\"");
            push_escaped(&mut out, e.rule);
            out.push('"');
            push_num(&mut out, "txn_mask", e.txn_mask);
            push_num(&mut out, "other_mask", e.other_mask);
            push_num(&mut out, "weight", e.weight);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn push_num(out: &mut String, key: &str, v: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json_line;

    fn autopsy() -> MergeAutopsy {
        MergeAutopsy {
            tick: 40,
            mobile: 1,
            pending: 5,
            saved: 3,
            backed_out: 1,
            reprocessed: 1,
            clusters: 2,
            squashed: 0,
            plan_ns: 999,
            edges: vec![
                AutopsyEdge::from_backout(7, 2, "mobile-read-base", 0b11, 0b10, 4),
                AutopsyEdge::from_reprocess(9, "merge-failed", NO_PARTNER, "none", 0b100, 0),
            ],
        }
    }

    #[test]
    fn sentinel_partner_becomes_none() {
        let a = autopsy();
        assert_eq!(a.edges[0].lost_to, Some(2));
        assert!(a.edges[0].is_concrete());
        assert_eq!(a.edges[1].lost_to, None);
        assert!(!a.edges[1].is_concrete());
        assert_eq!(a.backout_edges().count(), 1);
        assert_eq!(a.reprocess_edges().count(), 1);
    }

    #[test]
    fn json_rendering_is_valid_and_pinned() {
        let json = autopsy().to_json();
        validate_json_line(&json).unwrap_or_else(|e| panic!("invalid JSON {json}: {e}"));
        assert_eq!(
            json,
            "{\"tick\":40,\"mobile\":1,\"pending\":5,\"saved\":3,\"backed_out\":1,\
             \"reprocessed\":1,\"clusters\":2,\"squashed\":0,\"plan_ns\":999,\"edges\":[\
             {\"txn\":7,\"cause\":\"backed-out\",\"lost_to\":2,\"rule\":\"mobile-read-base\",\
             \"txn_mask\":3,\"other_mask\":2,\"weight\":4},\
             {\"txn\":9,\"cause\":\"merge-failed\",\"lost_to\":null,\"rule\":\"none\",\
             \"txn_mask\":4,\"other_mask\":0,\"weight\":0}]}"
        );
    }
}
