//! The typed event taxonomy and its JSONL rendering.

use crate::json::push_escaped;

/// A named pipeline phase, for span timing. The set covers every choke
/// point of the merge/session/WAL stack; [`Phase::ALL`] fixes the report
/// order of per-phase breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Executing histories (deriving `H_m`'s log and `H_b`'s final state)
    /// before step 1.
    Exec,
    /// Step 1: building the precedence graph `G(H_m, H_b)`.
    GraphBuild,
    /// Step 2: computing the back-out set (cycle breaking).
    Backout,
    /// Step 3: rewriting the tentative history.
    Rewrite,
    /// Step 4: pruning (undo or compensation).
    Prune,
    /// The whole merge-plan computation (steps 1–4 plus execution).
    MergePlan,
    /// Step 5: installing forwarded updates on the base.
    Install,
    /// Step 6: re-executing backed-out transactions.
    Reexecute,
    /// One whole synchronization (a reconnection, any path).
    Sync,
    /// The concurrent merge phase of a reconnect batch.
    ParallelMerge,
    /// Framing and appending one WAL record.
    WalAppend,
    /// Writing a checkpoint snapshot and compacting segments.
    Checkpoint,
    /// Rebuilding base-tier state from the WAL.
    Recovery,
    /// One Strategy-2 window (virtual clock: ticks, not nanoseconds).
    Window,
    /// Draining the event queue and dispatching a tick's scheduled mobile
    /// work (event-driven scheduler only).
    Scheduler,
    /// The pre-merge semantic compaction pass over a pending tentative
    /// history (enabled runs only).
    Compact,
}

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; 16] = [
        Phase::Exec,
        Phase::GraphBuild,
        Phase::Backout,
        Phase::Rewrite,
        Phase::Prune,
        Phase::MergePlan,
        Phase::Install,
        Phase::Reexecute,
        Phase::Sync,
        Phase::ParallelMerge,
        Phase::WalAppend,
        Phase::Checkpoint,
        Phase::Recovery,
        Phase::Window,
        Phase::Scheduler,
        Phase::Compact,
    ];

    /// Stable snake-case name, used as the JSONL `phase` field and the
    /// registry key.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Exec => "exec",
            Phase::GraphBuild => "graph_build",
            Phase::Backout => "backout",
            Phase::Rewrite => "rewrite",
            Phase::Prune => "prune",
            Phase::MergePlan => "merge_plan",
            Phase::Install => "install",
            Phase::Reexecute => "reexecute",
            Phase::Sync => "sync",
            Phase::ParallelMerge => "parallel_merge",
            Phase::WalAppend => "wal_append",
            Phase::Checkpoint => "checkpoint",
            Phase::Recovery => "recovery",
            Phase::Window => "window",
            Phase::Scheduler => "scheduler",
            Phase::Compact => "compact",
        }
    }

    /// The phase's index into [`Phase::ALL`] (registry slot).
    pub(crate) fn index(&self) -> usize {
        Phase::ALL.iter().position(|p| p == self).expect("every phase is listed in ALL")
    }
}

/// One step of the resumable session protocol, as observed by the base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStepKind {
    /// The mobile's offer arrived.
    Offer,
    /// The base computed (or reused) the merge decision.
    Merge,
    /// The install committed, with the durable session record.
    Install,
    /// A backed-out transaction was re-executed.
    Reexecute,
    /// The ack reached the mobile; the session is done.
    Ack,
    /// A prior unacked session was resolved against the ledger.
    Resume,
    /// The retry budget ran out; the session was abandoned.
    Abandon,
    /// An abandoned mobile's next attempt was rescheduled early on the
    /// capped exponential backoff ladder.
    Backoff,
}

impl SessionStepKind {
    /// Stable snake-case name for the JSONL `step` field.
    pub fn name(&self) -> &'static str {
        match self {
            SessionStepKind::Offer => "offer",
            SessionStepKind::Merge => "merge",
            SessionStepKind::Install => "install",
            SessionStepKind::Reexecute => "reexecute",
            SessionStepKind::Ack => "ack",
            SessionStepKind::Resume => "resume",
            SessionStepKind::Abandon => "abandon",
            SessionStepKind::Backoff => "backoff",
        }
    }
}

/// Sentinel partner id for autopsy events that found no concrete
/// conflict edge: `lost_to` is this value and `rule` is `"none"`.
pub const NO_PARTNER: u64 = u64::MAX;

/// A structured trace event. Every variant renders as one JSONL object
/// with a `type` discriminant; payloads are counts and names only — no
/// histories or states, so recording is cheap and rings stay small.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Step 1 finished: the precedence graph was built.
    GraphBuilt {
        /// Tentative-history length.
        hm_len: usize,
        /// Base-history length the merge ran against.
        hb_len: usize,
        /// Edges in the full graph.
        edges: usize,
    },
    /// Step 2 finished: the back-out set was selected.
    CycleBreak {
        /// Size of the back-out set `B`.
        backed_out: usize,
        /// Size of the affected set `AG(B)`.
        affected: usize,
    },
    /// Step 3 finished: the history was rewritten.
    Rewrite {
        /// Transactions the rewrite kept (work saved).
        saved: usize,
        /// Transactions moved to the back-out suffix.
        backed_out: usize,
    },
    /// Step 4 finished: the repaired state was pruned.
    Prune {
        /// The pruning method ("undo" or "compensate").
        method: &'static str,
    },
    /// One session-protocol step completed at the base.
    SessionStep {
        /// Simulation tick.
        tick: u64,
        /// Mobile node id.
        mobile: usize,
        /// Session sequence number.
        seq: u64,
        /// Which step.
        step: SessionStepKind,
    },
    /// The fault plan injected an event into the handshake.
    Fault {
        /// Simulation tick.
        tick: u64,
        /// The fault kind's short name.
        kind: &'static str,
    },
    /// One record was appended to the WAL.
    WalAppend {
        /// The record kind's short name.
        kind: &'static str,
        /// Framed bytes written.
        bytes: usize,
    },
    /// A checkpoint snapshot was written.
    WalCheckpoint {
        /// Records appended since the previous checkpoint.
        records: u64,
    },
    /// Checkpoint compaction retired old segments.
    WalCompaction {
        /// Segments deleted.
        retired: u64,
    },
    /// Recovery replayed the WAL tail after a checkpoint.
    RecoveryReplay {
        /// Records replayed after the checkpoint.
        records: usize,
        /// `true` when a torn or corrupt suffix was discarded.
        torn: bool,
    },
    /// A runtime invariant was violated (always paired with a metrics
    /// counter — the event carries the context the counter cannot).
    Invariant {
        /// The invariant's stable name (e.g. `double-install`).
        name: &'static str,
        /// Simulation tick.
        tick: u64,
        /// Mobile node id.
        mobile: usize,
        /// Session sequence number.
        seq: u64,
    },
    /// The admission controller resolved one tick's reconnect cohort:
    /// how many mobiles it admitted (deferred-queue drains first, then
    /// fresh arrivals) and how many it shed. Emitted only on ticks where
    /// the controller actually deferred or drained, so unbounded runs
    /// record nothing.
    Admission {
        /// Simulation tick.
        tick: u64,
        /// Mobiles admitted to this tick's merge cohort.
        admitted: usize,
        /// Fresh reconnects shed into the deferred queue this tick.
        shed: usize,
        /// Deferred-queue length after this tick's admissions.
        deferred: usize,
    },
    /// Merge autopsy: one transaction was backed out, and this is the
    /// precedence edge that doomed it — the rule that drew the edge, both
    /// footprint summary masks, the base/bad partner it lost to, and the
    /// reads-from weight the cycle breaker charged for it.
    BackoutEdge {
        /// Simulation tick of the merge.
        tick: u64,
        /// Mobile node id.
        mobile: usize,
        /// The backed-out transaction's raw id.
        txn: u64,
        /// The partner transaction's raw id ([`NO_PARTNER`] when the
        /// attribution found no single edge to pin it on).
        lost_to: u64,
        /// The precedence rule that drew the edge (`mobile-conflict`,
        /// `base-conflict`, `mobile-read-base`, `base-read-mobile`, or
        /// `none`).
        rule: &'static str,
        /// The backed-out transaction's read|write summary mask.
        txn_mask: u64,
        /// The partner's read|write summary mask (0 when none).
        other_mask: u64,
        /// The reads-from closure weight that decided the back-out.
        weight: u64,
    },
    /// Merge autopsy: one pending transaction was reprocessed wholesale
    /// (no merge ran, or the merge failed), with the decision cause and —
    /// when one exists — the concrete base commit it conflicts with.
    ReprocessCause {
        /// Simulation tick of the sync.
        tick: u64,
        /// Mobile node id.
        mobile: usize,
        /// The reprocessed transaction's raw id.
        txn: u64,
        /// Why the whole history was reprocessed (`dirty-origin`,
        /// `protocol-reprocessing`, `window-miss`, `merge-failed`,
        /// `ledger-gap`).
        cause: &'static str,
        /// The conflicting base commit's raw id ([`NO_PARTNER`] when no
        /// base commit overlaps this transaction's footprint).
        lost_to: u64,
        /// The conflict rule relating them (`none` when no partner).
        rule: &'static str,
        /// The reprocessed transaction's read|write summary mask.
        txn_mask: u64,
        /// The partner's read|write summary mask (0 when none).
        other_mask: u64,
    },
    /// Merge autopsy: the per-sync summary closing the preceding
    /// [`TraceEvent::BackoutEdge`]/[`TraceEvent::ReprocessCause`] run.
    /// Counts are in original-transaction units (composites expanded),
    /// matching `Metrics`.
    MergeSummary {
        /// Simulation tick.
        tick: u64,
        /// Mobile node id.
        mobile: usize,
        /// Pending tentative transactions offered.
        pending: usize,
        /// Transactions saved from reprocessing.
        saved: usize,
        /// Transactions backed out and re-executed.
        backed_out: usize,
        /// Transactions reprocessed wholesale.
        reprocessed: usize,
        /// Precedence clusters the planner saw (0 when no merge ran).
        clusters: usize,
        /// Composite transactions the pre-merge compactor squashed in.
        squashed: usize,
        /// Wall-clock nanoseconds of the merge-plan span (0 when no plan
        /// was computed — speculative hits and plain reprocessing).
        plan_ns: u64,
    },
    /// A wall-clock span: `phase` took `ns` nanoseconds.
    Span {
        /// The timed phase.
        phase: Phase,
        /// Wall-clock nanoseconds.
        ns: u64,
    },
    /// A virtual-clock span: `phase` lasted `ticks` simulation ticks.
    TickSpan {
        /// The timed phase.
        phase: Phase,
        /// Simulation ticks.
        ticks: u64,
    },
}

impl TraceEvent {
    /// The event's `type` discriminant, as rendered in JSONL.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::GraphBuilt { .. } => "graph_built",
            TraceEvent::CycleBreak { .. } => "cycle_break",
            TraceEvent::Rewrite { .. } => "rewrite",
            TraceEvent::Prune { .. } => "prune",
            TraceEvent::SessionStep { .. } => "session_step",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::WalAppend { .. } => "wal_append",
            TraceEvent::WalCheckpoint { .. } => "wal_checkpoint",
            TraceEvent::WalCompaction { .. } => "wal_compaction",
            TraceEvent::RecoveryReplay { .. } => "recovery_replay",
            TraceEvent::Invariant { .. } => "invariant",
            TraceEvent::Admission { .. } => "admission",
            TraceEvent::BackoutEdge { .. } => "backout_edge",
            TraceEvent::ReprocessCause { .. } => "reprocess_cause",
            TraceEvent::MergeSummary { .. } => "merge_summary",
            TraceEvent::Span { .. } => "span",
            TraceEvent::TickSpan { .. } => "tick_span",
        }
    }

    /// Renders the event as one JSON object (no trailing newline). Field
    /// order is fixed per variant, so dumps diff cleanly across runs.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"type\":\"");
        out.push_str(self.kind());
        out.push('"');
        match self {
            TraceEvent::GraphBuilt { hm_len, hb_len, edges } => {
                push_field_u64(&mut out, "hm_len", *hm_len as u64);
                push_field_u64(&mut out, "hb_len", *hb_len as u64);
                push_field_u64(&mut out, "edges", *edges as u64);
            }
            TraceEvent::CycleBreak { backed_out, affected } => {
                push_field_u64(&mut out, "backed_out", *backed_out as u64);
                push_field_u64(&mut out, "affected", *affected as u64);
            }
            TraceEvent::Rewrite { saved, backed_out } => {
                push_field_u64(&mut out, "saved", *saved as u64);
                push_field_u64(&mut out, "backed_out", *backed_out as u64);
            }
            TraceEvent::Prune { method } => push_field_str(&mut out, "method", method),
            TraceEvent::SessionStep { tick, mobile, seq, step } => {
                push_field_u64(&mut out, "tick", *tick);
                push_field_u64(&mut out, "mobile", *mobile as u64);
                push_field_u64(&mut out, "seq", *seq);
                push_field_str(&mut out, "step", step.name());
            }
            TraceEvent::Fault { tick, kind } => {
                push_field_u64(&mut out, "tick", *tick);
                push_field_str(&mut out, "kind", kind);
            }
            TraceEvent::WalAppend { kind, bytes } => {
                push_field_str(&mut out, "kind", kind);
                push_field_u64(&mut out, "bytes", *bytes as u64);
            }
            TraceEvent::WalCheckpoint { records } => {
                push_field_u64(&mut out, "records", *records);
            }
            TraceEvent::WalCompaction { retired } => {
                push_field_u64(&mut out, "retired", *retired);
            }
            TraceEvent::RecoveryReplay { records, torn } => {
                push_field_u64(&mut out, "records", *records as u64);
                out.push_str(",\"torn\":");
                out.push_str(if *torn { "true" } else { "false" });
            }
            TraceEvent::Invariant { name, tick, mobile, seq } => {
                push_field_str(&mut out, "name", name);
                push_field_u64(&mut out, "tick", *tick);
                push_field_u64(&mut out, "mobile", *mobile as u64);
                push_field_u64(&mut out, "seq", *seq);
            }
            TraceEvent::Admission { tick, admitted, shed, deferred } => {
                push_field_u64(&mut out, "tick", *tick);
                push_field_u64(&mut out, "admitted", *admitted as u64);
                push_field_u64(&mut out, "shed", *shed as u64);
                push_field_u64(&mut out, "deferred", *deferred as u64);
            }
            TraceEvent::BackoutEdge {
                tick,
                mobile,
                txn,
                lost_to,
                rule,
                txn_mask,
                other_mask,
                weight,
            } => {
                push_field_u64(&mut out, "tick", *tick);
                push_field_u64(&mut out, "mobile", *mobile as u64);
                push_field_u64(&mut out, "txn", *txn);
                push_field_u64(&mut out, "lost_to", *lost_to);
                push_field_str(&mut out, "rule", rule);
                push_field_u64(&mut out, "txn_mask", *txn_mask);
                push_field_u64(&mut out, "other_mask", *other_mask);
                push_field_u64(&mut out, "weight", *weight);
            }
            TraceEvent::ReprocessCause {
                tick,
                mobile,
                txn,
                cause,
                lost_to,
                rule,
                txn_mask,
                other_mask,
            } => {
                push_field_u64(&mut out, "tick", *tick);
                push_field_u64(&mut out, "mobile", *mobile as u64);
                push_field_u64(&mut out, "txn", *txn);
                push_field_str(&mut out, "cause", cause);
                push_field_u64(&mut out, "lost_to", *lost_to);
                push_field_str(&mut out, "rule", rule);
                push_field_u64(&mut out, "txn_mask", *txn_mask);
                push_field_u64(&mut out, "other_mask", *other_mask);
            }
            TraceEvent::MergeSummary {
                tick,
                mobile,
                pending,
                saved,
                backed_out,
                reprocessed,
                clusters,
                squashed,
                plan_ns,
            } => {
                push_field_u64(&mut out, "tick", *tick);
                push_field_u64(&mut out, "mobile", *mobile as u64);
                push_field_u64(&mut out, "pending", *pending as u64);
                push_field_u64(&mut out, "saved", *saved as u64);
                push_field_u64(&mut out, "backed_out", *backed_out as u64);
                push_field_u64(&mut out, "reprocessed", *reprocessed as u64);
                push_field_u64(&mut out, "clusters", *clusters as u64);
                push_field_u64(&mut out, "squashed", *squashed as u64);
                push_field_u64(&mut out, "plan_ns", *plan_ns);
            }
            TraceEvent::Span { phase, ns } => {
                push_field_str(&mut out, "phase", phase.name());
                push_field_u64(&mut out, "ns", *ns);
            }
            TraceEvent::TickSpan { phase, ticks } => {
                push_field_str(&mut out, "phase", phase.name());
                push_field_u64(&mut out, "ticks", *ticks);
            }
        }
        out.push('}');
        out
    }
}

fn push_field_u64(out: &mut String, key: &str, v: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
}

fn push_field_str(out: &mut String, key: &str, v: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    push_escaped(out, v);
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json_line;

    fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent::GraphBuilt { hm_len: 4, hb_len: 2, edges: 7 },
            TraceEvent::CycleBreak { backed_out: 1, affected: 2 },
            TraceEvent::Rewrite { saved: 3, backed_out: 1 },
            TraceEvent::Prune { method: "undo" },
            TraceEvent::SessionStep { tick: 42, mobile: 1, seq: 3, step: SessionStepKind::Install },
            TraceEvent::Fault { tick: 9, kind: "loss" },
            TraceEvent::WalAppend { kind: "commit", bytes: 128 },
            TraceEvent::WalCheckpoint { records: 64 },
            TraceEvent::WalCompaction { retired: 2 },
            TraceEvent::RecoveryReplay { records: 17, torn: true },
            TraceEvent::Invariant { name: "double-install", tick: 5, mobile: 0, seq: 1 },
            TraceEvent::Admission { tick: 80, admitted: 8, shed: 3, deferred: 11 },
            TraceEvent::BackoutEdge {
                tick: 90,
                mobile: 2,
                txn: 17,
                lost_to: 4,
                rule: "mobile-read-base",
                txn_mask: 0b1010,
                other_mask: 0b0010,
                weight: 3,
            },
            TraceEvent::ReprocessCause {
                tick: 91,
                mobile: 3,
                txn: 21,
                cause: "window-miss",
                lost_to: NO_PARTNER,
                rule: "none",
                txn_mask: 0b100,
                other_mask: 0,
            },
            TraceEvent::MergeSummary {
                tick: 92,
                mobile: 2,
                pending: 6,
                saved: 4,
                backed_out: 2,
                reprocessed: 0,
                clusters: 3,
                squashed: 1,
                plan_ns: 4321,
            },
            TraceEvent::Span { phase: Phase::Install, ns: 1234 },
            TraceEvent::TickSpan { phase: Phase::Window, ticks: 100 },
        ]
    }

    #[test]
    fn every_variant_renders_valid_json_with_its_kind() {
        for event in samples() {
            let line = event.to_jsonl();
            validate_json_line(&line)
                .unwrap_or_else(|e| panic!("{}: invalid JSON {line}: {e}", event.kind()));
            assert!(
                line.starts_with(&format!("{{\"type\":\"{}\"", event.kind())),
                "{line} does not lead with its discriminant"
            );
        }
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds: std::collections::BTreeSet<&str> = samples().iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), samples().len());
    }

    #[test]
    fn rendering_is_exact_for_pinned_variants() {
        assert_eq!(
            TraceEvent::SessionStep { tick: 1, mobile: 2, seq: 3, step: SessionStepKind::Ack }
                .to_jsonl(),
            r#"{"type":"session_step","tick":1,"mobile":2,"seq":3,"step":"ack"}"#
        );
        assert_eq!(
            TraceEvent::Span { phase: Phase::WalAppend, ns: 500 }.to_jsonl(),
            r#"{"type":"span","phase":"wal_append","ns":500}"#
        );
        assert_eq!(
            TraceEvent::RecoveryReplay { records: 3, torn: false }.to_jsonl(),
            r#"{"type":"recovery_replay","records":3,"torn":false}"#
        );
        assert_eq!(
            TraceEvent::Admission { tick: 80, admitted: 8, shed: 3, deferred: 11 }.to_jsonl(),
            r#"{"type":"admission","tick":80,"admitted":8,"shed":3,"deferred":11}"#
        );
        assert_eq!(
            TraceEvent::SessionStep { tick: 4, mobile: 0, seq: 2, step: SessionStepKind::Backoff }
                .to_jsonl(),
            r#"{"type":"session_step","tick":4,"mobile":0,"seq":2,"step":"backoff"}"#
        );
        assert_eq!(
            TraceEvent::BackoutEdge {
                tick: 7,
                mobile: 1,
                txn: 9,
                lost_to: 2,
                rule: "base-conflict",
                txn_mask: 5,
                other_mask: 4,
                weight: 6,
            }
            .to_jsonl(),
            "{\"type\":\"backout_edge\",\"tick\":7,\"mobile\":1,\"txn\":9,\"lost_to\":2,\
             \"rule\":\"base-conflict\",\"txn_mask\":5,\"other_mask\":4,\"weight\":6}"
        );
        assert_eq!(
            TraceEvent::ReprocessCause {
                tick: 8,
                mobile: 0,
                txn: 3,
                cause: "merge-failed",
                lost_to: 1,
                rule: "mobile-read-base",
                txn_mask: 2,
                other_mask: 3,
            }
            .to_jsonl(),
            "{\"type\":\"reprocess_cause\",\"tick\":8,\"mobile\":0,\"txn\":3,\
             \"cause\":\"merge-failed\",\"lost_to\":1,\"rule\":\"mobile-read-base\",\
             \"txn_mask\":2,\"other_mask\":3}"
        );
        assert_eq!(
            TraceEvent::MergeSummary {
                tick: 9,
                mobile: 4,
                pending: 5,
                saved: 3,
                backed_out: 1,
                reprocessed: 1,
                clusters: 2,
                squashed: 0,
                plan_ns: 77,
            }
            .to_jsonl(),
            "{\"type\":\"merge_summary\",\"tick\":9,\"mobile\":4,\"pending\":5,\"saved\":3,\
             \"backed_out\":1,\"reprocessed\":1,\"clusters\":2,\"squashed\":0,\"plan_ns\":77}"
        );
    }

    #[test]
    fn phase_names_are_distinct_and_indexed() {
        let names: std::collections::BTreeSet<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), Phase::ALL.len());
        for (i, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
    }
}
