//! Minimal JSON helpers: escaping for the renderer and a strict
//! validator for tests asserting that flight-recorder dumps are
//! well-formed JSONL (the workspace vendors a no-op serde, so validation
//! is hand-rolled too).

/// Appends `s` to `out` with JSON string escaping.
pub(crate) fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Validates that `line` is exactly one well-formed JSON value (object,
/// array, string, number, boolean, or null) with nothing trailing.
/// Returns a position-tagged error on malformed input. Strict enough for
/// dump tests; not a general-purpose parser (no deserialization).
pub fn validate_json_line(line: &str) -> Result<(), String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}")),
        None => Err(format!("unexpected end of input at {pos}")),
    }
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        string(bytes, pos).map_err(|e| format!("object key: {e}"))?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at {pos}")),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at {pos}")),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(bytes, pos, b'"')?;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad \\u escape at {pos}")),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("unescaped control byte at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| {
        let from = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        *pos > from
    };
    if !digits(bytes, pos) {
        return Err(format!("expected digits at {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(format!("expected fraction digits at {pos}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(format!("expected exponent digits at {pos}"));
        }
    }
    Ok(())
}

fn literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at {pos}"))
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at {pos}", c as char))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_lines() {
        for line in [
            r#"{"type":"span","ns":12}"#,
            r#"{"a":{"b":[1,2.5,-3,1e9]},"c":"x\"y\n","d":null,"e":true,"f":false}"#,
            r#"[]"#,
            r#"  {}  "#,
            r#""just a string""#,
            r#"-0.5e-3"#,
        ] {
            validate_json_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        for line in [
            "",
            "{",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{'a':1}"#,
            r#"{"a":1} trailing"#,
            "[1,]",
            r#""unterminated"#,
            "01x",
            "nul",
            "{\"a\":\"raw\ncontrol\"}",
        ] {
            assert!(validate_json_line(line).is_err(), "accepted malformed: {line:?}");
        }
    }

    #[test]
    fn escaping_round_trips_through_validation() {
        let mut out = String::from("{\"v\":\"");
        push_escaped(&mut out, "quote\" slash\\ nl\n tab\t ctrl\u{1} done");
        out.push_str("\"}");
        validate_json_line(&out).unwrap();
    }
}
