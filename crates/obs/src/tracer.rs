//! The tracer trait, its zero-cost default, and the cloneable handle
//! instrumented code carries.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::event::{Phase, TraceEvent};
use crate::registry::{Registry, RegistrySnapshot};

/// A sink for [`TraceEvent`]s. Implementations must be cheap and
/// observation-only: recording may never influence the instrumented
/// computation (no RNG, no shared mutable simulation state).
pub trait Tracer: Send + Sync + std::fmt::Debug {
    /// `false` when recording is a no-op; [`TracerHandle::emit`] skips
    /// event construction entirely for disabled sinks, which is what
    /// makes the default tracer effectively free.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&self, event: &TraceEvent);

    /// The buffered events as JSONL (one object per line, trailing
    /// newline), for sinks that retain them. `None` for pure-counting or
    /// no-op sinks.
    fn dump_jsonl(&self) -> Option<String> {
        None
    }

    /// A snapshot of the sink's span registry, if it keeps one.
    fn snapshot(&self) -> Option<RegistrySnapshot> {
        None
    }

    /// One phase's `(p50_bound, p99_bound)` without materializing a full
    /// snapshot — the per-tick telemetry sampler's fast path. `None` for
    /// sinks without a registry or phases with no samples yet.
    fn phase_quantiles(&self, phase: Phase) -> Option<(u64, u64)> {
        let _ = phase;
        None
    }
}

/// The zero-cost default: disabled, records nothing, dumps nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: &TraceEvent) {}
}

/// An unbounded JSONL sink: retains every event (rendered eagerly) plus
/// a span registry. The heavyweight end of the overhead spectrum —
/// experiment E17 measures it against the ring and the noop.
#[derive(Debug, Default)]
pub struct JsonlSink {
    lines: Mutex<Vec<String>>,
    registry: Registry,
}

impl JsonlSink {
    /// An empty sink.
    pub fn new() -> JsonlSink {
        JsonlSink::default()
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.lines.lock().expect("sink lock").len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Tracer for JsonlSink {
    fn record(&self, event: &TraceEvent) {
        if let TraceEvent::Span { phase, ns } = event {
            self.registry.observe(*phase, *ns);
        }
        if let TraceEvent::TickSpan { phase, ticks } = event {
            self.registry.observe(*phase, *ticks);
        }
        self.lines.lock().expect("sink lock").push(event.to_jsonl());
    }

    fn dump_jsonl(&self) -> Option<String> {
        let lines = self.lines.lock().expect("sink lock");
        let mut out = String::new();
        for line in lines.iter() {
            out.push_str(line);
            out.push('\n');
        }
        Some(out)
    }

    fn snapshot(&self) -> Option<RegistrySnapshot> {
        Some(self.registry.snapshot())
    }

    fn phase_quantiles(&self, phase: Phase) -> Option<(u64, u64)> {
        self.registry.phase_quantiles(phase)
    }
}

/// A cloneable, shareable handle to a [`Tracer`], with the ergonomics
/// instrumented code needs: lazy event construction, span timing, and
/// failure dumps. `Default` is the no-op tracer (one shared allocation
/// process-wide), so carrying a handle in a config struct costs an `Arc`
/// clone and tracing a disabled run costs one virtual call per site.
#[derive(Clone)]
pub struct TracerHandle(Arc<dyn Tracer>);

impl TracerHandle {
    /// Wraps a tracer implementation.
    pub fn new(tracer: Arc<dyn Tracer>) -> TracerHandle {
        TracerHandle(tracer)
    }

    /// The shared no-op handle ([`NoopTracer`]); allocation-free after
    /// first use.
    pub fn noop() -> TracerHandle {
        static NOOP: OnceLock<Arc<NoopTracer>> = OnceLock::new();
        TracerHandle(NOOP.get_or_init(|| Arc::new(NoopTracer)).clone())
    }

    /// `true` when events will actually be recorded.
    pub fn enabled(&self) -> bool {
        self.0.enabled()
    }

    /// Records the event produced by `f`, constructing it only when the
    /// sink is enabled — payload computation in the closure is free on
    /// the no-op path.
    pub fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if self.0.enabled() {
            self.0.record(&f());
        }
    }

    /// Starts a wall-clock span: `Some(now)` when enabled, `None` (no
    /// clock read) otherwise.
    pub fn span_start(&self) -> Option<Instant> {
        self.0.enabled().then(Instant::now)
    }

    /// Finishes a span started with [`TracerHandle::span_start`],
    /// recording a [`TraceEvent::Span`] for `phase`. Returns the
    /// measured nanoseconds (0 when disabled).
    pub fn span_end(&self, phase: Phase, started: Option<Instant>) -> u64 {
        match started {
            Some(started) => {
                let ns = started.elapsed().as_nanos() as u64;
                self.0.record(&TraceEvent::Span { phase, ns });
                ns
            }
            None => 0,
        }
    }

    /// The sink's buffered events as JSONL, if it retains any.
    pub fn dump_jsonl(&self) -> Option<String> {
        self.0.dump_jsonl()
    }

    /// The sink's span-registry snapshot, if it keeps one.
    pub fn snapshot(&self) -> Option<RegistrySnapshot> {
        self.0.snapshot()
    }

    /// One phase's `(p50_bound, p99_bound)` from the sink's registry,
    /// without cloning a whole snapshot. `None` when the sink keeps no
    /// registry or the phase has no samples.
    pub fn phase_quantiles(&self, phase: Phase) -> Option<(u64, u64)> {
        self.0.phase_quantiles(phase)
    }

    /// Writes the sink's buffered events to `<dir>/<label>.jsonl`, where
    /// `<dir>` is `$FLIGHT_RECORDER_DIR` or `target/flight-recorder`
    /// (created if missing). When the sink keeps a span registry, its
    /// snapshot is written alongside as `<label>.registry.json`, so
    /// failure uploads carry the phase histograms too. Returns the JSONL
    /// path written, `None` when the sink retains nothing or the write
    /// failed (failure dumps must never mask the original panic).
    /// `label` is sanitized to a filename-safe slug.
    pub fn dump_to_dir(&self, label: &str) -> Option<std::path::PathBuf> {
        let body = self.0.dump_jsonl()?;
        let dir = std::env::var_os("FLIGHT_RECORDER_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("target/flight-recorder"));
        std::fs::create_dir_all(&dir).ok()?;
        let slug: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
            .collect();
        let path = dir.join(format!("{slug}.jsonl"));
        std::fs::write(&path, body).ok()?;
        if let Some(snapshot) = self.0.snapshot() {
            let registry_path = dir.join(format!("{slug}.registry.json"));
            let _ = std::fs::write(&registry_path, crate::export::registry_json(&snapshot));
        }
        Some(path)
    }
}

impl Default for TracerHandle {
    fn default() -> Self {
        TracerHandle::noop()
    }
}

impl std::fmt::Debug for TracerHandle {
    /// Prints the sink's state, not its address.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracerHandle").field("enabled", &self.0.enabled()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SessionStepKind;

    #[test]
    fn noop_handle_skips_event_construction() {
        let handle = TracerHandle::default();
        assert!(!handle.enabled());
        let mut constructed = false;
        handle.emit(|| {
            constructed = true;
            TraceEvent::WalCheckpoint { records: 0 }
        });
        assert!(!constructed, "disabled sink must not build events");
        assert!(handle.span_start().is_none());
        assert_eq!(handle.span_end(Phase::Sync, None), 0);
        assert!(handle.dump_jsonl().is_none());
        assert!(handle.snapshot().is_none());
        assert!(handle.dump_to_dir("noop").is_none());
    }

    #[test]
    fn noop_handles_share_one_allocation() {
        let a = TracerHandle::noop();
        let b = TracerHandle::default();
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn jsonl_sink_retains_everything_in_order() {
        let sink = Arc::new(JsonlSink::new());
        let handle = TracerHandle::new(sink.clone());
        assert!(handle.enabled());
        handle.emit(|| TraceEvent::SessionStep {
            tick: 1,
            mobile: 0,
            seq: 0,
            step: SessionStepKind::Offer,
        });
        handle.emit(|| TraceEvent::WalCompaction { retired: 1 });
        assert_eq!(sink.len(), 2);
        let dump = handle.dump_jsonl().unwrap();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("session_step"));
        assert!(lines[1].contains("wal_compaction"));
    }

    #[test]
    fn spans_feed_the_registry_and_measure_time() {
        let sink = Arc::new(JsonlSink::new());
        let handle = TracerHandle::new(sink);
        let started = handle.span_start();
        assert!(started.is_some());
        let ns = handle.span_end(Phase::Install, started);
        let snap = handle.snapshot().unwrap();
        let install = snap.phase(Phase::Install).unwrap();
        assert_eq!(install.count, 1);
        assert_eq!(install.total, ns);
    }

    #[test]
    fn debug_never_leaks_sink_internals() {
        let text = format!("{:?}", TracerHandle::default());
        assert!(text.contains("enabled: false"), "{text}");
    }
}
