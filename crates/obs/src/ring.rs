//! The flight recorder: a bounded ring of the last N events, plus the
//! panic wrapper that turns red tests into forensic traces.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use crate::event::TraceEvent;
use crate::registry::{Registry, RegistrySnapshot};
use crate::tracer::{Tracer, TracerHandle};

/// A bounded ring buffer of pre-rendered JSONL event lines plus a span
/// registry. Recording an event beyond capacity evicts the oldest line,
/// so memory stays fixed however long the run; the dump is always the
/// last `capacity` events, oldest first.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<Ring>,
    registry: Registry,
}

#[derive(Debug)]
struct Ring {
    lines: VecDeque<String>,
    recorded: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(Ring { lines: VecDeque::new(), recorded: 0 }),
            registry: Registry::new(),
        }
    }

    /// The recorder wrapped in a ready-to-use [`TracerHandle`].
    pub fn handle(capacity: usize) -> TracerHandle {
        TracerHandle::new(std::sync::Arc::new(FlightRecorder::new(capacity)))
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring lock").lines.len()
    }

    /// `true` when nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("ring lock").recorded
    }
}

impl Tracer for FlightRecorder {
    fn record(&self, event: &TraceEvent) {
        if let TraceEvent::Span { phase, ns } = event {
            self.registry.observe(*phase, *ns);
        }
        if let TraceEvent::TickSpan { phase, ticks } = event {
            self.registry.observe(*phase, *ticks);
        }
        let line = event.to_jsonl();
        let mut ring = self.inner.lock().expect("ring lock");
        if ring.lines.len() == self.capacity {
            ring.lines.pop_front();
        }
        ring.lines.push_back(line);
        ring.recorded += 1;
    }

    fn dump_jsonl(&self) -> Option<String> {
        let ring = self.inner.lock().expect("ring lock");
        let mut out = String::new();
        for line in &ring.lines {
            out.push_str(line);
            out.push('\n');
        }
        Some(out)
    }

    fn snapshot(&self) -> Option<RegistrySnapshot> {
        Some(self.registry.snapshot())
    }
}

/// Runs `f`; if it panics (an oracle failure, a diverged shadow
/// recovery, a crash-matrix assertion), writes `tracer`'s buffered
/// events to `<dir>/<label>.jsonl` first, then re-raises the original
/// panic — so the red test ships its trace without changing its verdict.
pub fn dump_on_failure<T>(tracer: &TracerHandle, label: &str, f: impl FnOnce() -> T) -> T {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(value) => value,
        Err(payload) => {
            if let Some(path) = tracer.dump_to_dir(label) {
                eprintln!("flight recorder dumped to {}", path.display());
            }
            resume_unwind(payload)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;
    use crate::json::validate_json_line;

    #[test]
    fn ring_truncates_at_capacity_keeping_the_newest() {
        let recorder = FlightRecorder::new(3);
        for ns in 0..10u64 {
            recorder.record(&TraceEvent::Span { phase: Phase::Sync, ns });
        }
        assert_eq!(recorder.len(), 3);
        assert_eq!(recorder.capacity(), 3);
        assert_eq!(recorder.recorded(), 10);
        let dump = recorder.dump_jsonl().unwrap();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        // Oldest first, newest last — the final three of the ten.
        assert!(lines[0].contains("\"ns\":7"), "{lines:?}");
        assert!(lines[2].contains("\"ns\":9"), "{lines:?}");
        for line in lines {
            validate_json_line(line).unwrap();
        }
        // The registry saw every sample, not just the retained ones.
        let snap = recorder.snapshot().unwrap();
        assert_eq!(snap.phase(Phase::Sync).unwrap().count, 10);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let recorder = FlightRecorder::new(0);
        recorder.record(&TraceEvent::WalCheckpoint { records: 1 });
        recorder.record(&TraceEvent::WalCheckpoint { records: 2 });
        assert_eq!(recorder.len(), 1);
        assert!(recorder.dump_jsonl().unwrap().contains("\"records\":2"));
    }

    #[test]
    fn dump_on_failure_writes_then_rethrows() {
        let dir = std::env::temp_dir().join("histmerge-flight-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("FLIGHT_RECORDER_DIR", &dir);
        let handle = FlightRecorder::handle(16);
        handle.emit(|| TraceEvent::Fault { tick: 3, kind: "loss" });
        let result = catch_unwind(AssertUnwindSafe(|| {
            dump_on_failure(&handle, "unit test/dump", || panic!("forced failure"));
        }));
        std::env::remove_var("FLIGHT_RECORDER_DIR");
        assert!(result.is_err(), "the panic must propagate");
        let body = std::fs::read_to_string(dir.join("unit-test-dump.jsonl")).unwrap();
        for line in body.lines() {
            validate_json_line(line).unwrap();
        }
        assert!(body.contains("\"kind\":\"loss\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_on_failure_is_transparent_on_success() {
        let handle = FlightRecorder::handle(4);
        let v = dump_on_failure(&handle, "never-written", || 41 + 1);
        assert_eq!(v, 42);
    }
}
