//! The flight recorder: a bounded ring of the last N events, plus the
//! panic wrapper that turns red tests into forensic traces.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use crate::autopsy::{AutopsyEdge, MergeAutopsy};
use crate::event::{Phase, TraceEvent};
use crate::registry::{Registry, RegistrySnapshot};
use crate::tracer::{Tracer, TracerHandle};

/// A bounded ring buffer of the last N events plus a span registry.
/// Recording an event beyond capacity evicts the oldest, so memory
/// stays fixed however long the run; the dump renders the retained
/// events to JSONL lazily (recording stores the event value itself —
/// rendering on the hot path would pay a string allocation per event,
/// most of which are evicted unseen), oldest first.
///
/// The recorder additionally reassembles autopsy event runs
/// ([`TraceEvent::BackoutEdge`] / [`TraceEvent::ReprocessCause`] closed
/// by a [`TraceEvent::MergeSummary`]) into structured [`MergeAutopsy`]
/// values, retained on the same capacity bound.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<Ring>,
    registry: Registry,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    recorded: u64,
    pending_edges: Vec<AutopsyEdge>,
    autopsies: VecDeque<MergeAutopsy>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(Ring {
                events: VecDeque::new(),
                recorded: 0,
                pending_edges: Vec::new(),
                autopsies: VecDeque::new(),
            }),
            registry: Registry::new(),
        }
    }

    /// The recorder wrapped in a ready-to-use [`TracerHandle`].
    pub fn handle(capacity: usize) -> TracerHandle {
        TracerHandle::new(std::sync::Arc::new(FlightRecorder::new(capacity)))
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring lock").events.len()
    }

    /// `true` when nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("ring lock").recorded
    }

    /// The merge autopsies assembled so far, oldest first. Bounded by the
    /// ring capacity: the oldest autopsy is evicted past it.
    pub fn autopsies(&self) -> Vec<MergeAutopsy> {
        self.inner.lock().expect("ring lock").autopsies.iter().cloned().collect()
    }
}

impl Tracer for FlightRecorder {
    fn record(&self, event: &TraceEvent) {
        if let TraceEvent::Span { phase, ns } = event {
            self.registry.observe(*phase, *ns);
        }
        if let TraceEvent::TickSpan { phase, ticks } = event {
            self.registry.observe(*phase, *ticks);
        }
        let mut ring = self.inner.lock().expect("ring lock");
        match *event {
            TraceEvent::BackoutEdge {
                txn, lost_to, rule, txn_mask, other_mask, weight, ..
            } => {
                ring.pending_edges.push(AutopsyEdge::from_backout(
                    txn, lost_to, rule, txn_mask, other_mask, weight,
                ));
            }
            TraceEvent::ReprocessCause {
                txn, cause, lost_to, rule, txn_mask, other_mask, ..
            } => {
                ring.pending_edges.push(AutopsyEdge::from_reprocess(
                    txn, cause, lost_to, rule, txn_mask, other_mask,
                ));
            }
            TraceEvent::MergeSummary {
                tick,
                mobile,
                pending,
                saved,
                backed_out,
                reprocessed,
                clusters,
                squashed,
                plan_ns,
            } => {
                let edges = std::mem::take(&mut ring.pending_edges);
                if ring.autopsies.len() == self.capacity {
                    ring.autopsies.pop_front();
                }
                ring.autopsies.push_back(MergeAutopsy {
                    tick,
                    mobile,
                    pending,
                    saved,
                    backed_out,
                    reprocessed,
                    clusters,
                    squashed,
                    plan_ns,
                    edges,
                });
            }
            _ => {}
        }
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back(event.clone());
        ring.recorded += 1;
    }

    fn dump_jsonl(&self) -> Option<String> {
        let ring = self.inner.lock().expect("ring lock");
        let mut out = String::new();
        for event in &ring.events {
            out.push_str(&event.to_jsonl());
            out.push('\n');
        }
        Some(out)
    }

    fn snapshot(&self) -> Option<RegistrySnapshot> {
        Some(self.registry.snapshot())
    }

    fn phase_quantiles(&self, phase: Phase) -> Option<(u64, u64)> {
        self.registry.phase_quantiles(phase)
    }
}

/// Runs `f`; if it panics (an oracle failure, a diverged shadow
/// recovery, a crash-matrix assertion), writes `tracer`'s buffered
/// events to `<dir>/<label>.jsonl` first, then re-raises the original
/// panic — so the red test ships its trace without changing its verdict.
pub fn dump_on_failure<T>(tracer: &TracerHandle, label: &str, f: impl FnOnce() -> T) -> T {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(value) => value,
        Err(payload) => {
            if let Some(path) = tracer.dump_to_dir(label) {
                eprintln!("flight recorder dumped to {}", path.display());
            }
            resume_unwind(payload)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;
    use crate::json::validate_json_line;

    #[test]
    fn ring_truncates_at_capacity_keeping_the_newest() {
        let recorder = FlightRecorder::new(3);
        for ns in 0..10u64 {
            recorder.record(&TraceEvent::Span { phase: Phase::Sync, ns });
        }
        assert_eq!(recorder.len(), 3);
        assert_eq!(recorder.capacity(), 3);
        assert_eq!(recorder.recorded(), 10);
        let dump = recorder.dump_jsonl().unwrap();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        // Oldest first, newest last — the final three of the ten.
        assert!(lines[0].contains("\"ns\":7"), "{lines:?}");
        assert!(lines[2].contains("\"ns\":9"), "{lines:?}");
        for line in lines {
            validate_json_line(line).unwrap();
        }
        // The registry saw every sample, not just the retained ones.
        let snap = recorder.snapshot().unwrap();
        assert_eq!(snap.phase(Phase::Sync).unwrap().count, 10);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let recorder = FlightRecorder::new(0);
        recorder.record(&TraceEvent::WalCheckpoint { records: 1 });
        recorder.record(&TraceEvent::WalCheckpoint { records: 2 });
        assert_eq!(recorder.len(), 1);
        assert!(recorder.dump_jsonl().unwrap().contains("\"records\":2"));
    }

    #[test]
    fn autopsy_runs_assemble_under_their_summary() {
        let recorder = FlightRecorder::new(64);
        recorder.record(&TraceEvent::BackoutEdge {
            tick: 40,
            mobile: 1,
            txn: 7,
            lost_to: 2,
            rule: "mobile-read-base",
            txn_mask: 3,
            other_mask: 2,
            weight: 5,
        });
        recorder.record(&TraceEvent::ReprocessCause {
            tick: 40,
            mobile: 1,
            txn: 9,
            cause: "merge-failed",
            lost_to: crate::event::NO_PARTNER,
            rule: "none",
            txn_mask: 4,
            other_mask: 0,
        });
        recorder.record(&TraceEvent::MergeSummary {
            tick: 40,
            mobile: 1,
            pending: 4,
            saved: 2,
            backed_out: 1,
            reprocessed: 1,
            clusters: 2,
            squashed: 0,
            plan_ns: 11,
        });
        // A second, edge-free sync closes with an empty autopsy.
        recorder.record(&TraceEvent::MergeSummary {
            tick: 55,
            mobile: 0,
            pending: 3,
            saved: 3,
            backed_out: 0,
            reprocessed: 0,
            clusters: 1,
            squashed: 0,
            plan_ns: 7,
        });
        let autopsies = recorder.autopsies();
        assert_eq!(autopsies.len(), 2);
        assert_eq!(autopsies[0].tick, 40);
        assert_eq!(autopsies[0].edges.len(), 2);
        assert_eq!(autopsies[0].edges[0].lost_to, Some(2));
        assert_eq!(autopsies[0].edges[1].cause, "merge-failed");
        assert_eq!(autopsies[0].edges[1].lost_to, None);
        assert!(autopsies[1].edges.is_empty());
        // The JSONL lines are still recorded verbatim alongside.
        assert_eq!(recorder.recorded(), 4);
        assert!(recorder.dump_jsonl().unwrap().contains("\"type\":\"merge_summary\""));
    }

    #[test]
    fn autopsies_are_bounded_by_capacity() {
        let recorder = FlightRecorder::new(2);
        for tick in 0..5u64 {
            recorder.record(&TraceEvent::MergeSummary {
                tick,
                mobile: 0,
                pending: 1,
                saved: 1,
                backed_out: 0,
                reprocessed: 0,
                clusters: 1,
                squashed: 0,
                plan_ns: 0,
            });
        }
        let autopsies = recorder.autopsies();
        assert_eq!(autopsies.len(), 2);
        assert_eq!(autopsies[0].tick, 3);
        assert_eq!(autopsies[1].tick, 4);
    }

    #[test]
    fn dump_on_failure_writes_then_rethrows() {
        let dir = std::env::temp_dir().join("histmerge-flight-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("FLIGHT_RECORDER_DIR", &dir);
        let handle = FlightRecorder::handle(16);
        handle.emit(|| TraceEvent::Fault { tick: 3, kind: "loss" });
        let result = catch_unwind(AssertUnwindSafe(|| {
            dump_on_failure(&handle, "unit test/dump", || panic!("forced failure"));
        }));
        std::env::remove_var("FLIGHT_RECORDER_DIR");
        assert!(result.is_err(), "the panic must propagate");
        let body = std::fs::read_to_string(dir.join("unit-test-dump.jsonl")).unwrap();
        for line in body.lines() {
            validate_json_line(line).unwrap();
        }
        assert!(body.contains("\"kind\":\"loss\""));
        // The registry snapshot rides along for `if: failure()` uploads.
        let registry = std::fs::read_to_string(dir.join("unit-test-dump.registry.json")).unwrap();
        validate_json_line(&registry).unwrap();
        assert!(registry.starts_with("{\"phases\":["), "{registry}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_on_failure_is_transparent_on_success() {
        let handle = FlightRecorder::handle(4);
        let v = dump_on_failure(&handle, "never-written", || 41 + 1);
        assert_eq!(v, 42);
    }
}
