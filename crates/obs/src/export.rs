//! Exporters: Prometheus text format, registry-snapshot JSON, and the
//! self-contained HTML run report.
//!
//! Everything here is plain string assembly (the workspace vendors a
//! no-op serde) with deterministic output: stable key and family order,
//! so golden tests can pin exact bytes and CI artifacts diff cleanly
//! across runs.

use crate::event::Phase;
use crate::registry::RegistrySnapshot;

/// Renders a registry snapshot as one JSON object (stable key order):
/// `{"phases":[{"phase":"sync","count":..,"total":..,"max":..,
/// "p50_bound":..,"p99_bound":..},..]}` in [`Phase::ALL`] order.
pub fn registry_json(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::with_capacity(32 + snapshot.phases.len() * 96);
    out.push_str("{\"phases\":[");
    for (i, p) in snapshot.phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"phase\":\"");
        out.push_str(p.phase.name());
        out.push_str("\",\"count\":");
        out.push_str(&p.count.to_string());
        out.push_str(",\"total\":");
        out.push_str(&p.total.to_string());
        out.push_str(",\"max\":");
        out.push_str(&p.max.to_string());
        out.push_str(",\"p50_bound\":");
        out.push_str(&p.p50_bound.to_string());
        out.push_str(",\"p99_bound\":");
        out.push_str(&p.p99_bound.to_string());
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Renders a Prometheus text-format exposition: one `histmerge_<name>`
/// gauge per entry of `gauges` (caller order), then — when a registry
/// snapshot is given — per-phase span families labelled by phase name.
/// Integer-valued samples render without a decimal point; everything is
/// emitted in a fixed order so the dump is byte-stable for a given run.
pub fn prometheus_text(gauges: &[(&str, f64)], registry: Option<&RegistrySnapshot>) -> String {
    let mut out = String::with_capacity(64 * gauges.len() + 512);
    for (name, value) in gauges {
        out.push_str("# TYPE histmerge_");
        out.push_str(name);
        out.push_str(" gauge\nhistmerge_");
        out.push_str(name);
        out.push(' ');
        out.push_str(&format_value(*value));
        out.push('\n');
    }
    if let Some(snapshot) = registry {
        type PhaseField = fn(&crate::registry::PhaseSnapshot) -> u64;
        let families: [(&str, &str, PhaseField); 5] = [
            ("histmerge_phase_count", "counter", |p| p.count),
            ("histmerge_phase_total", "counter", |p| p.total),
            ("histmerge_phase_max", "gauge", |p| p.max),
            ("histmerge_phase_p50_bound", "gauge", |p| p.p50_bound),
            ("histmerge_phase_p99_bound", "gauge", |p| p.p99_bound),
        ];
        for (family, kind, get) in families {
            out.push_str("# TYPE ");
            out.push_str(family);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            for p in &snapshot.phases {
                out.push_str(family);
                out.push_str("{phase=\"");
                out.push_str(p.phase.name());
                out.push_str("\"} ");
                out.push_str(&get(p).to_string());
                out.push('\n');
            }
        }
    }
    out
}

fn format_value(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// The phase names the report's phase table orders by, exported so the
/// report bin shares the canonical order.
pub fn phase_order() -> Vec<&'static str> {
    Phase::ALL.iter().map(|p| p.name()).collect()
}

/// Builds the self-contained single-file HTML run report around a data
/// blob (one JSON object, typically `{"label":..,"timeseries":..,
/// "metrics":..,"registry":..,"autopsies":[..],"events":[..]}`). The
/// blob is embedded inline — `</` is escaped so a `</script>` inside a
/// string can never terminate the document — and rendered client-side by
/// hand-rolled chart code; the file opens from disk with no network or
/// dependency.
pub fn html_report(title: &str, data_json: &str) -> String {
    let mut safe_title = String::new();
    for c in title.chars() {
        match c {
            '<' => safe_title.push_str("&lt;"),
            '>' => safe_title.push_str("&gt;"),
            '&' => safe_title.push_str("&amp;"),
            c => safe_title.push(c),
        }
    }
    let safe_data = data_json.replace("</", "<\\/");
    let mut out = String::with_capacity(safe_data.len() + REPORT_SHELL.len() + 256);
    let shell =
        REPORT_SHELL.replacen("__TITLE__", &safe_title, 2).replacen("__DATA__", &safe_data, 1);
    out.push_str(&shell);
    out
}

const REPORT_SHELL: &str = r##"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>__TITLE__</title>
<style>
body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:960px;color:#222;padding:0 1em}
h1{font-size:1.4em}h2{font-size:1.1em;margin-top:2em;border-bottom:1px solid #ddd}
table{border-collapse:collapse;margin:0.5em 0;font-size:13px}
td,th{border:1px solid #ccc;padding:2px 8px;text-align:right}
th{background:#f4f4f4}td:first-child,th:first-child{text-align:left}
svg{background:#fafafa;border:1px solid #ddd;margin:0.5em 0}
.lbl{font-size:11px;fill:#666}.axis{stroke:#999;stroke-width:1}
.muted{color:#777;font-size:12px}
</style>
</head>
<body>
<h1>__TITLE__</h1>
<div id="report"><p class="muted">JavaScript disabled — raw data below.</p></div>
<script id="data" type="application/json">__DATA__</script>
<script>
"use strict";
var DATA = JSON.parse(document.getElementById("data").textContent);
var root = document.getElementById("report");
root.textContent = "";

function el(tag, text) {
  var e = document.createElement(tag);
  if (text !== undefined) e.textContent = text;
  root.appendChild(e);
  return e;
}

function table(headers, rows) {
  var t = el("table"), tr = document.createElement("tr");
  headers.forEach(function (h) {
    var th = document.createElement("th");
    th.textContent = h;
    tr.appendChild(th);
  });
  t.appendChild(tr);
  rows.forEach(function (row) {
    var r = document.createElement("tr");
    row.forEach(function (cell) {
      var td = document.createElement("td");
      td.textContent = cell;
      r.appendChild(td);
    });
    t.appendChild(r);
  });
  return t;
}

// A minimal line chart: ticks on x, one polyline per named series.
function chart(name, ticks, series) {
  el("h2", name);
  var W = 900, H = 220, PL = 60, PB = 24;
  var svg = document.createElementNS("http://www.w3.org/2000/svg", "svg");
  svg.setAttribute("width", W);
  svg.setAttribute("height", H);
  var xmax = Math.max(1, ticks[ticks.length - 1] || 1);
  var ymax = 0;
  series.forEach(function (s) {
    s.values.forEach(function (v) { if (v > ymax) ymax = v; });
  });
  if (ymax === 0) ymax = 1;
  function px(t) { return PL + (W - PL - 10) * (t / xmax); }
  function py(v) { return (H - PB) - (H - PB - 10) * (v / ymax); }
  function line(x1, y1, x2, y2) {
    var l = document.createElementNS(svg.namespaceURI, "line");
    l.setAttribute("x1", x1); l.setAttribute("y1", y1);
    l.setAttribute("x2", x2); l.setAttribute("y2", y2);
    l.setAttribute("class", "axis");
    svg.appendChild(l);
  }
  function label(x, y, text, anchor) {
    var t = document.createElementNS(svg.namespaceURI, "text");
    t.setAttribute("x", x); t.setAttribute("y", y);
    t.setAttribute("class", "lbl");
    if (anchor) t.setAttribute("text-anchor", anchor);
    t.textContent = text;
    svg.appendChild(t);
  }
  line(PL, 10, PL, H - PB);
  line(PL, H - PB, W - 10, H - PB);
  label(PL - 4, 16, ymax.toPrecision(3), "end");
  label(PL - 4, H - PB, "0", "end");
  label(W - 10, H - 8, "tick " + xmax, "end");
  var colors = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd"];
  series.forEach(function (s, i) {
    var p = document.createElementNS(svg.namespaceURI, "polyline");
    var pts = ticks.map(function (t, j) {
      return px(t).toFixed(1) + "," + py(s.values[j]).toFixed(1);
    });
    p.setAttribute("points", pts.join(" "));
    p.setAttribute("fill", "none");
    p.setAttribute("stroke", colors[i % colors.length]);
    p.setAttribute("stroke-width", "1.5");
    svg.appendChild(p);
    label(PL + 8 + i * 160, 18, s.name);
    var sw = document.createElementNS(svg.namespaceURI, "rect");
    sw.setAttribute("x", PL + i * 160); sw.setAttribute("y", 10);
    sw.setAttribute("width", 6); sw.setAttribute("height", 6);
    sw.setAttribute("fill", colors[i % colors.length]);
    svg.appendChild(sw);
  });
  root.appendChild(svg);
}

if (DATA.label) el("p", "Run: " + DATA.label).className = "muted";

var ts = DATA.timeseries;
if (ts && ts.samples && ts.samples.length) {
  var ticks = ts.samples.map(function (s) { return s.tick; });
  function col(k) { return ts.samples.map(function (s) { return s[k] || 0; }); }
  chart("Save ratio (windowed)", ticks, [{ name: "save_ratio", values: col("save_ratio") }]);
  chart("Backlog and defer queue", ticks, [
    { name: "backlog", values: col("backlog") },
    { name: "deferred", values: col("deferred") }
  ]);
  chart("Sessions", ticks, [
    { name: "active", values: col("active_sessions") },
    { name: "abandoned", values: col("abandoned_sessions") }
  ]);
  chart("Cumulative resolution", ticks, [
    { name: "saved", values: col("saved") },
    { name: "redone", values: col("redone") }
  ]);
  if (col("wal_bytes").some(function (v) { return v > 0; })) {
    chart("WAL bytes (cumulative)", ticks, [{ name: "wal_bytes", values: col("wal_bytes") }]);
  }
  el("p", ts.samples.length + " samples, stride " + ts.stride).className = "muted";
}

if (DATA.registry && DATA.registry.phases && DATA.registry.phases.length) {
  el("h2", "Phase breakdown");
  root.appendChild(table(
    ["phase", "count", "total", "max", "p50 bound", "p99 bound"],
    DATA.registry.phases.map(function (p) {
      return [p.phase, p.count, p.total, p.max, p.p50_bound, p.p99_bound];
    })
  ));
}

if (DATA.metrics) {
  el("h2", "End-of-run metrics");
  var rows = [];
  Object.keys(DATA.metrics).forEach(function (k) {
    var v = DATA.metrics[k];
    if (typeof v === "object" && v !== null) {
      Object.keys(v).forEach(function (k2) { rows.push([k + "." + k2, String(v[k2])]); });
    } else {
      rows.push([k, String(v)]);
    }
  });
  root.appendChild(table(["metric", "value"], rows));
}

if (DATA.autopsies && DATA.autopsies.length) {
  el("h2", "Merge autopsies (" + DATA.autopsies.length + ")");
  var edgeRows = [];
  DATA.autopsies.forEach(function (a) {
    a.edges.forEach(function (e) {
      edgeRows.push([
        a.tick, a.mobile, e.txn, e.cause,
        e.lost_to === null ? "—" : e.lost_to, e.rule, e.weight
      ]);
    });
  });
  root.appendChild(table(
    ["tick", "mobile", "txn", "cause", "lost to", "rule", "weight"],
    edgeRows.slice(0, 500)
  ));
  if (edgeRows.length > 500) {
    el("p", (edgeRows.length - 500) + " more edges elided").className = "muted";
  }
}

if (DATA.events && DATA.events.length) {
  el("h2", "Trace tail");
  el("p", DATA.events.length + " events retained in the flight-recorder ring").className = "muted";
}
</script>
</body>
</html>
"##;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;
    use crate::registry::Registry;

    fn snapshot() -> RegistrySnapshot {
        let r = Registry::new();
        r.observe(Phase::MergePlan, 100);
        r.observe(Phase::MergePlan, 300);
        r.observe(Phase::Sync, 7);
        r.snapshot()
    }

    #[test]
    fn registry_json_is_pinned_and_valid() {
        let json = registry_json(&snapshot());
        crate::json::validate_json_line(&json).unwrap();
        assert_eq!(
            json,
            "{\"phases\":[\
             {\"phase\":\"merge_plan\",\"count\":2,\"total\":400,\"max\":300,\
             \"p50_bound\":128,\"p99_bound\":512},\
             {\"phase\":\"sync\",\"count\":1,\"total\":7,\"max\":7,\
             \"p50_bound\":8,\"p99_bound\":8}]}"
        );
        assert_eq!(registry_json(&RegistrySnapshot::default()), "{\"phases\":[]}");
    }

    #[test]
    fn prometheus_dump_is_pinned() {
        let text =
            prometheus_text(&[("saved_total", 42.0), ("save_ratio", 0.75)], Some(&snapshot()));
        let expected = "\
# TYPE histmerge_saved_total gauge
histmerge_saved_total 42
# TYPE histmerge_save_ratio gauge
histmerge_save_ratio 0.750000
# TYPE histmerge_phase_count counter
histmerge_phase_count{phase=\"merge_plan\"} 2
histmerge_phase_count{phase=\"sync\"} 1
# TYPE histmerge_phase_total counter
histmerge_phase_total{phase=\"merge_plan\"} 400
histmerge_phase_total{phase=\"sync\"} 7
# TYPE histmerge_phase_max gauge
histmerge_phase_max{phase=\"merge_plan\"} 300
histmerge_phase_max{phase=\"sync\"} 7
# TYPE histmerge_phase_p50_bound gauge
histmerge_phase_p50_bound{phase=\"merge_plan\"} 128
histmerge_phase_p50_bound{phase=\"sync\"} 8
# TYPE histmerge_phase_p99_bound gauge
histmerge_phase_p99_bound{phase=\"merge_plan\"} 512
histmerge_phase_p99_bound{phase=\"sync\"} 8
";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_without_registry_emits_gauges_only() {
        let text = prometheus_text(&[("backlog", 17.25)], None);
        assert_eq!(text, "# TYPE histmerge_backlog gauge\nhistmerge_backlog 17.250000\n");
    }

    #[test]
    fn html_report_embeds_escaped_data() {
        let html = html_report("storm <run>", "{\"x\":\"</script>\",\"n\":1}");
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<title>storm &lt;run&gt;</title>"));
        // The embedded blob cannot terminate the script element early.
        assert!(html.contains("{\"x\":\"<\\/script>\",\"n\":1}"));
        assert!(!html.contains("{\"x\":\"</script>"));
        // Self-contained: nothing is fetched from the network.
        assert!(!html.contains("src=\"http"));
        assert!(!html.contains("href=\"http"));
    }

    #[test]
    fn phase_order_matches_the_taxonomy() {
        let order = phase_order();
        assert_eq!(order.len(), Phase::ALL.len());
        assert_eq!(order[0], "exec");
        assert_eq!(order[order.len() - 1], "compact");
    }
}
