//! Tracing and telemetry for the histmerge workspace.
//!
//! Production replication systems are debuggable only through their event
//! logs; this crate gives the simulator the same forensics without any
//! external dependency:
//!
//! * [`TraceEvent`] — a typed taxonomy of everything interesting the
//!   merge pipeline, the resumable session protocol, the WAL, and
//!   recovery do (graph builds, cycle breaks, rewrites, prunes, session
//!   steps, WAL appends/checkpoints/compactions, replays, injected
//!   faults, invariant violations, and timed spans);
//! * [`Tracer`] — the sink trait instrumented code emits through, with a
//!   zero-cost [`NoopTracer`] default ([`TracerHandle::emit`] skips event
//!   construction entirely when the sink is disabled);
//! * [`FlightRecorder`] — a bounded ring buffer holding the last N
//!   events, rendered to JSONL only when a dump is actually requested;
//!   when an oracle fails or a crash-matrix
//!   assertion trips, [`TracerHandle::dump_to_dir`] (or the
//!   [`dump_on_failure`] panic wrapper) writes the ring to disk so every
//!   red test ships its own trace;
//! * [`Registry`] — fixed-bucket (power-of-two nanosecond) histograms and
//!   counters behind every span-recording sink, snapshotted by
//!   experiment binaries for measured per-phase latency breakdowns.
//!
//! On top of the tracers, the fleet-telemetry layer (PR 9):
//!
//! * [`TimeSeries`] — a bounded per-tick gauge collector (backlog,
//!   defer queue, sessions, windowed save ratio, WAL volume) with
//!   fixed-capacity stride-doubling downsampling;
//! * [`MergeAutopsy`] — structured per-merge explanations (which
//!   conflict edge doomed each backed-out or reprocessed transaction),
//!   reassembled by the flight recorder from autopsy trace events;
//! * [`export`] — Prometheus text-format and registry-JSON dumps plus a
//!   self-contained single-file HTML run report.
//!
//! Instrumentation is observation-only by contract: tracers never touch
//! simulation RNG streams, metrics counters, or control flow, so a traced
//! run's normalized metrics are byte-identical to an untraced run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autopsy;
mod event;
pub mod export;
mod json;
mod registry;
mod ring;
mod timeseries;
mod tracer;

pub use autopsy::{AutopsyEdge, MergeAutopsy};
pub use event::{Phase, SessionStepKind, TraceEvent, NO_PARTNER};
pub use json::validate_json_line;
pub use registry::{PhaseSnapshot, Registry, RegistrySnapshot};
pub use ring::{dump_on_failure, FlightRecorder};
pub use timeseries::{TickSample, TimeSeries};
pub use tracer::{JsonlSink, NoopTracer, Tracer, TracerHandle};
