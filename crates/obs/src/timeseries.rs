//! A bounded per-tick gauge/counter collector.
//!
//! The simulator samples fleet-level gauges (backlog depth, defer-queue
//! depth, session counts, cumulative save/redo totals, WAL volume) on a
//! configurable tick stride. The collector is observation-only by the
//! same contract as the tracers: the simulation hands it values it
//! already computed, and nothing flows back. Capacity is fixed: when the
//! sample buffer fills, every other sample is dropped and the stride
//! doubles, so a million-tick run costs the same memory as a thousand-
//! tick run and the retained samples stay evenly spaced.

use std::sync::Mutex;

/// One sampled tick. Cumulative fields (`saved`, `redone`) carry
/// run-so-far totals; the JSON dump derives windowed rates from
/// consecutive deltas, so downsampling never skews them.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TickSample {
    /// Simulation tick the sample was taken at.
    pub tick: u64,
    /// Base-tier backlog depth (cost units queued).
    pub backlog: f64,
    /// Admission-controller defer-queue length.
    pub deferred: u64,
    /// Sessions currently open in the ledger.
    pub active_sessions: u64,
    /// Sessions abandoned so far (cumulative).
    pub abandoned_sessions: u64,
    /// Transactions saved from reprocessing so far (cumulative).
    pub saved: u64,
    /// Transactions redone so far — backed out + reprocessed (cumulative).
    pub redone: u64,
    /// WAL bytes written so far (cumulative; 0 when durability is off).
    pub wal_bytes: u64,
    /// Mobiles synced on this tick (the merge cohort).
    pub cohort: u64,
    /// Median admission defer wait so far, in ticks (exact).
    pub defer_wait_p50: u64,
    /// 99th-percentile admission defer wait so far, in ticks (exact).
    pub defer_wait_p99: u64,
    /// Merge-plan span p50 bucket bound so far, in ns (0 untraced).
    pub merge_plan_p50: u64,
    /// Merge-plan span p99 bucket bound so far, in ns (0 untraced).
    pub merge_plan_p99: u64,
}

#[derive(Debug)]
struct Series {
    stride: u64,
    samples: Vec<TickSample>,
}

/// The bounded collector. Shared `Arc`-style between the caller that
/// configures a run and the simulation that feeds it, so results survive
/// the simulation being dropped.
#[derive(Debug)]
pub struct TimeSeries {
    capacity: usize,
    inner: Mutex<Series>,
}

impl TimeSeries {
    /// A collector sampling every `stride` ticks (minimum 1), retaining
    /// at most `capacity` samples (minimum 2) before downsampling.
    pub fn new(stride: u64, capacity: usize) -> TimeSeries {
        TimeSeries {
            capacity: capacity.max(2),
            inner: Mutex::new(Series { stride: stride.max(1), samples: Vec::new() }),
        }
    }

    /// Records the sample produced by `make` when `tick` lands on the
    /// current stride; skipped ticks never construct the sample. At
    /// capacity, the stride doubles and off-stride retained samples are
    /// dropped — deterministic, order-independent of wall clock.
    pub fn record(&self, tick: u64, make: impl FnOnce() -> TickSample) {
        let mut series = self.inner.lock().expect("timeseries lock");
        if !tick.is_multiple_of(series.stride) {
            return;
        }
        let sample = make();
        if series.samples.len() >= self.capacity {
            let doubled = series.stride.saturating_mul(2);
            series.stride = doubled;
            series.samples.retain(|s| s.tick.is_multiple_of(doubled));
        }
        if tick.is_multiple_of(series.stride) {
            series.samples.push(sample);
        }
    }

    /// Samples retained so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("timeseries lock").samples.len()
    }

    /// `true` when nothing was sampled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current stride (grows by doubling under capacity pressure).
    pub fn stride(&self) -> u64 {
        self.inner.lock().expect("timeseries lock").stride
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A copy of the retained samples, oldest first.
    pub fn samples(&self) -> Vec<TickSample> {
        self.inner.lock().expect("timeseries lock").samples.clone()
    }

    /// Renders the series as one JSON object with a stable key order.
    /// Each sample additionally carries `save_ratio`: saved / (saved +
    /// redone) over the window since the previous retained sample (0.0
    /// where the window resolved nothing).
    pub fn to_json(&self) -> String {
        let series = self.inner.lock().expect("timeseries lock");
        let mut out = String::with_capacity(64 + series.samples.len() * 160);
        out.push_str("{\"stride\":");
        out.push_str(&series.stride.to_string());
        out.push_str(",\"capacity\":");
        out.push_str(&self.capacity.to_string());
        out.push_str(",\"samples\":[");
        let mut prev: Option<&TickSample> = None;
        for (i, s) in series.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (base_saved, base_redone) = prev.map(|p| (p.saved, p.redone)).unwrap_or((0, 0));
            let d_saved = s.saved.saturating_sub(base_saved);
            let d_redone = s.redone.saturating_sub(base_redone);
            let resolved = d_saved + d_redone;
            let ratio = if resolved == 0 { 0.0 } else { d_saved as f64 / resolved as f64 };
            push_sample(&mut out, s, ratio);
            prev = Some(s);
        }
        out.push_str("]}");
        out
    }
}

fn push_sample(out: &mut String, s: &TickSample, save_ratio: f64) {
    out.push_str("{\"tick\":");
    out.push_str(&s.tick.to_string());
    out.push_str(",\"backlog\":");
    out.push_str(&format!("{:.3}", s.backlog));
    push_u64(out, "deferred", s.deferred);
    push_u64(out, "active_sessions", s.active_sessions);
    push_u64(out, "abandoned_sessions", s.abandoned_sessions);
    push_u64(out, "saved", s.saved);
    push_u64(out, "redone", s.redone);
    out.push_str(",\"save_ratio\":");
    out.push_str(&format!("{save_ratio:.3}"));
    push_u64(out, "wal_bytes", s.wal_bytes);
    push_u64(out, "cohort", s.cohort);
    push_u64(out, "defer_wait_p50", s.defer_wait_p50);
    push_u64(out, "defer_wait_p99", s.defer_wait_p99);
    push_u64(out, "merge_plan_p50", s.merge_plan_p50);
    push_u64(out, "merge_plan_p99", s.merge_plan_p99);
    out.push('}');
}

fn push_u64(out: &mut String, key: &str, v: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json_line;

    fn sample(tick: u64, saved: u64, redone: u64) -> TickSample {
        TickSample { tick, saved, redone, backlog: tick as f64 / 2.0, ..TickSample::default() }
    }

    #[test]
    fn stride_skips_off_cycle_ticks_without_building_samples() {
        let ts = TimeSeries::new(10, 100);
        let mut built = 0;
        for tick in 0..35 {
            ts.record(tick, || {
                built += 1;
                sample(tick, 0, 0)
            });
        }
        assert_eq!(built, 4, "ticks 0,10,20,30");
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.stride(), 10);
    }

    #[test]
    fn capacity_pressure_doubles_stride_and_keeps_even_spacing() {
        let ts = TimeSeries::new(1, 8);
        for tick in 0..64 {
            ts.record(tick, || sample(tick, tick, 0));
        }
        assert!(ts.len() <= ts.capacity(), "{} > {}", ts.len(), ts.capacity());
        let stride = ts.stride();
        assert!(stride > 1, "stride never grew");
        for s in ts.samples() {
            assert!(s.tick.is_multiple_of(stride), "tick {} off stride {stride}", s.tick);
        }
        // The retained samples are still strictly increasing in tick.
        let ticks: Vec<u64> = ts.samples().iter().map(|s| s.tick).collect();
        let mut sorted = ticks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ticks, sorted);
    }

    #[test]
    fn json_dump_is_valid_with_windowed_save_ratio() {
        let ts = TimeSeries::new(10, 100);
        ts.record(0, || sample(0, 0, 0));
        ts.record(10, || sample(10, 3, 1));
        ts.record(20, || sample(20, 3, 3));
        let json = ts.to_json();
        validate_json_line(&json).unwrap_or_else(|e| panic!("invalid JSON {json}: {e}"));
        assert!(json.starts_with("{\"stride\":10,\"capacity\":100,\"samples\":["), "{json}");
        // Window 0→10 resolved 4 (3 saved), window 10→20 resolved 2 (0 saved).
        assert!(json.contains("\"tick\":10,\"backlog\":5.000"), "{json}");
        assert!(json.contains("\"saved\":3,\"redone\":1,\"save_ratio\":0.750"), "{json}");
        assert!(json.contains("\"saved\":3,\"redone\":3,\"save_ratio\":0.000"), "{json}");
    }

    #[test]
    fn dump_length_stays_bounded_however_long_the_run() {
        let ts = TimeSeries::new(1, 16);
        for tick in 0..100_000u64 {
            ts.record(tick, || sample(tick, 0, 0));
        }
        assert!(ts.len() <= 16);
        // ~200 bytes per sample; the bound is generous but fixed.
        assert!(ts.to_json().len() < 16 * 512, "dump grew past the capacity bound");
    }
}
