//! Fixed-bucket histograms and counters behind span-recording tracers.
//!
//! Buckets are powers of two in nanoseconds (bucket `i` holds samples in
//! `[2^i, 2^(i+1))`), so observation is a leading-zeros instruction plus
//! an array increment — cheap enough for WAL-append hot paths. The same
//! registry doubles as a per-phase event counter for virtual-clock spans
//! (tick durations use the identical bucket math).

use std::sync::Mutex;

use crate::event::Phase;

const N_BUCKETS: usize = 64;

/// One phase's histogram: power-of-two buckets plus exact sum/count/max.
#[derive(Debug, Clone)]
struct PhaseHist {
    buckets: [u64; N_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl PhaseHist {
    fn new() -> PhaseHist {
        PhaseHist { buckets: [0; N_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    fn observe(&mut self, v: u64) {
        let bucket = (64 - v.leading_zeros() as usize).min(N_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// The upper bound of the bucket holding the q-quantile sample (a
    /// conservative estimate: true value ≤ reported value < 2× true).
    fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << i.min(63);
            }
        }
        self.max
    }
}

/// A thread-safe span registry: one histogram per [`Phase`].
#[derive(Debug)]
pub struct Registry {
    hists: Mutex<Vec<PhaseHist>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry covering every phase.
    pub fn new() -> Registry {
        Registry { hists: Mutex::new(vec![PhaseHist::new(); Phase::ALL.len()]) }
    }

    /// Records one sample (nanoseconds for wall-clock spans, ticks for
    /// virtual-clock spans) under `phase`.
    pub fn observe(&self, phase: Phase, value: u64) {
        let mut hists = self.hists.lock().expect("registry lock");
        hists[phase.index()].observe(value);
    }

    /// One phase's `(p50_bound, p99_bound)` without allocating a
    /// snapshot — two bucket scans under the lock. `None` when the phase
    /// has no samples.
    pub fn phase_quantiles(&self, phase: Phase) -> Option<(u64, u64)> {
        let hists = self.hists.lock().expect("registry lock");
        let h = &hists[phase.index()];
        (h.count > 0).then(|| (h.quantile_bound(0.50), h.quantile_bound(0.99)))
    }

    /// An immutable snapshot of every phase with at least one sample.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let hists = self.hists.lock().expect("registry lock");
        let phases = Phase::ALL
            .iter()
            .zip(hists.iter())
            .filter(|(_, h)| h.count > 0)
            .map(|(&phase, h)| PhaseSnapshot {
                phase,
                count: h.count,
                total: h.sum,
                max: h.max,
                p50_bound: h.quantile_bound(0.50),
                p99_bound: h.quantile_bound(0.99),
            })
            .collect();
        RegistrySnapshot { phases }
    }
}

/// Aggregates for one phase, frozen by [`Registry::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// The phase.
    pub phase: Phase,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (ns or ticks).
    pub total: u64,
    /// Largest sample.
    pub max: u64,
    /// Upper bucket bound of the median sample.
    pub p50_bound: u64,
    /// Upper bucket bound of the 99th-percentile sample.
    pub p99_bound: u64,
}

impl PhaseSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }
}

/// Every phase with samples, in [`Phase::ALL`] order.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Per-phase aggregates.
    pub phases: Vec<PhaseSnapshot>,
}

impl RegistrySnapshot {
    /// The snapshot for `phase`, if it recorded any sample.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseSnapshot> {
        self.phases.iter().find(|p| p.phase == phase)
    }

    /// Sum of all phase totals (the denominator of share breakdowns).
    pub fn grand_total(&self) -> u64 {
        self.phases.iter().map(|p| p.total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_aggregate_per_phase() {
        let r = Registry::new();
        r.observe(Phase::Install, 100);
        r.observe(Phase::Install, 300);
        r.observe(Phase::WalAppend, 7);
        let snap = r.snapshot();
        assert_eq!(snap.phases.len(), 2);
        let install = snap.phase(Phase::Install).unwrap();
        assert_eq!(install.count, 2);
        assert_eq!(install.total, 400);
        assert_eq!(install.max, 300);
        assert!((install.mean() - 200.0).abs() < 1e-9);
        assert_eq!(snap.phase(Phase::WalAppend).unwrap().count, 1);
        assert!(snap.phase(Phase::Rewrite).is_none());
        assert_eq!(snap.grand_total(), 407);
    }

    #[test]
    fn quantile_bounds_bracket_samples() {
        let r = Registry::new();
        for v in [1u64, 2, 4, 8, 1000] {
            r.observe(Phase::Sync, v);
        }
        let s = *r.snapshot().phase(Phase::Sync).unwrap();
        // Median sample is 4 → its bucket's upper bound is 8.
        assert_eq!(s.p50_bound, 8);
        // p99 lands in the 1000 sample's bucket: bound within [1000, 2000).
        assert!(s.p99_bound >= 1000 && s.p99_bound < 2000, "{}", s.p99_bound);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn zero_and_huge_samples_stay_in_range() {
        let r = Registry::new();
        r.observe(Phase::Recovery, 0);
        r.observe(Phase::Recovery, u64::MAX);
        let s = *r.snapshot().phase(Phase::Recovery).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        // Saturating sum, no panic.
        assert_eq!(s.total, u64::MAX);
    }

    #[test]
    fn snapshot_orders_phases_canonically() {
        let r = Registry::new();
        r.observe(Phase::WalAppend, 1);
        r.observe(Phase::GraphBuild, 1);
        let snap = r.snapshot();
        assert_eq!(snap.phases[0].phase, Phase::GraphBuild);
        assert_eq!(snap.phases[1].phase, Phase::WalAppend);
    }
}
