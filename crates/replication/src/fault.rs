//! Deterministic, seed-driven fault injection for sync sessions.
//!
//! The paper's whole point is cheap reconnection for *unreliable* mobile
//! nodes, so the simulator must be able to break the merge handshake the
//! way real links do: lose, duplicate, and reorder messages, drop the
//! mobile mid-merge, and crash the base between installing forwarded
//! updates and re-executing backed-out transactions. A [`FaultPlan`] draws
//! those events from its own seeded stream — completely separate from the
//! workload RNG, so two runs with the same workload seed and different
//! fault plans generate identical transactions and differ only in how the
//! handshake unfolds. With every rate at zero the plan never consumes
//! randomness and the session path reproduces the fault-free run
//! byte-for-byte.

use rand::rngs::StdRng;
use rand::Rng;
use serde::Serialize;

/// The fault categories a [`FaultPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultKind {
    /// A handshake message is lost in transit (either direction); the
    /// sender times out and retransmits.
    MessageLoss,
    /// A handshake message is delivered twice; the receiver must dedupe by
    /// session id and step sequence number.
    MessageDuplication,
    /// A stale copy of an earlier message arrives before the current one;
    /// the receiver must reject it by sequence number.
    MessageReorder,
    /// The mobile disconnects while the base is computing the merge; the
    /// base retains the computed outcome and resumes on retry.
    MidMergeDisconnect,
    /// The base node crashes after committing the install (step 5) but
    /// before re-executing backed-out transactions (step 6); only the
    /// durable log and session ledger survive.
    BaseCrash,
}

impl FaultKind {
    /// All injectable fault kinds, in a fixed order (sweep matrices).
    pub const ALL: [FaultKind; 5] = [
        FaultKind::MessageLoss,
        FaultKind::MessageDuplication,
        FaultKind::MessageReorder,
        FaultKind::MidMergeDisconnect,
        FaultKind::BaseCrash,
    ];

    /// Short name for experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::MessageLoss => "loss",
            FaultKind::MessageDuplication => "duplication",
            FaultKind::MessageReorder => "reorder",
            FaultKind::MidMergeDisconnect => "mid-merge-disconnect",
            FaultKind::BaseCrash => "base-crash",
        }
    }
}

/// Per-kind fault probabilities, each rolled independently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultRates {
    /// Probability a handshake message is dropped.
    pub drop: f64,
    /// Probability a delivered message is delivered twice.
    pub duplicate: f64,
    /// Probability a stale copy precedes a delivered message.
    pub reorder: f64,
    /// Probability the mobile disconnects during the merge step.
    pub mid_merge_disconnect: f64,
    /// Probability the base crashes between install and re-execution.
    pub base_crash: f64,
}

impl FaultRates {
    /// No faults at all.
    pub fn zero() -> FaultRates {
        FaultRates {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            mid_merge_disconnect: 0.0,
            base_crash: 0.0,
        }
    }

    /// Every fault kind at probability `p`.
    pub fn uniform(p: f64) -> FaultRates {
        FaultRates { drop: p, duplicate: p, reorder: p, mid_merge_disconnect: p, base_crash: p }
    }

    /// Only `kind` at probability `p`, every other kind at zero.
    pub fn only(kind: FaultKind, p: f64) -> FaultRates {
        let mut rates = FaultRates::zero();
        match kind {
            FaultKind::MessageLoss => rates.drop = p,
            FaultKind::MessageDuplication => rates.duplicate = p,
            FaultKind::MessageReorder => rates.reorder = p,
            FaultKind::MidMergeDisconnect => rates.mid_merge_disconnect = p,
            FaultKind::BaseCrash => rates.base_crash = p,
        }
        rates
    }

    /// Every rate multiplied by `factor` and clamped to 1.0 — the
    /// trace-conditioned burst a connectivity model applies during
    /// handoff windows and post-outage surges. A factor of exactly 1.0
    /// returns the rates bit-identical (IEEE 754 multiplication by 1.0 is
    /// the identity on finite values), so unconditioned ticks draw the
    /// exact same fault stream.
    pub fn scaled(&self, factor: f64) -> FaultRates {
        let scale = |rate: f64| (rate * factor).min(1.0);
        FaultRates {
            drop: scale(self.drop),
            duplicate: scale(self.duplicate),
            reorder: scale(self.reorder),
            mid_merge_disconnect: scale(self.mid_merge_disconnect),
            base_crash: scale(self.base_crash),
        }
    }

    /// `true` when at least one rate is positive.
    pub fn any(&self) -> bool {
        self.drop > 0.0
            || self.duplicate > 0.0
            || self.reorder > 0.0
            || self.mid_merge_disconnect > 0.0
            || self.base_crash > 0.0
    }

    /// Checks every rate is a probability in `[0.0, 1.0]`. A NaN,
    /// negative, or >1.0 rate would otherwise fail silently (a negative
    /// rate simply never fires; a >1.0 rate would panic deep inside the
    /// RNG mid-run) — reject it up front with the offending field named.
    pub fn validate(&self) -> Result<(), InvalidFaultRate> {
        let fields = [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
            ("mid_merge_disconnect", self.mid_merge_disconnect),
            ("base_crash", self.base_crash),
        ];
        for (field, value) in fields {
            if !(0.0..=1.0).contains(&value) {
                return Err(InvalidFaultRate { field, value });
            }
        }
        Ok(())
    }
}

/// A fault rate that is not a probability — NaN, negative, or above 1.0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidFaultRate {
    /// The offending [`FaultRates`] field.
    pub field: &'static str,
    /// Its rejected value.
    pub value: f64,
}

impl std::fmt::Display for InvalidFaultRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fault rate `{}` is {} — must be a probability in [0.0, 1.0]",
            self.field, self.value
        )
    }
}

impl std::error::Error for InvalidFaultRate {}

/// How the transport delivered one handshake message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered exactly once.
    Ok,
    /// Lost; the sender must retransmit (consumes one retry).
    Dropped,
    /// Delivered twice; the receiver's idempotence guard absorbs the copy.
    Duplicated,
    /// A stale out-of-order copy arrived first and was rejected by
    /// sequence number; the current message then arrived.
    Reordered,
}

impl Delivery {
    /// Short name for trace events (`None` for the uneventful
    /// [`Delivery::Ok`], which is not worth recording).
    pub fn fault_name(&self) -> Option<&'static str> {
        match self {
            Delivery::Ok => None,
            Delivery::Dropped => Some(FaultKind::MessageLoss.name()),
            Delivery::Duplicated => Some(FaultKind::MessageDuplication.name()),
            Delivery::Reordered => Some(FaultKind::MessageReorder.name()),
        }
    }
}

/// A deterministic fault schedule: a seed plus per-kind rates.
///
/// The plan is pure configuration; the event stream is drawn from an
/// [`StdRng`] the simulation seeds from [`FaultPlan::seed`] — see
/// [`FaultPlan::rng`]. Identical `(seed, rates)` always produce the same
/// schedule for the same simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Seed of the fault event stream (independent of the workload seed).
    pub seed: u64,
    /// Per-kind fault probabilities.
    pub rates: FaultRates,
}

impl FaultPlan {
    /// The fault-free plan: no event is ever injected and no randomness is
    /// consumed.
    pub fn none() -> FaultPlan {
        FaultPlan { seed: 0, rates: FaultRates::zero() }
    }

    /// A seeded plan with the given rates.
    pub fn seeded(seed: u64, rates: FaultRates) -> FaultPlan {
        FaultPlan { seed, rates }
    }

    /// `true` when the plan can inject at least one fault kind.
    pub fn active(&self) -> bool {
        self.rates.any()
    }

    /// The fault event stream for this plan. The domain-separation
    /// constant keeps the stream distinct from the workload RNG even when
    /// the same seed is reused for both.
    pub fn rng(&self) -> StdRng {
        use rand::SeedableRng;
        StdRng::seed_from_u64(self.seed ^ 0xFA17_FA17_FA17_FA17)
    }

    /// Rolls the fate of one handshake message. Inactive plans return
    /// [`Delivery::Ok`] without consuming randomness.
    pub fn deliver(&self, rng: &mut StdRng) -> Delivery {
        if !self.active() {
            return Delivery::Ok;
        }
        if self.rates.drop > 0.0 && rng.gen_bool(self.rates.drop) {
            return Delivery::Dropped;
        }
        if self.rates.duplicate > 0.0 && rng.gen_bool(self.rates.duplicate) {
            return Delivery::Duplicated;
        }
        if self.rates.reorder > 0.0 && rng.gen_bool(self.rates.reorder) {
            return Delivery::Reordered;
        }
        Delivery::Ok
    }

    /// Rolls whether the mobile disconnects during the merge step.
    pub fn mid_merge_disconnect(&self, rng: &mut StdRng) -> bool {
        self.rates.mid_merge_disconnect > 0.0 && rng.gen_bool(self.rates.mid_merge_disconnect)
    }

    /// Rolls whether the base crashes between install and re-execution.
    pub fn base_crash(&self, rng: &mut StdRng) -> bool {
        self.rates.base_crash > 0.0 && rng.gen_bool(self.rates.base_crash)
    }

    /// The plan with every rate scaled by `factor` (clamped to 1.0). The
    /// seed is unchanged: a connectivity model conditions the *rates*
    /// tick by tick, while the event stream stays one seeded sequence.
    pub fn scaled(&self, factor: f64) -> FaultPlan {
        FaultPlan { seed: self.seed, rates: self.rates.scaled(factor) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_never_faults() {
        let plan = FaultPlan::none();
        assert!(!plan.active());
        let mut rng = plan.rng();
        for _ in 0..100 {
            assert_eq!(plan.deliver(&mut rng), Delivery::Ok);
            assert!(!plan.mid_merge_disconnect(&mut rng));
            assert!(!plan.base_crash(&mut rng));
        }
    }

    #[test]
    fn rates_only_isolates_one_kind() {
        let rates = FaultRates::only(FaultKind::BaseCrash, 1.0);
        assert_eq!(rates.base_crash, 1.0);
        assert_eq!(rates.drop, 0.0);
        assert!(rates.any());
        assert!(!FaultRates::zero().any());
        assert!(FaultRates::uniform(0.1).any());
        // Every kind maps onto a distinct field.
        for kind in FaultKind::ALL {
            assert!(FaultRates::only(kind, 0.5).any(), "{}", kind.name());
        }
    }

    #[test]
    fn certain_faults_always_fire() {
        let plan = FaultPlan::seeded(1, FaultRates::only(FaultKind::MessageLoss, 1.0));
        let mut rng = plan.rng();
        for _ in 0..20 {
            assert_eq!(plan.deliver(&mut rng), Delivery::Dropped);
        }
        let plan = FaultPlan::seeded(1, FaultRates::only(FaultKind::MidMergeDisconnect, 1.0));
        let mut rng = plan.rng();
        assert!(plan.mid_merge_disconnect(&mut rng));
        assert!(!plan.base_crash(&mut rng));
    }

    #[test]
    fn event_stream_is_deterministic_per_seed() {
        let plan = FaultPlan::seeded(9, FaultRates::uniform(0.3));
        let draw = |plan: &FaultPlan| {
            let mut rng = plan.rng();
            (0..64).map(|_| plan.deliver(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(&plan), draw(&plan));
        let other = FaultPlan::seeded(10, FaultRates::uniform(0.3));
        assert_ne!(draw(&plan), draw(&other), "different seeds, different schedules");
    }

    #[test]
    fn validate_accepts_probabilities_and_names_offenders() {
        assert_eq!(FaultRates::zero().validate(), Ok(()));
        assert_eq!(FaultRates::uniform(0.5).validate(), Ok(()));
        assert_eq!(FaultRates::uniform(1.0).validate(), Ok(()));

        let negative = FaultRates { drop: -0.1, ..FaultRates::zero() };
        let err = negative.validate().unwrap_err();
        assert_eq!(err.field, "drop");
        assert!(err.to_string().contains("drop"), "{err}");

        let too_big = FaultRates { base_crash: 1.5, ..FaultRates::zero() };
        assert_eq!(too_big.validate().unwrap_err().field, "base_crash");

        let nan = FaultRates { reorder: f64::NAN, ..FaultRates::zero() };
        let err = nan.validate().unwrap_err();
        assert_eq!(err.field, "reorder");
        assert!(err.value.is_nan());

        // Every field is checked, not just the first few.
        for kind in FaultKind::ALL {
            assert!(FaultRates::only(kind, 2.0).validate().is_err(), "{}", kind.name());
            assert!(FaultRates::only(kind, 1.0).validate().is_ok(), "{}", kind.name());
        }
    }

    #[test]
    fn scaling_clamps_and_identity_preserves_bits() {
        let rates = FaultRates::uniform(0.3);
        // Identity scale is bit-exact — the byte-identity lever behind
        // trace-conditioned faults.
        assert_eq!(rates.scaled(1.0), rates);
        let boosted = rates.scaled(2.0);
        assert_eq!(boosted.drop, 0.6);
        assert!(boosted.validate().is_ok());
        // Boosts clamp at certainty instead of producing invalid rates.
        assert_eq!(rates.scaled(100.0), FaultRates::uniform(1.0));
        assert_eq!(FaultRates::zero().scaled(100.0), FaultRates::zero());
        // A suppressing scale (link calm) lowers the rates.
        assert_eq!(rates.scaled(0.0), FaultRates::zero());
        let plan = FaultPlan::seeded(4, rates);
        assert_eq!(plan.scaled(2.0).seed, plan.seed);
        assert_eq!(plan.scaled(2.0).rates, boosted);
    }

    #[test]
    fn delivery_fault_names_match_kinds() {
        assert_eq!(Delivery::Ok.fault_name(), None);
        assert_eq!(Delivery::Dropped.fault_name(), Some("loss"));
        assert_eq!(Delivery::Duplicated.fault_name(), Some("duplication"));
        assert_eq!(Delivery::Reordered.fault_name(), Some("reorder"));
    }

    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::BTreeSet<&str> =
            FaultKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), FaultKind::ALL.len());
    }
}
