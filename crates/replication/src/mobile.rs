//! The mobile tier: disconnected nodes running tentative transactions.

use histmerge_history::{SerialHistory, TxnArena};
use histmerge_txn::{DbState, Fix, TxnId};

/// A mobile node: a local tentative copy of the database plus the tentative
/// history accumulated since the node last synchronized.
#[derive(Debug, Clone)]
pub struct MobileNode {
    /// Stable identifier (index in the simulation).
    id: usize,
    /// The original state the current tentative history began from.
    origin: DbState,
    /// The local tentative state (origin + tentative updates).
    tentative: DbState,
    /// The tentative history since the last synchronization.
    history: SerialHistory,
    /// For Strategy 1: the base-log index the origin snapshot was taken at.
    origin_index: usize,
    /// Simulation tick of the next reconnection.
    next_connect: u64,
}

impl MobileNode {
    /// Creates a mobile node with the given origin snapshot.
    pub fn new(id: usize, origin: DbState, origin_index: usize, next_connect: u64) -> Self {
        MobileNode {
            id,
            tentative: origin.clone(),
            origin,
            history: SerialHistory::new(),
            origin_index,
            next_connect,
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The original state of the current tentative history.
    pub fn origin(&self) -> &DbState {
        &self.origin
    }

    /// The base-log index the origin was snapshotted at (Strategy 1).
    pub fn origin_index(&self) -> usize {
        self.origin_index
    }

    /// The current tentative state.
    pub fn tentative_state(&self) -> &DbState {
        &self.tentative
    }

    /// The tentative history since last synchronization.
    pub fn history(&self) -> &SerialHistory {
        &self.history
    }

    /// Number of pending tentative transactions.
    pub fn pending(&self) -> usize {
        self.history.len()
    }

    /// The tick at which this node next reconnects.
    pub fn next_connect(&self) -> u64 {
        self.next_connect
    }

    /// Schedules the next reconnection.
    pub fn set_next_connect(&mut self, tick: u64) {
        self.next_connect = tick;
    }

    /// Runs a tentative transaction against the local copy.
    ///
    /// # Panics
    ///
    /// Panics if execution fails (the local copy is always total over the
    /// workload's variable space).
    pub fn run_tentative(&mut self, arena: &TxnArena, id: TxnId) {
        let txn = arena.get(id);
        let out = txn
            .execute(&self.tentative, &Fix::empty())
            .expect("tentative transaction executes locally");
        self.tentative = out.after;
        self.history.push(id);
    }

    /// Resets the node after a synchronization: the new tentative history
    /// starts from `origin` (under Strategy 2, the window-start state; under
    /// Strategy 1, the current master snapshot).
    pub fn resync(&mut self, origin: DbState, origin_index: usize) {
        self.tentative = origin.clone();
        self.origin = origin;
        self.origin_index = origin_index;
        self.history = SerialHistory::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::{Expr, Program, ProgramBuilder, Transaction, TxnKind, VarId};
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn tentative_execution_accumulates() {
        let mut arena = TxnArena::new();
        let p: Arc<Program> = Arc::new(
            ProgramBuilder::new("inc")
                .read(v(0))
                .update(v(0), Expr::var(v(0)) + Expr::konst(1))
                .build()
                .unwrap(),
        );
        let t1 =
            arena.alloc(|id| Transaction::new(id, "t1", TxnKind::Tentative, p.clone(), vec![]));
        let t2 =
            arena.alloc(|id| Transaction::new(id, "t2", TxnKind::Tentative, p.clone(), vec![]));
        let origin = DbState::uniform(1, 10);
        let mut node = MobileNode::new(3, origin.clone(), 0, 5);
        assert_eq!(node.id(), 3);
        assert_eq!(node.next_connect(), 5);
        node.run_tentative(&arena, t1);
        node.run_tentative(&arena, t2);
        assert_eq!(node.pending(), 2);
        assert_eq!(node.tentative_state().get(v(0)), 12);
        assert_eq!(node.origin(), &origin);
        assert_eq!(node.history().order(), &[t1, t2]);

        let new_origin = DbState::uniform(1, 99);
        node.resync(new_origin.clone(), 7);
        assert_eq!(node.pending(), 0);
        assert_eq!(node.tentative_state(), &new_origin);
        assert_eq!(node.origin_index(), 7);
        node.set_next_connect(20);
        assert_eq!(node.next_connect(), 20);
    }
}
