//! The mobile tier: disconnected nodes running tentative transactions.

use std::collections::BTreeMap;
use std::sync::Arc;

use histmerge_history::{SerialHistory, TxnArena};
use histmerge_txn::{DbState, Fix, StateRead, TxnId, Value, VarId};

use crate::session::UnackedSession;

/// A mobile node: a local tentative copy of the database plus the tentative
/// history accumulated since the node last synchronized.
///
/// The local copy is stored compactly: a shared, immutable origin snapshot
/// (under Strategy 2, every mobile in a window points at the *same*
/// window-start state) plus a sparse patch of the items the node's own
/// tentative transactions wrote. A fleet of a million mostly-idle mobiles
/// costs a million `Arc` pointers and their (tiny) write patches, not a
/// million full database clones — the representation the scale harness
/// (E19) depends on.
#[derive(Debug, Clone)]
pub struct MobileNode {
    /// Stable identifier (index in the simulation).
    id: usize,
    /// The original state the current tentative history began from,
    /// shared with the base tier (and, under Strategy 2, with every other
    /// mobile resynchronized in the same window).
    origin: Arc<DbState>,
    /// Writes accumulated by the tentative history since `origin`: the
    /// local tentative state is `origin` overlaid with this patch.
    patch: BTreeMap<VarId, Value>,
    /// The tentative history since the last synchronization.
    history: SerialHistory,
    /// For Strategy 1: the base-log index the origin snapshot was taken at.
    origin_index: usize,
    /// Simulation tick of the next reconnection.
    next_connect: u64,
    /// Next session sequence number (session path).
    next_seq: u64,
    /// A session that performed its offer but was never acknowledged; its
    /// fate is resolved against the base's ledger at the next reconnection.
    unacked: Option<UnackedSession>,
    /// `true` after a recovered session trimmed the committed prefix from
    /// the persisted log: the remaining suffix ran from a state that
    /// already included committed work, so it is unmergeable and must be
    /// reprocessed. Cleared by the next [`MobileNode::resync`].
    dirty_origin: bool,
}

/// Read view of a mobile's tentative state: its write patch over the
/// shared origin snapshot.
struct PatchView<'a> {
    origin: &'a DbState,
    patch: &'a BTreeMap<VarId, Value>,
}

impl StateRead for PatchView<'_> {
    fn read(&self, var: VarId) -> Option<Value> {
        self.patch.get(&var).copied().or_else(|| self.origin.try_get(var))
    }
}

impl MobileNode {
    /// Creates a mobile node with the given (shared) origin snapshot.
    pub fn new(id: usize, origin: Arc<DbState>, origin_index: usize, next_connect: u64) -> Self {
        MobileNode {
            id,
            origin,
            patch: BTreeMap::new(),
            history: SerialHistory::new(),
            origin_index,
            next_connect,
            next_seq: 0,
            unacked: None,
            dirty_origin: false,
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The original state of the current tentative history.
    pub fn origin(&self) -> &DbState {
        &self.origin
    }

    /// The base-log index the origin was snapshotted at (Strategy 1).
    pub fn origin_index(&self) -> usize {
        self.origin_index
    }

    /// The current tentative state, materialized (origin plus the node's
    /// write patch). Test/diagnostic accessor — the hot path never needs
    /// the full state.
    pub fn tentative_state(&self) -> DbState {
        let mut state = (*self.origin).clone();
        for (var, value) in &self.patch {
            state.set(*var, *value);
        }
        state
    }

    /// Number of items the tentative history has written locally.
    pub fn patch_len(&self) -> usize {
        self.patch.len()
    }

    /// The tentative history since last synchronization.
    pub fn history(&self) -> &SerialHistory {
        &self.history
    }

    /// Number of pending tentative transactions.
    pub fn pending(&self) -> usize {
        self.history.len()
    }

    /// The tick at which this node next reconnects.
    pub fn next_connect(&self) -> u64 {
        self.next_connect
    }

    /// Schedules the next reconnection.
    pub fn set_next_connect(&mut self, tick: u64) {
        self.next_connect = tick;
    }

    /// Runs a tentative transaction against the local copy: executes it
    /// against the patched view and folds its write delta into the patch.
    ///
    /// # Panics
    ///
    /// Panics if execution fails (the local copy is always total over the
    /// workload's variable space).
    pub fn run_tentative(&mut self, arena: &TxnArena, id: TxnId) {
        let txn = arena.get(id);
        let delta = txn
            .execute_delta(&PatchView { origin: &self.origin, patch: &self.patch }, &Fix::empty())
            .expect("tentative transaction executes locally");
        for (var, value) in delta.writes {
            self.patch.insert(var, value);
        }
        self.history.push(id);
    }

    /// Resets the node after a synchronization: the new tentative history
    /// starts from `origin` (under Strategy 2, the shared window-start
    /// state; under Strategy 1, the current master snapshot).
    pub fn resync(&mut self, origin: Arc<DbState>, origin_index: usize) {
        self.origin = origin;
        self.patch.clear();
        self.origin_index = origin_index;
        self.history = SerialHistory::new();
        self.dirty_origin = false;
    }

    /// Opens a new sync session over the current pending log: allocates
    /// the session's sequence number and marks it unacked until the base's
    /// acknowledgment arrives.
    pub fn begin_session(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unacked = Some(UnackedSession { seq, offered: self.history.len() });
        seq
    }

    /// The session awaiting acknowledgment, if any.
    pub fn unacked(&self) -> Option<UnackedSession> {
        self.unacked
    }

    /// Marks the outstanding session acknowledged (or resolved against the
    /// ledger): the node no longer owes the base a status query.
    pub fn ack_session(&mut self) {
        self.unacked = None;
    }

    /// Drops the first `n` pending transactions — a recovered session
    /// proved the base already committed them. The surviving suffix was
    /// executed from a state that included the trimmed prefix (the write
    /// patch keeps the prefix's effects), so its origin is marked dirty
    /// (forcing reprocessing at the next sync).
    pub fn trim_prefix(&mut self, n: usize) {
        self.history = self.history.iter().skip(n).collect();
        self.dirty_origin = true;
    }

    /// `true` when the pending log's origin no longer matches any base
    /// snapshot (see [`MobileNode::trim_prefix`]).
    pub fn dirty_origin(&self) -> bool {
        self.dirty_origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::{Expr, Program, ProgramBuilder, Transaction, TxnKind};

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn tentative_execution_accumulates() {
        let mut arena = TxnArena::new();
        let p: Arc<Program> = Arc::new(
            ProgramBuilder::new("inc")
                .read(v(0))
                .update(v(0), Expr::var(v(0)) + Expr::konst(1))
                .build()
                .unwrap(),
        );
        let t1 =
            arena.alloc(|id| Transaction::new(id, "t1", TxnKind::Tentative, p.clone(), vec![]));
        let t2 =
            arena.alloc(|id| Transaction::new(id, "t2", TxnKind::Tentative, p.clone(), vec![]));
        let origin = Arc::new(DbState::uniform(1, 10));
        let mut node = MobileNode::new(3, origin.clone(), 0, 5);
        assert_eq!(node.id(), 3);
        assert_eq!(node.next_connect(), 5);
        node.run_tentative(&arena, t1);
        node.run_tentative(&arena, t2);
        assert_eq!(node.pending(), 2);
        assert_eq!(node.tentative_state().get(v(0)), 12);
        assert_eq!(node.patch_len(), 1, "one written item, not a full clone");
        assert_eq!(node.origin(), &*origin, "origin snapshot untouched");
        assert_eq!(node.history().order(), &[t1, t2]);

        let new_origin = Arc::new(DbState::uniform(1, 99));
        node.resync(new_origin.clone(), 7);
        assert_eq!(node.pending(), 0);
        assert_eq!(node.patch_len(), 0);
        assert_eq!(node.tentative_state(), *new_origin);
        assert_eq!(node.origin_index(), 7);
        node.set_next_connect(20);
        assert_eq!(node.next_connect(), 20);
    }

    #[test]
    fn patched_view_matches_full_execution() {
        // The compact representation must read exactly like the owned
        // tentative state the node used to carry: a chain of dependent
        // transactions through the patch equals executing them against
        // materialized full states.
        let mut arena = TxnArena::new();
        let double: Arc<Program> = Arc::new(
            ProgramBuilder::new("double")
                .read(v(0))
                .update(v(0), Expr::var(v(0)) + Expr::var(v(0)))
                .build()
                .unwrap(),
        );
        let carry: Arc<Program> = Arc::new(
            ProgramBuilder::new("carry")
                .read(v(0))
                .read(v(1))
                .update(v(1), Expr::var(v(0)) + Expr::var(v(1)))
                .build()
                .unwrap(),
        );
        let ids: Vec<TxnId> = [double.clone(), carry.clone(), double]
            .iter()
            .enumerate()
            .map(|(k, p)| {
                let p = p.clone();
                arena.alloc(move |id| {
                    Transaction::new(id, format!("t{k}"), TxnKind::Tentative, p, vec![])
                })
            })
            .collect();
        let origin = DbState::uniform(2, 3);
        let mut node = MobileNode::new(0, Arc::new(origin.clone()), 0, 1);
        let mut reference = origin;
        for id in &ids {
            node.run_tentative(&arena, *id);
            let out = arena.get(*id).execute(&reference, &Fix::empty()).unwrap();
            reference = out.after;
        }
        assert_eq!(node.tentative_state(), reference);
    }

    #[test]
    fn session_bookkeeping_tracks_acks_and_trims() {
        let mut arena = TxnArena::new();
        let p: Arc<Program> = Arc::new(
            ProgramBuilder::new("inc")
                .read(v(0))
                .update(v(0), Expr::var(v(0)) + Expr::konst(1))
                .build()
                .unwrap(),
        );
        let ids: Vec<_> = (0..3)
            .map(|k| {
                arena.alloc(|id| {
                    Transaction::new(id, format!("t{k}"), TxnKind::Tentative, p.clone(), vec![])
                })
            })
            .collect();
        let mut node = MobileNode::new(0, Arc::new(DbState::uniform(1, 0)), 0, 1);
        assert!(node.unacked().is_none());
        assert!(!node.dirty_origin());
        for id in &ids {
            node.run_tentative(&arena, *id);
        }

        // Sequence numbers are consecutive; each session offers the
        // then-pending log length.
        let s0 = node.begin_session();
        assert_eq!(s0, 0);
        let unacked = node.unacked().expect("offer outstanding");
        assert_eq!(unacked.seq, 0);
        assert_eq!(unacked.offered, 3);
        node.ack_session();
        assert!(node.unacked().is_none());
        assert_eq!(node.begin_session(), 1);

        // A recovered session trims its committed prefix and dirties the
        // origin; resync cleans the node again.
        node.trim_prefix(2);
        assert_eq!(node.pending(), 1);
        assert_eq!(node.history().order(), &ids[2..]);
        assert!(node.dirty_origin());
        assert_eq!(node.patch_len(), 1, "trim keeps the prefix's local effects");
        node.resync(Arc::new(DbState::uniform(1, 5)), 0);
        assert!(!node.dirty_origin());
        assert_eq!(node.pending(), 0);
        // Sequence numbers never reset.
        assert_eq!(node.begin_session(), 2);
    }
}
