//! The mobile tier: disconnected nodes running tentative transactions.

use histmerge_history::{SerialHistory, TxnArena};
use histmerge_txn::{DbState, Fix, TxnId};

use crate::session::UnackedSession;

/// A mobile node: a local tentative copy of the database plus the tentative
/// history accumulated since the node last synchronized.
#[derive(Debug, Clone)]
pub struct MobileNode {
    /// Stable identifier (index in the simulation).
    id: usize,
    /// The original state the current tentative history began from.
    origin: DbState,
    /// The local tentative state (origin + tentative updates).
    tentative: DbState,
    /// The tentative history since the last synchronization.
    history: SerialHistory,
    /// For Strategy 1: the base-log index the origin snapshot was taken at.
    origin_index: usize,
    /// Simulation tick of the next reconnection.
    next_connect: u64,
    /// Next session sequence number (session path).
    next_seq: u64,
    /// A session that performed its offer but was never acknowledged; its
    /// fate is resolved against the base's ledger at the next reconnection.
    unacked: Option<UnackedSession>,
    /// `true` after a recovered session trimmed the committed prefix from
    /// the persisted log: the remaining suffix ran from a state that
    /// already included committed work, so it is unmergeable and must be
    /// reprocessed. Cleared by the next [`MobileNode::resync`].
    dirty_origin: bool,
}

impl MobileNode {
    /// Creates a mobile node with the given origin snapshot.
    pub fn new(id: usize, origin: DbState, origin_index: usize, next_connect: u64) -> Self {
        MobileNode {
            id,
            tentative: origin.clone(),
            origin,
            history: SerialHistory::new(),
            origin_index,
            next_connect,
            next_seq: 0,
            unacked: None,
            dirty_origin: false,
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The original state of the current tentative history.
    pub fn origin(&self) -> &DbState {
        &self.origin
    }

    /// The base-log index the origin was snapshotted at (Strategy 1).
    pub fn origin_index(&self) -> usize {
        self.origin_index
    }

    /// The current tentative state.
    pub fn tentative_state(&self) -> &DbState {
        &self.tentative
    }

    /// The tentative history since last synchronization.
    pub fn history(&self) -> &SerialHistory {
        &self.history
    }

    /// Number of pending tentative transactions.
    pub fn pending(&self) -> usize {
        self.history.len()
    }

    /// The tick at which this node next reconnects.
    pub fn next_connect(&self) -> u64 {
        self.next_connect
    }

    /// Schedules the next reconnection.
    pub fn set_next_connect(&mut self, tick: u64) {
        self.next_connect = tick;
    }

    /// Runs a tentative transaction against the local copy.
    ///
    /// # Panics
    ///
    /// Panics if execution fails (the local copy is always total over the
    /// workload's variable space).
    pub fn run_tentative(&mut self, arena: &TxnArena, id: TxnId) {
        let txn = arena.get(id);
        let out = txn
            .execute(&self.tentative, &Fix::empty())
            .expect("tentative transaction executes locally");
        self.tentative = out.after;
        self.history.push(id);
    }

    /// Resets the node after a synchronization: the new tentative history
    /// starts from `origin` (under Strategy 2, the window-start state; under
    /// Strategy 1, the current master snapshot).
    pub fn resync(&mut self, origin: DbState, origin_index: usize) {
        self.tentative = origin.clone();
        self.origin = origin;
        self.origin_index = origin_index;
        self.history = SerialHistory::new();
        self.dirty_origin = false;
    }

    /// Opens a new sync session over the current pending log: allocates
    /// the session's sequence number and marks it unacked until the base's
    /// acknowledgment arrives.
    pub fn begin_session(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unacked = Some(UnackedSession { seq, offered: self.history.len() });
        seq
    }

    /// The session awaiting acknowledgment, if any.
    pub fn unacked(&self) -> Option<UnackedSession> {
        self.unacked
    }

    /// Marks the outstanding session acknowledged (or resolved against the
    /// ledger): the node no longer owes the base a status query.
    pub fn ack_session(&mut self) {
        self.unacked = None;
    }

    /// Drops the first `n` pending transactions — a recovered session
    /// proved the base already committed them. The surviving suffix was
    /// executed from a state that included the trimmed prefix, so its
    /// origin is marked dirty (forcing reprocessing at the next sync).
    pub fn trim_prefix(&mut self, n: usize) {
        self.history = self.history.iter().skip(n).collect();
        self.dirty_origin = true;
    }

    /// `true` when the pending log's origin no longer matches any base
    /// snapshot (see [`MobileNode::trim_prefix`]).
    pub fn dirty_origin(&self) -> bool {
        self.dirty_origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::{Expr, Program, ProgramBuilder, Transaction, TxnKind, VarId};
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn tentative_execution_accumulates() {
        let mut arena = TxnArena::new();
        let p: Arc<Program> = Arc::new(
            ProgramBuilder::new("inc")
                .read(v(0))
                .update(v(0), Expr::var(v(0)) + Expr::konst(1))
                .build()
                .unwrap(),
        );
        let t1 =
            arena.alloc(|id| Transaction::new(id, "t1", TxnKind::Tentative, p.clone(), vec![]));
        let t2 =
            arena.alloc(|id| Transaction::new(id, "t2", TxnKind::Tentative, p.clone(), vec![]));
        let origin = DbState::uniform(1, 10);
        let mut node = MobileNode::new(3, origin.clone(), 0, 5);
        assert_eq!(node.id(), 3);
        assert_eq!(node.next_connect(), 5);
        node.run_tentative(&arena, t1);
        node.run_tentative(&arena, t2);
        assert_eq!(node.pending(), 2);
        assert_eq!(node.tentative_state().get(v(0)), 12);
        assert_eq!(node.origin(), &origin);
        assert_eq!(node.history().order(), &[t1, t2]);

        let new_origin = DbState::uniform(1, 99);
        node.resync(new_origin.clone(), 7);
        assert_eq!(node.pending(), 0);
        assert_eq!(node.tentative_state(), &new_origin);
        assert_eq!(node.origin_index(), 7);
        node.set_next_connect(20);
        assert_eq!(node.next_connect(), 20);
    }

    #[test]
    fn session_bookkeeping_tracks_acks_and_trims() {
        let mut arena = TxnArena::new();
        let p: Arc<Program> = Arc::new(
            ProgramBuilder::new("inc")
                .read(v(0))
                .update(v(0), Expr::var(v(0)) + Expr::konst(1))
                .build()
                .unwrap(),
        );
        let ids: Vec<_> = (0..3)
            .map(|k| {
                arena.alloc(|id| {
                    Transaction::new(id, format!("t{k}"), TxnKind::Tentative, p.clone(), vec![])
                })
            })
            .collect();
        let mut node = MobileNode::new(0, DbState::uniform(1, 0), 0, 1);
        assert!(node.unacked().is_none());
        assert!(!node.dirty_origin());
        for id in &ids {
            node.run_tentative(&arena, *id);
        }

        // Sequence numbers are consecutive; each session offers the
        // then-pending log length.
        let s0 = node.begin_session();
        assert_eq!(s0, 0);
        let unacked = node.unacked().expect("offer outstanding");
        assert_eq!(unacked.seq, 0);
        assert_eq!(unacked.offered, 3);
        node.ack_session();
        assert!(node.unacked().is_none());
        assert_eq!(node.begin_session(), 1);

        // A recovered session trims its committed prefix and dirties the
        // origin; resync cleans the node again.
        node.trim_prefix(2);
        assert_eq!(node.pending(), 1);
        assert_eq!(node.history().order(), &ids[2..]);
        assert!(node.dirty_origin());
        node.resync(DbState::uniform(1, 5), 0);
        assert!(!node.dirty_origin());
        assert_eq!(node.pending(), 0);
        // Sequence numbers never reset.
        assert_eq!(node.begin_session(), 2);
    }
}
