//! A deterministic two-tier replication simulator.
//!
//! The paper extends the two-tier replication scheme of Gray, Helland,
//! O'Neil and Shasha (SIGMOD 1996): *mobile nodes* are disconnected most of
//! the time and run **tentative** transactions against their local copy;
//! *base nodes* are always connected and own the master data. On
//! reconnection, tentative work is folded into the master either by
//!
//! * **reprocessing** ([`Protocol::Reprocessing`]) — the \[GHOS96\] baseline:
//!   every tentative transaction is re-executed from scratch as a base
//!   transaction; or
//! * **merging** ([`Protocol::Merging`]) — the paper's contribution: the
//!   tentative history is merged into the base history, saving the work of
//!   every transaction the rewrite can keep (Section 2.1).
//!
//! [`sync`] implements the two multi-history synchronization strategies of
//! Section 2.2 (per-disconnect snapshots vs shared window-start states with
//! periodic resynchronization); [`batch`] runs the merges of mobiles
//! reconnecting in the same tick concurrently against the shared
//! window-start state, with a deterministic mobile-id-ordered install
//! phase; [`metrics`] aggregates counts and Section 7.1 cost reports. The
//! simulation is a discrete-time loop, deterministic for a given
//! [`SimConfig`] (seeded RNG) regardless of the configured
//! [`Parallelism`] — and regardless of the configured [`SchedulerMode`]:
//! each tick's due mobile work can be found by scanning the fleet or by
//! popping timestamped events from a deterministic priority queue
//! ([`sched`]), byte-identically, which is what lets the scale harness
//! (E19) run million-mobile fleets without paying O(fleet) per tick.
//!
//! Reconnections can run through two interchangeable paths
//! ([`SyncPath`]): the legacy atomic in-process handshake, or the
//! resumable [`session`] protocol (offer → merge → install → re-execute →
//! ack) whose individually idempotent steps survive the faults a
//! deterministic [`fault::FaultPlan`] injects — message loss, duplication
//! and reordering, mid-merge disconnects, and base crashes between
//! install and re-execution. Fault-free session runs are byte-identical
//! to legacy runs; faulted runs are audited by a convergence oracle
//! ([`ConvergenceReport`]) that replays the recorded commit order through
//! the serial path.
//!
//! The base tier's durable transitions can additionally be written to a
//! real segmented, CRC32-framed write-ahead log ([`wal`]) and recovered —
//! latest checkpoint plus log tail, torn suffixes discarded — by
//! [`recovery`], so crash-point torture tests can kill the base at any
//! record boundary (or mid-record, via torn writes) and assert the
//! recovered state equals the durable prefix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod base;
mod cluster;
mod mobile;
mod sim;

pub mod batch;
pub mod connectivity;
pub mod fault;
pub mod metrics;
pub mod recovery;
pub mod sched;
pub mod session;
pub mod sync;
pub mod wal;

pub use base::{BaseNode, RetroPatchError};
pub use batch::{merge_batch, BatchJob, Parallelism};
pub use cluster::{BaseCluster, ClusterStats};
pub use connectivity::{AdmissionConfig, ConnectivityModel, InvalidConnectivity, LinkTrace};
pub use fault::{Delivery, FaultKind, FaultPlan, FaultRates, InvalidFaultRate};
pub use metrics::{CohortStats, CompactionStats, FaultStats, SchedStats, StormStats, WalStats};
pub use mobile::MobileNode;
pub use recovery::{recover, recover_traced, Recovered, RecoveryError};
pub use sched::{fork_rng, Event, EventKind, EventQueue, SchedulerMode};
pub use session::{RetryBackoff, SessionConfig, SessionLedger, SessionRecord, UnackedSession};
pub use sim::{
    CohortConfig, ConvergenceReport, DurableReport, Protocol, SimConfig, SimConfigError, SimReport,
    Simulation, TelemetryConfig,
};
pub use sync::{SyncPath, SyncStrategy};
pub use wal::{
    DurabilityConfig, Snapshot, Storage, Tail, Tear, TornStorage, VecStorage, Wal, WalRecord,
};
