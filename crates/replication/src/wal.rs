//! A durable, segmented, CRC32-framed write-ahead log for the base tier.
//!
//! PR 2's session ledger only *modeled* durability: a plain in-memory map
//! that the simulated crashes politely spared. This module makes the base
//! tier's durable transitions real bytes: every transition is encoded as a
//! typed [`WalRecord`], framed as `[len | crc32 | payload]`, and appended
//! to the active segment of a [`Storage`] backend. Recovery
//! ([`crate::recovery`]) replays the latest checkpoint plus the WAL tail
//! and discards any torn or corrupt suffix at a clean record boundary.
//!
//! The moving parts:
//!
//! * [`Storage`] — the segment backend. [`VecStorage`] is the in-memory
//!   default; it journals every mutation so a crash-point harness can
//!   reconstruct the exact bytes that were durable at *any* moment of a
//!   run. [`TornStorage`] replays a journal prefix and optionally tears
//!   the next write mid-record or flips a bit — the two ways real disks
//!   betray an fsync-less append.
//! * [`WalRecord`] — the record taxonomy: committed-history appends,
//!   window rollovers, retroactive patches, session installs, re-execution
//!   cursor advances, session completions, ledger prunes, and checkpoints.
//! * [`Wal`] — the writer: appends framed records to the active segment
//!   and, at a checkpoint, opens a fresh segment with a full [`Snapshot`]
//!   and retires every older segment (log compaction). A crash during the
//!   checkpoint itself is safe: old segments are deleted only after the
//!   snapshot record is fully appended, so recovery falls back to the
//!   previous checkpoint.
//!
//! Encoding is little-endian and hand-rolled (the container has no serde
//! runtime); decoding NEVER panics — any malformed input is reported as a
//! torn tail ([`Tail::Torn`]) at the last clean record boundary.

use std::collections::BTreeMap;

use serde::Serialize;

use histmerge_core::merge::InstallPlan;
use histmerge_txn::{DbState, TxnId, VarId};
use histmerge_workload::cost::CostReport;

use crate::metrics::SyncRecord;
use crate::session::SessionRecord;

// ---------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------

/// Durability knobs for the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct DurabilityConfig {
    /// When `true`, the base tier write-ahead-logs every durable
    /// transition and the report carries a [`DurableReport`].
    ///
    /// [`DurableReport`]: crate::sim::DurableReport
    pub enabled: bool,
    /// Checkpoint (snapshot + segment compaction) once at least this many
    /// records accumulated since the last checkpoint, evaluated at tick
    /// boundaries. `0` disables periodic checkpoints — only the genesis
    /// snapshot is ever written.
    pub checkpoint_every: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig { enabled: false, checkpoint_every: 256 }
    }
}

// ---------------------------------------------------------------------
// CRC32 (IEEE), bit-serial — small and dependency-free.
// ---------------------------------------------------------------------

/// CRC32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------
// Binary encoding helpers. Writers are infallible; readers return
// `Option` and never panic on truncated or corrupt input.
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_state(out: &mut Vec<u8>, state: &DbState) {
    put_u32(out, state.len() as u32);
    for (var, value) in state.iter() {
        put_u32(out, var.index());
        put_i64(out, value);
    }
}

fn put_txns(out: &mut Vec<u8>, txns: &[TxnId]) {
    put_u32(out, txns.len() as u32);
    for id in txns {
        put_u32(out, id.index());
    }
}

/// A bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn i64(&mut self) -> Option<i64> {
        self.take(8).map(|b| i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn state(&mut self) -> Option<DbState> {
        let n = self.u32()? as usize;
        // Each entry is 12 bytes; a count the buffer cannot possibly hold
        // is corruption, rejected before any allocation happens.
        if n > self.buf.len().saturating_sub(self.pos) / 12 {
            return None;
        }
        let mut state = DbState::new();
        for _ in 0..n {
            let var = VarId::new(self.u32()?);
            let value = self.i64()?;
            state.set(var, value);
        }
        Some(state)
    }

    fn txns(&mut self) -> Option<Vec<TxnId>> {
        let n = self.u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) / 4 {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(TxnId::new(self.u32()?));
        }
        Some(out)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn put_sync_record(out: &mut Vec<u8>, sync: &SyncRecord) {
    put_u64(out, sync.tick);
    put_u64(out, sync.mobile as u64);
    put_u64(out, sync.pending as u64);
    put_u64(out, sync.hb_len as u64);
    put_u64(out, sync.saved as u64);
    put_u64(out, sync.backed_out as u64);
    put_u64(out, sync.reprocessed as u64);
    put_bool(out, sync.merge_failed);
    put_u64(out, sync.sync_ns);
}

fn read_sync_record(r: &mut Reader<'_>) -> Option<SyncRecord> {
    Some(SyncRecord {
        tick: r.u64()?,
        mobile: r.u64()? as usize,
        pending: r.u64()? as usize,
        hb_len: r.u64()? as usize,
        saved: r.u64()? as usize,
        backed_out: r.u64()? as usize,
        reprocessed: r.u64()? as usize,
        merge_failed: r.bool()?,
        sync_ns: r.u64()?,
    })
}

fn put_session_record(out: &mut Vec<u8>, record: &SessionRecord) {
    put_state(out, &record.plan.forwarded);
    put_txns(out, &record.plan.reexecute);
    put_txns(out, &record.plan.saved);
    match record.retro_from {
        Some(from) => {
            put_bool(out, true);
            put_u64(out, from as u64);
        }
        None => put_bool(out, false),
    }
    put_sync_record(out, &record.sync);
    put_f64(out, record.cost.comm);
    put_f64(out, record.cost.base_cpu);
    put_f64(out, record.cost.base_io);
    put_f64(out, record.cost.mobile_cpu);
    put_u64(out, record.reexec_done as u64);
    put_bool(out, record.completed);
}

fn read_session_record(r: &mut Reader<'_>) -> Option<SessionRecord> {
    let forwarded = r.state()?;
    let reexecute = r.txns()?;
    let saved = r.txns()?;
    let retro_from = if r.bool()? { Some(r.u64()? as usize) } else { None };
    let sync = read_sync_record(r)?;
    let cost =
        CostReport { comm: r.f64()?, base_cpu: r.f64()?, base_io: r.f64()?, mobile_cpu: r.f64()? };
    let reexec_done = r.u64()? as usize;
    let completed = r.bool()?;
    Some(SessionRecord {
        plan: InstallPlan { forwarded, reexecute, saved },
        retro_from,
        sync,
        cost,
        reexec_done,
        completed,
    })
}

// ---------------------------------------------------------------------
// The record taxonomy.
// ---------------------------------------------------------------------

/// A full snapshot of the base tier's durable state — the payload of a
/// checkpoint record, sufficient to recover without any earlier segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The committed base log since simulation start: `(txn, after
    /// state)` per commit.
    pub log: Vec<(TxnId, DbState)>,
    /// The master state (equals the last log entry's after state, except
    /// after retroactive patches, which may touch the master directly).
    pub master: DbState,
    /// Index into `log` where the current window began.
    pub epoch_start: u64,
    /// The master state at the window start.
    pub epoch_state: DbState,
    /// The window (epoch) counter.
    pub epoch: u64,
    /// The session ledger: `(mobile, seq, record)` per installed session.
    pub ledger: Vec<(u64, u64, SessionRecord)>,
}

impl Snapshot {
    /// The genesis snapshot: an empty log over `initial`, before any
    /// transition. Written as the first record of segment 0.
    pub fn genesis(initial: DbState) -> Snapshot {
        Snapshot {
            log: Vec::new(),
            master: initial.clone(),
            epoch_start: 0,
            epoch_state: initial,
            epoch: 0,
            ledger: Vec::new(),
        }
    }
}

/// One durable transition of the base tier, in WAL order.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A base transaction committed (own load, an install transaction, or
    /// a re-execution), appending `(txn, after)` to the base log.
    Commit {
        /// The committed transaction.
        txn: TxnId,
        /// The master state after the commit.
        after: DbState,
    },
    /// A window rollover: the epoch counter advanced and the current
    /// master became the shared window-start state.
    WindowStart,
    /// A Strategy-1 retroactive install patched recorded after-states in
    /// place from `from_index` (masking items later writes own).
    RetroPatch {
        /// The base-log index the patch applied from.
        from_index: u64,
        /// The forwarded updates that were patched in.
        updates: DbState,
    },
    /// A session reached its install step: forwarded values committed (as
    /// a preceding [`WalRecord::Commit`]) together with this durable
    /// ledger entry.
    SessionInstall {
        /// The reconnecting mobile.
        mobile: u64,
        /// The session's sequence number at that mobile.
        seq: u64,
        /// The durable session record (install plan, completion report,
        /// re-execution cursor).
        record: SessionRecord,
    },
    /// A session's re-execution cursor advanced to `done` (the matching
    /// base commit precedes this record).
    ReexecAdvance {
        /// The session's mobile.
        mobile: u64,
        /// The session's sequence number.
        seq: u64,
        /// Plan entries re-executed so far.
        done: u64,
    },
    /// A session finished re-execution and emitted its completion report.
    SessionComplete {
        /// The session's mobile.
        mobile: u64,
        /// The session's sequence number.
        seq: u64,
    },
    /// The mobile acknowledged through `upto_seq`; its ledger records up
    /// to and including that sequence number were pruned.
    SessionPrune {
        /// The acknowledging mobile.
        mobile: u64,
        /// Records with `seq <= upto_seq` were dropped.
        upto_seq: u64,
    },
    /// A full snapshot of the durable state; every segment starts with
    /// one, and recovery replays only from the latest.
    Checkpoint(Box<Snapshot>),
}

impl WalRecord {
    /// Stable snake-case name of the record kind, for trace events.
    pub fn kind_name(&self) -> &'static str {
        match self {
            WalRecord::Commit { .. } => "commit",
            WalRecord::WindowStart => "window_start",
            WalRecord::RetroPatch { .. } => "retro_patch",
            WalRecord::SessionInstall { .. } => "session_install",
            WalRecord::ReexecAdvance { .. } => "reexec_advance",
            WalRecord::SessionComplete { .. } => "session_complete",
            WalRecord::SessionPrune { .. } => "session_prune",
            WalRecord::Checkpoint(_) => "checkpoint",
        }
    }
}

const TAG_COMMIT: u8 = 1;
const TAG_WINDOW_START: u8 = 2;
const TAG_RETRO_PATCH: u8 = 3;
const TAG_SESSION_INSTALL: u8 = 4;
const TAG_REEXEC_ADVANCE: u8 = 5;
const TAG_SESSION_COMPLETE: u8 = 6;
const TAG_SESSION_PRUNE: u8 = 7;
const TAG_CHECKPOINT: u8 = 8;

impl WalRecord {
    /// Encodes the record payload (unframed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Commit { txn, after } => {
                out.push(TAG_COMMIT);
                put_u32(&mut out, txn.index());
                put_state(&mut out, after);
            }
            WalRecord::WindowStart => out.push(TAG_WINDOW_START),
            WalRecord::RetroPatch { from_index, updates } => {
                out.push(TAG_RETRO_PATCH);
                put_u64(&mut out, *from_index);
                put_state(&mut out, updates);
            }
            WalRecord::SessionInstall { mobile, seq, record } => {
                out.push(TAG_SESSION_INSTALL);
                put_u64(&mut out, *mobile);
                put_u64(&mut out, *seq);
                put_session_record(&mut out, record);
            }
            WalRecord::ReexecAdvance { mobile, seq, done } => {
                out.push(TAG_REEXEC_ADVANCE);
                put_u64(&mut out, *mobile);
                put_u64(&mut out, *seq);
                put_u64(&mut out, *done);
            }
            WalRecord::SessionComplete { mobile, seq } => {
                out.push(TAG_SESSION_COMPLETE);
                put_u64(&mut out, *mobile);
                put_u64(&mut out, *seq);
            }
            WalRecord::SessionPrune { mobile, upto_seq } => {
                out.push(TAG_SESSION_PRUNE);
                put_u64(&mut out, *mobile);
                put_u64(&mut out, *upto_seq);
            }
            WalRecord::Checkpoint(snapshot) => {
                out.push(TAG_CHECKPOINT);
                put_u32(&mut out, snapshot.log.len() as u32);
                for (txn, state) in &snapshot.log {
                    put_u32(&mut out, txn.index());
                    put_state(&mut out, state);
                }
                put_state(&mut out, &snapshot.master);
                put_u64(&mut out, snapshot.epoch_start);
                put_state(&mut out, &snapshot.epoch_state);
                put_u64(&mut out, snapshot.epoch);
                put_u32(&mut out, snapshot.ledger.len() as u32);
                for (mobile, seq, record) in &snapshot.ledger {
                    put_u64(&mut out, *mobile);
                    put_u64(&mut out, *seq);
                    put_session_record(&mut out, record);
                }
            }
        }
        out
    }

    /// Decodes one record payload. Returns `None` — never panics — on any
    /// malformed input: unknown tag, truncated fields, impossible counts,
    /// or trailing garbage.
    pub fn decode(payload: &[u8]) -> Option<WalRecord> {
        let mut r = Reader::new(payload);
        let record = match r.u8()? {
            TAG_COMMIT => WalRecord::Commit { txn: TxnId::new(r.u32()?), after: r.state()? },
            TAG_WINDOW_START => WalRecord::WindowStart,
            TAG_RETRO_PATCH => WalRecord::RetroPatch { from_index: r.u64()?, updates: r.state()? },
            TAG_SESSION_INSTALL => WalRecord::SessionInstall {
                mobile: r.u64()?,
                seq: r.u64()?,
                record: read_session_record(&mut r)?,
            },
            TAG_REEXEC_ADVANCE => {
                WalRecord::ReexecAdvance { mobile: r.u64()?, seq: r.u64()?, done: r.u64()? }
            }
            TAG_SESSION_COMPLETE => WalRecord::SessionComplete { mobile: r.u64()?, seq: r.u64()? },
            TAG_SESSION_PRUNE => WalRecord::SessionPrune { mobile: r.u64()?, upto_seq: r.u64()? },
            TAG_CHECKPOINT => {
                let n = r.u32()? as usize;
                // Each log entry is at least 16 bytes.
                if n > payload.len() / 16 {
                    return None;
                }
                let mut log = Vec::with_capacity(n);
                for _ in 0..n {
                    let txn = TxnId::new(r.u32()?);
                    log.push((txn, r.state()?));
                }
                let master = r.state()?;
                let epoch_start = r.u64()?;
                let epoch_state = r.state()?;
                let epoch = r.u64()?;
                let m = r.u32()? as usize;
                if m > payload.len() / 16 {
                    return None;
                }
                let mut ledger = Vec::with_capacity(m);
                for _ in 0..m {
                    let mobile = r.u64()?;
                    let seq = r.u64()?;
                    ledger.push((mobile, seq, read_session_record(&mut r)?));
                }
                WalRecord::Checkpoint(Box::new(Snapshot {
                    log,
                    master,
                    epoch_start,
                    epoch_state,
                    epoch,
                    ledger,
                }))
            }
            _ => return None,
        };
        r.done().then_some(record)
    }
}

// ---------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------

/// Frames a record payload as `[len: u32][crc32: u32][payload]`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// How a segment's byte stream ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// Every frame decoded; the stream ends exactly at a record boundary.
    Clean,
    /// A torn or corrupt suffix begins at `offset`; everything before it
    /// decoded cleanly and the suffix is discarded.
    Torn {
        /// Byte offset of the first unreadable frame.
        offset: usize,
    },
}

/// Decodes a segment's byte stream into records, stopping at the first
/// frame that is truncated, fails its CRC, or carries an undecodable
/// payload. Never panics; the invalid suffix is reported via [`Tail`].
pub fn decode_stream(buf: &[u8]) -> (Vec<WalRecord>, Tail) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        if buf.len() - pos < 8 {
            return (out, Tail::Torn { offset: pos });
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if buf.len() - pos - 8 < len {
            return (out, Tail::Torn { offset: pos });
        }
        let payload = &buf[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            return (out, Tail::Torn { offset: pos });
        }
        match WalRecord::decode(payload) {
            Some(record) => out.push(record),
            None => return (out, Tail::Torn { offset: pos }),
        }
        pos += 8 + len;
    }
    (out, Tail::Clean)
}

// ---------------------------------------------------------------------
// Storage backends.
// ---------------------------------------------------------------------

/// A segment backend: an ordered set of append-only byte segments.
pub trait Storage {
    /// Creates an empty segment with the given id.
    fn create_segment(&mut self, id: u64);
    /// Appends bytes to segment `id` (which must exist).
    fn append(&mut self, id: u64, bytes: &[u8]);
    /// Deletes segment `id` (checkpoint compaction).
    fn delete_segment(&mut self, id: u64);
    /// The bytes of segment `id`, if it exists.
    fn segment(&self, id: u64) -> Option<&[u8]>;
    /// Every live segment id, ascending.
    fn segment_ids(&self) -> Vec<u64>;
}

/// One mutation of a [`VecStorage`] — the journal entry the crash-point
/// harness replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageOp {
    /// A segment was created.
    Create(u64),
    /// Bytes were appended to a segment.
    Append(u64, Vec<u8>),
    /// A segment was deleted.
    Delete(u64),
}

/// The default in-memory segment store. Every mutation is journaled, so
/// [`TornStorage::at_crash_point`] can rebuild the exact durable bytes at
/// any moment of a run — including half-applied appends.
#[derive(Debug, Clone, Default)]
pub struct VecStorage {
    segments: BTreeMap<u64, Vec<u8>>,
    journal: Vec<StorageOp>,
}

impl VecStorage {
    /// An empty store.
    pub fn new() -> VecStorage {
        VecStorage::default()
    }

    /// The mutation journal since creation, in order.
    pub fn ops(&self) -> &[StorageOp] {
        &self.journal
    }

    /// Number of journaled mutations — the crash-point count.
    pub fn op_count(&self) -> usize {
        self.journal.len()
    }

    /// Total bytes currently held across live segments.
    pub fn live_bytes(&self) -> usize {
        self.segments.values().map(Vec::len).sum()
    }

    fn mutate(&mut self, op: StorageOp) {
        match &op {
            StorageOp::Create(id) => {
                self.segments.insert(*id, Vec::new());
            }
            StorageOp::Append(id, bytes) => {
                self.segments.entry(*id).or_default().extend_from_slice(bytes);
            }
            StorageOp::Delete(id) => {
                self.segments.remove(id);
            }
        }
        self.journal.push(op);
    }
}

impl Storage for VecStorage {
    fn create_segment(&mut self, id: u64) {
        self.mutate(StorageOp::Create(id));
    }

    fn append(&mut self, id: u64, bytes: &[u8]) {
        self.mutate(StorageOp::Append(id, bytes.to_vec()));
    }

    fn delete_segment(&mut self, id: u64) {
        self.mutate(StorageOp::Delete(id));
    }

    fn segment(&self, id: u64) -> Option<&[u8]> {
        self.segments.get(&id).map(Vec::as_slice)
    }

    fn segment_ids(&self) -> Vec<u64> {
        self.segments.keys().copied().collect()
    }
}

/// How [`TornStorage`] damages the first unreplayed write at the
/// simulated crash point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tear {
    /// The write never reached the storage at all (a clean boundary).
    Clean,
    /// Only the first `keep` bytes of the write landed — a torn
    /// mid-record append.
    Truncate {
        /// Bytes of the in-flight write that survived.
        keep: usize,
    },
    /// The whole write landed but one bit flipped in flight.
    FlipBit {
        /// Byte offset within the write (taken modulo its length).
        byte: usize,
        /// Bit index 0..8 within that byte.
        bit: u8,
    },
}

/// A fault-injected view of a [`VecStorage`] journal: the storage exactly
/// as it was after the first `ops` mutations, with the next write
/// optionally torn mid-record or bit-flipped — the crash-point matrix's
/// unit of damage.
#[derive(Debug, Clone)]
pub struct TornStorage {
    inner: VecStorage,
}

impl TornStorage {
    /// Replays the first `ops` journal entries of `full`, then applies
    /// `tear` to the next entry (when one exists and is an append; tears
    /// on create/delete degrade to [`Tear::Clean`]).
    pub fn at_crash_point(full: &VecStorage, ops: usize, tear: Tear) -> TornStorage {
        let mut inner = VecStorage::new();
        let journal = full.ops();
        let ops = ops.min(journal.len());
        for op in &journal[..ops] {
            inner.mutate(op.clone());
        }
        if let Some(StorageOp::Append(id, bytes)) = journal.get(ops) {
            match tear {
                Tear::Clean => {}
                Tear::Truncate { keep } => {
                    let keep = keep.min(bytes.len());
                    if keep > 0 {
                        inner.mutate(StorageOp::Append(*id, bytes[..keep].to_vec()));
                    }
                }
                Tear::FlipBit { byte, bit } => {
                    let mut damaged = bytes.clone();
                    if !damaged.is_empty() {
                        let at = byte % damaged.len();
                        damaged[at] ^= 1 << (bit % 8);
                    }
                    inner.mutate(StorageOp::Append(*id, damaged));
                }
            }
        }
        TornStorage { inner }
    }

    /// The replayed (and possibly damaged) storage.
    pub fn storage(&self) -> &VecStorage {
        &self.inner
    }
}

impl Storage for TornStorage {
    fn create_segment(&mut self, id: u64) {
        self.inner.create_segment(id);
    }

    fn append(&mut self, id: u64, bytes: &[u8]) {
        self.inner.append(id, bytes);
    }

    fn delete_segment(&mut self, id: u64) {
        self.inner.delete_segment(id);
    }

    fn segment(&self, id: u64) -> Option<&[u8]> {
        self.inner.segment(id)
    }

    fn segment_ids(&self) -> Vec<u64> {
        self.inner.segment_ids()
    }
}

// ---------------------------------------------------------------------
// The writer.
// ---------------------------------------------------------------------

/// The write-ahead log writer: frames records onto the active segment and
/// compacts at checkpoints.
#[derive(Debug, Clone)]
pub struct Wal<S: Storage = VecStorage> {
    storage: S,
    active: u64,
    records: u64,
    bytes: u64,
    since_checkpoint: u64,
    checkpoints: u64,
    segments_retired: u64,
    tracer: histmerge_obs::TracerHandle,
}

impl<S: Storage> Wal<S> {
    /// Opens a fresh log on `storage`: creates segment 0 and writes the
    /// genesis checkpoint as its first record.
    pub fn new(mut storage: S, genesis: &Snapshot) -> Wal<S> {
        storage.create_segment(0);
        let mut wal = Wal {
            storage,
            active: 0,
            records: 0,
            bytes: 0,
            since_checkpoint: 0,
            checkpoints: 0,
            segments_retired: 0,
            tracer: histmerge_obs::TracerHandle::noop(),
        };
        wal.append(&WalRecord::Checkpoint(Box::new(genesis.clone())));
        wal.since_checkpoint = 0;
        wal
    }

    /// Attaches a tracer; subsequent appends and checkpoints emit
    /// [`histmerge_obs::TraceEvent`]s and wall-clock spans. The genesis
    /// checkpoint written by [`Wal::new`] precedes this call and is not
    /// traced — matching [`WalStats`] which also excludes genesis from
    /// `checkpoints`.
    ///
    /// [`WalStats`]: crate::metrics::WalStats
    pub fn with_tracer(mut self, tracer: histmerge_obs::TracerHandle) -> Wal<S> {
        self.tracer = tracer;
        self
    }

    /// Appends one framed record to the active segment.
    pub fn append(&mut self, record: &WalRecord) {
        use histmerge_obs::{Phase, TraceEvent};
        let span = self.tracer.span_start();
        let framed = frame(&record.encode());
        self.bytes += framed.len() as u64;
        self.storage.append(self.active, &framed);
        self.records += 1;
        self.since_checkpoint += 1;
        self.tracer.span_end(Phase::WalAppend, span);
        self.tracer
            .emit(|| TraceEvent::WalAppend { kind: record.kind_name(), bytes: framed.len() });
    }

    /// Writes `snapshot` as the first record of a fresh segment, then
    /// retires every older segment. The deletion happens strictly after
    /// the snapshot append, so a crash anywhere inside this method leaves
    /// a recoverable log (the previous checkpoint still exists until the
    /// new one is fully durable).
    pub fn checkpoint(&mut self, snapshot: Snapshot) {
        use histmerge_obs::{Phase, TraceEvent};
        let span = self.tracer.span_start();
        let sealed = self.since_checkpoint;
        let old = self.storage.segment_ids();
        self.active += 1;
        self.storage.create_segment(self.active);
        self.append(&WalRecord::Checkpoint(Box::new(snapshot)));
        let mut retired = 0u64;
        for id in old {
            self.storage.delete_segment(id);
            self.segments_retired += 1;
            retired += 1;
        }
        self.checkpoints += 1;
        self.since_checkpoint = 0;
        self.tracer.span_end(Phase::Checkpoint, span);
        self.tracer.emit(|| TraceEvent::WalCheckpoint { records: sealed });
        self.tracer.emit(|| TraceEvent::WalCompaction { retired });
    }

    /// Records appended since the last checkpoint (the compaction
    /// trigger).
    pub fn since_checkpoint(&self) -> u64 {
        self.since_checkpoint
    }

    /// Total records appended, checkpoints included.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Total framed bytes written (retired segments included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Checkpoints performed after genesis.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Segments retired by checkpoint compaction.
    pub fn segments_retired(&self) -> u64 {
        self.segments_retired
    }

    /// The backing storage.
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Consumes the writer, returning its storage.
    pub fn into_storage(self) -> S {
        self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(pairs: &[(u32, i64)]) -> DbState {
        pairs.iter().map(|&(v, x)| (VarId::new(v), x)).collect()
    }

    fn sample_session_record() -> SessionRecord {
        SessionRecord {
            plan: InstallPlan {
                forwarded: state(&[(0, 7), (3, -2)]),
                reexecute: vec![TxnId::new(4), TxnId::new(9)],
                saved: vec![TxnId::new(1)],
            },
            retro_from: Some(11),
            sync: SyncRecord {
                tick: 42,
                mobile: 2,
                pending: 3,
                hb_len: 5,
                saved: 1,
                backed_out: 2,
                reprocessed: 0,
                merge_failed: false,
                sync_ns: 987_654,
            },
            cost: CostReport { comm: 1.5, base_cpu: 2.25, base_io: 0.5, mobile_cpu: 0.125 },
            reexec_done: 1,
            completed: false,
        }
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Commit { txn: TxnId::new(3), after: state(&[(0, 1), (1, -9)]) },
            WalRecord::WindowStart,
            WalRecord::RetroPatch { from_index: 2, updates: state(&[(5, 100)]) },
            WalRecord::SessionInstall { mobile: 1, seq: 4, record: sample_session_record() },
            WalRecord::ReexecAdvance { mobile: 1, seq: 4, done: 2 },
            WalRecord::SessionComplete { mobile: 1, seq: 4 },
            WalRecord::SessionPrune { mobile: 1, upto_seq: 4 },
            WalRecord::Checkpoint(Box::new(Snapshot {
                log: vec![(TxnId::new(0), state(&[(0, 1)])), (TxnId::new(2), state(&[(0, 2)]))],
                master: state(&[(0, 2)]),
                epoch_start: 1,
                epoch_state: state(&[(0, 1)]),
                epoch: 3,
                ledger: vec![(0, 7, sample_session_record())],
            })),
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_record_round_trips() {
        for record in sample_records() {
            let encoded = record.encode();
            let decoded = WalRecord::decode(&encoded).expect("decodes");
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        assert_eq!(WalRecord::decode(&[]), None);
        assert_eq!(WalRecord::decode(&[99]), None, "unknown tag");
        for record in sample_records() {
            let encoded = record.encode();
            // Any strict prefix must be rejected, never panic.
            for cut in 0..encoded.len() {
                assert_eq!(WalRecord::decode(&encoded[..cut]), None, "prefix {cut}");
            }
            // Trailing garbage is rejected too.
            let mut padded = encoded.clone();
            padded.push(0);
            assert_eq!(WalRecord::decode(&padded), None);
        }
    }

    #[test]
    fn stream_decodes_cleanly_and_reports_torn_tails() {
        let records = sample_records();
        let mut buf = Vec::new();
        for r in &records {
            buf.extend_from_slice(&frame(&r.encode()));
        }
        let (decoded, tail) = decode_stream(&buf);
        assert_eq!(tail, Tail::Clean);
        assert_eq!(decoded, records);

        // Truncation anywhere yields a clean prefix and a torn tail.
        let cut = buf.len() - 3;
        let (prefix, tail) = decode_stream(&buf[..cut]);
        assert!(matches!(tail, Tail::Torn { .. }));
        assert_eq!(prefix.as_slice(), &records[..records.len() - 1]);

        // A flipped bit is caught by the CRC.
        let mut corrupt = buf.clone();
        let at = corrupt.len() - 10;
        corrupt[at] ^= 0x10;
        let (prefix, tail) = decode_stream(&corrupt);
        assert!(matches!(tail, Tail::Torn { .. }));
        assert!(prefix.len() < records.len());
        assert_eq!(prefix.as_slice(), &records[..prefix.len()]);

        // The empty segment is a clean, empty stream.
        assert_eq!(decode_stream(&[]), (Vec::new(), Tail::Clean));
    }

    #[test]
    fn vec_storage_journals_every_mutation() {
        let mut s = VecStorage::new();
        s.create_segment(0);
        s.append(0, b"abc");
        s.append(0, b"de");
        s.create_segment(1);
        s.delete_segment(0);
        assert_eq!(s.segment_ids(), vec![1]);
        assert_eq!(s.op_count(), 5);
        assert_eq!(s.live_bytes(), 0);

        // Replaying a journal prefix reproduces that moment exactly.
        let at3 = TornStorage::at_crash_point(&s, 3, Tear::Clean);
        assert_eq!(at3.storage().segment(0), Some(b"abcde".as_slice()));
        assert_eq!(at3.segment_ids(), vec![0]);
    }

    #[test]
    fn torn_storage_applies_partial_and_corrupt_writes() {
        let mut s = VecStorage::new();
        s.create_segment(0);
        s.append(0, b"abcdef");

        let torn = TornStorage::at_crash_point(&s, 1, Tear::Truncate { keep: 2 });
        assert_eq!(torn.segment(0), Some(b"ab".as_slice()));

        let flipped = TornStorage::at_crash_point(&s, 1, Tear::FlipBit { byte: 1, bit: 0 });
        assert_eq!(flipped.segment(0), Some(b"accdef".as_slice()));

        // Tears only apply to appends; past the journal end they are no-ops.
        let past = TornStorage::at_crash_point(&s, 9, Tear::Truncate { keep: 1 });
        assert_eq!(past.segment(0), Some(b"abcdef".as_slice()));
    }

    #[test]
    fn wal_checkpoints_compact_segments() {
        let genesis = Snapshot::genesis(state(&[(0, 0)]));
        let mut wal = Wal::new(VecStorage::new(), &genesis);
        assert_eq!(wal.records(), 1, "genesis checkpoint");
        assert_eq!(wal.since_checkpoint(), 0);

        wal.append(&WalRecord::WindowStart);
        wal.append(&WalRecord::SessionComplete { mobile: 0, seq: 0 });
        assert_eq!(wal.since_checkpoint(), 2);
        assert_eq!(wal.storage().segment_ids(), vec![0]);

        let snap = Snapshot {
            log: vec![(TxnId::new(0), state(&[(0, 5)]))],
            master: state(&[(0, 5)]),
            epoch_start: 0,
            epoch_state: state(&[(0, 0)]),
            epoch: 1,
            ledger: Vec::new(),
        };
        wal.checkpoint(snap.clone());
        assert_eq!(wal.storage().segment_ids(), vec![1]);
        assert_eq!(wal.checkpoints(), 1);
        assert_eq!(wal.segments_retired(), 1);
        assert_eq!(wal.since_checkpoint(), 0);

        // The fresh segment decodes to exactly the checkpoint record.
        let (records, tail) = decode_stream(wal.storage().segment(1).expect("active"));
        assert_eq!(tail, Tail::Clean);
        assert_eq!(records, vec![WalRecord::Checkpoint(Box::new(snap))]);

        // The journal still remembers the retired segment's life: the
        // crash-point harness can rewind to before the compaction.
        let before = TornStorage::at_crash_point(wal.storage(), 3, Tear::Clean);
        assert_eq!(before.segment_ids(), vec![0]);
    }

    #[test]
    fn traced_wal_emits_append_and_checkpoint_events() {
        use histmerge_obs::{JsonlSink, Phase, Tracer, TracerHandle};
        let sink = std::sync::Arc::new(JsonlSink::new());
        let genesis = Snapshot::genesis(state(&[(0, 0)]));
        let mut wal =
            Wal::new(VecStorage::new(), &genesis).with_tracer(TracerHandle::new(sink.clone()));

        wal.append(&WalRecord::WindowStart);
        wal.checkpoint(Snapshot::genesis(state(&[(0, 1)])));

        let dump = sink.dump_jsonl().unwrap();
        assert!(dump.contains(r#""kind":"window_start""#), "{dump}");
        assert!(dump.contains(r#""type":"wal_checkpoint","records":1"#), "{dump}");
        assert!(dump.contains(r#""type":"wal_compaction","retired":1"#), "{dump}");
        let snap = sink.snapshot().unwrap();
        // Two traced appends (window start + checkpoint record) plus the
        // checkpoint span itself.
        assert_eq!(snap.phase(Phase::WalAppend).unwrap().count, 2);
        assert_eq!(snap.phase(Phase::Checkpoint).unwrap().count, 1);
    }

    #[test]
    fn record_kind_names_are_distinct() {
        let kinds: std::collections::BTreeSet<&str> =
            sample_records().iter().map(|r| r.kind_name()).collect();
        assert_eq!(kinds.len(), sample_records().len());
    }
}
