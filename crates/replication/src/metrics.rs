//! Simulation metrics and per-sync records.

use serde::Serialize;

use histmerge_workload::cost::CostReport;

/// Counters of injected faults and the recovery machinery they exercised.
/// All zero on the legacy path and under [`FaultPlan::none`].
///
/// [`FaultPlan::none`]: crate::fault::FaultPlan::none
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FaultStats {
    /// Handshake messages dropped in transit.
    pub dropped: usize,
    /// Handshake messages delivered twice.
    pub duplicated: usize,
    /// Stale out-of-order copies rejected by sequence number.
    pub reordered: usize,
    /// Mobiles that disconnected while the base computed their merge.
    pub mid_merge_disconnects: usize,
    /// Base crashes between install and re-execution.
    pub base_crashes: usize,
    /// Session-step retries consumed (bounded by
    /// [`SessionConfig::max_retries`] per reconnection).
    ///
    /// [`SessionConfig::max_retries`]: crate::session::SessionConfig::max_retries
    pub retries: usize,
    /// Sessions abandoned after exhausting their retry budget. Never
    /// silent: each abandon also emits a `session-abandoned` invariant
    /// trace event, and the mobile's persisted log converges at its next
    /// reconnection (regression-tested in `tests/fault_property.rs`).
    pub abandoned_sessions: usize,
    /// Retransmitted offers absorbed by the session ledger (the install
    /// already committed; only re-execution and the ack were replayed).
    pub ledger_resumes: usize,
    /// Duplicated offer copies rejected post-install by the ledger guard —
    /// the no-double-install counter.
    pub duplicate_installs_suppressed: usize,
    /// Unacked sessions resolved against the ledger at a later
    /// reconnection.
    pub recovered_sessions: usize,
    /// Tentative transactions trimmed from a mobile's persisted log
    /// because a recovered session had already committed them.
    pub trimmed_txns: usize,
    /// Tentative transactions resolved (installed or re-executed) more
    /// than once — any non-zero value is a protocol-idempotence bug.
    pub double_resolutions: usize,
    /// Session resumptions that found their ledger record missing and
    /// degraded to legacy reprocessing instead of aborting the run.
    pub ledger_gaps: usize,
}

/// Write-ahead-log counters (durability enabled only; all zero
/// otherwise). WAL volume depends on checkpoint cadence, not on the
/// logical outcome of the run, so [`Metrics::normalized`] zeroes the
/// whole block for byte-identity comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct WalStats {
    /// Records appended (checkpoints included).
    pub records: u64,
    /// Total framed bytes written (retired segments included).
    pub bytes: u64,
    /// Checkpoints performed after genesis.
    pub checkpoints: u64,
    /// Segments retired by checkpoint compaction.
    pub segments_retired: u64,
    /// Session-ledger records pruned after their mobile's ack.
    pub pruned_records: u64,
    /// In-run shadow recoveries: simulated base crashes where the durable
    /// state was recovered from the WAL and checked against the live
    /// state.
    pub shadow_recoveries: u64,
}

/// Scheduler counters: how the per-tick mobile work was driven. Purely
/// mechanical — the two [`SchedulerMode`]s produce byte-identical
/// simulations and differ only here, so [`Metrics::normalized`] zeroes
/// the whole block. The scheduler-invariant regression test reads the raw
/// values: event mode must show zero fleet scans and a live queue.
///
/// [`SchedulerMode`]: crate::sched::SchedulerMode
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SchedStats {
    /// Full-fleet traversals performed (two per tick under the legacy
    /// tick scan: one generation pass, one connect filter; zero under the
    /// event queue).
    pub fleet_scans: u64,
    /// Events scheduled on the event queue.
    pub events_pushed: u64,
    /// Events popped off the event queue.
    pub events_popped: u64,
}

/// Pre-merge compaction counters: how much of each pending history the
/// semantic squash pass collapsed before the merge ran. Planning
/// mechanism only — a compacted run commits the same base state as the
/// uncompacted run (the `session_differential` suite pins this), so
/// [`Metrics::normalized`] zeroes the whole block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CompactionStats {
    /// Tentative transactions entering the compaction pass.
    pub txns_in: u64,
    /// Transactions leaving the pass (composites count once).
    pub txns_out: u64,
    /// Runs of two or more transactions squashed into a composite.
    pub runs_squashed: u64,
}

/// Cohort install-pipeline counters: how the quadratic same-tick install
/// cost was avoided. Pure mechanism — the fast path and wave
/// re-speculation produce byte-identical runs (the `cohort_differential`
/// suite pins this), so [`Metrics::normalized`] zeroes the whole block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CohortStats {
    /// Merges that took the conflict-free fast path (pending history
    /// footprint-disjoint from the entire concurrent base slice — graph
    /// and closure construction skipped).
    pub fastpath_merges: u64,
    /// Wave re-speculation rounds run for invalidated cohort remainders.
    pub wave_rounds: u64,
    /// Base transactions appended to the epoch edge cache incrementally
    /// (per-install and per-wave syncs included).
    pub edge_cache_appends: u64,
}

/// Storm-robustness counters: what the admission controller and the
/// retry backoff did. All zero with admission control disabled and
/// backoff off (the defaults), so the differential suites are untouched;
/// with them on, these are *behavioral* counters (deferral changes when
/// each mobile merges), so [`Metrics::normalized`] keeps them — two runs
/// that defer differently are genuinely different runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StormStats {
    /// Reconnects shed past the per-tick admission cap into the deferred
    /// queue.
    pub shed: u64,
    /// Admissions served from the deferred queue (equals `shed` once the
    /// queue fully drained).
    pub deferred_drained: u64,
    /// Peak length of the deferred queue — the storm's high-water mark.
    pub deferred_peak: u64,
    /// Total ticks deferred mobiles waited between arrival and admission.
    pub defer_wait_ticks: u64,
    /// The longest single deferral, in ticks.
    pub defer_wait_max: u64,
    /// Reconnections rescheduled early by the capped exponential backoff
    /// after an abandoned session.
    pub backoff_reschedules: u64,
    /// Total backoff delay scheduled, in ticks (jitter included).
    pub backoff_delay_ticks: u64,
}

/// One synchronization event (a reconnection), for time-series plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SyncRecord {
    /// Simulation tick.
    pub tick: u64,
    /// Mobile node id.
    pub mobile: usize,
    /// Tentative transactions pending at reconnect.
    pub pending: usize,
    /// Length of the base history the merge ran against (0 for
    /// reprocessing).
    pub hb_len: usize,
    /// Transactions whose work was saved by merging.
    pub saved: usize,
    /// Transactions backed out and re-executed.
    pub backed_out: usize,
    /// Transactions reprocessed the old way (reprocessing protocol, or a
    /// merge that fell back).
    pub reprocessed: usize,
    /// `true` if a Strategy-1 merge failed (snapshot invalidated) and fell
    /// back to reprocessing.
    pub merge_failed: bool,
    /// Span-derived wall-clock nanoseconds this synchronization took at
    /// the base (0 when the run is untraced). Timing only — zeroed by
    /// [`Metrics::normalized`] like [`Metrics::parallel_merge_ns`].
    pub sync_ns: u64,
}

/// Aggregated simulation metrics.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Metrics {
    /// Tentative transactions generated across all mobiles.
    pub tentative_generated: usize,
    /// Base transactions generated by the base tier's own load.
    pub base_generated: usize,
    /// Total transactions saved by merging.
    pub saved: usize,
    /// Total transactions backed out by merging (then re-executed).
    pub backed_out: usize,
    /// Total transactions reprocessed the old way.
    pub reprocessed: usize,
    /// Synchronizations performed.
    pub syncs: usize,
    /// Strategy-1 merge failures (snapshot invalidated).
    pub merge_failures: usize,
    /// Mobiles whose window expired before they reconnected (their history
    /// is reprocessed per Section 2.2).
    pub window_misses: usize,
    /// Accumulated cost report (Section 7.1 decomposition).
    pub cost: CostReport,
    /// Peak base-node work backlog (pending base work units).
    pub peak_backlog: f64,
    /// Base-node backlog sampled every 10 ticks: `(tick, backlog)` — the
    /// time series behind the scale-up figure (E6).
    pub backlog_series: Vec<(u64, f64)>,
    /// Per-sync records, in time order.
    pub records: Vec<SyncRecord>,
    /// Size of each reconnect batch (mobiles syncing in the same tick), in
    /// time order.
    pub batch_sizes: Vec<usize>,
    /// Wall-clock nanoseconds spent in the concurrent merge phase of
    /// batched syncs. Timing only — excluded from determinism comparisons.
    pub parallel_merge_ns: u64,
    /// Speculative batch merges whose outcome survived delta validation
    /// and was installed as-is.
    pub speculative_hits: usize,
    /// Speculative batch merges invalidated by earlier batch members'
    /// installs (re-merged serially during the install phase).
    pub speculative_retries: usize,
    /// Strategy-1 retroactive installs performed (each edits recorded
    /// after-states in place, so replay-based convergence checks do not
    /// apply to runs where this is non-zero).
    pub retro_patches: usize,
    /// Injected-fault and recovery counters (session path only).
    pub fault: FaultStats,
    /// Write-ahead-log counters (durability enabled only). Volume-only —
    /// excluded from determinism comparisons.
    pub wal: WalStats,
    /// Scheduler counters. Mechanism-only — excluded from determinism
    /// comparisons (the tick scan and the event queue must produce the
    /// same simulation while differing exactly here).
    pub sched: SchedStats,
    /// Pre-merge compaction counters. Planning mechanism only — excluded
    /// from determinism comparisons (a compacted run commits the same
    /// base state while differing exactly here).
    pub compaction: CompactionStats,
    /// Cohort install-pipeline counters. Mechanism-only — excluded from
    /// determinism comparisons (a fast-path/wave run commits the same
    /// base state while differing exactly here).
    pub cohort: CohortStats,
    /// Admission-control and retry-backoff counters. Behavioral (not
    /// mechanism-only): kept by [`Metrics::normalized`], and all zero
    /// with admission and backoff at their defaults.
    pub storm: StormStats,
    /// Per-deferral wait in ticks, one entry per admission served from
    /// the deferred queue, in admission order — the series behind E21's
    /// p99 sync-latency figure (non-deferred syncs wait 0 ticks).
    pub defer_waits: Vec<u64>,
}

impl Metrics {
    /// Records a sync event, folding it into the aggregates.
    pub fn record(&mut self, record: SyncRecord, cost: CostReport) {
        self.saved += record.saved;
        self.backed_out += record.backed_out;
        self.reprocessed += record.reprocessed;
        self.syncs += 1;
        if record.merge_failed {
            self.merge_failures += 1;
        }
        self.cost = self.cost.add(&cost);
        self.records.push(record);
    }

    /// Fraction of tentative transactions whose work was saved. Guarded:
    /// a run that resolved nothing (or reprocessed everything without a
    /// single save) reports 0.0, never NaN.
    pub fn save_ratio(&self) -> f64 {
        let done = self.saved + self.backed_out + self.reprocessed;
        if done == 0 {
            0.0
        } else {
            self.saved as f64 / done as f64
        }
    }

    /// Exact p50/p99 of the per-deferral waits ([`Metrics::defer_waits`])
    /// in ticks, `(0, 0)` when nothing was deferred. Computed over a
    /// sorted copy with the nearest-rank method — the series is bounded
    /// by the number of deferred admissions, so exact quantiles are
    /// affordable wherever they're read (telemetry samples, the pinned
    /// metrics JSON).
    pub fn defer_wait_quantiles(&self) -> (u64, u64) {
        if self.defer_waits.is_empty() {
            return (0, 0);
        }
        let mut sorted = self.defer_waits.clone();
        sorted.sort_unstable();
        let rank = |q: f64| {
            let idx = ((sorted.len() as f64) * q).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1]
        };
        (rank(0.50), rank(0.99))
    }

    /// A copy suitable for byte-for-byte run comparisons:
    /// [`Metrics::parallel_merge_ns`] is wall-clock timing,
    /// [`Metrics::wal`] is log volume, and [`Metrics::sched`] is
    /// scheduling mechanism — all orthogonal to the logical outcome of a
    /// run (a durability-enabled or event-scheduled run must equal the
    /// legacy run everywhere else) and zeroed out here.
    pub fn normalized(&self) -> Metrics {
        let mut normalized = Metrics {
            parallel_merge_ns: 0,
            wal: WalStats::default(),
            sched: SchedStats::default(),
            compaction: CompactionStats::default(),
            cohort: CohortStats::default(),
            ..self.clone()
        };
        for record in &mut normalized.records {
            record.sync_ns = 0;
        }
        normalized
    }

    /// Renders the metrics as one JSON object with a pinned field order
    /// (the vendored serde is a no-op, so serialization is hand-rolled).
    /// The shape is covered by a snapshot test; extend it when adding
    /// fields so downstream artifact consumers see breaks early.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        out.push_str(&format!("\"tentative_generated\":{}", self.tentative_generated));
        out.push_str(&format!(",\"base_generated\":{}", self.base_generated));
        out.push_str(&format!(",\"saved\":{}", self.saved));
        out.push_str(&format!(",\"backed_out\":{}", self.backed_out));
        out.push_str(&format!(",\"reprocessed\":{}", self.reprocessed));
        out.push_str(&format!(",\"syncs\":{}", self.syncs));
        out.push_str(&format!(",\"merge_failures\":{}", self.merge_failures));
        out.push_str(&format!(",\"window_misses\":{}", self.window_misses));
        out.push_str(&format!(
            ",\"cost\":{{\"comm\":{:.3},\"base_cpu\":{:.3},\"base_io\":{:.3},\"mobile_cpu\":{:.3}}}",
            self.cost.comm, self.cost.base_cpu, self.cost.base_io, self.cost.mobile_cpu
        ));
        out.push_str(&format!(",\"peak_backlog\":{:.3}", self.peak_backlog));
        out.push_str(&format!(",\"backlog_samples\":{}", self.backlog_series.len()));
        out.push_str(&format!(",\"records\":{}", self.records.len()));
        out.push_str(&format!(",\"batches\":{}", self.batch_sizes.len()));
        out.push_str(&format!(",\"parallel_merge_ns\":{}", self.parallel_merge_ns));
        out.push_str(&format!(",\"speculative_hits\":{}", self.speculative_hits));
        out.push_str(&format!(",\"speculative_retries\":{}", self.speculative_retries));
        out.push_str(&format!(",\"retro_patches\":{}", self.retro_patches));
        let f = &self.fault;
        out.push_str(&format!(
            ",\"fault\":{{\"dropped\":{},\"duplicated\":{},\"reordered\":{},\
             \"mid_merge_disconnects\":{},\"base_crashes\":{},\"retries\":{},\
             \"abandoned_sessions\":{},\"ledger_resumes\":{},\"duplicate_installs_suppressed\":{},\
             \"recovered_sessions\":{},\"trimmed_txns\":{},\"double_resolutions\":{},\
             \"ledger_gaps\":{}}}",
            f.dropped,
            f.duplicated,
            f.reordered,
            f.mid_merge_disconnects,
            f.base_crashes,
            f.retries,
            f.abandoned_sessions,
            f.ledger_resumes,
            f.duplicate_installs_suppressed,
            f.recovered_sessions,
            f.trimmed_txns,
            f.double_resolutions,
            f.ledger_gaps
        ));
        let w = &self.wal;
        out.push_str(&format!(
            ",\"wal\":{{\"records\":{},\"bytes\":{},\"checkpoints\":{},\
             \"segments_retired\":{},\"pruned_records\":{},\"shadow_recoveries\":{}}}",
            w.records,
            w.bytes,
            w.checkpoints,
            w.segments_retired,
            w.pruned_records,
            w.shadow_recoveries
        ));
        let s = &self.sched;
        out.push_str(&format!(
            ",\"sched\":{{\"fleet_scans\":{},\"events_pushed\":{},\"events_popped\":{}}}",
            s.fleet_scans, s.events_pushed, s.events_popped
        ));
        let c = &self.compaction;
        out.push_str(&format!(
            ",\"compaction\":{{\"txns_in\":{},\"txns_out\":{},\"runs_squashed\":{}}}",
            c.txns_in, c.txns_out, c.runs_squashed
        ));
        let co = &self.cohort;
        out.push_str(&format!(
            ",\"cohort\":{{\"fastpath_merges\":{},\"wave_rounds\":{},\"edge_cache_appends\":{}}}",
            co.fastpath_merges, co.wave_rounds, co.edge_cache_appends
        ));
        let st = &self.storm;
        out.push_str(&format!(
            ",\"storm\":{{\"shed\":{},\"deferred_drained\":{},\"deferred_peak\":{},\
             \"defer_wait_ticks\":{},\"defer_wait_max\":{},\"backoff_reschedules\":{},\
             \"backoff_delay_ticks\":{}}}",
            st.shed,
            st.deferred_drained,
            st.deferred_peak,
            st.defer_wait_ticks,
            st.defer_wait_max,
            st.backoff_reschedules,
            st.backoff_delay_ticks
        ));
        let (p50, p99) = self.defer_wait_quantiles();
        out.push_str(&format!(
            ",\"defer_waits\":{{\"count\":{},\"p50\":{},\"p99\":{}}}",
            self.defer_waits.len(),
            p50,
            p99
        ));
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_folds_into_aggregates() {
        let mut m = Metrics::default();
        m.record(
            SyncRecord {
                tick: 5,
                mobile: 0,
                pending: 4,
                hb_len: 2,
                saved: 3,
                backed_out: 1,
                reprocessed: 0,
                merge_failed: false,
                sync_ns: 0,
            },
            CostReport { comm: 1.0, ..Default::default() },
        );
        m.record(
            SyncRecord {
                tick: 9,
                mobile: 1,
                pending: 2,
                hb_len: 0,
                saved: 0,
                backed_out: 0,
                reprocessed: 2,
                merge_failed: true,
                sync_ns: 0,
            },
            CostReport { comm: 2.0, ..Default::default() },
        );
        assert_eq!(m.saved, 3);
        assert_eq!(m.backed_out, 1);
        assert_eq!(m.reprocessed, 2);
        assert_eq!(m.syncs, 2);
        assert_eq!(m.merge_failures, 1);
        assert_eq!(m.cost.comm, 3.0);
        assert_eq!(m.records.len(), 2);
        assert!((m.save_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_ratio_is_zero() {
        assert_eq!(Metrics::default().save_ratio(), 0.0);
        assert!(Metrics::default().backlog_series.is_empty());
    }

    #[test]
    fn all_reprocessing_run_has_finite_zero_ratio() {
        // A run where every sync reprocessed (the 0-saved regime the ratio
        // must not turn into NaN).
        let mut m = Metrics::default();
        for tick in 0..3 {
            m.record(
                SyncRecord {
                    tick,
                    mobile: 0,
                    pending: 2,
                    hb_len: 0,
                    saved: 0,
                    backed_out: 0,
                    reprocessed: 2,
                    merge_failed: false,
                    sync_ns: 0,
                },
                CostReport::default(),
            );
        }
        assert_eq!(m.saved, 0);
        assert_eq!(m.reprocessed, 6);
        assert_eq!(m.save_ratio(), 0.0);
        assert!(m.save_ratio().is_finite());
    }

    #[test]
    fn normalized_strips_wall_clock_only() {
        let a = Metrics { parallel_merge_ns: 12345, ..Metrics::default() };
        let mut b = Metrics { parallel_merge_ns: 99999, ..Metrics::default() };
        assert_ne!(a, b);
        assert_eq!(a.normalized(), b.normalized());
        // Per-record sync durations are timing too.
        let record = SyncRecord {
            tick: 1,
            mobile: 0,
            pending: 1,
            hb_len: 0,
            saved: 1,
            backed_out: 0,
            reprocessed: 0,
            merge_failed: false,
            sync_ns: 777,
        };
        let mut traced = Metrics::default();
        traced.record(record, CostReport::default());
        let mut untraced = Metrics::default();
        untraced.record(SyncRecord { sync_ns: 0, ..record }, CostReport::default());
        assert_ne!(traced, untraced);
        assert_eq!(traced.normalized(), untraced.normalized());
        // Real counters still distinguish runs.
        b.saved = 1;
        assert_ne!(a.normalized(), b.normalized());
        assert_eq!(FaultStats::default(), a.fault);
    }

    #[test]
    fn normalized_strips_wal_volume() {
        // A durability-enabled run differs from the legacy run only in
        // WAL counters; normalization must erase exactly that difference.
        let legacy = Metrics::default();
        let durable = Metrics {
            wal: WalStats {
                records: 100,
                bytes: 4096,
                checkpoints: 2,
                segments_retired: 2,
                pruned_records: 7,
                shadow_recoveries: 1,
            },
            ..Metrics::default()
        };
        assert_ne!(legacy, durable);
        assert_eq!(legacy.normalized(), durable.normalized());
    }

    #[test]
    fn normalized_strips_compaction_mechanism() {
        // A compaction-enabled run and a plain run differ only in the
        // compaction block; normalization must erase exactly that
        // difference.
        let plain = Metrics::default();
        let compacted = Metrics {
            compaction: CompactionStats { txns_in: 40, txns_out: 25, runs_squashed: 6 },
            ..Metrics::default()
        };
        assert_ne!(plain, compacted);
        assert_eq!(plain.normalized(), compacted.normalized());
        assert!(compacted.to_json().contains("\"compaction\":{\"txns_in\":40"));
    }

    #[test]
    fn normalized_strips_cohort_mechanism() {
        // A fast-path/wave run and a legacy run differ only in the cohort
        // block; normalization must erase exactly that difference.
        let legacy = Metrics::default();
        let pipelined = Metrics {
            cohort: CohortStats { fastpath_merges: 9, wave_rounds: 2, edge_cache_appends: 31 },
            ..Metrics::default()
        };
        assert_ne!(legacy, pipelined);
        assert_eq!(legacy.normalized(), pipelined.normalized());
        assert!(pipelined.to_json().contains("\"cohort\":{\"fastpath_merges\":9"));
    }

    #[test]
    fn normalized_keeps_storm_behavior() {
        // Admission control changes *when* mobiles merge — deferral is
        // behavior, not mechanism — so normalization must NOT erase the
        // storm block: an admission-bounded run is a different run.
        let calm = Metrics::default();
        let stormy = Metrics {
            storm: StormStats { shed: 12, deferred_drained: 12, ..StormStats::default() },
            defer_waits: vec![1, 1, 2],
            ..Metrics::default()
        };
        assert_ne!(calm.normalized(), stormy.normalized());
        assert!(stormy.to_json().contains("\"storm\":{\"shed\":12"));
    }

    #[test]
    fn normalized_strips_scheduler_mechanism() {
        // A tick-scan run and an event-queue run differ only in the sched
        // block; normalization must erase exactly that difference.
        let scanned = Metrics {
            sched: SchedStats { fleet_scans: 800, events_pushed: 0, events_popped: 0 },
            ..Metrics::default()
        };
        let evented = Metrics {
            sched: SchedStats { fleet_scans: 0, events_pushed: 40, events_popped: 36 },
            ..Metrics::default()
        };
        assert_ne!(scanned, evented);
        assert_eq!(scanned.normalized(), evented.normalized());
    }
}
