//! Crash recovery: rebuild the base tier from its write-ahead log.
//!
//! Recovery is the read side of [`crate::wal`]: decode every live
//! segment in ascending id order, keep the longest cleanly-framed record
//! prefix (anything after a torn or corrupt frame — including whole later
//! segments — is discarded), locate the **latest checkpoint** in that
//! prefix, and replay the records after it:
//!
//! * [`WalRecord::Commit`] re-appends the commit with its durable after
//!   state (no re-execution — the log stores states, not programs);
//! * [`WalRecord::WindowStart`] rolls the window and epoch counter;
//! * [`WalRecord::RetroPatch`] replays a Strategy-1 retroactive install
//!   (the transaction arena supplies writesets for masking — programs are
//!   shared immutable knowledge, like application code, not crash-lost
//!   state);
//! * session records rebuild the ledger: installs insert, re-execution
//!   advances move the cursor, completes mark done, prunes drop acked
//!   rows.
//!
//! The resulting [`Recovered`] is exactly the durable prefix of the
//! pre-crash run: the crash-point torture tests assert this for a crash
//! at *every* storage operation, with and without torn tails.

use histmerge_history::TxnArena;
use histmerge_txn::TxnId;

use crate::base::BaseNode;
use crate::session::SessionLedger;
use crate::wal::{decode_stream, Storage, Tail, WalRecord};

/// The base-tier state rebuilt from the latest checkpoint plus WAL tail.
#[derive(Debug)]
pub struct Recovered {
    /// The recovered base node (master, committed log, window state).
    pub base: BaseNode,
    /// The recovered window (epoch) counter.
    pub epoch: u64,
    /// The recovered session ledger, re-execution cursors included.
    pub ledger: SessionLedger,
    /// Records replayed after the checkpoint the recovery started from.
    pub records_applied: usize,
    /// `true` when a torn or corrupt suffix was discarded (the log did not
    /// end at a clean record boundary).
    pub torn: bool,
}

/// Why recovery could not produce a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryError {
    /// No checkpoint record survived in the readable prefix — not even
    /// the genesis checkpoint was durable, so there is nothing to recover
    /// from.
    NoCheckpoint,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::NoCheckpoint => {
                write!(f, "no checkpoint record in the readable WAL prefix")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Rebuilds the base tier from `storage`. `arena` supplies transaction
/// writesets for retro-patch replay; it models shared immutable knowledge
/// (the programs), not crash-lost state.
pub fn recover(arena: &TxnArena, storage: &impl Storage) -> Result<Recovered, RecoveryError> {
    recover_traced(arena, storage, &histmerge_obs::TracerHandle::noop())
}

/// Like [`recover`], but times the whole replay as a
/// [`histmerge_obs::Phase::Recovery`] span and emits a
/// [`histmerge_obs::TraceEvent::RecoveryReplay`] summarizing it.
pub fn recover_traced(
    arena: &TxnArena,
    storage: &impl Storage,
    tracer: &histmerge_obs::TracerHandle,
) -> Result<Recovered, RecoveryError> {
    use histmerge_obs::{Phase, TraceEvent};
    let span = tracer.span_start();
    let recovered = recover_inner(arena, storage)?;
    tracer.span_end(Phase::Recovery, span);
    tracer.emit(|| TraceEvent::RecoveryReplay {
        records: recovered.records_applied,
        torn: recovered.torn,
    });
    Ok(recovered)
}

fn recover_inner(arena: &TxnArena, storage: &impl Storage) -> Result<Recovered, RecoveryError> {
    // The readable record prefix: segments in ascending id order, stopping
    // at the first torn tail. Later segments are unreachable after a tear
    // — they postdate the damage and cannot be trusted to follow it.
    let mut records: Vec<WalRecord> = Vec::new();
    let mut torn = false;
    for id in storage.segment_ids() {
        let bytes = storage.segment(id).expect("listed segment exists");
        let (mut decoded, tail) = decode_stream(bytes);
        records.append(&mut decoded);
        if let Tail::Torn { .. } = tail {
            torn = true;
            break;
        }
    }

    // The latest checkpoint wins: everything before it was compacted away
    // logically even if older segments still hold bytes.
    let checkpoint_at = records
        .iter()
        .rposition(|r| matches!(r, WalRecord::Checkpoint(_)))
        .ok_or(RecoveryError::NoCheckpoint)?;
    let snapshot = match &records[checkpoint_at] {
        WalRecord::Checkpoint(snapshot) => snapshot.as_ref(),
        _ => unreachable!("rposition matched a checkpoint"),
    };

    let mut base = BaseNode::from_parts(
        snapshot.master.clone(),
        snapshot.log.clone(),
        snapshot.epoch_start as usize,
        snapshot.epoch_state.clone(),
    );
    let mut epoch = snapshot.epoch;
    let mut ledger = SessionLedger::new();
    for (mobile, seq, record) in &snapshot.ledger {
        ledger.insert(*mobile as usize, *seq, record.clone());
    }

    let mut records_applied = 0usize;
    for record in &records[checkpoint_at + 1..] {
        match record {
            WalRecord::Commit { txn, after } => {
                base.restore_commit(*txn, after.clone());
            }
            WalRecord::WindowStart => {
                base.start_window();
                epoch += 1;
            }
            WalRecord::RetroPatch { from_index, updates } => {
                if base.retro_patch(arena, *from_index as usize, updates).is_err() {
                    // A patch that no longer fits the recovered log is
                    // semantic corruption the CRC cannot see; stop at the
                    // last coherent record, as with a torn frame.
                    torn = true;
                    break;
                }
            }
            WalRecord::SessionInstall { mobile, seq, record } => {
                ledger.insert(*mobile as usize, *seq, record.clone());
            }
            WalRecord::ReexecAdvance { mobile, seq, done } => {
                if let Some(rec) = ledger.get_mut(*mobile as usize, *seq) {
                    rec.reexec_done = *done as usize;
                }
            }
            WalRecord::SessionComplete { mobile, seq } => {
                if let Some(rec) = ledger.get_mut(*mobile as usize, *seq) {
                    rec.completed = true;
                }
            }
            WalRecord::SessionPrune { mobile, upto_seq } => {
                ledger.prune_acked(*mobile as usize, *upto_seq);
            }
            WalRecord::Checkpoint(_) => unreachable!("checkpoint_at is the last checkpoint"),
        }
        records_applied += 1;
    }

    Ok(Recovered { base, epoch, ledger, records_applied, torn })
}

/// Convenience for oracle checks: the recovered committed history as
/// transaction ids, in commit order.
pub fn recovered_history(recovered: &Recovered) -> Vec<TxnId> {
    recovered.base.log().iter().map(|(t, _)| *t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{Snapshot, Tear, TornStorage, VecStorage, Wal};
    use histmerge_txn::{DbState, VarId};

    fn state(pairs: &[(u32, i64)]) -> DbState {
        pairs.iter().map(|&(v, x)| (VarId::new(v), x)).collect()
    }

    fn wal_with_two_commits() -> Wal<VecStorage> {
        let genesis = Snapshot::genesis(state(&[(0, 0), (1, 0)]));
        let mut wal = Wal::new(VecStorage::new(), &genesis);
        wal.append(&WalRecord::Commit { txn: TxnId::new(0), after: state(&[(0, 1), (1, 0)]) });
        wal.append(&WalRecord::WindowStart);
        wal.append(&WalRecord::Commit { txn: TxnId::new(1), after: state(&[(0, 1), (1, 5)]) });
        wal
    }

    #[test]
    fn recovers_commits_and_windows_from_genesis() {
        let wal = wal_with_two_commits();
        let arena = TxnArena::new();
        let r = recover(&arena, wal.storage()).expect("recovers");
        assert!(!r.torn);
        assert_eq!(r.records_applied, 3);
        assert_eq!(r.epoch, 1);
        assert_eq!(r.base.committed(), 2);
        assert_eq!(r.base.master(), &state(&[(0, 1), (1, 5)]));
        assert_eq!(r.base.epoch_start(), 1);
        assert_eq!(r.base.epoch_state(), &state(&[(0, 1), (1, 0)]));
        assert_eq!(recovered_history(&r), vec![TxnId::new(0), TxnId::new(1)]);
        assert!(r.ledger.is_empty());
    }

    #[test]
    fn empty_storage_has_no_checkpoint() {
        let arena = TxnArena::new();
        assert_eq!(recover(&arena, &VecStorage::new()).unwrap_err(), RecoveryError::NoCheckpoint);
    }

    #[test]
    fn torn_tail_recovers_the_durable_prefix() {
        let wal = wal_with_two_commits();
        let arena = TxnArena::new();
        // Crash with the last append half-written: recovery must yield the
        // state after the first two records only.
        let ops = wal.storage().op_count();
        let torn = TornStorage::at_crash_point(wal.storage(), ops - 1, Tear::Truncate { keep: 5 });
        let r = recover(&arena, torn.storage()).expect("recovers prefix");
        assert!(r.torn);
        assert_eq!(r.base.committed(), 1);
        assert_eq!(r.epoch, 1);
        assert_eq!(r.base.master(), &state(&[(0, 1), (1, 0)]));

        // A flipped bit in the same append: CRC catches it, same prefix.
        let flipped =
            TornStorage::at_crash_point(wal.storage(), ops - 1, Tear::FlipBit { byte: 12, bit: 6 });
        let r2 = recover(&arena, flipped.storage()).expect("recovers prefix");
        assert!(r2.torn);
        assert_eq!(r2.base.committed(), 1);
        assert_eq!(r2.base.master(), r.base.master());
    }

    #[test]
    fn latest_checkpoint_wins_and_older_segments_are_ignored() {
        let mut wal = wal_with_two_commits();
        let snap = Snapshot {
            log: wal_log(&wal),
            master: state(&[(0, 1), (1, 5)]),
            epoch_start: 1,
            epoch_state: state(&[(0, 1), (1, 0)]),
            epoch: 1,
            ledger: Vec::new(),
        };
        wal.checkpoint(snap);
        wal.append(&WalRecord::Commit { txn: TxnId::new(2), after: state(&[(0, 9), (1, 5)]) });

        let arena = TxnArena::new();
        let r = recover(&arena, wal.storage()).expect("recovers");
        assert!(!r.torn);
        assert_eq!(r.records_applied, 1, "only the post-checkpoint commit replays");
        assert_eq!(r.base.committed(), 3);
        assert_eq!(r.epoch, 1);
        assert_eq!(r.base.master(), &state(&[(0, 9), (1, 5)]));
    }

    fn wal_log(_wal: &Wal<VecStorage>) -> Vec<(TxnId, DbState)> {
        vec![(TxnId::new(0), state(&[(0, 1), (1, 0)])), (TxnId::new(1), state(&[(0, 1), (1, 5)]))]
    }

    #[test]
    fn session_records_rebuild_the_ledger() {
        use crate::metrics::SyncRecord;
        use histmerge_core::merge::InstallPlan;
        use histmerge_workload::cost::CostReport;

        let record = crate::session::SessionRecord {
            plan: InstallPlan {
                forwarded: state(&[(0, 3)]),
                reexecute: vec![TxnId::new(7), TxnId::new(8)],
                saved: Vec::new(),
            },
            retro_from: None,
            sync: SyncRecord {
                tick: 1,
                mobile: 0,
                pending: 2,
                hb_len: 1,
                saved: 0,
                backed_out: 2,
                reprocessed: 0,
                merge_failed: false,
                sync_ns: 0,
            },
            cost: CostReport::default(),
            reexec_done: 0,
            completed: false,
        };

        let genesis = Snapshot::genesis(state(&[(0, 0)]));
        let mut wal = Wal::new(VecStorage::new(), &genesis);
        wal.append(&WalRecord::SessionInstall { mobile: 0, seq: 0, record: record.clone() });
        wal.append(&WalRecord::ReexecAdvance { mobile: 0, seq: 0, done: 2 });
        wal.append(&WalRecord::SessionComplete { mobile: 0, seq: 0 });
        wal.append(&WalRecord::SessionInstall { mobile: 1, seq: 0, record });

        let arena = TxnArena::new();
        let r = recover(&arena, wal.storage()).expect("recovers");
        assert_eq!(r.ledger.len(), 2);
        let rec = r.ledger.get(0, 0).expect("mobile 0 session");
        assert_eq!(rec.reexec_done, 2);
        assert!(rec.completed);
        assert!(!r.ledger.get(1, 0).expect("mobile 1 session").completed);

        // The prune record drops the acked row on replay too.
        wal.append(&WalRecord::SessionPrune { mobile: 0, upto_seq: 0 });
        let r2 = recover(&arena, wal.storage()).expect("recovers");
        assert_eq!(r2.ledger.len(), 1);
        assert!(r2.ledger.get(0, 0).is_none());
    }

    #[test]
    fn traced_recovery_reports_the_replay() {
        use histmerge_obs::{JsonlSink, Phase, Tracer, TracerHandle};
        let wal = wal_with_two_commits();
        let arena = TxnArena::new();
        let sink = std::sync::Arc::new(JsonlSink::new());
        let r = recover_traced(&arena, wal.storage(), &TracerHandle::new(sink.clone()))
            .expect("recovers");
        assert_eq!(r.records_applied, 3);
        let dump = sink.dump_jsonl().unwrap();
        assert!(dump.contains(r#""type":"recovery_replay","records":3,"torn":false"#), "{dump}");
        assert_eq!(sink.snapshot().unwrap().phase(Phase::Recovery).unwrap().count, 1);
        // Tracing never changes the recovered state.
        let plain = recover(&arena, wal.storage()).expect("recovers");
        assert_eq!(plain.base.master(), r.base.master());
        assert_eq!(plain.records_applied, r.records_applied);
    }
}
