//! The parallel, batched base-tier merge pipeline.
//!
//! When several mobiles reconnect in the same tick under Strategy 2, every
//! member of the batch merges against the **same** window-start state and
//! the same (growing) epoch base history. The expensive, pure part of each
//! merge — graph build, cycle back-out, rewrite, prune — has no need to
//! see the other members' installs, so [`merge_batch`] runs those
//! concurrently against a common snapshot. The *install* phase then
//! applies forwarded updates and re-executions strictly in mobile-id
//! order, validating each speculative outcome against the base
//! transactions appended since the snapshot ([`delta_invalidates`]); a
//! member whose outcome the delta invalidates simply re-merges serially.
//! The result is byte-identical to the serial path (see the determinism
//! test and DESIGN.md for the argument).
//!
//! Under the resumable session path (`SyncPath::Session`) the same
//! speculative outcomes feed the per-mobile session state machines: a
//! member's speculation is validated at its session's merge step and
//! retained across mid-merge disconnects like any other computed
//! decision, so the pipeline composes with fault injection unchanged.
//! Mobiles carrying an unresolved prior session are excluded from
//! speculation — their pending set is only known after ledger recovery
//! runs (a recovered session may trim the already-committed prefix of the
//! persisted log).

use histmerge_core::merge::{MergeAssist, MergeOutcome, MergeScratch, Merger};
use histmerge_core::CoreError;
use histmerge_history::{BaseEdgeCache, DenseBits, SerialHistory, TxnArena};
use histmerge_txn::{DbState, TxnId, VarSet};

/// How many worker threads the batched sync path may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Merge batch members one at a time on the calling thread.
    Serial,
    /// One worker per available CPU, capped by the batch size.
    Auto,
    /// Exactly `n` workers, capped by the batch size (`0` and `1` both
    /// mean serial).
    Threads(usize),
}

impl Parallelism {
    /// The worker count for a batch of `batch` merges.
    pub fn workers(&self, batch: usize) -> usize {
        let cap = match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            Parallelism::Threads(n) => (*n).max(1),
        };
        cap.min(batch.max(1))
    }
}

/// One member of a merge batch: a reconnecting mobile's pending history.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// The mobile's id — the deterministic install-order key.
    pub mobile: usize,
    /// Its pending tentative history.
    pub hm: SerialHistory,
}

/// Runs the pure merge phase for every job against the shared snapshot
/// (`hb` from `s0`, with `hb_final` the state after `hb` and `cache` the
/// epoch's base-conflict edges). Returns one result per job, in job order.
///
/// With `workers <= 1` (or a single job) everything runs on the calling
/// thread; otherwise each of `W` scoped workers owns the strided queue of
/// jobs `w, w + W, w + 2W, …` — a static partition with no shared claim
/// counter or per-slot locks; workers return `(index, result)` pairs that
/// are scattered back into job order at join. Each worker builds its
/// [`Merger`] once and reuses it — its oracle and back-out strategy act as
/// the worker's scratch arena — which is why
/// [`histmerge_semantics::SemanticOracle`] and
/// [`histmerge_history::BackoutStrategy`] require `Send + Sync`.
///
/// The per-job computation is identical to
/// [`Merger::merge_assisted`] on one thread; parallelism changes only
/// wall-clock time, never results.
#[allow(clippy::too_many_arguments)]
pub fn merge_batch(
    arena: &TxnArena,
    jobs: &[BatchJob],
    hb: &SerialHistory,
    s0: &DbState,
    hb_final: &DbState,
    cache: &BaseEdgeCache,
    make_merger: &(dyn Fn() -> Merger + Sync),
    workers: usize,
    fastpath: bool,
) -> Vec<Result<MergeOutcome, CoreError>> {
    // The fast-path knob also defers the slow path's witness history:
    // the install pipeline never reads it, and its topological sort is
    // the dominant super-linear term at cohort scale.
    let assist = MergeAssist {
        base_edges: Some(cache),
        hb_final: Some(hb_final),
        fastpath,
        defer_witness: fastpath,
    };
    if workers <= 1 || jobs.len() <= 1 {
        let merger = make_merger();
        let mut scratch = MergeScratch::new();
        return jobs
            .iter()
            .map(|j| merger.merge_scratch(arena, &j.hm, hb, s0, assist, &mut scratch))
            .collect();
    }
    let n_workers = workers.min(jobs.len());
    let mut out: Vec<Option<Result<MergeOutcome, CoreError>>> = jobs.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|w| {
                scope.spawn(move || {
                    let merger = make_merger();
                    // Per-worker scratch: buffers live as long as the
                    // worker and serve every job on its queue.
                    let mut scratch = MergeScratch::new();
                    jobs.iter()
                        .enumerate()
                        .skip(w)
                        .step_by(n_workers)
                        .map(|(k, job)| {
                            (k, merger.merge_scratch(arena, &job.hm, hb, s0, assist, &mut scratch))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (k, result) in handle.join().expect("merge worker panicked") {
                out[k] = Some(result);
            }
        }
    });
    out.into_iter().map(|slot| slot.expect("every job merged")).collect()
}

/// The read and write footprint of a tentative history, for delta
/// validation.
pub fn history_footprint(arena: &TxnArena, hm: &SerialHistory) -> (VarSet, VarSet) {
    let mut reads = VarSet::new();
    let mut writes = VarSet::new();
    for id in hm.iter() {
        let t = arena.get(id);
        reads.extend_from(t.readset());
        writes.extend_from(t.writeset());
    }
    (reads, writes)
}

/// The read and write footprint of a tentative history as dense bitset
/// unions of the arena's admission-time masks — no `VarSet` walk, no
/// re-interning. This is the speculation-time form: the unions are
/// computed once per batch job and every subsequent delta validation is
/// a handful of word-wise ANDs.
pub fn history_bits(arena: &TxnArena, hm: &SerialHistory) -> (DenseBits, DenseBits) {
    let mut reads = DenseBits::new();
    let mut writes = DenseBits::new();
    for id in hm.iter() {
        reads.union_with(arena.read_bits(id));
        writes.union_with(arena.write_bits(id));
    }
    (reads, writes)
}

/// Would appending `delta` to the base history have changed the merge of a
/// tentative history with footprint union (`read_bits`, `write_bits`)?
///
/// New precedence-graph edges incident to the tentative history appear
/// exactly when some delta transaction writes an item the history read
/// (rule 3, `T_m → T_b`) or reads an item the history wrote (rule 3,
/// `T_b → T_m`). Absent both, the delta contributes only forward
/// base-internal edges — appended base transactions have no edges back
/// into the snapshot — so back-out, rewrite, prune, and the forwarded
/// values are untouched (write-write overlap does not add cross edges; see
/// [`histmerge_history::PrecedenceGraph::build`]).
///
/// The footprints are the precomputed [`history_bits`] unions, so each
/// delta transaction costs two word-wise ANDs against its admission-time
/// bitsets — O(words), not O(txns × footprint).
pub fn delta_invalidates(
    arena: &TxnArena,
    delta: &[TxnId],
    read_bits: &DenseBits,
    write_bits: &DenseBits,
) -> bool {
    delta.iter().any(|&d| {
        arena.write_bits(d).intersects(read_bits) || arena.read_bits(d).intersects(write_bits)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_core::merge::MergeConfig;
    use histmerge_history::fixtures::example1;
    use histmerge_history::AugmentedHistory;
    use histmerge_txn::{Expr, ProgramBuilder, Transaction, TxnKind, VarId};
    use std::sync::Arc;

    fn rw_txn(
        arena: &mut TxnArena,
        name: &str,
        kind: TxnKind,
        reads: &[u32],
        writes: &[u32],
    ) -> TxnId {
        let mut b = ProgramBuilder::new(name);
        for r in reads.iter().chain(writes.iter()) {
            b = b.read(VarId::new(*r));
        }
        for w in writes {
            b = b.update(VarId::new(*w), Expr::var(VarId::new(*w)) + Expr::konst(1));
        }
        let p = Arc::new(b.build().unwrap());
        arena.alloc(|id| Transaction::new(id, name, kind, p, vec![]))
    }

    #[test]
    fn workers_respect_mode_and_batch() {
        assert_eq!(Parallelism::Serial.workers(8), 1);
        assert_eq!(Parallelism::Threads(4).workers(8), 4);
        assert_eq!(Parallelism::Threads(4).workers(2), 2);
        assert_eq!(Parallelism::Threads(0).workers(8), 1);
        assert!(Parallelism::Auto.workers(64) >= 1);
        assert_eq!(Parallelism::Auto.workers(1), 1);
    }

    #[test]
    fn parallel_batch_matches_serial_batch() {
        let ex = example1();
        let mut cache = BaseEdgeCache::new();
        cache.sync(&ex.arena, &ex.hb);
        let hb_final =
            AugmentedHistory::execute(&ex.arena, &ex.hb, &ex.s0).unwrap().final_state().clone();
        // Four jobs over the same tentative history: results must agree
        // pairwise and with the serial run.
        let jobs: Vec<BatchJob> =
            (0..4).map(|mobile| BatchJob { mobile, hm: ex.hm.clone() }).collect();
        let make = || Merger::new(MergeConfig::default());
        let serial =
            merge_batch(&ex.arena, &jobs, &ex.hb, &ex.s0, &hb_final, &cache, &make, 1, false);
        let parallel =
            merge_batch(&ex.arena, &jobs, &ex.hb, &ex.s0, &hb_final, &cache, &make, 4, false);
        assert_eq!(serial.len(), 4);
        assert_eq!(parallel.len(), 4);
        for (s, p) in serial.iter().zip(parallel.iter()) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.saved, p.saved);
            assert_eq!(s.backed_out, p.backed_out);
            assert_eq!(s.forwarded, p.forwarded);
            assert_eq!(s.new_master, p.new_master);
            assert_eq!(s.graph_edges, p.graph_edges);
        }
    }

    #[test]
    fn fastpath_batch_matches_slow_batch() {
        // A pending history disjoint from the whole base slice: the
        // fastpath run must produce a byte-identical outcome while
        // reporting `fast_path` on every member; a conflicting history
        // must refuse the fast path.
        let mut arena = TxnArena::new();
        let b0 = rw_txn(&mut arena, "b0", TxnKind::Base, &[0], &[1]);
        let b1 = rw_txn(&mut arena, "b1", TxnKind::Base, &[1], &[2]);
        let hb = SerialHistory::from_order([b0, b1]);
        let disjoint = rw_txn(&mut arena, "m0", TxnKind::Tentative, &[10], &[11]);
        let touching = rw_txn(&mut arena, "m1", TxnKind::Tentative, &[1], &[10]);
        let mut cache = BaseEdgeCache::new();
        cache.sync(&arena, &hb);
        let s0 = DbState::uniform(12, 0);
        let hb_final = AugmentedHistory::execute(&arena, &hb, &s0).unwrap().final_state().clone();
        let jobs = vec![
            BatchJob { mobile: 0, hm: SerialHistory::from_order([disjoint]) },
            BatchJob { mobile: 1, hm: SerialHistory::from_order([touching]) },
        ];
        let make = || Merger::new(MergeConfig::default());
        let slow = merge_batch(&arena, &jobs, &hb, &s0, &hb_final, &cache, &make, 1, false);
        let fast = merge_batch(&arena, &jobs, &hb, &s0, &hb_final, &cache, &make, 1, true);
        for (s, f) in slow.iter().zip(fast.iter()) {
            let (s, f) = (s.as_ref().unwrap(), f.as_ref().unwrap());
            assert_eq!(s.saved, f.saved);
            assert_eq!(s.backed_out, f.backed_out);
            assert_eq!(s.forwarded, f.forwarded);
            assert_eq!(s.new_master, f.new_master);
            assert_eq!(s.graph_edges, f.graph_edges);
            assert!(!s.fast_path);
        }
        // The fast-path member's cheap concatenation witness equals the
        // slow path's topological sort; the slow-path member under the
        // fastpath knob defers its witness instead of sorting.
        assert_eq!(slow[0].as_ref().unwrap().merged_history, fast[0].as_ref().unwrap().merged_history);
        assert!(slow[1].as_ref().unwrap().merged_history.is_some());
        assert!(fast[1].as_ref().unwrap().merged_history.is_none());
        assert!(fast[0].as_ref().unwrap().fast_path, "disjoint member takes the fast path");
        assert!(!fast[1].as_ref().unwrap().fast_path, "conflicting member keeps the slow path");
    }

    #[test]
    fn delta_validation_tracks_rule3_edges() {
        let mut arena = TxnArena::new();
        let m = rw_txn(&mut arena, "m", TxnKind::Tentative, &[0], &[1]);
        let hm = SerialHistory::from_order([m]);
        let (reads, writes) = history_footprint(&arena, &hm);
        // The footprint: reads {0, 1} (writes imply reads here), writes {1}.
        assert!(reads.contains(VarId::new(0)));
        assert!(writes.contains(VarId::new(1)));
        let (read_bits, write_bits) = history_bits(&arena, &hm);
        // The bitset unions agree with the VarSet walk.
        assert_eq!(read_bits, arena.bits_of(&reads));
        assert_eq!(write_bits, arena.bits_of(&writes));

        // Delta writing an item the history read: invalidates.
        let d1 = rw_txn(&mut arena, "d1", TxnKind::Base, &[], &[0]);
        assert!(delta_invalidates(&arena, &[d1], &read_bits, &write_bits));
        // Delta reading an item the history wrote: invalidates.
        let d2 = rw_txn(&mut arena, "d2", TxnKind::Base, &[1], &[]);
        assert!(delta_invalidates(&arena, &[d2], &read_bits, &write_bits));
        // Disjoint delta: valid.
        let d3 = rw_txn(&mut arena, "d3", TxnKind::Base, &[5], &[6]);
        assert!(!delta_invalidates(&arena, &[d3], &read_bits, &write_bits));
        assert!(!delta_invalidates(&arena, &[], &read_bits, &write_bits));
    }
}
