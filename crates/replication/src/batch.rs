//! The parallel, batched base-tier merge pipeline.
//!
//! When several mobiles reconnect in the same tick under Strategy 2, every
//! member of the batch merges against the **same** window-start state and
//! the same (growing) epoch base history. The expensive, pure part of each
//! merge — graph build, cycle back-out, rewrite, prune — has no need to
//! see the other members' installs, so [`merge_batch`] runs those
//! concurrently against a common snapshot. The *install* phase then
//! applies forwarded updates and re-executions strictly in mobile-id
//! order, validating each speculative outcome against the base
//! transactions appended since the snapshot ([`delta_invalidates`]); a
//! member whose outcome the delta invalidates simply re-merges serially.
//! The result is byte-identical to the serial path (see the determinism
//! test and DESIGN.md for the argument).
//!
//! Under the resumable session path (`SyncPath::Session`) the same
//! speculative outcomes feed the per-mobile session state machines: a
//! member's speculation is validated at its session's merge step and
//! retained across mid-merge disconnects like any other computed
//! decision, so the pipeline composes with fault injection unchanged.
//! Mobiles carrying an unresolved prior session are excluded from
//! speculation — their pending set is only known after ledger recovery
//! runs (a recovered session may trim the already-committed prefix of the
//! persisted log).

use histmerge_core::merge::{MergeAssist, MergeOutcome, MergeScratch, Merger};
use histmerge_core::CoreError;
use histmerge_history::{BaseEdgeCache, SerialHistory, TxnArena};
use histmerge_txn::{DbState, TxnId, VarSet};

/// How many worker threads the batched sync path may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Merge batch members one at a time on the calling thread.
    Serial,
    /// One worker per available CPU, capped by the batch size.
    Auto,
    /// Exactly `n` workers, capped by the batch size (`0` and `1` both
    /// mean serial).
    Threads(usize),
}

impl Parallelism {
    /// The worker count for a batch of `batch` merges.
    pub fn workers(&self, batch: usize) -> usize {
        let cap = match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            Parallelism::Threads(n) => (*n).max(1),
        };
        cap.min(batch.max(1))
    }
}

/// One member of a merge batch: a reconnecting mobile's pending history.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// The mobile's id — the deterministic install-order key.
    pub mobile: usize,
    /// Its pending tentative history.
    pub hm: SerialHistory,
}

/// Runs the pure merge phase for every job against the shared snapshot
/// (`hb` from `s0`, with `hb_final` the state after `hb` and `cache` the
/// epoch's base-conflict edges). Returns one result per job, in job order.
///
/// With `workers <= 1` (or a single job) everything runs on the calling
/// thread; otherwise each of `W` scoped workers owns the strided queue of
/// jobs `w, w + W, w + 2W, …` — a static partition with no shared claim
/// counter or per-slot locks; workers return `(index, result)` pairs that
/// are scattered back into job order at join. Each worker builds its
/// [`Merger`] once and reuses it — its oracle and back-out strategy act as
/// the worker's scratch arena — which is why
/// [`histmerge_semantics::SemanticOracle`] and
/// [`histmerge_history::BackoutStrategy`] require `Send + Sync`.
///
/// The per-job computation is identical to
/// [`Merger::merge_assisted`] on one thread; parallelism changes only
/// wall-clock time, never results.
#[allow(clippy::too_many_arguments)]
pub fn merge_batch(
    arena: &TxnArena,
    jobs: &[BatchJob],
    hb: &SerialHistory,
    s0: &DbState,
    hb_final: &DbState,
    cache: &BaseEdgeCache,
    make_merger: &(dyn Fn() -> Merger + Sync),
    workers: usize,
) -> Vec<Result<MergeOutcome, CoreError>> {
    let assist = MergeAssist { base_edges: Some(cache), hb_final: Some(hb_final) };
    if workers <= 1 || jobs.len() <= 1 {
        let merger = make_merger();
        let mut scratch = MergeScratch::new();
        return jobs
            .iter()
            .map(|j| merger.merge_scratch(arena, &j.hm, hb, s0, assist, &mut scratch))
            .collect();
    }
    let n_workers = workers.min(jobs.len());
    let mut out: Vec<Option<Result<MergeOutcome, CoreError>>> = jobs.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|w| {
                scope.spawn(move || {
                    let merger = make_merger();
                    // Per-worker scratch: buffers live as long as the
                    // worker and serve every job on its queue.
                    let mut scratch = MergeScratch::new();
                    jobs.iter()
                        .enumerate()
                        .skip(w)
                        .step_by(n_workers)
                        .map(|(k, job)| {
                            (k, merger.merge_scratch(arena, &job.hm, hb, s0, assist, &mut scratch))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (k, result) in handle.join().expect("merge worker panicked") {
                out[k] = Some(result);
            }
        }
    });
    out.into_iter().map(|slot| slot.expect("every job merged")).collect()
}

/// The read and write footprint of a tentative history, for delta
/// validation.
pub fn history_footprint(arena: &TxnArena, hm: &SerialHistory) -> (VarSet, VarSet) {
    let mut reads = VarSet::new();
    let mut writes = VarSet::new();
    for id in hm.iter() {
        let t = arena.get(id);
        reads.extend_from(t.readset());
        writes.extend_from(t.writeset());
    }
    (reads, writes)
}

/// Would appending `delta` to the base history have changed the merge of a
/// tentative history with footprint (`reads`, `writes`)?
///
/// New precedence-graph edges incident to the tentative history appear
/// exactly when some delta transaction writes an item the history read
/// (rule 3, `T_m → T_b`) or reads an item the history wrote (rule 3,
/// `T_b → T_m`). Absent both, the delta contributes only forward
/// base-internal edges — appended base transactions have no edges back
/// into the snapshot — so back-out, rewrite, prune, and the forwarded
/// values are untouched (write-write overlap does not add cross edges; see
/// [`histmerge_history::PrecedenceGraph::build`]).
pub fn delta_invalidates(
    arena: &TxnArena,
    delta: &[TxnId],
    reads: &VarSet,
    writes: &VarSet,
) -> bool {
    if delta.is_empty() {
        return false;
    }
    // Intern the footprint once, then test each delta transaction against
    // its admission-time bitsets — a few word-wise ANDs per transaction
    // instead of BTreeSet intersections. Every footprint variable comes
    // from an arena transaction, so interning is lossless here.
    let read_bits = arena.bits_of(reads);
    let write_bits = arena.bits_of(writes);
    delta.iter().any(|&d| {
        arena.write_bits(d).intersects(&read_bits) || arena.read_bits(d).intersects(&write_bits)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_core::merge::MergeConfig;
    use histmerge_history::fixtures::example1;
    use histmerge_history::AugmentedHistory;
    use histmerge_txn::{Expr, ProgramBuilder, Transaction, TxnKind, VarId};
    use std::sync::Arc;

    fn rw_txn(
        arena: &mut TxnArena,
        name: &str,
        kind: TxnKind,
        reads: &[u32],
        writes: &[u32],
    ) -> TxnId {
        let mut b = ProgramBuilder::new(name);
        for r in reads.iter().chain(writes.iter()) {
            b = b.read(VarId::new(*r));
        }
        for w in writes {
            b = b.update(VarId::new(*w), Expr::var(VarId::new(*w)) + Expr::konst(1));
        }
        let p = Arc::new(b.build().unwrap());
        arena.alloc(|id| Transaction::new(id, name, kind, p, vec![]))
    }

    #[test]
    fn workers_respect_mode_and_batch() {
        assert_eq!(Parallelism::Serial.workers(8), 1);
        assert_eq!(Parallelism::Threads(4).workers(8), 4);
        assert_eq!(Parallelism::Threads(4).workers(2), 2);
        assert_eq!(Parallelism::Threads(0).workers(8), 1);
        assert!(Parallelism::Auto.workers(64) >= 1);
        assert_eq!(Parallelism::Auto.workers(1), 1);
    }

    #[test]
    fn parallel_batch_matches_serial_batch() {
        let ex = example1();
        let mut cache = BaseEdgeCache::new();
        cache.sync(&ex.arena, &ex.hb);
        let hb_final =
            AugmentedHistory::execute(&ex.arena, &ex.hb, &ex.s0).unwrap().final_state().clone();
        // Four jobs over the same tentative history: results must agree
        // pairwise and with the serial run.
        let jobs: Vec<BatchJob> =
            (0..4).map(|mobile| BatchJob { mobile, hm: ex.hm.clone() }).collect();
        let make = || Merger::new(MergeConfig::default());
        let serial = merge_batch(&ex.arena, &jobs, &ex.hb, &ex.s0, &hb_final, &cache, &make, 1);
        let parallel = merge_batch(&ex.arena, &jobs, &ex.hb, &ex.s0, &hb_final, &cache, &make, 4);
        assert_eq!(serial.len(), 4);
        assert_eq!(parallel.len(), 4);
        for (s, p) in serial.iter().zip(parallel.iter()) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.saved, p.saved);
            assert_eq!(s.backed_out, p.backed_out);
            assert_eq!(s.forwarded, p.forwarded);
            assert_eq!(s.new_master, p.new_master);
            assert_eq!(s.graph_edges, p.graph_edges);
        }
    }

    #[test]
    fn delta_validation_tracks_rule3_edges() {
        let mut arena = TxnArena::new();
        let m = rw_txn(&mut arena, "m", TxnKind::Tentative, &[0], &[1]);
        let hm = SerialHistory::from_order([m]);
        let (reads, writes) = history_footprint(&arena, &hm);
        // The footprint: reads {0, 1} (writes imply reads here), writes {1}.
        assert!(reads.contains(VarId::new(0)));
        assert!(writes.contains(VarId::new(1)));

        // Delta writing an item the history read: invalidates.
        let d1 = rw_txn(&mut arena, "d1", TxnKind::Base, &[], &[0]);
        assert!(delta_invalidates(&arena, &[d1], &reads, &writes));
        // Delta reading an item the history wrote: invalidates.
        let d2 = rw_txn(&mut arena, "d2", TxnKind::Base, &[1], &[]);
        assert!(delta_invalidates(&arena, &[d2], &reads, &writes));
        // Disjoint delta: valid.
        let d3 = rw_txn(&mut arena, "d3", TxnKind::Base, &[5], &[6]);
        assert!(!delta_invalidates(&arena, &[d3], &reads, &writes));
        assert!(!delta_invalidates(&arena, &[], &reads, &writes));
    }
}
