//! Multi-history synchronization strategies (Section 2.2).

use serde::Serialize;

/// How tentative histories pick their original database state when several
/// mobile nodes are active at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SyncStrategy {
    /// **Strategy 1**: each tentative history starts from the master state
    /// snapshotted at its own disconnect time. Merging one mobile's history
    /// retroactively changes the base states other mobiles snapshotted, so
    /// a later merge "may fail to find a subhistory of `H_b` into which
    /// [the tentative history] can be merged" — the simulator detects this
    /// by comparing the stored snapshot against the (retro-patched) base
    /// log and falls back to reprocessing on mismatch.
    PerDisconnectSnapshot,
    /// **Strategy 2** (the paper's choice): every tentative history in a
    /// window starts from the same state — the master state at the window
    /// start. Merges always find their sub-history; the cost is that the
    /// base history to merge against grows over the window, so the origin
    /// is reset every `window` ticks, and a node that fails to reconnect
    /// within its window gets its history reprocessed instead of merged.
    WindowStart {
        /// Window length in ticks.
        window: u64,
    },
    /// Strategy 2 with the paper's "reset periodically because otherwise
    /// the back-out cost of mergers will increase substantially as the base
    /// history grows longer" rule made quantitative: a new window opens as
    /// soon as the base history since the window start reaches `max_hb`
    /// committed transactions, instead of on a fixed clock.
    AdaptiveWindow {
        /// Maximum base-history length a window is allowed to reach.
        max_hb: usize,
    },
}

impl SyncStrategy {
    /// Short name for experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            SyncStrategy::PerDisconnectSnapshot => "strategy1-per-disconnect",
            SyncStrategy::WindowStart { .. } => "strategy2-window",
            SyncStrategy::AdaptiveWindow { .. } => "strategy2-adaptive",
        }
    }
}

/// Which reconnection machinery the simulation drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SyncPath {
    /// The original in-process handshake: one atomic, infallible call per
    /// reconnection. Cannot represent faults.
    Legacy,
    /// The resumable session protocol (offer → merge → install →
    /// re-execute → ack) with idempotent, individually retryable steps.
    /// With [`FaultPlan::none`] it reproduces the legacy path
    /// byte-for-byte; with an active plan it injects and recovers from
    /// transport and crash faults.
    ///
    /// [`FaultPlan::none`]: crate::fault::FaultPlan::none
    Session,
}

impl SyncPath {
    /// Short name for experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            SyncPath::Legacy => "legacy",
            SyncPath::Session => "session",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(SyncStrategy::PerDisconnectSnapshot.name(), "strategy1-per-disconnect");
        assert_eq!(SyncStrategy::WindowStart { window: 100 }.name(), "strategy2-window");
        assert_eq!(SyncStrategy::AdaptiveWindow { max_hb: 50 }.name(), "strategy2-adaptive");
        assert_eq!(SyncPath::Legacy.name(), "legacy");
        assert_eq!(SyncPath::Session.name(), "session");
    }
}
