//! The resumable sync-session protocol.
//!
//! The legacy sync path modeled a reconnection as one atomic, infallible
//! in-process call — a mobile that drops mid-merge was unrepresentable.
//! This module splits the handshake into an explicit five-step session
//!
//! ```text
//! offer → merge → install → re-execute → ack
//! ```
//!
//! with per-session identifiers `(mobile, seq)` so every step is
//! idempotent:
//!
//! * the **offer** registers the session; a duplicate offer for a
//!   registered session is ignored;
//! * the **merge** is pure computation; a mobile that disconnects mid-merge
//!   retries and the base *resumes* from the retained outcome instead of
//!   recomputing;
//! * the **install** commits the forwarded values together with a durable
//!   [`SessionRecord`] (write-ahead); a retransmitted install request finds
//!   the record and is suppressed — the no-double-install guarantee;
//! * **re-execution** progress is tracked in the record, so a base crash
//!   between install and re-execute resumes exactly where it stopped;
//! * the **ack** releases the mobile; a lost ack leaves the mobile's
//!   tentative log intact, and its next reconnection first queries the
//!   ledger: a completed session's prefix is trimmed from the persisted
//!   log and the stale-origin remainder is reprocessed.
//!
//! A session interrupted at any point is retried with a bounded budget
//! ([`SessionConfig::max_retries`]); once exhausted it is abandoned and the
//! mobile restarts from its persisted tentative log at the next
//! reconnection. The driver lives in `sim.rs` (`Simulation::sync_session`);
//! this module owns the protocol vocabulary and the base-side ledger.

use std::collections::BTreeMap;

use serde::Serialize;

use histmerge_core::merge::InstallPlan;
use histmerge_workload::cost::CostReport;

use crate::metrics::SyncRecord;

/// Session-protocol knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SessionConfig {
    /// How many times a session step is retried (bounded backoff) before
    /// the session is abandoned and the mobile falls back to its persisted
    /// tentative log at the next reconnection.
    pub max_retries: u32,
    /// What happens *after* an abandon: with backoff disabled (the
    /// default, byte-identical to the pre-backoff simulator) the mobile
    /// silently waits out its full reconnect cadence; enabled, its next
    /// attempt is rescheduled on a capped exponential delay with seeded
    /// jitter, so a transient fault burst is retried promptly instead of
    /// costing a whole cadence period per strike.
    pub backoff: RetryBackoff,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { max_retries: 3, backoff: RetryBackoff::disabled() }
    }
}

/// Capped exponential backoff for reconnections whose session was
/// abandoned: after `n` consecutive abandons the next attempt runs
/// `min(base_ticks · 2^(n-1), cap_ticks)` ticks later (plus up to 25%
/// seeded jitter to de-synchronize a storm of failing mobiles), never
/// later than the regular cadence would have retried anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RetryBackoff {
    /// Master switch; `false` reproduces the flat cadence wait.
    pub enabled: bool,
    /// Delay after the first abandon, in ticks (>= 1 when enabled).
    pub base_ticks: u64,
    /// Ceiling of the exponential ladder, in ticks.
    pub cap_ticks: u64,
}

impl RetryBackoff {
    /// Backoff off: an abandoned mobile waits out its normal cadence.
    pub fn disabled() -> RetryBackoff {
        RetryBackoff { enabled: false, base_ticks: 2, cap_ticks: 64 }
    }

    /// Backoff on with the default ladder (2, 4, 8, … capped at 64).
    pub fn enabled() -> RetryBackoff {
        RetryBackoff { enabled: true, ..RetryBackoff::disabled() }
    }

    /// The un-jittered delay after `strikes` consecutive abandons
    /// (`strikes >= 1`): `min(base · 2^(strikes-1), cap)`, saturating.
    pub fn delay(&self, strikes: u32) -> u64 {
        let doublings = strikes.saturating_sub(1).min(63);
        self.base_ticks
            .max(1)
            .saturating_mul(1u64.checked_shl(doublings).unwrap_or(u64::MAX))
            .min(self.cap_ticks.max(1))
    }
}

/// The steps of the sync-session state machine, in protocol order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStep {
    /// The mobile offers its pending tentative history (registering the
    /// session at the base).
    Offer,
    /// The base computes the merge (or decides to reprocess).
    Merge,
    /// The base durably installs forwarded updates plus the session
    /// record.
    Install,
    /// The base re-executes backed-out transactions, tracking progress.
    Reexecute,
    /// The base acknowledges completion; the mobile resets its log.
    Ack,
    /// The session completed and was acknowledged.
    Done,
    /// The retry budget ran out; the mobile keeps its tentative log.
    Abandoned,
}

/// A mobile-side note about a session that performed its offer but was
/// never acknowledged — the base may or may not have completed it. The
/// mobile keeps the note (and its tentative log) until the next
/// reconnection resolves the session's fate against the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnackedSession {
    /// The session's sequence number at this mobile.
    pub seq: u64,
    /// How many tentative transactions the session offered — the prefix of
    /// the persisted log to trim if the ledger shows completion.
    pub offered: usize,
}

/// The durable per-session record a base node writes atomically with the
/// install commit (write-ahead). Everything recovery needs: the install
/// plan, re-execution progress, and the completion report to emit once.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// The durable half of the merge outcome (or the reprocess plan:
    /// empty forwarded values, every pending transaction re-executed).
    pub plan: InstallPlan,
    /// Strategy 1 only: the base-log index the retroactive install patched
    /// from (`None` for ordinary window installs).
    pub retro_from: Option<usize>,
    /// The sync record to emit at completion (tick filled in then).
    pub sync: SyncRecord,
    /// The session's cost report, computed at install time.
    pub cost: CostReport,
    /// How many of `plan.reexecute` already committed.
    pub reexec_done: usize,
    /// `true` once re-execution finished and the record was reported.
    pub completed: bool,
}

/// The base-side durable session table: one [`SessionRecord`] per session
/// that reached its install step, keyed by `(mobile, seq)`.
///
/// Write-ahead-logged state: it survives the base crashes that wipe
/// in-flight session scratch (and, with durability enabled, is rebuilt
/// from the WAL by [`crate::recovery`]). Records are small (a
/// forwarded-value map plus transaction ids) and one is written per
/// completed sync; [`SessionLedger::prune_acked`] drops records once
/// their mobile acknowledges, keeping the table bounded by the number of
/// in-flight sessions rather than the run length.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionLedger {
    records: BTreeMap<(usize, u64), SessionRecord>,
}

impl SessionLedger {
    /// An empty ledger.
    pub fn new() -> SessionLedger {
        SessionLedger::default()
    }

    /// The record for `(mobile, seq)`, if that session reached install.
    pub fn get(&self, mobile: usize, seq: u64) -> Option<&SessionRecord> {
        self.records.get(&(mobile, seq))
    }

    /// Mutable access to a session's record (recovery progress updates).
    pub fn get_mut(&mut self, mobile: usize, seq: u64) -> Option<&mut SessionRecord> {
        self.records.get_mut(&(mobile, seq))
    }

    /// `true` if the session already installed — the idempotence guard a
    /// retransmitted install request hits.
    pub fn contains(&self, mobile: usize, seq: u64) -> bool {
        self.records.contains_key(&(mobile, seq))
    }

    /// Writes a session's record. Returns `false` (and leaves the existing
    /// record untouched) if one is already present — a double install,
    /// which the caller must treat as a protocol violation.
    pub fn insert(&mut self, mobile: usize, seq: u64, record: SessionRecord) -> bool {
        use std::collections::btree_map::Entry;
        match self.records.entry((mobile, seq)) {
            Entry::Occupied(_) => false,
            Entry::Vacant(slot) => {
                slot.insert(record);
                true
            }
        }
    }

    /// Drops every record of `mobile` with `seq <= upto_seq` — the prune
    /// step the mobile's acknowledgement licenses (an acked session can
    /// never be queried again: sequence numbers are monotone and the
    /// mobile's next reconnection starts a fresh session). Returns how
    /// many records were pruned.
    pub fn prune_acked(&mut self, mobile: usize, upto_seq: u64) -> usize {
        let before = self.records.len();
        self.records.retain(|&(m, seq), _| m != mobile || seq > upto_seq);
        before - self.records.len()
    }

    /// Iterates live records as `(mobile, seq, record)`, key order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64, &SessionRecord)> {
        self.records.iter().map(|(&(mobile, seq), record)| (mobile, seq, record))
    }

    /// Number of sessions that reached their install step.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Number of live records whose session has installed but not yet
    /// completed re-execution — the in-flight sessions the telemetry
    /// layer samples as the `active_sessions` gauge.
    pub fn open_sessions(&self) -> usize {
        self.records.values().filter(|r| !r.completed).count()
    }

    /// `true` when no session installed yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::DbState;

    fn record(pending: usize) -> SessionRecord {
        SessionRecord {
            plan: InstallPlan {
                forwarded: DbState::uniform(1, 7),
                reexecute: Vec::new(),
                saved: Vec::new(),
            },
            retro_from: None,
            sync: SyncRecord {
                tick: 0,
                mobile: 2,
                pending,
                hb_len: 0,
                saved: 0,
                backed_out: 0,
                reprocessed: pending,
                merge_failed: false,
                sync_ns: 0,
            },
            cost: CostReport::default(),
            reexec_done: 0,
            completed: false,
        }
    }

    #[test]
    fn ledger_dedupes_double_installs() {
        let mut ledger = SessionLedger::new();
        assert!(ledger.is_empty());
        assert!(!ledger.contains(2, 0));
        assert!(ledger.insert(2, 0, record(3)));
        assert!(ledger.contains(2, 0));
        // Second install of the same session must be refused, keeping the
        // original record intact.
        assert!(!ledger.insert(2, 0, record(99)));
        assert_eq!(ledger.get(2, 0).unwrap().sync.pending, 3);
        assert_eq!(ledger.len(), 1);
        // A different seq is a different session.
        assert!(ledger.insert(2, 1, record(4)));
        assert_eq!(ledger.len(), 2);
    }

    #[test]
    fn recovery_progress_is_mutable() {
        let mut ledger = SessionLedger::new();
        ledger.insert(0, 5, record(2));
        let rec = ledger.get_mut(0, 5).unwrap();
        rec.reexec_done = 2;
        rec.completed = true;
        assert!(ledger.get(0, 5).unwrap().completed);
        assert!(ledger.get_mut(1, 5).is_none());
    }

    #[test]
    fn default_config_bounds_retries() {
        assert!(SessionConfig::default().max_retries >= 1);
        // Backoff defaults off — the pre-backoff simulator byte-for-byte.
        assert!(!SessionConfig::default().backoff.enabled);
    }

    #[test]
    fn backoff_ladder_doubles_and_caps() {
        let b = RetryBackoff { enabled: true, base_ticks: 2, cap_ticks: 64 };
        assert_eq!(b.delay(1), 2);
        assert_eq!(b.delay(2), 4);
        assert_eq!(b.delay(3), 8);
        assert_eq!(b.delay(6), 64);
        assert_eq!(b.delay(7), 64, "capped");
        assert_eq!(b.delay(200), 64, "no overflow deep into the ladder");
        // Degenerate parameters stay sane instead of panicking.
        let zero = RetryBackoff { enabled: true, base_ticks: 0, cap_ticks: 0 };
        assert_eq!(zero.delay(1), 1);
        assert_eq!(zero.delay(50), 1);
    }

    #[test]
    fn prune_acked_drops_only_the_acked_prefix_of_one_mobile() {
        let mut ledger = SessionLedger::new();
        for seq in 0..4 {
            ledger.insert(0, seq, record(1));
            ledger.insert(1, seq, record(1));
        }
        assert_eq!(ledger.len(), 8);
        // Ack mobile 0 through seq 2: drops 0..=2 of mobile 0 only.
        assert_eq!(ledger.prune_acked(0, 2), 3);
        assert_eq!(ledger.len(), 5);
        assert!(!ledger.contains(0, 2));
        assert!(ledger.contains(0, 3));
        for seq in 0..4 {
            assert!(ledger.contains(1, seq), "mobile 1 untouched");
        }
        // Pruning again is a no-op.
        assert_eq!(ledger.prune_acked(0, 2), 0);
        // Iteration reflects the pruned view, in key order.
        let keys: Vec<(usize, u64)> = ledger.iter().map(|(m, s, _)| (m, s)).collect();
        assert_eq!(keys, vec![(0, 3), (1, 0), (1, 1), (1, 2), (1, 3)]);
    }
}
