//! The discrete-time two-tier replication simulation.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use histmerge_core::merge::{
    InstallPlan, MergeAssist, MergeConfig, MergeOutcome, MergeScratch, Merger,
};
use histmerge_core::prune::PruneMethod;
use histmerge_core::rewrite::{FixMode, RewriteAlgorithm};
use histmerge_history::{
    closure_weights_for, BaseEdgeCache, DenseBits, EdgeKind, PrecedenceGraph, SerialHistory,
    TwoCycleOptimal, TxnArena,
};
use histmerge_obs::{
    Phase, SessionStepKind, TickSample, TimeSeries, TraceEvent, TracerHandle, NO_PARTNER,
};
use histmerge_semantics::{compact, CompactionConfig, OracleStack, SemanticOracle, StaticAnalyzer};
use histmerge_txn::{DbState, TxnId, TxnKind};
use histmerge_workload::canned_mix::{CannedMix, CannedMixParams};
use histmerge_workload::cost::{
    merging_cost, reprocessing_cost, CostParams, MergeStats, ReprocessStats,
};
use histmerge_workload::generator::{ScenarioParams, TxnFactory};

use crate::batch::{
    delta_invalidates, history_bits, history_footprint, merge_batch, BatchJob, Parallelism,
};
use crate::cluster::BaseCluster;
use crate::connectivity::{AdmissionConfig, ConnectivityModel, InvalidConnectivity, LinkTrace};
use crate::fault::{Delivery, FaultPlan, InvalidFaultRate};
use crate::metrics::{Metrics, SyncRecord};
use crate::mobile::MobileNode;
use crate::recovery;
use crate::sched::{Event, EventKind, EventQueue, SchedulerMode};
use crate::session::{SessionConfig, SessionLedger, SessionRecord};
use crate::sync::{SyncPath, SyncStrategy};
use crate::wal::{DurabilityConfig, Snapshot, VecStorage, Wal, WalRecord};

/// Which synchronization protocol the simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Protocol {
    /// The \[GHOS96\] baseline: re-execute every tentative transaction at
    /// the base.
    Reprocessing,
    /// The paper's merging protocol.
    Merging {
        /// The rewriting algorithm used by each merge.
        #[serde(skip)]
        algorithm: RewriteAlgorithm,
        /// The fix-computation mode.
        #[serde(skip)]
        fix_mode: FixMode,
    },
}

impl Protocol {
    /// The paper's recommended merging configuration.
    pub fn merging_default() -> Protocol {
        Protocol::Merging {
            algorithm: RewriteAlgorithm::CanFollowCanPrecede,
            fix_mode: FixMode::Lemma1,
        }
    }

    /// Short name for experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Reprocessing => "reprocessing",
            Protocol::Merging { .. } => "merging",
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of mobile nodes.
    pub n_mobiles: usize,
    /// Simulation length in ticks.
    pub duration: u64,
    /// Base transactions committed per tick (fractional rates accumulate).
    pub base_rate: f64,
    /// Tentative transactions per mobile per tick while disconnected.
    pub mobile_rate: f64,
    /// Mean ticks between reconnections of each mobile (jittered ±25%).
    pub connect_every: u64,
    /// The synchronization protocol.
    pub protocol: Protocol,
    /// The multi-history strategy (Section 2.2).
    pub strategy: SyncStrategy,
    /// Workload shape (variable space, transaction mix, hotspot skew).
    pub workload: ScenarioParams,
    /// Cost-model constants (Section 7.1).
    pub cost: CostParams,
    /// Base-node work capacity per tick, for backlog tracking.
    pub base_capacity: f64,
    /// Number of base partitions mastering the item space (multi-node base
    /// transactions coordinate via two-phase commit).
    pub base_nodes: usize,
    /// When set, transactions come from the typed canned mix (bank +
    /// promotions) instead of the random generator, and every merge uses
    /// the canned-system oracle (static analyzer + the libraries' declared
    /// tables). `workload` then only contributes its seed-independent
    /// simulation knobs; the item space and initial state come from the
    /// mix.
    pub canned: Option<CannedMixParams>,
    /// Worker threads for batched Strategy-2 merges when several mobiles
    /// reconnect in the same tick. The simulation outcome is identical for
    /// every setting — parallelism only changes wall-clock time.
    pub parallelism: Parallelism,
    /// When `true`, every mobile reconnects on the same fixed cadence
    /// (`connect_every`, no jitter), so reconnections arrive in batches —
    /// the regime the parallel merge pipeline targets.
    pub synchronized_reconnects: bool,
    /// Which reconnection machinery runs: the legacy atomic handshake or
    /// the resumable session protocol. With [`FaultPlan::none`] the two
    /// are byte-identical.
    pub sync_path: SyncPath,
    /// The fault schedule injected into session handshakes (ignored on the
    /// legacy path, which cannot represent faults).
    pub fault: FaultPlan,
    /// Session-protocol knobs (retry budget).
    pub session: SessionConfig,
    /// When `true`, the report carries a [`ConvergenceReport`]: the
    /// recorded commit order is replayed through the serial path and
    /// checked against the final master.
    pub check_convergence: bool,
    /// Durability knobs: when enabled, every durable transition of the
    /// base tier is written to a segmented CRC32-framed write-ahead log
    /// and the report carries a [`DurableReport`] for crash-recovery
    /// checks. Logging is observation-only — a durability-enabled run is
    /// byte-identical to the same run without it.
    pub durability: DurabilityConfig,
    /// Sample the base backlog every this many ticks into
    /// [`Metrics::backlog_series`]. `0` disables sampling.
    pub backlog_sample_every: u64,
    /// The trace sink every layer of the run reports to: merge steps,
    /// session steps, injected faults, WAL appends, recovery replays, and
    /// phase spans. Tracing is observation-only — a traced run's
    /// [`Metrics::normalized`] is byte-identical to the untraced run. The
    /// default is the shared no-op tracer, which skips event construction
    /// entirely.
    pub tracer: TracerHandle,
    /// When `true`, the simulation holds one [`MergeScratch`] and threads
    /// it through every serial merge plan, so repeated window merges reuse
    /// their graph and closure working memory instead of reallocating.
    /// Observation-free: a run with reuse enabled is byte-identical to the
    /// same run without it (the `session_differential` suite pins this).
    pub reuse_merge_scratch: bool,
    /// How each tick finds the mobiles with due work: the legacy O(fleet)
    /// scan, or the event-driven scheduler that pops exactly the due
    /// events from a priority queue. The simulation outcome is
    /// byte-identical for both (the `session_differential` suite pins
    /// this); only the per-tick cost changes — the difference between a
    /// 4-mobile demo and the million-mobile scale harness (E19).
    pub scheduler: SchedulerMode,
    /// When `true`, the base tier's commit log keeps transaction ids but
    /// not per-commit after-states (see
    /// [`crate::base::BaseNode::with_lean`]) — O(1) instead of O(items)
    /// memory per commit. Only the Strategy-1 snapshot path and the
    /// durability layer read historical after-states, so lean logging is
    /// rejected at construction for those configurations and
    /// observation-free everywhere else.
    pub lean_base_log: bool,
    /// The pre-merge semantic compaction pass (off by default): before a
    /// pending history is planned, runs of conflict-clustered tentative
    /// transactions whose cluster is isolated from the concurrent base
    /// history are squashed into composite transactions, shrinking the
    /// merge's input. Planning-time only — the mobile's own history and
    /// every reprocessing path stay uncompacted, and an enabled run
    /// commits the same base state as the plain run (the
    /// `session_differential` suite pins this byte-identity).
    pub compaction: CompactionConfig,
    /// The structured connectivity model shaping each mobile's link
    /// trace: reconnections drawn into a down-link epoch slide to the
    /// next up tick, and the model's trace-conditioned factor scales the
    /// fault rates tick by tick (handoff windows, post-outage surges).
    /// The default [`ConnectivityModel::AlwaysOn`] reproduces the legacy
    /// jittered cadence byte-for-byte (pinned by the eighth
    /// `session_differential` run).
    pub connectivity: ConnectivityModel,
    /// Base-side admission control: the per-tick cap on the reconnect
    /// merge cohort. Excess arrivals are shed into a deterministic FIFO
    /// deferred queue drained ahead of fresh arrivals each tick. The
    /// default is unbounded — byte-identical to the pre-admission
    /// scheduler.
    pub admission: AdmissionConfig,
    /// Fleet telemetry: the optional per-tick time-series collector and
    /// the merge-autopsy switch. Observation-only by the same contract as
    /// the tracer — a telemetry-enabled run commits byte-identical state
    /// and (normalized) metrics to a plain run; the ninth
    /// `session_differential` run pins this.
    pub telemetry: TelemetryConfig,
    /// The cohort install pipeline's mechanism knobs: bounded wave
    /// re-speculation for invalidated cohort remainders and the
    /// mask-disjoint conflict-free merge fast path. Pure mechanism by
    /// the usual contract — committed state, sync records and save
    /// ratios are byte-identical to the legacy
    /// ([`CohortConfig::legacy`]) pipeline (the `cohort_differential`
    /// suite and the tenth `session_differential` run pin this); only
    /// wall-clock and the normalized-away [`crate::CohortStats`]
    /// counters move.
    pub cohort: CohortConfig,
}

/// Cohort install-pipeline knobs ([`SimConfig::cohort`]).
///
/// The default ([`CohortConfig::legacy`]) disables both mechanisms and
/// reproduces the pre-wave pipeline byte-for-byte — including its cost
/// accounting — which is what the differential suites compare against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CohortConfig {
    /// How many wave re-speculation rounds one reconnect cohort may run.
    /// When a member's speculative merge is found stale at its install
    /// turn (earlier members appended conflicting base commits), a wave
    /// re-runs the concurrent merge phase for every still-pending stale
    /// member against a refreshed snapshot instead of letting each fall
    /// back to a serial live merge. `0` disables waves.
    pub max_waves: u32,
    /// Enables the mask-disjoint merge fast path: when a pending
    /// history's read∪write footprint is disjoint from the entire
    /// concurrent base slice (checked word-wise against the epoch edge
    /// cache's running footprint union), the merge skips precedence-graph
    /// construction and cycle breaking wholesale — no conflict means no
    /// rule-3 edge, no cycle, and nothing to back out. The same knob
    /// defers the slow path's Theorem-1 witness history
    /// (`MergeOutcome::merged_history`): the install pipeline never reads
    /// it, and its per-merge topological sort over the whole epoch
    /// history is the dominant super-linear term of the cohort install
    /// cost.
    pub fastpath: bool,
}

impl CohortConfig {
    /// The pre-wave pipeline: no waves, no fast path (the default).
    pub fn legacy() -> CohortConfig {
        CohortConfig::default()
    }

    /// The tuned pipeline: bounded waves plus the merge fast path.
    pub fn tuned() -> CohortConfig {
        CohortConfig { max_waves: 3, fastpath: true }
    }
}

/// Fleet-telemetry switches ([`SimConfig::telemetry`]).
///
/// Both pieces are off by default and strictly observation-only: they
/// read simulation state after the fact and never touch RNG streams,
/// metrics counters, or control flow.
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    /// When set, the simulation records one [`TickSample`] of fleet
    /// gauges per collector stride into this shared series (backlog,
    /// defer queue and wait quantiles, open/abandoned sessions,
    /// cumulative saved/redone for the windowed save ratio, WAL bytes,
    /// merge-cohort size, merge-plan span bounds).
    pub series: Option<Arc<TimeSeries>>,
    /// When `true` (and the tracer is enabled), every sync plan emits a
    /// structured autopsy: a [`TraceEvent::BackoutEdge`] /
    /// [`TraceEvent::ReprocessCause`] line per transaction that was not
    /// saved, closed by a [`TraceEvent::MergeSummary`]. The flight
    /// recorder reassembles these into [`histmerge_obs::MergeAutopsy`]
    /// values.
    pub autopsy: bool,
}

impl TelemetryConfig {
    /// Telemetry fully enabled: a fresh bounded series plus autopsies.
    pub fn full(stride: u64, capacity: usize) -> TelemetryConfig {
        TelemetryConfig { series: Some(Arc::new(TimeSeries::new(stride, capacity))), autopsy: true }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_mobiles: 4,
            duration: 400,
            base_rate: 0.5,
            mobile_rate: 0.2,
            connect_every: 50,
            protocol: Protocol::merging_default(),
            strategy: SyncStrategy::WindowStart { window: 100 },
            workload: ScenarioParams::default(),
            cost: CostParams::default(),
            base_capacity: 200.0,
            base_nodes: 1,
            canned: None,
            parallelism: Parallelism::Auto,
            synchronized_reconnects: false,
            sync_path: SyncPath::Legacy,
            fault: FaultPlan::none(),
            session: SessionConfig::default(),
            check_convergence: false,
            durability: DurabilityConfig::default(),
            backlog_sample_every: 10,
            tracer: TracerHandle::noop(),
            reuse_merge_scratch: false,
            scheduler: SchedulerMode::default(),
            lean_base_log: false,
            compaction: CompactionConfig::default(),
            connectivity: ConnectivityModel::AlwaysOn,
            admission: AdmissionConfig::unbounded(),
            telemetry: TelemetryConfig::default(),
            cohort: CohortConfig::default(),
        }
    }
}

/// A [`SimConfig`] rejected by [`Simulation::new`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimConfigError {
    /// A fault rate is not a probability — see
    /// [`crate::fault::FaultRates::validate`].
    InvalidFaultRate(InvalidFaultRate),
    /// A connectivity-model parameter is out of range — see
    /// [`ConnectivityModel::validate`].
    InvalidConnectivity(InvalidConnectivity),
    /// [`SimConfig::lean_base_log`] with durability enabled: WAL
    /// checkpoints snapshot the commit log's after-states, which a lean
    /// log does not keep.
    LeanLogNeedsNoDurability,
    /// [`SimConfig::lean_base_log`] under
    /// [`SyncStrategy::PerDisconnectSnapshot`]: Strategy-1 validity checks
    /// and retroactive patches replay historical after-states, which a
    /// lean log does not keep.
    LeanLogNeedsWindowStrategy,
}

impl std::fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimConfigError::InvalidFaultRate(e) => e.fmt(f),
            SimConfigError::InvalidConnectivity(e) => e.fmt(f),
            SimConfigError::LeanLogNeedsNoDurability => {
                write!(f, "lean_base_log keeps no after-states — incompatible with durability")
            }
            SimConfigError::LeanLogNeedsWindowStrategy => write!(
                f,
                "lean_base_log keeps no after-states — incompatible with PerDisconnectSnapshot"
            ),
        }
    }
}

impl std::error::Error for SimConfigError {}

impl From<InvalidFaultRate> for SimConfigError {
    fn from(e: InvalidFaultRate) -> Self {
        SimConfigError::InvalidFaultRate(e)
    }
}

impl From<InvalidConnectivity> for SimConfigError {
    fn from(e: InvalidConnectivity) -> Self {
        SimConfigError::InvalidConnectivity(e)
    }
}

/// The report a finished simulation returns.
#[derive(Debug)]
pub struct SimReport {
    /// Aggregated metrics.
    pub metrics: Metrics,
    /// The final master state.
    pub final_master: DbState,
    /// Base transactions committed in total (own load + installs +
    /// re-executions).
    pub base_commits: usize,
    /// Distribution statistics of the partitioned base tier.
    pub cluster: crate::cluster::ClusterStats,
    /// The convergence-oracle verdict, when
    /// [`SimConfig::check_convergence`] was set.
    pub convergence: Option<ConvergenceReport>,
    /// Session-ledger records still live at the end of the run (the
    /// boundedness satellite: acked sessions are pruned, so this tracks
    /// in-flight sessions, not run length).
    pub ledger_len: usize,
    /// The run's durable artifacts, when [`SimConfig::durability`] was
    /// enabled — everything a crash-recovery harness needs.
    pub durable: Option<DurableReport>,
}

/// The durable artifacts of a durability-enabled run: the WAL's storage
/// (with its full mutation journal, so a crash-point harness can rewind
/// to any moment) plus the live final state recovery must reproduce.
#[derive(Debug)]
pub struct DurableReport {
    /// The WAL's backing storage, journal included.
    pub storage: VecStorage,
    /// The live committed log at the end of the run.
    pub log: Vec<(TxnId, DbState)>,
    /// The live window counter at the end of the run.
    pub epoch: u64,
    /// The live window-start index at the end of the run.
    pub epoch_start: usize,
    /// The live window-start state at the end of the run.
    pub epoch_state: DbState,
    /// The live session ledger at the end of the run.
    pub ledger: SessionLedger,
    /// The transaction arena (shared immutable knowledge: recovery needs
    /// writesets to replay retroactive patches, and oracles need programs
    /// to replay the recovered history).
    pub arena: TxnArena,
    /// The initial master state (the oracle's replay origin).
    pub initial: DbState,
}

/// The convergence oracle's verdict: after any fault schedule, the final
/// master state must be byte-identical to a fault-free serial run over the
/// surviving (committed) transactions — checked by replaying the recorded
/// commit order through the serial execution path from the initial state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// `false` when Strategy-1 retroactive installs occurred: retro-patches
    /// edit recorded after-states in place instead of appending commits, so
    /// the commit log is not a replayable serial history.
    pub applicable: bool,
    /// Replaying the commit order reproduced the final master
    /// (only meaningful when `applicable`).
    pub converged: bool,
    /// Committed transactions replayed.
    pub commits: usize,
    /// Tentative transactions resolved more than once (must be 0 — any
    /// double install/re-execution is an idempotence bug).
    pub double_resolutions: usize,
}

impl ConvergenceReport {
    /// `true` when the oracle holds: no double resolutions, and (where the
    /// replay check applies) the replayed history reproduces the master.
    pub fn holds(&self) -> bool {
        self.double_resolutions == 0 && (!self.applicable || self.converged)
    }
}

/// Where the simulation's transactions come from.
enum TxnSource {
    /// The seeded random generator.
    Random(Box<TxnFactory>),
    /// The typed canned mix (bank + promotions).
    Canned(Box<CannedMix>),
}

impl TxnSource {
    fn next_txn(&mut self, arena: &mut TxnArena, kind: TxnKind) -> TxnId {
        match self {
            TxnSource::Random(f) => f.next_txn(arena, kind),
            TxnSource::Canned(m) => m.next_txn(arena, kind),
        }
    }
}

/// Builds a merger for the configured workload: the canned system gets the
/// static analyzer plus the libraries' declared tables, the random
/// workload the static analyzer alone. A free function (not a method) so
/// batch workers can each build their own from a shared `&TxnSource`.
fn build_merger(source: &TxnSource, algorithm: RewriteAlgorithm, fix_mode: FixMode) -> Merger {
    let oracle: Box<dyn SemanticOracle> = match source {
        TxnSource::Canned(mix) => Box::new(mix.oracle()),
        TxnSource::Random(_) => Box::new(OracleStack::new().with(Box::new(StaticAnalyzer::new()))),
    };
    Merger::new(MergeConfig {
        backout: Box::new(TwoCycleOptimal::new()),
        algorithm,
        fix_mode,
        prune: PruneMethod::Undo,
        oracle,
    })
}

/// The next reconnection tick: `tick + every`, shifted by
/// `draw − jitter ∈ [−jitter, +jitter]`, clamped to land strictly after
/// `tick`. Saturating arithmetic throughout — the old inline expression
/// mixed unsigned addition and subtraction in an order that could
/// underflow for jitters exceeding `tick + every`.
fn jittered_next_connect(tick: u64, every: u64, jitter: u64, draw: u64) -> u64 {
    tick.saturating_add(every).saturating_add(draw).saturating_sub(jitter).max(tick + 1)
}

/// A batch member's merge, computed concurrently against the pre-batch
/// snapshot and awaiting delta validation at install time.
struct Speculative {
    /// The pending history the merge consumed.
    hm: SerialHistory,
    /// Epoch-history length at the snapshot.
    hb_len: usize,
    /// Full base-log length at the snapshot (where the delta begins).
    log_len: usize,
    /// The speculative merge outcome.
    outcome: MergeOutcome,
    /// Word-wise union of the items the pending history read (validation
    /// footprint: one `intersects` per delta transaction, no per-item
    /// set probes).
    read_bits: DenseBits,
    /// Word-wise union of the items the pending history wrote.
    write_bits: DenseBits,
    /// Whether this outcome came from a wave re-speculation round rather
    /// than the cohort's initial merge phase. A rewaved adoption counts
    /// as a speculative *retry*: in the legacy pipeline the same member
    /// would have fallen back to a serial live merge (staleness only
    /// grows), so this keeps the hit/retry counters byte-identical.
    rewaved: bool,
    /// Set when a wave re-merge for this member errored: the stale
    /// outcome is kept (it still validates exactly like the legacy one)
    /// but barred from further waves, so the member falls to the serial
    /// path at its turn with legacy error handling and exactly one
    /// retry increment.
    wave_skip: bool,
}

/// A running footprint union of the base commits appended since a
/// speculation snapshot, keyed by the full-log index the snapshot was
/// taken at. Folding each installed member's commits in once makes a
/// staleness check O(words) instead of O(delta × words) — the piece
/// that made validating a c-member cohort quadratic in c.
struct DeltaAnchor {
    /// Full-log index the union starts at (the speculation snapshot).
    from: usize,
    /// Full-log index the union covers up to (exclusive).
    upto: usize,
    /// Union of the covered commits' write sets.
    writes: DenseBits,
    /// Union of the covered commits' read sets.
    reads: DenseBits,
}

/// What a reconnection decided to do, computed by [`Simulation::plan_sync`]
/// and applied by either path. Separating the decision from its
/// application is what lets the session protocol retain a computed merge
/// across a mid-merge disconnect and resume it without recomputation.
enum SyncDecision {
    /// Nothing pending: just refresh the mobile's origin.
    Refresh,
    /// Merge the pending history (protocol steps 1–6).
    Merge {
        /// The pending tentative history the merge consumed.
        hm: SerialHistory,
        /// Base-history length the merge ran against.
        hb_len: usize,
        /// The merge outcome to install (boxed: it dwarfs the other
        /// variants, and decisions are cached across session retries).
        outcome: Box<MergeOutcome>,
        /// Strategy 1: install retroactively at the snapshot point.
        retroactive: bool,
    },
    /// Re-execute everything the \[GHOS96\] way.
    Reprocess {
        /// Why the planner fell back to wholesale reprocessing.
        cause: ReprocessReason,
    },
}

/// Why a sync plan fell back to \[GHOS96\] reprocessing — carried on
/// [`SyncDecision::Reprocess`] so both the metrics (`merge_failed`) and
/// the merge autopsy name the concrete cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReprocessReason {
    /// The mobile's origin state is stale relative to the epoch it must
    /// merge into (Strategy 2 window semantics).
    DirtyOrigin,
    /// The configured protocol is the reprocessing baseline.
    ProtocolBaseline,
    /// The mobile disconnected across a window rollover (Strategy 2
    /// window miss).
    WindowMiss,
    /// A merge was planned but failed (Strategy 1 snapshot invalidated,
    /// or the merge itself was rejected).
    MergeFailed,
    /// A session resumption found no ledger record and degraded to
    /// legacy reprocessing.
    LedgerGap,
}

impl ReprocessReason {
    /// The autopsy cause label.
    fn name(self) -> &'static str {
        match self {
            ReprocessReason::DirtyOrigin => "dirty-origin",
            ReprocessReason::ProtocolBaseline => "protocol-reprocessing",
            ReprocessReason::WindowMiss => "window-miss",
            ReprocessReason::MergeFailed => "merge-failed",
            ReprocessReason::LedgerGap => "ledger-gap",
        }
    }

    /// `true` only when a planned merge failed first — the bit
    /// [`crate::metrics::SyncRecord`] has always recorded.
    fn merge_failed(self) -> bool {
        matches!(self, ReprocessReason::MergeFailed)
    }
}

/// A session resumption found no ledger record for `(mobile, seq)` — the
/// structured form of what used to be a panic. The caller degrades the
/// session to legacy reprocessing and counts the gap in
/// [`crate::metrics::FaultStats::ledger_gaps`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LedgerGap {
    /// The mobile whose session record is missing.
    mobile: usize,
    /// The missing session's sequence number.
    #[allow(dead_code)] // diagnostic payload, read via Debug
    seq: u64,
}

/// The simulation state. Construct with [`Simulation::new`] and consume
/// with [`Simulation::run`].
pub struct Simulation {
    config: SimConfig,
    arena: TxnArena,
    base: BaseCluster,
    mobiles: Vec<MobileNode>,
    /// Epoch id of the base's current window, and per-mobile epoch ids.
    epoch: u64,
    mobile_epochs: Vec<u64>,
    source: TxnSource,
    rng: StdRng,
    metrics: Metrics,
    backlog: f64,
    base_accum: f64,
    mobile_accum: Vec<f64>,
    /// Incrementally maintained rule-2 edges of `epoch`'s base history.
    base_edge_cache: BaseEdgeCache,
    /// The epoch `base_edge_cache` belongs to (cleared on rollover).
    cache_epoch: u64,
    /// The fault event stream (session path; untouched when the plan is
    /// inactive, keeping fault-free runs byte-identical).
    fault_rng: StdRng,
    /// The base's durable session table (session path).
    ledger: SessionLedger,
    /// Tentative transactions already installed or re-executed — the
    /// double-resolution guard behind the convergence oracle.
    resolved: BTreeSet<TxnId>,
    /// The initial master state, kept for the oracle's replay.
    initial: DbState,
    /// The write-ahead log, when [`SimConfig::durability`] is enabled.
    wal: Option<Wal<VecStorage>>,
    /// How many entries of the base log are already WAL-logged as
    /// [`WalRecord::Commit`] records.
    logged_commits: usize,
    /// The tick the current window opened at, for virtual-clock window
    /// spans ([`TraceEvent::TickSpan`]).
    last_window_tick: u64,
    /// Reusable merge working memory, threaded through serial merge plans
    /// when [`SimConfig::reuse_merge_scratch`] is set.
    merge_scratch: MergeScratch,
    /// The event queue driving [`SchedulerMode::EventQueue`] ticks. Empty
    /// (and untouched) under [`SchedulerMode::TickScan`].
    events: EventQueue,
    /// Fleet-shared generation accumulator (event mode). Every mobile's
    /// legacy accumulator starts at 0.0, adds the same `mobile_rate`, and
    /// never resets — the trajectories are identical, so ONE accumulator
    /// (with the exact same per-tick arithmetic) replays all of them.
    gen_acc: f64,
    /// Tentative transactions each mobile generates at the next scheduled
    /// [`EventKind::Generate`] event.
    gen_count: u64,
    /// The current window-start state, shared with every Strategy-2 mobile
    /// resynchronized in this window (refreshed at each window rollover).
    epoch_state_arc: Arc<DbState>,
    /// Composite transactions minted by the pre-merge compaction pass,
    /// mapped to their constituent ids. Metrics and resolution tracking
    /// expand through this registry so every externally visible count
    /// stays in original-transaction units.
    composites: BTreeMap<TxnId, Vec<TxnId>>,
    /// Reconnects shed by admission control, as `(mobile, arrival_tick)`
    /// in arrival order. Drained FIFO ahead of fresh arrivals each tick,
    /// so every deferred mobile is admitted within
    /// `⌈queue / max_batch⌉` ticks. Always empty with admission control
    /// disabled.
    deferred: VecDeque<(usize, u64)>,
    /// Consecutive abandoned sessions per mobile — the rung each mobile
    /// occupies on the retry-backoff ladder. Reset by a successful ack.
    backoff_level: Vec<u32>,
    /// The backoff-jitter stream. Only drawn from when a backoff
    /// reschedule actually fires, so runs without abandons (and all runs
    /// with backoff disabled) are byte-identical to the pre-backoff
    /// simulator.
    backoff_rng: StdRng,
    /// Merge-plan span nanoseconds of the most recent [`Self::plan_sync`]
    /// call (0 when no plan was computed). Telemetry-only: read by the
    /// merge autopsy, never by the simulation.
    last_plan_ns: u64,
    /// Mobiles admitted to the merge cohort this tick. Telemetry-only:
    /// sampled as the `cohort` gauge, reset each tick.
    tick_cohort: u64,
    /// Per-snapshot delta footprint unions for the current cohort's
    /// speculative outcomes (one per speculation round: the initial
    /// merge phase plus each wave). Cleared at every batch start —
    /// specs never outlive their batch.
    delta_anchors: Vec<DeltaAnchor>,
}

impl Simulation {
    /// Creates a simulation in its initial state.
    ///
    /// # Errors
    ///
    /// Returns [`SimConfigError`] when [`SimConfig::fault`] carries a rate
    /// that is not a probability (NaN, negative, or above 1.0 — see
    /// [`crate::fault::FaultRates::validate`]), or when
    /// [`SimConfig::lean_base_log`] is combined with a configuration that
    /// reads historical after-states (durability, Strategy 1). These used
    /// to be panics; callers that cannot recover should
    /// `.expect("valid sim config")`.
    pub fn new(config: SimConfig) -> Result<Self, SimConfigError> {
        config.fault.rates.validate()?;
        config.connectivity.validate()?;
        if config.lean_base_log {
            if config.durability.enabled {
                return Err(SimConfigError::LeanLogNeedsNoDurability);
            }
            if matches!(config.strategy, SyncStrategy::PerDisconnectSnapshot) {
                return Err(SimConfigError::LeanLogNeedsWindowStrategy);
            }
        }
        let source = match &config.canned {
            Some(params) => TxnSource::Canned(Box::new(CannedMix::new(params.clone()))),
            None => TxnSource::Random(Box::new(TxnFactory::new(config.workload.clone()))),
        };
        let initial = match &source {
            TxnSource::Canned(mix) => mix.initial_state(),
            TxnSource::Random(_) => histmerge_workload::generator::initial_state(&config.workload),
        };
        let base = BaseCluster::with_lean(initial.clone(), config.base_nodes, config.lean_base_log);
        let mut rng = StdRng::seed_from_u64(config.workload.seed ^ 0x5151_5151);
        let initial_arc = Arc::new(initial.clone());
        let mobiles: Vec<MobileNode> = (0..config.n_mobiles)
            .map(|i| {
                let first = if config.synchronized_reconnects {
                    config.connect_every.max(1)
                } else {
                    1 + rng.gen_range(0..config.connect_every.max(1))
                };
                // A first connect drawn into a down-link epoch slides to
                // the next up tick (identity under AlwaysOn).
                let first = config.connectivity.next_up(i, first).max(1);
                MobileNode::new(i, initial_arc.clone(), 0, first)
            })
            .collect();
        let n = config.n_mobiles;
        let wal = config.durability.enabled.then(|| {
            Wal::new(VecStorage::new(), &Snapshot::genesis(initial.clone()))
                .with_tracer(config.tracer.clone())
        });
        let mut sim = Simulation {
            arena: TxnArena::new(),
            base,
            mobile_epochs: vec![0; n],
            epoch: 0,
            source,
            rng,
            metrics: Metrics::default(),
            backlog: 0.0,
            base_accum: 0.0,
            mobile_accum: vec![0.0; n],
            base_edge_cache: BaseEdgeCache::new(),
            cache_epoch: 0,
            fault_rng: config.fault.rng(),
            ledger: SessionLedger::new(),
            resolved: BTreeSet::new(),
            initial,
            wal,
            logged_commits: 0,
            last_window_tick: 0,
            merge_scratch: MergeScratch::new(),
            events: EventQueue::new(),
            gen_acc: 0.0,
            gen_count: 0,
            epoch_state_arc: initial_arc,
            composites: BTreeMap::new(),
            deferred: VecDeque::new(),
            backoff_level: vec![0; n],
            backoff_rng: StdRng::seed_from_u64(config.workload.seed ^ 0xBAC0_0FF5_BAC0_0FF5),
            last_plan_ns: 0,
            tick_cohort: 0,
            delta_anchors: Vec::new(),
            mobiles,
            config,
        };
        if sim.config.scheduler == SchedulerMode::EventQueue {
            for i in 0..sim.mobiles.len() {
                sim.events.push(Event {
                    time: sim.mobiles[i].next_connect(),
                    kind: EventKind::Connect,
                    mobile: i,
                });
            }
            sim.schedule_next_generate(0);
        }
        Ok(sim)
    }

    /// Runs the simulation to completion.
    pub fn run(mut self) -> SimReport {
        for tick in 0..self.config.duration {
            self.step(tick);
        }
        let convergence =
            if self.config.check_convergence { Some(self.convergence_report()) } else { None };
        if let Some(report) = &convergence {
            if !report.holds() {
                // The oracle failed: ship the flight recorder's last events
                // before anyone asserts on the report.
                if let Some(path) = self.config.tracer.dump_to_dir("convergence-failure") {
                    eprintln!("convergence oracle failed; flight recorder at {}", path.display());
                }
            }
        }
        if let Some(wal) = &self.wal {
            self.metrics.wal.records = wal.records();
            self.metrics.wal.bytes = wal.bytes_written();
            self.metrics.wal.checkpoints = wal.checkpoints();
            self.metrics.wal.segments_retired = wal.segments_retired();
        }
        self.metrics.sched.events_pushed = self.events.pushed();
        self.metrics.sched.events_popped = self.events.popped();
        let durable = self.wal.take().map(|wal| DurableReport {
            storage: wal.into_storage(),
            log: self.base.base().log().to_vec(),
            epoch: self.epoch,
            epoch_start: self.base.base().epoch_start(),
            epoch_state: self.base.base().epoch_state().clone(),
            ledger: self.ledger.clone(),
            arena: self.arena.clone(),
            initial: self.initial.clone(),
        });
        SimReport {
            base_commits: self.base.base().committed(),
            final_master: self.base.base().master().clone(),
            cluster: self.base.stats().clone(),
            ledger_len: self.ledger.len(),
            metrics: self.metrics,
            convergence,
            durable,
        }
    }

    /// Replays the recorded commit order through the serial path from the
    /// initial state and compares against the master — the convergence
    /// oracle. Inapplicable when retroactive installs edited recorded
    /// after-states in place (Strategy-1 merges).
    fn convergence_report(&self) -> ConvergenceReport {
        let applicable = self.metrics.retro_patches == 0;
        let full = self.base.base().full_history();
        let commits = full.len();
        let converged = applicable
            && match histmerge_history::run_to_final(&self.arena, &full, &self.initial) {
                Ok(state) => &state == self.base.base().master(),
                Err(_) => false,
            };
        ConvergenceReport {
            applicable,
            converged,
            commits,
            double_resolutions: self.metrics.fault.double_resolutions,
        }
    }

    // ------------------------------------------------------------------
    // Write-ahead logging (SimConfig::durability). All hooks are no-ops
    // when durability is disabled, keeping the paths byte-identical.
    // ------------------------------------------------------------------

    /// Appends one record to the WAL, if one is open.
    fn wal_append(&mut self, record: &WalRecord) {
        if let Some(wal) = self.wal.as_mut() {
            wal.append(record);
        }
    }

    /// Logs every base-log entry committed since the last call as a
    /// [`WalRecord::Commit`]. Called after each batch of commits (own
    /// load, installs, re-executions), so the WAL's commit order is the
    /// base log's commit order.
    fn wal_sync_commits(&mut self) {
        let Some(wal) = self.wal.as_mut() else {
            return;
        };
        let log = self.base.base().log();
        for (txn, after) in &log[self.logged_commits..] {
            wal.append(&WalRecord::Commit { txn: *txn, after: after.clone() });
        }
        self.logged_commits = log.len();
    }

    /// A full snapshot of the durable state, for checkpoint records.
    fn wal_snapshot(&self) -> Snapshot {
        let base = self.base.base();
        Snapshot {
            log: base.log().to_vec(),
            master: base.master().clone(),
            epoch_start: base.epoch_start() as u64,
            epoch_state: base.epoch_state().clone(),
            epoch: self.epoch,
            ledger: self.ledger.iter().map(|(m, s, r)| (m as u64, s, r.clone())).collect(),
        }
    }

    /// Checkpoints (snapshot + segment compaction) when enough records
    /// accumulated since the last one. Evaluated once per tick.
    fn wal_maybe_checkpoint(&mut self) {
        let every = self.config.durability.checkpoint_every;
        let due = match &self.wal {
            Some(wal) => every > 0 && wal.since_checkpoint() >= every,
            None => false,
        };
        if due {
            let snapshot = self.wal_snapshot();
            if let Some(wal) = self.wal.as_mut() {
                wal.checkpoint(snapshot);
            }
        }
    }

    /// The in-run recovery oracle: at a simulated base crash, rebuild the
    /// durable state from the WAL and check it matches the live state the
    /// crash is about to resume from. Makes the WAL load-bearing inside
    /// faulted runs, not just in post-hoc torture tests.
    ///
    /// # Panics
    ///
    /// Panics when recovery disagrees with the live state — a durability
    /// bug, never a legitimate simulation outcome.
    fn shadow_recovery_check(&mut self) {
        let Some(wal) = &self.wal else {
            return;
        };
        let recovered = recovery::recover_traced(&self.arena, wal.storage(), &self.config.tracer)
            .expect("open WAL has a checkpoint");
        let base = self.base.base();
        let diverged = recovered.torn
            || recovered.base.log() != base.log()
            || recovered.base.master() != base.master()
            || recovered.base.epoch_start() != base.epoch_start()
            || recovered.base.epoch_state() != base.epoch_state()
            || recovered.epoch != self.epoch
            || recovered.ledger != self.ledger;
        if diverged {
            // Dump the flight recorder before the asserts below abort the
            // run: the last events are the forensic record of how the
            // durable and live states drifted apart.
            if let Some(path) = self.config.tracer.dump_to_dir("shadow-recovery-divergence") {
                eprintln!("shadow recovery diverged; flight recorder at {}", path.display());
            }
        }
        assert!(!recovered.torn, "live WAL has no torn tail");
        assert_eq!(recovered.base.log(), base.log(), "recovered log != live log");
        assert_eq!(recovered.base.master(), base.master(), "recovered master != live master");
        assert_eq!(recovered.base.epoch_start(), base.epoch_start());
        assert_eq!(recovered.base.epoch_state(), base.epoch_state());
        assert_eq!(recovered.epoch, self.epoch, "recovered epoch != live epoch");
        assert_eq!(recovered.ledger, self.ledger, "recovered ledger != live ledger");
        self.metrics.wal.shadow_recoveries += 1;
    }

    /// Prunes mobile `i`'s ledger records through `seq` after its ack,
    /// logging the prune when it dropped anything.
    fn prune_after_ack(&mut self, i: usize, seq: u64) {
        let pruned = self.ledger.prune_acked(i, seq);
        if pruned > 0 {
            self.metrics.wal.pruned_records += pruned as u64;
            self.wal_append(&WalRecord::SessionPrune { mobile: i as u64, upto_seq: seq });
        }
    }

    fn step(&mut self, tick: u64) {
        let mut tick_base_work = 0.0;
        self.tick_cohort = 0;

        // Window boundary (Strategy 2, fixed or adaptive).
        let rolled = match self.config.strategy {
            SyncStrategy::WindowStart { window } => tick > 0 && tick.is_multiple_of(window.max(1)),
            SyncStrategy::AdaptiveWindow { max_hb } => {
                self.base.base().epoch_len() >= max_hb.max(1)
            }
            SyncStrategy::PerDisconnectSnapshot => false,
        };
        if rolled {
            self.base.base_mut().start_window();
            self.epoch_state_arc = Arc::new(self.base.base().epoch_state().clone());
            self.epoch += 1;
            self.wal_append(&WalRecord::WindowStart);
            let last = self.last_window_tick;
            self.config
                .tracer
                .emit(|| TraceEvent::TickSpan { phase: Phase::Window, ticks: tick - last });
            self.last_window_tick = tick;
        }

        // Base tier's own load.
        self.base_accum += self.config.base_rate;
        while self.base_accum >= 1.0 {
            self.base_accum -= 1.0;
            let id = self.source.next_txn(&mut self.arena, TxnKind::Base);
            self.base.commit(&self.arena, id);
            self.metrics.base_generated += 1;
            let stmts = self.arena.get(id).program().statement_count() as f64;
            tick_base_work +=
                stmts * self.config.cost.base_query_per_stmt + self.config.cost.base_io_force;
        }
        self.wal_sync_commits();

        // Mobile tier: generation then the tick's reconnect batch, found
        // either by scanning the fleet or by popping the tick's scheduled
        // events — same work, same order, different cost.
        tick_base_work += match self.config.scheduler {
            SchedulerMode::TickScan => self.step_fleet_scan(tick),
            SchedulerMode::EventQueue => self.step_events(tick),
        };

        // Backlog accounting.
        self.backlog = (self.backlog + tick_base_work - self.config.base_capacity).max(0.0);
        if self.backlog > self.metrics.peak_backlog {
            self.metrics.peak_backlog = self.backlog;
        }
        let every = self.config.backlog_sample_every;
        if every > 0 && tick.is_multiple_of(every) {
            self.metrics.backlog_series.push((tick, self.backlog));
        }

        // Fleet telemetry: one bounded time-series sample per collector
        // stride. Observation-only — reads state, touches nothing.
        self.sample_telemetry(tick);

        // Durability: checkpoint at tick boundaries once enough records
        // accumulated.
        self.wal_maybe_checkpoint();
    }

    /// Records one [`TickSample`] of fleet gauges into the configured
    /// time series, if any. The closure only runs on collector-stride
    /// ticks, so off-stride ticks cost one branch.
    fn sample_telemetry(&mut self, tick: u64) {
        let Some(series) = self.config.telemetry.series.clone() else {
            return;
        };
        series.record(tick, || {
            let (defer_wait_p50, defer_wait_p99) = self.metrics.defer_wait_quantiles();
            let (merge_plan_p50, merge_plan_p99) =
                self.config.tracer.phase_quantiles(Phase::MergePlan).unwrap_or((0, 0));
            TickSample {
                tick,
                backlog: self.backlog,
                deferred: self.deferred.len() as u64,
                active_sessions: self.ledger.open_sessions() as u64,
                abandoned_sessions: self.metrics.fault.abandoned_sessions as u64,
                saved: self.metrics.saved as u64,
                redone: (self.metrics.backed_out + self.metrics.reprocessed) as u64,
                wal_bytes: self.wal.as_ref().map_or(0, Wal::bytes_written),
                cohort: self.tick_cohort,
                defer_wait_p50,
                defer_wait_p99,
                merge_plan_p50,
                merge_plan_p99,
            }
        });
    }

    /// The legacy tick body: two O(fleet) traversals, one for generation
    /// and one for the reconnect filter. Returns base work units.
    fn step_fleet_scan(&mut self, tick: u64) -> f64 {
        // Phase 1: every mobile generates its tentative work. Generation
        // is completed for the whole tier before any sync runs, so
        // transaction identities are allocated in one canonical order
        // regardless of how the sync phase below is scheduled.
        self.metrics.sched.fleet_scans += 1;
        for i in 0..self.mobiles.len() {
            self.mobile_accum[i] += self.config.mobile_rate;
            while self.mobile_accum[i] >= 1.0 {
                self.mobile_accum[i] -= 1.0;
                let id = self.source.next_txn(&mut self.arena, TxnKind::Tentative);
                self.mobiles[i].run_tentative(&self.arena, id);
                self.metrics.tentative_generated += 1;
            }
        }

        // Phase 2: the tick's reconnect batch, merged (maybe concurrently)
        // and installed in mobile-id order.
        self.metrics.sched.fleet_scans += 1;
        let fresh: Vec<usize> =
            (0..self.mobiles.len()).filter(|&i| self.mobiles[i].next_connect() == tick).collect();
        let batch = self.admit_batch(fresh, tick);
        let mut work = 0.0;
        if !batch.is_empty() {
            work += self.sync_batch(&batch, tick);
            for &i in &batch {
                let next = self.schedule_reconnect(i, tick);
                self.mobiles[i].set_next_connect(next);
            }
        }
        work
    }

    /// The event-driven tick body: pops exactly the events due at `tick` —
    /// the fleet-wide generation event (if generation fires this tick) and
    /// the reconnecting mobiles' connect events. The pop order (generation
    /// before connects, connects in mobile-id order) reproduces the legacy
    /// scan's phase and id order, so the simulation is byte-identical; the
    /// cost drops from O(fleet) per tick to O(due events). Returns base
    /// work units.
    fn step_events(&mut self, tick: u64) -> f64 {
        let mut batch: Vec<usize> = Vec::new();
        let mut popped_any = false;
        let tracer = self.config.tracer.clone();
        let span = tracer.span_start();
        while let Some(event) = self.events.pop_at(tick) {
            popped_any = true;
            match event.kind {
                EventKind::Generate => {
                    // One event stands for the whole tier: every legacy
                    // accumulator follows the same trajectory, so every
                    // mobile generates the same count on the same ticks.
                    for i in 0..self.mobiles.len() {
                        for _ in 0..self.gen_count {
                            let id = self.source.next_txn(&mut self.arena, TxnKind::Tentative);
                            self.mobiles[i].run_tentative(&self.arena, id);
                            self.metrics.tentative_generated += 1;
                        }
                    }
                    self.schedule_next_generate(tick + 1);
                }
                EventKind::Connect => batch.push(event.mobile),
            }
        }
        if popped_any {
            // Span only on active ticks, so idle ticks stay free and the
            // flight recorder isn't flooded with empty drains.
            tracer.span_end(Phase::Scheduler, span);
        }
        let batch = self.admit_batch(batch, tick);
        let mut work = 0.0;
        if !batch.is_empty() {
            work += self.sync_batch(&batch, tick);
            for &i in &batch {
                let next = self.schedule_reconnect(i, tick);
                self.mobiles[i].set_next_connect(next);
                self.events.push(Event { time: next, kind: EventKind::Connect, mobile: i });
            }
        }
        work
    }

    /// Advances the shared generation accumulator tick by tick from `from`
    /// (the exact arithmetic of the legacy per-mobile accumulators) until
    /// it finds the next tick where generation fires, and schedules that
    /// tick's [`EventKind::Generate`] event carrying the per-mobile count.
    /// Total work across a run is O(duration), independent of fleet size.
    fn schedule_next_generate(&mut self, from: u64) {
        for t in from..self.config.duration {
            self.gen_acc += self.config.mobile_rate;
            let mut count = 0u64;
            while self.gen_acc >= 1.0 {
                self.gen_acc -= 1.0;
                count += 1;
            }
            if count > 0 {
                self.gen_count = count;
                self.events.push(Event { time: t, kind: EventKind::Generate, mobile: 0 });
                return;
            }
        }
    }

    /// Draws the next reconnection tick (jittered unless reconnects are
    /// synchronized).
    fn schedule_next_connect(&mut self, tick: u64) -> u64 {
        let every = self.config.connect_every.max(1);
        if self.config.synchronized_reconnects {
            return tick + every;
        }
        let jitter = self.config.connect_every / 4;
        let draw = if jitter > 0 { self.rng.gen_range(0..=2 * jitter) } else { 0 };
        jittered_next_connect(tick, every, jitter, draw)
    }

    /// The next reconnection tick for mobile `i` after its sync at
    /// `tick`: the legacy cadence draw, pulled *earlier* by the retry
    /// backoff when the mobile's session was just abandoned (capped
    /// exponential delay plus seeded jitter, replacing the flat
    /// wait-out-the-cadence abandon), then pushed *later* to the next
    /// tick the connectivity model has the link up. With the default
    /// configuration every adjustment is the identity, and the cadence
    /// draw itself always happens — the shared RNG stream stays aligned
    /// across configurations.
    fn schedule_reconnect(&mut self, i: usize, tick: u64) -> u64 {
        let cadence = self.schedule_next_connect(tick);
        let backoff = self.config.session.backoff;
        let target = if backoff.enabled && self.backoff_level[i] > 0 {
            let delay = backoff.delay(self.backoff_level[i]);
            // Up to 25% seeded jitter de-synchronizes a cohort of mobiles
            // failing (and therefore backing off) in lockstep.
            let jitter_span = delay / 4;
            let jitter =
                if jitter_span > 0 { self.backoff_rng.gen_range(0..=jitter_span) } else { 0 };
            let early = tick.saturating_add(delay).saturating_add(jitter);
            if early < cadence {
                self.metrics.storm.backoff_reschedules += 1;
                self.metrics.storm.backoff_delay_ticks += early - tick;
                let seq = self.mobiles[i].unacked().map_or(0, |u| u.seq);
                self.config.tracer.emit(|| TraceEvent::SessionStep {
                    tick,
                    mobile: i,
                    seq,
                    step: SessionStepKind::Backoff,
                });
            }
            early.min(cadence)
        } else {
            cadence
        };
        self.config.connectivity.next_up(i, target).max(tick + 1)
    }

    /// Applies the admission cap to this tick's reconnect cohort: the
    /// deferred queue is drained first (FIFO — no mobile starves), then
    /// fresh arrivals fill the remaining slots and the excess is shed to
    /// the back of the queue. With the cap disabled (the default) this
    /// is the identity and the queue stays empty.
    fn admit_batch(&mut self, fresh: Vec<usize>, tick: u64) -> Vec<usize> {
        let cap = self.config.admission.max_batch;
        if cap == 0 {
            debug_assert!(self.deferred.is_empty(), "nothing defers without a cap");
            return fresh;
        }
        let mut admitted = Vec::with_capacity(cap.min(self.deferred.len() + fresh.len()));
        let mut drained = 0u64;
        while admitted.len() < cap {
            let Some((i, arrived)) = self.deferred.pop_front() else { break };
            let waited = tick - arrived;
            self.metrics.storm.defer_wait_ticks += waited;
            self.metrics.storm.defer_wait_max = self.metrics.storm.defer_wait_max.max(waited);
            self.metrics.defer_waits.push(waited);
            drained += 1;
            admitted.push(i);
        }
        self.metrics.storm.deferred_drained += drained;
        let mut shed = 0usize;
        for i in fresh {
            if admitted.len() < cap {
                admitted.push(i);
            } else {
                self.deferred.push_back((i, tick));
                shed += 1;
            }
        }
        self.metrics.storm.shed += shed as u64;
        self.metrics.storm.deferred_peak =
            self.metrics.storm.deferred_peak.max(self.deferred.len() as u64);
        if shed > 0 || drained > 0 {
            let (admitted_len, deferred_len) = (admitted.len(), self.deferred.len());
            self.config.tracer.emit(|| TraceEvent::Admission {
                tick,
                admitted: admitted_len,
                shed,
                deferred: deferred_len,
            });
        }
        admitted
    }

    /// The fault plan in effect for a handshake of mobile `i` at `tick`:
    /// the configured rates scaled by the connectivity model's
    /// trace-conditioned factor — correlated bursts during handoff
    /// windows and post-outage surges. Unconditioned ticks (factor
    /// exactly 1.0) return the plan untouched, so the fault stream is
    /// bit-identical to the unconditioned run outside burst windows.
    fn effective_fault(&self, i: usize, tick: u64) -> FaultPlan {
        let scale = self.config.connectivity.fault_scale(i, tick);
        if scale == 1.0 {
            self.config.fault
        } else {
            self.config.fault.scaled(scale)
        }
    }

    /// Synchronizes every member of a reconnect batch, installing results
    /// in mobile-id order. When the configuration allows, the merge phase
    /// of eligible Strategy-2 members runs concurrently against the
    /// pre-batch snapshot; each speculative outcome is validated against
    /// the base transactions earlier members appended, and invalidated
    /// members fall back to the live serial path. Returns base work units.
    fn sync_batch(&mut self, batch: &[usize], tick: u64) -> f64 {
        self.metrics.batch_sizes.push(batch.len());
        self.tick_cohort += batch.len() as u64;
        self.delta_anchors.clear();
        let mut speculated = self.speculate_batch(batch);
        // Incremental edge maintenance only matters where the cache is
        // read: windowed-strategy merging. (Strategy 1 and reprocessing
        // never touch it.)
        let incremental = matches!(self.config.protocol, Protocol::Merging { .. })
            && !matches!(self.config.strategy, SyncStrategy::PerDisconnectSnapshot);
        let mut wave_budget = self.config.cohort.max_waves;
        let tracer = self.config.tracer.clone();
        let mut work = 0.0;
        for (pos, &i) in batch.iter().enumerate() {
            // Wave re-speculation: when this member's speculative merge
            // went stale (earlier installs appended conflicting base
            // commits), re-run the concurrent merge phase for the whole
            // still-pending stale remainder against a refreshed snapshot
            // instead of letting each member pay a serial live merge.
            // Bounded by the wave budget; install order is untouched.
            if wave_budget > 0
                && speculated.get(&i).is_some_and(|s| !s.wave_skip)
                && self.spec_stale(&speculated[&i])
            {
                if self.respeculate_wave(&batch[pos..], &mut speculated) {
                    self.metrics.cohort.wave_rounds += 1;
                }
                // Every triggered attempt burns budget, so a cohort runs
                // at most `max_waves` concurrent re-merge phases.
                wave_budget -= 1;
            }
            let spec = speculated.remove(&i);
            let before = self.metrics.records.len();
            let span = tracer.span_start();
            work += match self.config.sync_path {
                SyncPath::Legacy => self.sync_mobile(i, tick, spec),
                SyncPath::Session => self.sync_session(i, tick, spec),
            };
            let ns = tracer.span_end(Phase::Sync, span);
            if ns > 0 {
                // Attach the wall-clock span to the records this member
                // emitted (normally one; recovery traffic can add more).
                for record in &mut self.metrics.records[before..] {
                    record.sync_ns = ns;
                }
            }
            // Fold whatever this member just committed into the epoch
            // edge cache immediately (O(appended)), so later members'
            // validation, waves, and serial fallbacks never re-pay an
            // epoch-wide scan.
            if incremental {
                self.sync_cache();
            }
        }
        work
    }

    /// Re-runs the concurrent merge phase for the still-pending batch
    /// members whose speculative outcomes have gone stale, against a
    /// freshly refreshed snapshot. Returns `true` when a wave actually
    /// ran. Members whose re-merge errors keep their stale outcome and
    /// are barred from further waves ([`Speculative::wave_skip`]), so
    /// they reach the serial path with legacy error handling.
    fn respeculate_wave(
        &mut self,
        rest: &[usize],
        speculated: &mut BTreeMap<usize, Speculative>,
    ) -> bool {
        let Protocol::Merging { algorithm, fix_mode } = self.config.protocol else {
            return false;
        };
        let stale: Vec<usize> = rest
            .iter()
            .copied()
            .filter(|i| {
                speculated.get(i).is_some_and(|s| !s.wave_skip)
                    && self.spec_stale(&speculated[i])
            })
            .collect();
        let workers = self.config.parallelism.workers(stale.len());
        if stale.len() < 2 || workers < 2 {
            return false; // Nothing to overlap: the serial path is no worse.
        }
        self.sync_cache();
        let hb = self.base.base().epoch_history();
        let s0 = self.base.base().epoch_state().clone();
        let hb_final = self.base.base().master().clone();
        let log_len = self.base.base().committed();
        let hb_len = hb.len();
        let jobs: Vec<BatchJob> = stale
            .iter()
            .map(|&i| {
                // Compaction re-runs against the refreshed base slice —
                // exactly what the serial fallback at this member's turn
                // would see.
                let hm = self.compact_pending(self.mobiles[i].history().clone(), &hb);
                BatchJob { mobile: i, hm }
            })
            .collect();
        let source = &self.source;
        let make_merger = move || build_merger(source, algorithm, fix_mode);
        let started = Instant::now();
        let results = merge_batch(
            &self.arena,
            &jobs,
            &hb,
            &s0,
            &hb_final,
            &self.base_edge_cache,
            &make_merger,
            workers,
            self.config.cohort.fastpath,
        );
        let ns = started.elapsed().as_nanos() as u64;
        self.metrics.parallel_merge_ns += ns;
        self.config.tracer.emit(|| TraceEvent::Span { phase: Phase::ParallelMerge, ns });
        self.push_anchor(log_len);
        for (job, result) in jobs.into_iter().zip(results) {
            match result {
                Ok(outcome) => {
                    if outcome.fast_path {
                        self.metrics.cohort.fastpath_merges += 1;
                    }
                    let (read_bits, write_bits) = history_bits(&self.arena, &job.hm);
                    speculated.insert(
                        job.mobile,
                        Speculative {
                            hm: job.hm,
                            hb_len,
                            log_len,
                            outcome,
                            read_bits,
                            write_bits,
                            rewaved: true,
                            wave_skip: false,
                        },
                    );
                }
                Err(_) => {
                    if let Some(old) = speculated.get_mut(&job.mobile) {
                        old.wave_skip = true;
                    }
                }
            }
        }
        true
    }

    /// Runs the concurrent merge phase for the batch members that can
    /// merge against the shared window-start snapshot. Members left out of
    /// the returned map (ineligible, or whose merge errored) take the live
    /// serial path, which reproduces serial error handling exactly.
    fn speculate_batch(&mut self, batch: &[usize]) -> BTreeMap<usize, Speculative> {
        let mut out = BTreeMap::new();
        let Protocol::Merging { algorithm, fix_mode } = self.config.protocol else {
            return out;
        };
        if matches!(self.config.strategy, SyncStrategy::PerDisconnectSnapshot) {
            return out; // Strategy 1 merges have per-mobile start states.
        }
        // Mobiles with an unresolved prior session (or a trimmed, dirty
        // log) must run recovery before their pending set is known, so
        // they cannot speculate against a pre-batch clone of it. Both
        // conditions are always false on the legacy path.
        let eligible: Vec<usize> = batch
            .iter()
            .copied()
            .filter(|&i| {
                self.mobiles[i].pending() > 0
                    && self.mobile_epochs[i] == self.epoch
                    && self.mobiles[i].unacked().is_none()
                    && !self.mobiles[i].dirty_origin()
            })
            .collect();
        let workers = self.config.parallelism.workers(eligible.len());
        if eligible.len() < 2 || workers < 2 {
            return out; // Nothing to overlap: merge live, one at a time.
        }

        self.sync_cache();
        let hb = self.base.base().epoch_history();
        let s0 = self.base.base().epoch_state().clone();
        let hb_final = self.base.base().master().clone();
        let log_len = self.base.base().committed();
        let hb_len = hb.len();
        let jobs: Vec<BatchJob> = eligible
            .iter()
            .map(|&i| {
                // Compaction runs serially before the concurrent merge
                // phase (it allocates composites into the shared arena).
                let hm = self.compact_pending(self.mobiles[i].history().clone(), &hb);
                BatchJob { mobile: i, hm }
            })
            .collect();

        let source = &self.source;
        let make_merger = move || build_merger(source, algorithm, fix_mode);
        let started = Instant::now();
        let results = merge_batch(
            &self.arena,
            &jobs,
            &hb,
            &s0,
            &hb_final,
            &self.base_edge_cache,
            &make_merger,
            workers,
            self.config.cohort.fastpath,
        );
        let ns = started.elapsed().as_nanos() as u64;
        self.metrics.parallel_merge_ns += ns;
        self.config.tracer.emit(|| TraceEvent::Span { phase: Phase::ParallelMerge, ns });

        self.push_anchor(log_len);
        for (job, result) in jobs.into_iter().zip(results) {
            if let Ok(outcome) = result {
                if outcome.fast_path {
                    self.metrics.cohort.fastpath_merges += 1;
                }
                // The footprint union comes from the arena's interned
                // admission-time masks — a word-wise OR per transaction,
                // not a per-item set rebuild.
                let (read_bits, write_bits) = history_bits(&self.arena, &job.hm);
                out.insert(
                    job.mobile,
                    Speculative {
                        hm: job.hm,
                        hb_len,
                        log_len,
                        outcome,
                        read_bits,
                        write_bits,
                        rewaved: false,
                        wave_skip: false,
                    },
                );
            }
        }
        out
    }

    /// Registers a fresh delta anchor for a speculation snapshot taken at
    /// full-log index `from` (no-op when that snapshot already has one —
    /// a wave taken before any install appends shares the initial
    /// anchor).
    fn push_anchor(&mut self, from: usize) {
        if self.delta_anchors.iter().any(|a| a.from == from) {
            return;
        }
        self.delta_anchors.push(DeltaAnchor {
            from,
            upto: from,
            writes: DenseBits::new(),
            reads: DenseBits::new(),
        });
    }

    /// Whether base commits appended since `spec`'s snapshot invalidate
    /// it (a delta write hits a speculative read or vice versa —
    /// rule-3-only, matching `delta_invalidates`). Snapshots with a
    /// delta anchor fold the new commits into the anchor's running union
    /// once and answer in O(words); anchor-less snapshots (wave-skipped
    /// members whose wave replaced the cohort anchor) fall back to the
    /// per-transaction scan.
    fn spec_stale(&mut self, spec: &Speculative) -> bool {
        let committed = self.base.base().committed();
        let anchored = self.delta_anchors.iter().position(|a| a.from == spec.log_len);
        if let Some(idx) = anchored {
            if self.delta_anchors[idx].upto < committed {
                let suffix = self.base.base().history_suffix(self.delta_anchors[idx].upto);
                let anchor = &mut self.delta_anchors[idx];
                for id in suffix {
                    anchor.writes.union_with(self.arena.write_bits(id));
                    anchor.reads.union_with(self.arena.read_bits(id));
                }
                anchor.upto = committed;
            }
            let anchor = &self.delta_anchors[idx];
            return anchor.writes.intersects(&spec.read_bits)
                || anchor.reads.intersects(&spec.write_bits);
        }
        let delta: Vec<TxnId> = self.base.base().history_suffix(spec.log_len);
        delta_invalidates(&self.arena, &delta, &spec.read_bits, &spec.write_bits)
    }

    /// Decides what this reconnection does, without applying anything,
    /// and emits the decision's merge autopsy when telemetry asks for
    /// one. Autopsies are per *plan*: on the session path a plan whose
    /// session is later abandoned is re-planned (and re-explained) at the
    /// next reconnect, so in faulted runs plans can outnumber
    /// resolutions.
    fn plan_sync(&mut self, i: usize, tick: u64, spec: Option<Speculative>) -> SyncDecision {
        self.last_plan_ns = 0;
        let decision = self.plan_sync_inner(i, spec);
        self.emit_autopsy(i, tick, &decision);
        decision
    }

    /// The decision body: validates any speculative outcome against the
    /// base transactions appended since its snapshot (an invalidated
    /// member falls through to the live serial decision), then plans.
    fn plan_sync_inner(&mut self, i: usize, spec: Option<Speculative>) -> SyncDecision {
        if let Some(spec) = spec {
            if self.spec_stale(&spec) {
                self.metrics.speculative_retries += 1;
            } else {
                // The delta only appends base-internal edges to the
                // precedence graph; fold them into the outcome's edge
                // count so cost accounting matches the live merge exactly.
                let live_hb_len = self.base.base().epoch_len();
                self.sync_cache();
                let appended_edges = self.base_edge_cache.edge_count(live_hb_len)
                    - self.base_edge_cache.edge_count(spec.hb_len);
                let mut outcome = spec.outcome;
                outcome.graph_edges += appended_edges;
                if spec.rewaved {
                    // The legacy pipeline would have counted this member
                    // as a retry (its initial speculation was already
                    // stale when the wave ran, and staleness only
                    // grows) — keep the counters byte-identical.
                    self.metrics.speculative_retries += 1;
                } else {
                    self.metrics.speculative_hits += 1;
                }
                return SyncDecision::Merge {
                    hm: spec.hm,
                    hb_len: live_hb_len,
                    outcome: Box::new(outcome),
                    retroactive: false,
                };
            }
        }
        if self.mobiles[i].pending() == 0 {
            return SyncDecision::Refresh;
        }
        if self.mobiles[i].dirty_origin() {
            // The suffix a recovered session left behind ran from a state
            // that already included committed work: no base snapshot
            // matches its origin, so it cannot be merged.
            return SyncDecision::Reprocess { cause: ReprocessReason::DirtyOrigin };
        }
        match self.config.protocol {
            Protocol::Reprocessing => {
                SyncDecision::Reprocess { cause: ReprocessReason::ProtocolBaseline }
            }
            Protocol::Merging { algorithm, fix_mode } => match self.config.strategy {
                SyncStrategy::WindowStart { .. } | SyncStrategy::AdaptiveWindow { .. } => {
                    if self.mobile_epochs[i] != self.epoch {
                        // Reconnected after its window closed: the history
                        // cannot be merged (Section 2.2) and is reprocessed
                        // instead.
                        self.metrics.window_misses += 1;
                        SyncDecision::Reprocess { cause: ReprocessReason::WindowMiss }
                    } else {
                        self.plan_merge_window(i, algorithm, fix_mode)
                    }
                }
                SyncStrategy::PerDisconnectSnapshot => {
                    self.plan_merge_snapshot(i, algorithm, fix_mode)
                }
            },
        }
    }

    // ------------------------------------------------------------------
    // Merge autopsies (SimConfig::telemetry.autopsy). Observation-only:
    // every function below reads simulation state and emits trace
    // events; none touches RNG streams, metrics, or control flow.
    // ------------------------------------------------------------------

    /// Emits the structured autopsy for a freshly planned sync decision,
    /// when telemetry asks for one and a tracer is listening. A refresh
    /// plan (nothing pending) emits nothing.
    fn emit_autopsy(&self, i: usize, tick: u64, decision: &SyncDecision) {
        if !self.config.telemetry.autopsy || !self.config.tracer.enabled() {
            return;
        }
        match decision {
            SyncDecision::Refresh => {}
            SyncDecision::Merge { hm, outcome, retroactive, .. } => {
                self.emit_merge_autopsy(i, tick, hm, outcome, *retroactive);
            }
            SyncDecision::Reprocess { cause } => self.emit_reprocess_autopsy(i, tick, *cause),
        }
    }

    /// A transaction's combined read|write summary mask — the compact
    /// footprint fingerprint autopsy events carry.
    fn footprint_mask(&self, id: TxnId) -> u64 {
        let t = self.arena.get(id);
        t.read_mask().summary() | t.write_mask().summary()
    }

    /// Explains a planned merge: one [`TraceEvent::BackoutEdge`] per
    /// backed-out transaction naming the conflict edge (and the base
    /// commit) it lost to plus its closure back-out weight, closed by a
    /// [`TraceEvent::MergeSummary`]. Re-derives the evidence with
    /// targeted scans — a subset closure pass for the weights and a
    /// reverse conflict scan per casualty — instead of rebuilding the
    /// planner's full graph and closure table, so a telemetry-enabled
    /// run does not pay the merge's planning cost twice. Pure
    /// re-derivation either way: the plan itself is untouched.
    fn emit_merge_autopsy(
        &self,
        i: usize,
        tick: u64,
        hm: &SerialHistory,
        outcome: &MergeOutcome,
        retroactive: bool,
    ) {
        let tracer = self.config.tracer.clone();
        let hb: SerialHistory = if retroactive {
            let origin = self.mobiles[i].origin_index();
            self.base.base().full_history().order()[origin..].iter().copied().collect()
        } else {
            self.base.base().epoch_history()
        };
        let bad: BTreeSet<TxnId> = outcome.backed_out.iter().copied().collect();
        let weights = closure_weights_for(&self.arena, hm, &bad);
        let hb_rev: Vec<TxnId> = hb.iter().collect();
        let hm_rev: Vec<TxnId> = hm.iter().collect();
        for &t in &outcome.backed_out {
            // Prefer the partner that names a base commit: the latest
            // epoch base transaction t draws a precedence edge with (a
            // pure cross write-write overlap draws none). Fall back to
            // the latest conflicting mobile partner — an affected-set
            // casualty always has one, because its taint came in through
            // a read of another casualty's write.
            let base_partner = hb_rev.iter().rev().copied().find(|&b| {
                self.arena.reads_overlap_writes(t, b) || self.arena.reads_overlap_writes(b, t)
            });
            let best = match base_partner {
                Some(b) => {
                    let rule = if self.arena.reads_overlap_writes(t, b) {
                        EdgeKind::MobileReadBase.name()
                    } else {
                        EdgeKind::BaseReadMobile.name()
                    };
                    Some((b, rule))
                }
                None => hm_rev
                    .iter()
                    .rev()
                    .copied()
                    .find(|&m| m != t && self.arena.conflicts(t, m))
                    .map(|m| (m, EdgeKind::MobileConflict.name())),
            };
            let txn_mask = self.footprint_mask(t);
            let (lost_to, rule, other_mask) = match best {
                Some((partner, rule)) => {
                    (u64::from(partner.index()), rule, self.footprint_mask(partner))
                }
                None => (NO_PARTNER, "none", 0),
            };
            let weight = weights.get(&t).copied().unwrap_or(0);
            tracer.emit(|| TraceEvent::BackoutEdge {
                tick,
                mobile: i,
                txn: u64::from(t.index()),
                lost_to,
                rule,
                txn_mask,
                other_mask,
                weight,
            });
        }
        let clusters = self.count_clusters(hm, &hb);
        let squashed = hm.iter().filter(|id| self.composites.contains_key(id)).count();
        let pending = self.original_len(hm);
        let saved = self.original_count(&outcome.saved);
        let backed_out = self.original_count(&outcome.backed_out);
        let plan_ns = self.last_plan_ns;
        tracer.emit(|| TraceEvent::MergeSummary {
            tick,
            mobile: i,
            pending,
            saved,
            backed_out,
            reprocessed: 0,
            clusters,
            squashed,
            plan_ns,
        });
    }

    /// Connected components of the conflict relation over the merge's
    /// input (`H_m ∪ H_b`) that contain at least one pending tentative
    /// transaction — the merge's conflict clusters. Linear in total
    /// footprint size, not quadratic in transactions: per item, every
    /// writer unions with the item's first writer and every reader
    /// unions with it too, which yields exactly the conflict graph's
    /// components (readers of a written item are connected *through*
    /// its writer; an item nobody writes connects nothing).
    fn count_clusters(&self, hm: &SerialHistory, hb: &SerialHistory) -> usize {
        let nodes: Vec<TxnId> = hm.iter().chain(hb.iter()).collect();
        let mut parent: Vec<usize> = (0..nodes.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        fn union(parent: &mut [usize], a: usize, b: usize) {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut writer_of = vec![usize::MAX; self.arena.var_count()];
        for (k, &id) in nodes.iter().enumerate() {
            for (wi, &word) in self.arena.write_bits(id).words().iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let v = wi * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if writer_of[v] == usize::MAX {
                        writer_of[v] = k;
                    } else {
                        union(&mut parent, k, writer_of[v]);
                    }
                }
            }
        }
        for (k, &id) in nodes.iter().enumerate() {
            for (wi, &word) in self.arena.read_bits(id).words().iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let v = wi * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let w = writer_of[v];
                    if w != usize::MAX {
                        union(&mut parent, k, w);
                    }
                }
            }
        }
        let mut roots = BTreeSet::new();
        for k in 0..hm.len() {
            roots.insert(find(&mut parent, k));
        }
        roots.len()
    }

    /// Explains a wholesale-reprocessing plan: one
    /// [`TraceEvent::ReprocessCause`] per pending transaction naming the
    /// latest committed base transaction it conflicts with (the concrete
    /// commit it "lost to"), closed by a [`TraceEvent::MergeSummary`].
    fn emit_reprocess_autopsy(&self, i: usize, tick: u64, reason: ReprocessReason) {
        let tracer = self.config.tracer.clone();
        let pending: Vec<TxnId> = self.mobiles[i].history().iter().collect();
        let pending_set: BTreeSet<TxnId> = pending.iter().copied().collect();
        for &t in &pending {
            let partner = self.base.base().latest_conflicting_commit(&self.arena, t, &pending_set);
            let (lost_to, rule, other_mask) = match partner {
                Some(p) => {
                    // Classify the conflict by the paper's rule-3 edge
                    // directions; a pure write-write overlap draws no
                    // precedence edge and is labeled as such.
                    let rule = if self.arena.reads_overlap_writes(t, p) {
                        EdgeKind::MobileReadBase.name()
                    } else if self.arena.reads_overlap_writes(p, t) {
                        EdgeKind::BaseReadMobile.name()
                    } else {
                        "write-write"
                    };
                    (u64::from(p.index()), rule, self.footprint_mask(p))
                }
                None => (NO_PARTNER, "none", 0),
            };
            let txn_mask = self.footprint_mask(t);
            let cause = reason.name();
            tracer.emit(|| TraceEvent::ReprocessCause {
                tick,
                mobile: i,
                txn: u64::from(t.index()),
                cause,
                lost_to,
                rule,
                txn_mask,
                other_mask,
            });
        }
        let plan_ns = self.last_plan_ns;
        tracer.emit(|| TraceEvent::MergeSummary {
            tick,
            mobile: i,
            pending: pending.len(),
            saved: 0,
            backed_out: 0,
            reprocessed: pending.len(),
            clusters: 0,
            squashed: 0,
            plan_ns,
        });
    }

    /// Brings the epoch's base-edge cache up to date with the epoch
    /// history, resetting it on window rollover. O(appended): the cache
    /// is append-only within an epoch and already covers a prefix of the
    /// epoch history, so only the suffix it has not seen is walked — the
    /// epoch history is never re-materialized or re-scanned.
    fn sync_cache(&mut self) {
        if self.cache_epoch != self.epoch {
            self.base_edge_cache.clear();
            self.cache_epoch = self.epoch;
        }
        let from = self.base.base().epoch_start() + self.base_edge_cache.len();
        let suffix = self.base.base().history_suffix(from);
        if suffix.is_empty() {
            return;
        }
        self.metrics.cohort.edge_cache_appends += suffix.len() as u64;
        self.base_edge_cache.extend(&self.arena, suffix.iter().copied());
    }

    /// Runs the pre-merge compaction pass over a pending history when
    /// enabled, registering any composites it mints. Returns the (possibly
    /// compacted) history the merge plans against. Planning-time only:
    /// the mobile's persisted log and every reprocessing path stay
    /// uncompacted. The simulation always compacts with the mask-only
    /// oracle (`compact` passes no semantic back-end), the regime where a
    /// compacted merge is byte-identical to the plain one.
    fn compact_pending(&mut self, hm: SerialHistory, hb: &SerialHistory) -> SerialHistory {
        if !self.config.compaction.enabled || hm.len() < 2 {
            return hm;
        }
        let tracer = self.config.tracer.clone();
        let span = tracer.span_start();
        let (hb_reads, hb_writes) = history_footprint(&self.arena, hb);
        let outcome = compact(&mut self.arena, &hm, &hb_reads, &hb_writes, &self.config.compaction);
        tracer.span_end(Phase::Compact, span);
        self.metrics.compaction.txns_in += outcome.txns_in as u64;
        self.metrics.compaction.txns_out += outcome.txns_out as u64;
        self.metrics.compaction.runs_squashed += outcome.runs_squashed as u64;
        for (composite, members) in outcome.composites {
            self.composites.insert(composite, members);
        }
        outcome.history
    }

    /// The number of original transactions behind `id`: composites count
    /// their constituents, everything else counts itself.
    fn original_units(&self, id: TxnId) -> usize {
        self.composites.get(&id).map_or(1, Vec::len)
    }

    /// Sums [`Simulation::original_units`] over a resolved set, so sync
    /// records report saved/backed-out work in original-transaction units
    /// whether or not the planned history was compacted.
    fn original_count(&self, ids: &[TxnId]) -> usize {
        ids.iter().map(|id| self.original_units(*id)).sum()
    }

    /// A (possibly compacted) history's length in original-transaction
    /// units.
    fn original_len(&self, hm: &SerialHistory) -> usize {
        hm.iter().map(|id| self.original_units(id)).sum()
    }

    /// Synchronizes mobile `i` through the legacy atomic handshake;
    /// returns the base-side work units incurred.
    fn sync_mobile(&mut self, i: usize, tick: u64, spec: Option<Speculative>) -> f64 {
        match self.plan_sync(i, tick, spec) {
            SyncDecision::Refresh => {
                self.refresh_origin(i);
                0.0
            }
            SyncDecision::Merge { hm, hb_len, outcome, retroactive } => {
                self.apply_merge(i, tick, &hm, hb_len, *outcome, retroactive)
            }
            SyncDecision::Reprocess { cause } => self.reprocess_all(i, tick, cause),
        }
    }

    fn merger(&self, algorithm: RewriteAlgorithm, fix_mode: FixMode) -> Merger {
        build_merger(&self.source, algorithm, fix_mode)
    }

    /// Strategy 2 merge decision: against the window's base sub-history,
    /// from the shared window-start state. Reuses the epoch's base-edge
    /// cache and the current master (the state after `H_b`), so per-merge
    /// work is linear in the history growth instead of quadratic in
    /// `|H_b|`.
    fn plan_merge_window(
        &mut self,
        i: usize,
        algorithm: RewriteAlgorithm,
        fix_mode: FixMode,
    ) -> SyncDecision {
        let hb = self.base.base().epoch_history();
        let hm = self.compact_pending(self.mobiles[i].history().clone(), &hb);
        let s0 = self.base.base().epoch_state().clone();
        let hb_final = self.base.base().master().clone();
        self.sync_cache();
        let merger = self.merger(algorithm, fix_mode);
        let assist = MergeAssist {
            base_edges: Some(&self.base_edge_cache),
            hb_final: Some(&hb_final),
            fastpath: self.config.cohort.fastpath,
            defer_witness: self.config.cohort.fastpath,
        };
        let tracer = self.config.tracer.clone();
        let span = tracer.span_start();
        let planned = if self.config.reuse_merge_scratch {
            merger.merge_traced_scratch(
                &self.arena,
                &hm,
                &hb,
                &s0,
                assist,
                &tracer,
                &mut self.merge_scratch,
            )
        } else {
            merger.merge_traced(&self.arena, &hm, &hb, &s0, assist, &tracer)
        };
        self.last_plan_ns = tracer.span_end(Phase::MergePlan, span);
        match planned {
            Ok(outcome) => {
                if outcome.fast_path {
                    self.metrics.cohort.fastpath_merges += 1;
                }
                SyncDecision::Merge {
                    hb_len: hb.len(),
                    hm,
                    outcome: Box::new(outcome),
                    retroactive: false,
                }
            }
            Err(_) => SyncDecision::Reprocess { cause: ReprocessReason::MergeFailed },
        }
    }

    /// Strategy 1 merge decision: against the base log suffix from the
    /// mobile's own snapshot, if that snapshot is still a valid cut of the
    /// base history.
    fn plan_merge_snapshot(
        &mut self,
        i: usize,
        algorithm: RewriteAlgorithm,
        fix_mode: FixMode,
    ) -> SyncDecision {
        let origin_index = self.mobiles[i].origin_index();
        let hm = self.mobiles[i].history().clone();
        let s0 = self.mobiles[i].origin().clone();
        let full = self.base.base().full_history();
        let hb: SerialHistory = full.order()[origin_index..].iter().copied().collect();
        // Validity: replaying the suffix from the snapshot must reproduce
        // the current master. Only the final state matters, so the replay
        // skips the augmented log. Retro-patched installs from other
        // mobiles' merges break this — the Strategy-1 failure mode.
        let valid = match histmerge_history::run_to_final(&self.arena, &hb, &s0) {
            Ok(state) => &state == self.base.base().master(),
            Err(_) => false,
        };
        if !valid {
            return SyncDecision::Reprocess { cause: ReprocessReason::MergeFailed };
        }
        let hm = self.compact_pending(hm, &hb);
        let merger = self.merger(algorithm, fix_mode);
        let tracer = self.config.tracer.clone();
        let span = tracer.span_start();
        let planned = if self.config.reuse_merge_scratch {
            merger.merge_traced_scratch(
                &self.arena,
                &hm,
                &hb,
                &s0,
                MergeAssist::default(),
                &tracer,
                &mut self.merge_scratch,
            )
        } else {
            merger.merge_traced(&self.arena, &hm, &hb, &s0, MergeAssist::default(), &tracer)
        };
        self.last_plan_ns = tracer.span_end(Phase::MergePlan, span);
        match planned {
            Ok(outcome) => SyncDecision::Merge {
                hb_len: hb.len(),
                hm,
                outcome: Box::new(outcome),
                retroactive: true,
            },
            Err(_) => SyncDecision::Reprocess { cause: ReprocessReason::MergeFailed },
        }
    }

    /// Installs a merge outcome on the base and records metrics. Returns
    /// base work units.
    fn apply_merge(
        &mut self,
        i: usize,
        tick: u64,
        hm: &SerialHistory,
        hb_len: usize,
        outcome: MergeOutcome,
        retroactive: bool,
    ) -> f64 {
        let tracer = self.config.tracer.clone();
        // Step 5: install forwarded updates.
        let install_span = tracer.span_start();
        if retroactive {
            let from = self.mobiles[i].origin_index();
            self.base
                .base_mut()
                .retro_patch(&self.arena, from, &outcome.forwarded)
                .expect("snapshot origin index lies within the base log");
            self.metrics.retro_patches += 1;
            self.wal_append(&WalRecord::RetroPatch {
                from_index: from as u64,
                updates: outcome.forwarded.clone(),
            });
        } else {
            let _ = self.base.install_updates(&mut self.arena, &outcome.forwarded);
            self.wal_sync_commits();
        }
        for id in &outcome.saved {
            self.mark_resolved(*id);
        }
        tracer.span_end(Phase::Install, install_span);
        // Step 6: re-execute backed-out transactions as base transactions.
        let reexec_span = tracer.span_start();
        let mut backed_out_stmts = 0usize;
        for id in &outcome.backed_out {
            backed_out_stmts += self.arena.get(*id).program().statement_count();
            self.base.reexecute(&mut self.arena, *id);
            self.mark_resolved(*id);
        }
        self.wal_sync_commits();
        tracer.span_end(Phase::Reexecute, reexec_span);

        let stats = self.merge_stats(hm, hb_len, &outcome, backed_out_stmts);
        let cost = merging_cost(&self.config.cost, &stats);
        self.metrics.record(
            SyncRecord {
                tick,
                mobile: i,
                pending: self.original_len(hm),
                hb_len,
                saved: self.original_count(&outcome.saved),
                backed_out: self.original_count(&outcome.backed_out),
                reprocessed: 0,
                merge_failed: false,
                sync_ns: 0,
            },
            cost,
        );
        self.refresh_origin(i);
        cost.base_cpu + cost.base_io
    }

    fn merge_stats(
        &self,
        hm: &SerialHistory,
        hb_len: usize,
        outcome: &MergeOutcome,
        backed_out_stmts: usize,
    ) -> MergeStats {
        let rw_entries: usize = hm
            .iter()
            .map(|id| {
                let t = self.arena.get(id);
                t.readset().len() + t.writeset().len()
            })
            .sum();
        let graph_edges =
            PrecedenceGraph::build(&self.arena, hm, &SerialHistory::new()).edges().len();
        MergeStats {
            hm_len: hm.len(),
            hb_len,
            rw_entries,
            graph_edges,
            full_graph_edges: outcome.graph_edges,
            n_saved: outcome.saved.len(),
            n_backed_out: outcome.backed_out.len(),
            backed_out_stmts,
            forwarded_items: outcome.forwarded.len(),
        }
    }

    /// Reprocesses every pending tentative transaction of mobile `i` the
    /// old way. Returns base work units.
    fn reprocess_all(&mut self, i: usize, tick: u64, cause: ReprocessReason) -> f64 {
        let pending: Vec<TxnId> = self.mobiles[i].history().iter().collect();
        let total_stmts: usize =
            pending.iter().map(|id| self.arena.get(*id).program().statement_count()).sum();
        let tracer = self.config.tracer.clone();
        let span = tracer.span_start();
        for id in &pending {
            self.base.reexecute(&mut self.arena, *id);
            self.mark_resolved(*id);
        }
        self.wal_sync_commits();
        tracer.span_end(Phase::Reexecute, span);
        let cost = reprocessing_cost(
            &self.config.cost,
            &ReprocessStats { n_txns: pending.len(), total_stmts },
        );
        self.metrics.record(
            SyncRecord {
                tick,
                mobile: i,
                pending: pending.len(),
                hb_len: 0,
                saved: 0,
                backed_out: 0,
                reprocessed: pending.len(),
                merge_failed: cause.merge_failed(),
                sync_ns: 0,
            },
            cost,
        );
        self.refresh_origin(i);
        cost.base_cpu + cost.base_io
    }

    /// Resets mobile `i`'s origin according to the strategy.
    fn refresh_origin(&mut self, i: usize) {
        match self.config.strategy {
            SyncStrategy::WindowStart { .. } | SyncStrategy::AdaptiveWindow { .. } => {
                // Strategy 2: new tentative histories within the window
                // keep the window-start state as their origin — one shared
                // snapshot, an Arc clone per resync.
                self.mobiles[i].resync(self.epoch_state_arc.clone(), 0);
                self.mobile_epochs[i] = self.epoch;
            }
            SyncStrategy::PerDisconnectSnapshot => {
                // Strategy 1: snapshot the current master.
                let origin = Arc::new(self.base.base().master().clone());
                let index = self.base.base().committed();
                self.mobiles[i].resync(origin, index);
            }
        }
    }

    // ------------------------------------------------------------------
    // The resumable sync-session protocol (SyncPath::Session).
    // ------------------------------------------------------------------

    /// Tracks a tentative transaction's resolution (install or
    /// re-execution); a second resolution of the same id is the
    /// idempotence violation the convergence oracle reports.
    fn mark_resolved(&mut self, id: TxnId) {
        // A composite resolves its constituents: the double-resolution
        // guard must keep firing if a fault path ever re-executes an
        // original transaction whose work a composite already installed.
        if let Some(members) = self.composites.get(&id) {
            for member in members.clone() {
                if !self.resolved.insert(member) {
                    self.metrics.fault.double_resolutions += 1;
                }
            }
            return;
        }
        if !self.resolved.insert(id) {
            self.metrics.fault.double_resolutions += 1;
        }
    }

    /// Rolls the fate of one handshake message of mobile `i`, counting
    /// transport faults. The rates are trace-conditioned: during the
    /// connectivity model's burst windows (cell handoff, post-outage
    /// surge) they are scaled up, turning i.i.d. per-message faults into
    /// correlated bursts.
    fn roll_delivery(&mut self, i: usize, tick: u64) -> Delivery {
        let delivery = self.effective_fault(i, tick).deliver(&mut self.fault_rng);
        match delivery {
            Delivery::Ok => {}
            Delivery::Dropped => self.metrics.fault.dropped += 1,
            Delivery::Duplicated => self.metrics.fault.duplicated += 1,
            Delivery::Reordered => self.metrics.fault.reordered += 1,
        }
        if let Some(kind) = delivery.fault_name() {
            self.config.tracer.emit(|| TraceEvent::Fault { tick, kind });
        }
        delivery
    }

    /// Spends one retry from the reconnection's budget. Returns `false`
    /// when the budget is exhausted (the session must be abandoned).
    fn consume_retry(&mut self, retries: &mut u32) -> bool {
        if *retries >= self.config.session.max_retries {
            return false;
        }
        *retries += 1;
        self.metrics.fault.retries += 1;
        true
    }

    /// Gives up on the current reconnection. The mobile keeps its
    /// persisted tentative log and its unacked-session note; the next
    /// reconnection (pulled earlier when retry backoff is enabled)
    /// resolves the session's fate against the ledger. Never silent: the
    /// abandon is counted, stepped, *and* reported as an
    /// invariant-adjacent event — an abandoned session is protocol-legal
    /// but always worth a post-mortem look.
    fn abandon(&mut self, i: usize, tick: u64, seq: u64, work: f64) -> f64 {
        self.metrics.fault.abandoned_sessions += 1;
        self.backoff_level[i] = self.backoff_level[i].saturating_add(1);
        self.config.tracer.emit(|| TraceEvent::SessionStep {
            tick,
            mobile: i,
            seq,
            step: SessionStepKind::Abandon,
        });
        self.config.tracer.emit(|| TraceEvent::Invariant {
            name: "session-abandoned",
            tick,
            mobile: i,
            seq,
        });
        work
    }

    /// Synchronizes mobile `i` through the resumable session protocol:
    /// offer → merge → install → re-execute → ack, every step idempotent
    /// under the `(mobile, seq)` session id and individually retryable
    /// within one bounded budget. With [`FaultPlan::none`] this composes
    /// exactly the legacy path's primitives in the legacy order, so
    /// fault-free runs are byte-identical.
    fn sync_session(&mut self, i: usize, tick: u64, spec: Option<Speculative>) -> f64 {
        let mut work = 0.0;
        let mut retries: u32 = 0;
        if !self.recover_unacked(i, tick, &mut retries, &mut work) {
            // The reconnection died mid-recovery.
            let seq = self.mobiles[i].unacked().map_or(0, |u| u.seq);
            return self.abandon(i, tick, seq, work);
        }
        let seq = self.mobiles[i].begin_session();
        let mut decision: Option<SyncDecision> = None;
        let mut spec = spec;
        loop {
            // Offer (mobile → base), retransmitted on loss.
            let offer = self.roll_delivery(i, tick);
            if offer == Delivery::Dropped {
                if !self.consume_retry(&mut retries) {
                    return self.abandon(i, tick, seq, work);
                }
                continue;
            }
            self.config.tracer.emit(|| TraceEvent::SessionStep {
                tick,
                mobile: i,
                seq,
                step: SessionStepKind::Offer,
            });
            // Base-side handling, idempotent by (mobile, seq).
            if self.ledger.contains(i, seq) {
                // A retransmitted offer for a session that already
                // installed: the durable record suppresses a second
                // install; only whatever re-execution remains is run.
                self.metrics.fault.ledger_resumes += 1;
                self.config.tracer.emit(|| TraceEvent::SessionStep {
                    tick,
                    mobile: i,
                    seq,
                    step: SessionStepKind::Resume,
                });
                work += self.resume_or_degrade(i, seq, tick);
            } else {
                if decision.is_none() {
                    decision = Some(self.plan_sync(i, tick, spec.take()));
                    self.config.tracer.emit(|| TraceEvent::SessionStep {
                        tick,
                        mobile: i,
                        seq,
                        step: SessionStepKind::Merge,
                    });
                }
                if self.effective_fault(i, tick).mid_merge_disconnect(&mut self.fault_rng) {
                    // The mobile dropped while the base computed the
                    // merge; the computed decision is retained and resumed
                    // on retry without recomputation.
                    self.metrics.fault.mid_merge_disconnects += 1;
                    self.config
                        .tracer
                        .emit(|| TraceEvent::Fault { tick, kind: "mid-merge-disconnect" });
                    if !self.consume_retry(&mut retries) {
                        return self.abandon(i, tick, seq, work);
                    }
                    continue;
                }
                match decision.take().expect("decision computed above") {
                    SyncDecision::Refresh => {} // nothing durable to do
                    d => {
                        let record = self.build_record(i, d);
                        self.session_install(i, seq, record, tick);
                        if self.effective_fault(i, tick).base_crash(&mut self.fault_rng) {
                            // Crash between install and re-execution: the
                            // log and ledger survive, in-flight scratch
                            // does not. The retry's offer finds the ledger
                            // record and resumes from it. With durability
                            // enabled, "survive" is checked for real: the
                            // WAL is recovered and compared to the live
                            // state at exactly this crash point.
                            self.metrics.fault.base_crashes += 1;
                            self.config
                                .tracer
                                .emit(|| TraceEvent::Fault { tick, kind: "base-crash" });
                            self.shadow_recovery_check();
                            if !self.consume_retry(&mut retries) {
                                return self.abandon(i, tick, seq, work);
                            }
                            continue;
                        }
                        work += self.resume_or_degrade(i, seq, tick);
                    }
                }
            }
            if offer == Delivery::Duplicated && self.ledger.contains(i, seq) {
                // The duplicate copy of the offer arrives after the first
                // completed the install; the ledger guard rejects it — the
                // no-double-install path.
                self.metrics.fault.duplicate_installs_suppressed += 1;
            }
            // Ack (base → mobile): ships the refreshed origin. A lost ack
            // sends the mobile back to retransmitting its offer.
            match self.roll_delivery(i, tick) {
                Delivery::Dropped => {
                    if !self.consume_retry(&mut retries) {
                        return self.abandon(i, tick, seq, work);
                    }
                }
                Delivery::Ok | Delivery::Duplicated | Delivery::Reordered => {
                    // A completed session steps the mobile off the
                    // backoff ladder.
                    self.backoff_level[i] = 0;
                    self.mobiles[i].ack_session();
                    self.refresh_origin(i);
                    self.prune_after_ack(i, seq);
                    self.config.tracer.emit(|| TraceEvent::SessionStep {
                        tick,
                        mobile: i,
                        seq,
                        step: SessionStepKind::Ack,
                    });
                    return work;
                }
            }
        }
    }

    /// Resolves a prior unacked session against the ledger (the first
    /// thing a reconnecting mobile does). If the session had installed,
    /// its remaining re-execution is completed and the already-committed
    /// prefix is trimmed from the mobile's persisted log. Returns `false`
    /// when the status exchange itself exhausted the retry budget.
    fn recover_unacked(&mut self, i: usize, tick: u64, retries: &mut u32, work: &mut f64) -> bool {
        let Some(unacked) = self.mobiles[i].unacked() else {
            return true;
        };
        // Status query (mobile → base), retransmitted on loss; any other
        // delivery (including duplicated or reordered copies) gets through.
        while let Delivery::Dropped = self.roll_delivery(i, tick) {
            if !self.consume_retry(retries) {
                return false;
            }
        }
        if self.ledger.contains(i, unacked.seq) {
            // The session reached its install: finish whatever
            // re-execution remains, then drop the committed prefix. The
            // surviving suffix ran from a state including that prefix, so
            // trim_prefix marks the origin dirty and the next plan
            // reprocesses it.
            self.metrics.fault.recovered_sessions += 1;
            self.config.tracer.emit(|| TraceEvent::SessionStep {
                tick,
                mobile: i,
                seq: unacked.seq,
                step: SessionStepKind::Resume,
            });
            *work += self.resume_or_degrade(i, unacked.seq, tick);
            self.mobiles[i].trim_prefix(unacked.offered);
            self.metrics.fault.trimmed_txns += unacked.offered;
            // The status exchange doubles as the lost ack: the resolved
            // session's ledger records can go.
            self.prune_after_ack(i, unacked.seq);
        }
        // else: nothing durable ever happened; the whole log is still
        // pending and the fresh session below covers it.
        self.mobiles[i].ack_session();
        true
    }

    /// Completes a ledger-recorded session: re-executes whatever remains
    /// of its plan (progress is durable per step) and emits its metrics
    /// record exactly once. Returns the base work units to account, 0.0
    /// if the session had already completed.
    ///
    /// A missing ledger record is reported as [`LedgerGap`] instead of
    /// panicking: a record the protocol expects can be absent after a
    /// partial recovery, and the caller degrades to legacy reprocessing
    /// rather than aborting the run.
    fn resume_session(&mut self, i: usize, seq: u64, tick: u64) -> Result<f64, LedgerGap> {
        let Some(record) = self.ledger.get(i, seq).cloned() else {
            return Err(LedgerGap { mobile: i, seq });
        };
        if record.completed {
            return Ok(0.0);
        }
        let tracer = self.config.tracer.clone();
        let span = tracer.span_start();
        for idx in record.reexec_done..record.plan.reexecute.len() {
            let id = record.plan.reexecute[idx];
            self.base.reexecute(&mut self.arena, id);
            self.mark_resolved(id);
            if let Some(entry) = self.ledger.get_mut(i, seq) {
                entry.reexec_done = idx + 1;
            }
            self.wal_sync_commits();
            self.wal_append(&WalRecord::ReexecAdvance {
                mobile: i as u64,
                seq,
                done: (idx + 1) as u64,
            });
            self.config.tracer.emit(|| TraceEvent::SessionStep {
                tick,
                mobile: i,
                seq,
                step: SessionStepKind::Reexecute,
            });
        }
        if let Some(entry) = self.ledger.get_mut(i, seq) {
            entry.completed = true;
        }
        self.wal_append(&WalRecord::SessionComplete { mobile: i as u64, seq });
        tracer.span_end(Phase::Reexecute, span);
        let mut sync = record.sync;
        sync.tick = tick;
        self.metrics.record(sync, record.cost);
        Ok(record.cost.base_cpu + record.cost.base_io)
    }

    /// Runs [`Simulation::resume_session`], degrading a [`LedgerGap`] to
    /// legacy reprocessing of the mobile's pending log: the base has no
    /// durable memory of the session, so the safe move is the \[GHOS96\]
    /// fallback, not a crash.
    fn resume_or_degrade(&mut self, i: usize, seq: u64, tick: u64) -> f64 {
        match self.resume_session(i, seq, tick) {
            Ok(work) => work,
            Err(gap) => {
                self.metrics.fault.ledger_gaps += 1;
                self.config.tracer.emit(|| TraceEvent::Invariant {
                    name: "ledger-gap",
                    tick,
                    mobile: gap.mobile,
                    seq: gap.seq,
                });
                // This path bypasses `plan_sync`, so the autopsy (when
                // enabled) is emitted here.
                if self.config.telemetry.autopsy && self.config.tracer.enabled() {
                    self.last_plan_ns = 0;
                    self.emit_reprocess_autopsy(gap.mobile, tick, ReprocessReason::LedgerGap);
                }
                self.reprocess_all(gap.mobile, tick, ReprocessReason::LedgerGap)
            }
        }
    }

    /// Turns a non-trivial sync decision into the durable session record
    /// written at install time: the install plan, the metrics record to
    /// emit at completion, and the session's cost report.
    fn build_record(&mut self, i: usize, decision: SyncDecision) -> SessionRecord {
        match decision {
            SyncDecision::Refresh => unreachable!("refresh sessions write no record"),
            SyncDecision::Merge { hm, hb_len, outcome, retroactive } => {
                let backed_out_stmts = outcome
                    .backed_out
                    .iter()
                    .map(|id| self.arena.get(*id).program().statement_count())
                    .sum();
                let stats = self.merge_stats(&hm, hb_len, &outcome, backed_out_stmts);
                let cost = merging_cost(&self.config.cost, &stats);
                SessionRecord {
                    retro_from: retroactive.then(|| self.mobiles[i].origin_index()),
                    sync: SyncRecord {
                        tick: 0, // filled at emission
                        mobile: i,
                        pending: self.original_len(&hm),
                        hb_len,
                        saved: self.original_count(&outcome.saved),
                        backed_out: self.original_count(&outcome.backed_out),
                        reprocessed: 0,
                        merge_failed: false,
                        sync_ns: 0,
                    },
                    plan: outcome.install_plan(),
                    cost,
                    reexec_done: 0,
                    completed: false,
                }
            }
            SyncDecision::Reprocess { cause } => {
                let pending: Vec<TxnId> = self.mobiles[i].history().iter().collect();
                let total_stmts: usize =
                    pending.iter().map(|id| self.arena.get(*id).program().statement_count()).sum();
                let cost = reprocessing_cost(
                    &self.config.cost,
                    &ReprocessStats { n_txns: pending.len(), total_stmts },
                );
                SessionRecord {
                    sync: SyncRecord {
                        tick: 0, // filled at emission
                        mobile: i,
                        pending: pending.len(),
                        hb_len: 0,
                        saved: 0,
                        backed_out: 0,
                        reprocessed: pending.len(),
                        merge_failed: cause.merge_failed(),
                        sync_ns: 0,
                    },
                    plan: InstallPlan {
                        forwarded: DbState::new(),
                        reexecute: pending,
                        saved: Vec::new(),
                    },
                    retro_from: None,
                    cost,
                    reexec_done: 0,
                    completed: false,
                }
            }
        }
    }

    /// Protocol step 5 under the session path: commits forwarded updates
    /// and the durable session record in one (modeled) write-ahead
    /// transaction. An empty forwarded set (a reprocess plan) commits
    /// nothing, exactly like the legacy path.
    fn session_install(&mut self, i: usize, seq: u64, record: SessionRecord, tick: u64) {
        let tracer = self.config.tracer.clone();
        let span = tracer.span_start();
        if let Some(from) = record.retro_from {
            self.base
                .base_mut()
                .retro_patch(&self.arena, from, &record.plan.forwarded)
                .expect("snapshot origin index lies within the base log");
            self.metrics.retro_patches += 1;
            self.wal_append(&WalRecord::RetroPatch {
                from_index: from as u64,
                updates: record.plan.forwarded.clone(),
            });
        } else {
            let _ = self.base.install_updates(&mut self.arena, &record.plan.forwarded);
            self.wal_sync_commits();
        }
        for idx in 0..record.plan.saved.len() {
            self.mark_resolved(record.plan.saved[idx]);
        }
        self.wal_append(&WalRecord::SessionInstall {
            mobile: i as u64,
            seq,
            record: record.clone(),
        });
        tracer.span_end(Phase::Install, span);
        let inserted = self.ledger.insert(i, seq, record);
        if inserted {
            self.config.tracer.emit(|| TraceEvent::SessionStep {
                tick,
                mobile: i,
                seq,
                step: SessionStepKind::Install,
            });
        } else {
            // A second install slipping past the ledger guard is a protocol
            // bug. The counter (checked in release builds too, unlike the
            // debug assertion it replaced) surfaces it through the metrics
            // oracle; the event carries the session id for the recorder.
            self.metrics.fault.double_resolutions += 1;
            self.config.tracer.emit(|| TraceEvent::Invariant {
                name: "double-install",
                tick,
                mobile: i,
                seq,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultRates};
    use crate::metrics::StormStats;

    fn quiet_workload(seed: u64) -> ScenarioParams {
        ScenarioParams {
            n_vars: 32,
            commutative_fraction: 0.5,
            guarded_fraction: 0.2,
            read_only_fraction: 0.1,
            hot_fraction: 0.1,
            hot_prob: 0.4,
            seed,
            ..ScenarioParams::default()
        }
    }

    fn config(protocol: Protocol, strategy: SyncStrategy, seed: u64) -> SimConfig {
        SimConfig {
            n_mobiles: 3,
            duration: 300,
            base_rate: 0.3,
            mobile_rate: 0.15,
            connect_every: 40,
            protocol,
            strategy,
            workload: quiet_workload(seed),
            cost: CostParams::default(),
            base_capacity: 100.0,
            base_nodes: 1,
            canned: None,
            parallelism: Parallelism::Auto,
            synchronized_reconnects: false,
            sync_path: SyncPath::Legacy,
            fault: FaultPlan::none(),
            session: SessionConfig::default(),
            check_convergence: false,
            durability: DurabilityConfig::default(),
            backlog_sample_every: 10,
            tracer: TracerHandle::noop(),
            reuse_merge_scratch: false,
            scheduler: SchedulerMode::EventQueue,
            lean_base_log: false,
            compaction: CompactionConfig::default(),
            connectivity: ConnectivityModel::AlwaysOn,
            admission: AdmissionConfig::unbounded(),
            telemetry: TelemetryConfig::default(),
        }
    }

    #[test]
    fn reprocessing_run_completes_and_reprocesses_everything() {
        let report = Simulation::new(config(
            Protocol::Reprocessing,
            SyncStrategy::WindowStart { window: 100 },
            1,
        ))
        .expect("valid sim config")
        .run();
        let m = &report.metrics;
        assert!(m.tentative_generated > 0);
        assert_eq!(m.saved, 0);
        assert!(m.reprocessed > 0);
        assert!(m.syncs > 0);
        // Everything synced so far was re-executed at the base.
        assert!(report.base_commits >= m.reprocessed + m.base_generated);
    }

    #[test]
    fn merging_run_saves_work() {
        // Window spanning the whole run: no window-miss reprocessing, so
        // the save ratio reflects pure conflict back-outs. The base history
        // grows over the window, so back-outs accumulate (the Section 2.2
        // trade-off) — the ratio is positive but far from 1.
        let report = Simulation::new(config(
            Protocol::merging_default(),
            SyncStrategy::WindowStart { window: 1000 },
            1,
        ))
        .expect("valid sim config")
        .run();
        let m = &report.metrics;
        assert!(m.saved > 0, "merging saved nothing: {m:?}");
        assert!(m.save_ratio() > 0.1, "save ratio too low: {}", m.save_ratio());
        assert_eq!(m.merge_failures, 0, "strategy 2 never fails to merge");
        assert_eq!(m.window_misses, 0);
    }

    #[test]
    fn commutative_workloads_save_more() {
        let run = |commutative: f64| {
            let mut cfg =
                config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 21);
            cfg.workload.commutative_fraction = commutative;
            cfg.workload.guarded_fraction = 0.0;
            cfg.workload.read_only_fraction = 0.0;
            Simulation::new(cfg).expect("valid sim config").run().metrics.save_ratio()
        };
        let low = run(0.0);
        let high = run(1.0);
        assert!(high > low, "commutative workload should save more: {high} !> {low}");
    }

    #[test]
    fn merging_reduces_base_io_vs_reprocessing() {
        // Moderate contention so a healthy fraction of work survives the
        // merge (the regime Section 7.1 says merging targets).
        let strategies = SyncStrategy::WindowStart { window: 150 };
        let mut low = config(Protocol::Reprocessing, strategies, 7);
        low.workload.n_vars = 128;
        low.workload.hot_prob = 0.15;
        low.workload.commutative_fraction = 0.7;
        let mut low_m = low.clone();
        low_m.protocol = Protocol::merging_default();
        let rep = Simulation::new(low).expect("valid sim config").run();
        let mer = Simulation::new(low_m).expect("valid sim config").run();
        // Same workload seed: merging must force fewer log writes at the
        // base (one per merge vs one per transaction).
        assert!(
            mer.metrics.cost.base_io < rep.metrics.cost.base_io,
            "merging io {} !< reprocessing io {}",
            mer.metrics.cost.base_io,
            rep.metrics.cost.base_io
        );
    }

    #[test]
    fn strategy1_fails_merges_under_contention() {
        // High contention + several mobiles: merged installs retro-patch
        // the base log, invalidating other snapshots.
        let mut cfg = config(Protocol::merging_default(), SyncStrategy::PerDisconnectSnapshot, 3);
        cfg.workload.hot_prob = 0.9;
        cfg.workload.hot_fraction = 0.05;
        cfg.n_mobiles = 6;
        cfg.mobile_rate = 0.3;
        let report = Simulation::new(cfg).expect("valid sim config").run();
        assert!(
            report.metrics.merge_failures > 0,
            "expected Strategy-1 merge failures: {:?}",
            report.metrics
        );
    }

    #[test]
    fn adaptive_window_bounds_hb_length() {
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::AdaptiveWindow { max_hb: 15 }, 13);
        cfg.base_rate = 0.5; // fast-growing base history
        let report = Simulation::new(cfg).expect("valid sim config").run();
        let m = &report.metrics;
        // Every merge ran against a bounded base history.
        for r in &m.records {
            assert!(r.hb_len <= 15 + 1, "adaptive window let H_b grow to {}", r.hb_len);
        }
        assert!(m.syncs > 0);
        assert_eq!(m.merge_failures, 0);
    }

    #[test]
    fn window_misses_counted() {
        // Connect interval much longer than the window: every reconnection
        // lands in a later window and must reprocess.
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 20 }, 5);
        cfg.connect_every = 80;
        let report = Simulation::new(cfg).expect("valid sim config").run();
        assert!(report.metrics.window_misses > 0);
        assert!(report.metrics.reprocessed > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Simulation::new(config(
            Protocol::merging_default(),
            SyncStrategy::WindowStart { window: 100 },
            9,
        ))
        .expect("valid sim config")
        .run();
        let b = Simulation::new(config(
            Protocol::merging_default(),
            SyncStrategy::WindowStart { window: 100 },
            9,
        ))
        .expect("valid sim config")
        .run();
        assert_eq!(a.final_master, b.final_master);
        assert_eq!(a.metrics.saved, b.metrics.saved);
        assert_eq!(a.metrics.records.len(), b.metrics.records.len());
    }

    #[test]
    fn canned_simulation_uses_declared_tables() {
        use histmerge_workload::canned_mix::CannedMixParams;
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 200 }, 41);
        cfg.canned = Some(CannedMixParams {
            n_accounts: 24,
            n_prices: 6,
            seed: 41,
            ..CannedMixParams::default()
        });
        let report = Simulation::new(cfg).expect("valid sim config").run();
        let m = &report.metrics;
        assert!(m.tentative_generated > 0);
        assert!(m.saved > 0, "canned merging saved nothing: {m:?}");
        assert_eq!(m.merge_failures, 0);
        // Deterministic like everything else.
        let mut cfg2 =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 200 }, 41);
        cfg2.canned = Some(CannedMixParams {
            n_accounts: 24,
            n_prices: 6,
            seed: 41,
            ..CannedMixParams::default()
        });
        let again = Simulation::new(cfg2).expect("valid sim config").run();
        assert_eq!(report.final_master, again.final_master);
    }

    #[test]
    fn inventory_canned_simulation_merges_compensable_bookings() {
        use histmerge_workload::canned_mix::{CannedFlavor, CannedMixParams};
        let make = || {
            let mut cfg =
                config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 200 }, 43);
            cfg.canned = Some(CannedMixParams {
                n_accounts: 12,
                n_prices: 6,
                flavor: CannedFlavor::Inventory,
                seed: 43,
                ..CannedMixParams::default()
            });
            cfg
        };
        let report = Simulation::new(make()).expect("valid sim config").run();
        let m = &report.metrics;
        assert!(m.tentative_generated > 0);
        assert!(m.saved > 0, "inventory merging saved nothing: {m:?}");
        assert_eq!(m.merge_failures, 0);
        let again = Simulation::new(make()).expect("valid sim config").run();
        assert_eq!(report.final_master, again.final_master);
    }

    #[test]
    fn compaction_squashes_without_changing_the_committed_state() {
        use crate::metrics::CompactionStats;
        use histmerge_workload::canned_mix::CannedMixParams;
        let canned =
            CannedMixParams { n_accounts: 24, n_prices: 6, seed: 41, ..Default::default() };
        let make = |enabled: bool| {
            let mut cfg =
                config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 200 }, 41);
            cfg.canned = Some(canned.clone());
            cfg.mobile_rate = 0.4; // longer pending runs, more squash room
            if enabled {
                cfg.compaction = CompactionConfig::enabled();
            }
            cfg
        };
        let plain = Simulation::new(make(false)).expect("valid sim config").run();
        let squashed = Simulation::new(make(true)).expect("valid sim config").run();
        // The committed outcome is byte-identical; only the planning
        // mechanism (and its cost accounting) changed.
        assert_eq!(plain.final_master, squashed.final_master);
        assert_eq!(plain.base_commits, squashed.base_commits);
        let c = squashed.metrics.compaction;
        assert!(c.runs_squashed > 0, "canned banking squashed nothing: {c:?}");
        assert!(c.txns_out < c.txns_in, "no shrink: {c:?}");
        assert_eq!(plain.metrics.compaction, CompactionStats::default());
        // Sync records stay in original-transaction units.
        for (a, b) in plain.metrics.records.iter().zip(&squashed.metrics.records) {
            assert_eq!((a.tick, a.mobile, a.pending), (b.tick, b.mobile, b.pending));
            assert_eq!(
                (a.saved, a.backed_out, a.reprocessed),
                (b.saved, b.backed_out, b.reprocessed)
            );
        }
        assert_eq!(plain.metrics.records.len(), squashed.metrics.records.len());
    }

    #[test]
    fn partitioned_base_accounts_coordination() {
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 31);
        cfg.base_nodes = 4;
        cfg.workload.writes_per_txn = 3; // multi-partition footprints
        let report = Simulation::new(cfg).expect("valid sim config").run();
        assert_eq!(report.cluster.per_node_commits.len(), 4);
        assert!(report.cluster.distributed_txns > 0, "wide transactions expected");
        assert!(report.cluster.two_pc_messages > 0);
        assert!(report.cluster.imbalance() >= 1.0);
        // A single-node base never coordinates.
        let mut cfg1 =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 31);
        cfg1.workload.writes_per_txn = 3;
        let single = Simulation::new(cfg1).expect("valid sim config").run();
        assert_eq!(single.cluster.two_pc_messages, 0);
        // Partitioning does not change the outcome, only the accounting.
        assert_eq!(single.final_master, report.final_master);
    }

    #[test]
    fn jittered_next_connect_is_clamped() {
        // Nominal case: base + draw − jitter.
        assert_eq!(jittered_next_connect(100, 40, 10, 0), 130);
        assert_eq!(jittered_next_connect(100, 40, 10, 20), 150);
        // Jitter exceeding tick + every must clamp, not underflow.
        assert_eq!(jittered_next_connect(0, 1, 100, 0), 1);
        assert_eq!(jittered_next_connect(5, 2, 1000, 0), 6);
        // Never schedules at or before the current tick.
        for draw in 0..=2 {
            assert!(jittered_next_connect(7, 1, 1, draw) > 7);
        }
    }

    #[test]
    fn tight_connect_interval_keeps_advancing() {
        // Regression: connect_every = 2 puts reconnects on nearly every
        // tick; scheduling arithmetic must keep producing strictly
        // advancing reconnect times (the old expression relied on unsigned
        // wraparound staying in range).
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 50 }, 17);
        cfg.connect_every = 2;
        cfg.duration = 200;
        let report = Simulation::new(cfg).expect("valid sim config").run();
        let m = &report.metrics;
        assert!(m.syncs > 50, "tight interval should sync often: {}", m.syncs);
        // Per-mobile reconnect ticks strictly increase.
        for mobile in 0..3 {
            let ticks: Vec<u64> =
                m.records.iter().filter(|r| r.mobile == mobile).map(|r| r.tick).collect();
            assert!(ticks.windows(2).all(|w| w[0] < w[1]), "mobile {mobile}: {ticks:?}");
        }
    }

    #[test]
    fn synchronized_reconnects_form_batches() {
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 200 }, 23);
        cfg.synchronized_reconnects = true;
        // Force a real worker pool: Auto degrades to serial on one CPU.
        cfg.parallelism = Parallelism::Threads(4);
        cfg.n_mobiles = 6;
        cfg.connect_every = 25;
        cfg.duration = 200;
        let report = Simulation::new(cfg).expect("valid sim config").run();
        let m = &report.metrics;
        assert!(
            m.batch_sizes.contains(&6),
            "synchronized mobiles should reconnect together: {:?}",
            m.batch_sizes
        );
        assert!(m.speculative_hits > 0, "batched merges should speculate: {m:?}");
    }

    #[test]
    fn parallel_and_serial_runs_are_identical() {
        // The core tentpole claim, exercised at unit scope (the full
        // matrix lives in tests/parallel_determinism.rs): any Parallelism
        // setting produces the same simulation, byte for byte.
        let mut serial_cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 200 }, 29);
        serial_cfg.synchronized_reconnects = true;
        serial_cfg.n_mobiles = 5;
        serial_cfg.connect_every = 30;
        let mut parallel_cfg = serial_cfg.clone();
        serial_cfg.parallelism = Parallelism::Serial;
        parallel_cfg.parallelism = Parallelism::Threads(4);
        let serial = Simulation::new(serial_cfg).expect("valid sim config").run();
        let parallel = Simulation::new(parallel_cfg).expect("valid sim config").run();
        assert_eq!(serial.final_master, parallel.final_master);
        assert_eq!(serial.metrics.saved, parallel.metrics.saved);
        assert_eq!(serial.metrics.cost.total(), parallel.metrics.cost.total());
        assert_eq!(serial.metrics.records.len(), parallel.metrics.records.len());
        // The parallel run actually took the speculative path.
        assert!(parallel.metrics.speculative_hits > 0);
        assert_eq!(serial.metrics.speculative_hits, 0);
    }

    #[test]
    fn session_path_fault_free_is_byte_identical_to_legacy() {
        for strategy in [
            SyncStrategy::WindowStart { window: 100 },
            SyncStrategy::AdaptiveWindow { max_hb: 20 },
            SyncStrategy::PerDisconnectSnapshot,
        ] {
            let legacy_cfg = config(Protocol::merging_default(), strategy, 33);
            let mut session_cfg = legacy_cfg.clone();
            session_cfg.sync_path = SyncPath::Session;
            session_cfg.fault = FaultPlan::none();
            let legacy = Simulation::new(legacy_cfg).expect("valid sim config").run();
            let session = Simulation::new(session_cfg).expect("valid sim config").run();
            assert_eq!(legacy.final_master, session.final_master, "{}", strategy.name());
            assert_eq!(legacy.base_commits, session.base_commits);
            assert_eq!(legacy.metrics.normalized(), session.metrics.normalized());
            assert_eq!(legacy.cluster, session.cluster);
            assert_eq!(session.metrics.fault, crate::metrics::FaultStats::default());
        }
    }

    #[test]
    fn session_convergence_oracle_holds_fault_free() {
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 2);
        cfg.sync_path = SyncPath::Session;
        cfg.check_convergence = true;
        let report = Simulation::new(cfg).expect("valid sim config").run();
        let oracle = report.convergence.expect("requested");
        assert!(oracle.applicable);
        assert!(oracle.holds(), "{oracle:?}");
        assert_eq!(oracle.commits, report.base_commits);
        assert!(oracle.commits > 0);
    }

    #[test]
    fn certain_base_crashes_recover_through_the_ledger() {
        // Crash rate 1.0: every installing session crashes between install
        // and re-execution, retries, and resumes from its durable record.
        // Recovery completes within the same tick, so everything except
        // the fault counters matches the fault-free run byte-for-byte.
        let mut crash_cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 19);
        crash_cfg.sync_path = SyncPath::Session;
        crash_cfg.check_convergence = true;
        let mut clean_cfg = crash_cfg.clone();
        crash_cfg.fault =
            FaultPlan::seeded(19, crate::fault::FaultRates::only(FaultKind::BaseCrash, 1.0));
        clean_cfg.fault = FaultPlan::none();
        let crashed = Simulation::new(crash_cfg).expect("valid sim config").run();
        let clean = Simulation::new(clean_cfg).expect("valid sim config").run();
        assert!(crashed.metrics.fault.base_crashes > 0);
        assert!(crashed.metrics.fault.ledger_resumes > 0);
        assert_eq!(crashed.metrics.fault.abandoned_sessions, 0);
        assert_eq!(crashed.final_master, clean.final_master);
        assert_eq!(crashed.metrics.records, clean.metrics.records);
        assert!(crashed.convergence.unwrap().holds());
    }

    #[test]
    fn total_message_loss_abandons_every_session() {
        // Drop rate 1.0: no offer ever arrives; every reconnection burns
        // its retry budget and abandons, leaving tentative logs intact.
        // Only the base tier's own load commits, and the oracle still
        // holds over it.
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 23);
        cfg.sync_path = SyncPath::Session;
        cfg.check_convergence = true;
        cfg.fault =
            FaultPlan::seeded(23, crate::fault::FaultRates::only(FaultKind::MessageLoss, 1.0));
        let report = Simulation::new(cfg).expect("valid sim config").run();
        let m = &report.metrics;
        assert_eq!(m.syncs, 0, "no session ever completes");
        assert!(m.fault.abandoned_sessions > 0);
        assert!(m.fault.dropped > m.fault.abandoned_sessions, "each abandonment took retries");
        assert_eq!(report.base_commits, m.base_generated);
        assert!(report.convergence.unwrap().holds());
    }

    #[test]
    fn duplicated_messages_never_double_install() {
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 29);
        cfg.sync_path = SyncPath::Session;
        cfg.check_convergence = true;
        cfg.fault = FaultPlan::seeded(
            29,
            crate::fault::FaultRates::only(FaultKind::MessageDuplication, 1.0),
        );
        let report = Simulation::new(cfg).expect("valid sim config").run();
        let m = &report.metrics;
        assert!(m.fault.duplicated > 0);
        assert!(
            m.fault.duplicate_installs_suppressed > 0,
            "duplicated offers must hit the ledger guard: {:?}",
            m.fault
        );
        assert_eq!(m.fault.double_resolutions, 0);
        assert!(report.convergence.unwrap().holds());
        // Dedup is absorbing: the run matches the fault-free one.
        let mut clean =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 29);
        clean.sync_path = SyncPath::Session;
        let clean = Simulation::new(clean).expect("valid sim config").run();
        assert_eq!(report.final_master, clean.final_master);
        assert_eq!(report.metrics.records, clean.metrics.records);
    }

    #[test]
    fn moderate_fault_mix_converges_with_recovery_traffic() {
        // A realistic mixed schedule: some sessions abandon and recover at
        // the next reconnection (trimming committed prefixes), others
        // retry through transient faults. The oracle must hold throughout.
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 150 }, 37);
        cfg.sync_path = SyncPath::Session;
        cfg.check_convergence = true;
        cfg.fault = FaultPlan::seeded(37, crate::fault::FaultRates::uniform(0.25));
        let report = Simulation::new(cfg).expect("valid sim config").run();
        let m = &report.metrics;
        assert!(m.syncs > 0, "some sessions still complete");
        assert!(m.fault.retries > 0);
        assert!(report.convergence.unwrap().holds(), "{:?}", report.convergence);
        assert_eq!(m.fault.double_resolutions, 0);
    }

    #[test]
    fn resume_of_a_missing_record_degrades_instead_of_panicking() {
        // Regression for the old `expect("ledger record exists")` panic:
        // a resumption aimed at a session the ledger has no record of
        // must degrade to legacy reprocessing, not abort the run.
        let mut sim = Simulation::new(config(
            Protocol::merging_default(),
            SyncStrategy::WindowStart { window: 100 },
            57,
        ))
        .expect("valid sim config");
        assert_eq!(
            sim.resume_session(0, 99, 0),
            Err(LedgerGap { mobile: 0, seq: 99 }),
            "missing record is a structured error"
        );
        assert_eq!(sim.metrics.fault.ledger_gaps, 0, "resume_session only reports");
        let work = sim.resume_or_degrade(0, 99, 0);
        assert_eq!(sim.metrics.fault.ledger_gaps, 1);
        assert!(work >= 0.0);
        // The degradation reprocessed the mobile's pending log (empty at
        // tick 0, so the sync record shows zero transactions — but the
        // sync did happen, through the legacy path).
        assert_eq!(sim.metrics.syncs, 1);
        assert_eq!(sim.metrics.records[0].reprocessed, 0);
        assert_eq!(sim.metrics.fault.double_resolutions, 0);
    }

    #[test]
    fn invalid_fault_rates_are_rejected_at_construction() {
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 3);
        cfg.fault =
            FaultPlan::seeded(3, crate::fault::FaultRates { drop: -0.5, ..FaultRates::zero() });
        let err = match Simulation::new(cfg) {
            Err(err) => err,
            Ok(_) => panic!("invalid rates must be a structured error"),
        };
        let message = err.to_string();
        assert!(message.contains("drop"), "names the offending rate: {message}");
        assert!(message.contains("must be a probability"), "{message}");
    }

    #[test]
    fn double_install_is_counted_and_traced_instead_of_asserting() {
        use histmerge_obs::FlightRecorder;
        use histmerge_workload::cost::CostReport;
        // Regression for the old `debug_assert!` double-install guard:
        // a second install of the same session must survive (in release
        // and debug builds alike), bump the counter the convergence
        // oracle checks, and leave a traced invariant event.
        let ring = FlightRecorder::handle(16);
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 13);
        cfg.tracer = ring.clone();
        let mut sim = Simulation::new(cfg).expect("valid sim config");
        let record = SessionRecord {
            plan: InstallPlan {
                forwarded: DbState::new(),
                reexecute: Vec::new(),
                saved: Vec::new(),
            },
            retro_from: None,
            sync: SyncRecord {
                tick: 0,
                mobile: 0,
                pending: 0,
                hb_len: 0,
                saved: 0,
                backed_out: 0,
                reprocessed: 0,
                merge_failed: false,
                sync_ns: 0,
            },
            cost: CostReport::default(),
            reexec_done: 0,
            completed: false,
        };
        sim.session_install(0, 7, record.clone(), 5);
        assert_eq!(sim.metrics.fault.double_resolutions, 0);
        sim.session_install(0, 7, record, 6);
        assert_eq!(sim.metrics.fault.double_resolutions, 1);
        let dump = ring.dump_jsonl().expect("ring retains events");
        assert!(
            dump.contains(
                r#"{"type":"invariant","name":"double-install","tick":6,"mobile":0,"seq":7}"#
            ),
            "missing invariant event in:\n{dump}"
        );
        // The first, legitimate install left its session step.
        assert!(dump.contains(r#""step":"install""#), "{dump}");
    }

    #[test]
    fn acked_sessions_are_pruned_so_the_ledger_stays_bounded() {
        // A long fault-free session run: every session acks, so every
        // record is pruned and the ledger ends empty — bounded by
        // in-flight sessions, not by the number of syncs.
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 43);
        cfg.sync_path = SyncPath::Session;
        cfg.duration = 600;
        let report = Simulation::new(cfg).expect("valid sim config").run();
        assert!(report.metrics.syncs > 20, "enough sessions to matter");
        assert_eq!(report.ledger_len, 0, "every acked session was pruned");
        assert!(report.metrics.wal.pruned_records > 0);

        // Under a heavy mixed fault schedule some sessions stay
        // unresolved, but never more than one per mobile.
        let mut faulted =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 43);
        faulted.sync_path = SyncPath::Session;
        faulted.duration = 600;
        faulted.fault = FaultPlan::seeded(43, crate::fault::FaultRates::uniform(0.25));
        let report = Simulation::new(faulted).expect("valid sim config").run();
        assert!(
            report.ledger_len <= 3,
            "ledger bounded by in-flight sessions (n_mobiles), got {}",
            report.ledger_len
        );
    }

    #[test]
    fn durability_is_observation_only() {
        // The WAL must never change the simulation: a durability-enabled
        // run equals the plain run everywhere but the WAL counters.
        for sync_path in [SyncPath::Legacy, SyncPath::Session] {
            let mut plain =
                config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 61);
            plain.sync_path = sync_path;
            plain.check_convergence = true;
            let mut durable = plain.clone();
            durable.durability = DurabilityConfig { enabled: true, checkpoint_every: 64 };
            let a = Simulation::new(plain).expect("valid sim config").run();
            let b = Simulation::new(durable).expect("valid sim config").run();
            assert_eq!(a.final_master, b.final_master);
            assert_eq!(a.base_commits, b.base_commits);
            assert_eq!(a.cluster, b.cluster);
            assert_eq!(a.metrics.normalized(), b.metrics.normalized());
            assert_eq!(a.convergence, b.convergence);
            assert!(a.durable.is_none());
            let durable = b.durable.expect("durability enabled");
            assert!(b.metrics.wal.records > 0);
            assert!(b.metrics.wal.checkpoints > 0, "600+ records at interval 64");
            assert!(b.metrics.wal.segments_retired > 0);
            assert_eq!(durable.log.len(), b.base_commits);
        }
    }

    #[test]
    fn recovery_of_a_full_run_reproduces_the_live_state() {
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 67);
        cfg.sync_path = SyncPath::Session;
        cfg.durability = DurabilityConfig { enabled: true, checkpoint_every: 128 };
        let report = Simulation::new(cfg).expect("valid sim config").run();
        let durable = report.durable.expect("durability enabled");
        let recovered =
            recovery::recover(&durable.arena, &durable.storage).expect("clean WAL recovers");
        assert!(!recovered.torn);
        assert_eq!(recovered.base.log(), durable.log.as_slice());
        assert_eq!(recovered.base.master(), &report.final_master);
        assert_eq!(recovered.epoch, durable.epoch);
        assert_eq!(recovered.base.epoch_start(), durable.epoch_start);
        assert_eq!(recovered.base.epoch_state(), &durable.epoch_state);
        assert_eq!(recovered.ledger, durable.ledger);
    }

    #[test]
    fn base_crashes_run_the_shadow_recovery_oracle() {
        // Crash faults + durability: every simulated crash point triggers
        // an in-run recovery that must match the live state (the check
        // panics on mismatch, so this test passing IS the oracle).
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 19);
        cfg.sync_path = SyncPath::Session;
        cfg.check_convergence = true;
        cfg.durability = DurabilityConfig { enabled: true, checkpoint_every: 64 };
        cfg.fault =
            FaultPlan::seeded(19, crate::fault::FaultRates::only(FaultKind::BaseCrash, 1.0));
        let report = Simulation::new(cfg).expect("valid sim config").run();
        assert!(report.metrics.fault.base_crashes > 0);
        assert_eq!(
            report.metrics.wal.shadow_recoveries as usize, report.metrics.fault.base_crashes,
            "one recovery check per crash"
        );
        assert!(report.convergence.unwrap().holds());
    }

    #[test]
    fn event_queue_and_tick_scan_runs_are_byte_identical() {
        for strategy in [
            SyncStrategy::WindowStart { window: 100 },
            SyncStrategy::AdaptiveWindow { max_hb: 20 },
            SyncStrategy::PerDisconnectSnapshot,
        ] {
            let mut event_cfg = config(Protocol::merging_default(), strategy, 71);
            event_cfg.check_convergence = true;
            let mut scan_cfg = event_cfg.clone();
            event_cfg.scheduler = SchedulerMode::EventQueue;
            scan_cfg.scheduler = SchedulerMode::TickScan;
            let event = Simulation::new(event_cfg).expect("valid sim config").run();
            let scan = Simulation::new(scan_cfg).expect("valid sim config").run();
            assert_eq!(event.final_master, scan.final_master, "{}", strategy.name());
            assert_eq!(event.base_commits, scan.base_commits);
            assert_eq!(event.cluster, scan.cluster);
            assert_eq!(event.metrics.normalized(), scan.metrics.normalized());
            assert_eq!(event.convergence, scan.convergence);
        }
    }

    #[test]
    fn event_mode_never_scans_the_fleet() {
        // The tentpole's regression guard: under the event scheduler, the
        // queue's pops are the ONLY way per-tick mobile work is found — no
        // code path falls back to an O(fleet) traversal.
        let cfg = config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 9);
        let duration = cfg.duration;
        let event = Simulation::new(cfg.clone()).expect("valid sim config").run();
        assert_eq!(event.metrics.sched.fleet_scans, 0, "event mode must not scan the fleet");
        assert!(event.metrics.sched.events_popped > 0, "the queue drove the run");
        assert!(
            event.metrics.sched.events_pushed >= event.metrics.sched.events_popped,
            "pops never exceed pushes: {:?}",
            event.metrics.sched
        );

        let mut scan_cfg = cfg;
        scan_cfg.scheduler = SchedulerMode::TickScan;
        let scan = Simulation::new(scan_cfg).expect("valid sim config").run();
        assert_eq!(
            scan.metrics.sched.fleet_scans,
            2 * duration,
            "legacy mode scans twice per tick (generation + reconnect filter)"
        );
        assert_eq!(scan.metrics.sched.events_pushed, 0);
        assert_eq!(scan.metrics.sched.events_popped, 0);
    }

    #[test]
    fn lean_base_log_is_observation_free() {
        for scheduler in [SchedulerMode::EventQueue, SchedulerMode::TickScan] {
            let mut full_cfg = config(
                Protocol::merging_default(),
                SyncStrategy::AdaptiveWindow { max_hb: 20 },
                77,
            );
            full_cfg.scheduler = scheduler;
            full_cfg.check_convergence = true;
            let mut lean_cfg = full_cfg.clone();
            lean_cfg.lean_base_log = true;
            let full = Simulation::new(full_cfg).expect("valid sim config").run();
            let lean = Simulation::new(lean_cfg).expect("valid sim config").run();
            assert_eq!(full.final_master, lean.final_master);
            assert_eq!(full.base_commits, lean.base_commits);
            assert_eq!(full.cluster, lean.cluster);
            assert_eq!(full.metrics.normalized(), lean.metrics.normalized());
            // The convergence oracle replays ids only, so it still holds
            // over a lean log.
            assert!(lean.convergence.expect("requested").holds());
        }
    }

    #[test]
    fn lean_base_log_rejects_after_state_readers() {
        let mut durable =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 5);
        durable.lean_base_log = true;
        durable.durability = DurabilityConfig { enabled: true, checkpoint_every: 64 };
        assert_eq!(Simulation::new(durable).err(), Some(SimConfigError::LeanLogNeedsNoDurability));

        let mut snapshot =
            config(Protocol::merging_default(), SyncStrategy::PerDisconnectSnapshot, 5);
        snapshot.lean_base_log = true;
        assert_eq!(
            Simulation::new(snapshot).err(),
            Some(SimConfigError::LeanLogNeedsWindowStrategy)
        );
    }

    #[test]
    fn backlog_grows_with_mobile_count_under_reprocessing() {
        let small = {
            let mut c =
                config(Protocol::Reprocessing, SyncStrategy::WindowStart { window: 100 }, 11);
            c.n_mobiles = 2;
            c.base_capacity = 30.0;
            Simulation::new(c).expect("valid sim config").run()
        };
        let large = {
            let mut c =
                config(Protocol::Reprocessing, SyncStrategy::WindowStart { window: 100 }, 11);
            c.n_mobiles = 12;
            c.base_capacity = 30.0;
            Simulation::new(c).expect("valid sim config").run()
        };
        assert!(
            large.metrics.peak_backlog > small.metrics.peak_backlog,
            "backlog should grow with mobiles: {} !> {}",
            large.metrics.peak_backlog,
            small.metrics.peak_backlog
        );
    }

    #[test]
    fn saturated_duty_cycle_is_byte_identical_to_always_on() {
        // A duty cycle with the link up for the whole period is AlwaysOn
        // spelled differently: every next_up call is the identity, every
        // fault_scale is 1.0, so the run must match byte for byte — the
        // connectivity layer is pure adjustment, never an extra RNG draw.
        let base =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 41);
        let mut duty = base.clone();
        duty.connectivity = ConnectivityModel::DutyCycle { period: 8, on_ticks: 8, seed: 7 };
        let always = Simulation::new(base).expect("valid sim config").run();
        let duty = Simulation::new(duty).expect("valid sim config").run();
        assert_eq!(always.final_master, duty.final_master);
        assert_eq!(always.base_commits, duty.base_commits);
        assert_eq!(always.metrics.normalized(), duty.metrics.normalized());
        assert_eq!(duty.metrics.storm, StormStats::default());
    }

    #[test]
    fn duty_cycle_only_syncs_on_up_ticks() {
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 43);
        let model = ConnectivityModel::DutyCycle { period: 10, on_ticks: 3, seed: 5 };
        cfg.connectivity = model;
        let report = Simulation::new(cfg).expect("valid sim config").run();
        assert!(report.metrics.syncs > 0, "duty-cycled mobiles still sync");
        for r in &report.metrics.records {
            assert!(
                model.link_up(r.mobile, r.tick),
                "mobile {} synced at tick {} with its link down",
                r.mobile,
                r.tick
            );
        }
    }

    #[test]
    fn admission_cap_bounds_every_batch_and_drains_the_queue() {
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 47);
        cfg.synchronized_reconnects = true; // cohorts of all 3 mobiles
        cfg.check_convergence = true;
        let unbounded = Simulation::new(cfg.clone()).expect("valid sim config").run();
        assert!(unbounded.metrics.batch_sizes.iter().any(|&b| b > 2));
        assert_eq!(unbounded.metrics.storm, StormStats::default());

        cfg.admission = AdmissionConfig::bounded(2);
        let bounded = Simulation::new(cfg).expect("valid sim config").run();
        assert!(bounded.metrics.batch_sizes.iter().all(|&b| b <= 2), "cap violated");
        let storm = bounded.metrics.storm;
        assert!(storm.shed > 0, "saturated cohorts must shed");
        assert_eq!(storm.shed, storm.deferred_drained, "queue must drain to empty");
        assert!(storm.deferred_peak >= 1);
        assert!(storm.defer_wait_max >= 1, "a deferred mobile waits at least a tick");
        assert_eq!(bounded.metrics.defer_waits.len() as u64, storm.deferred_drained);
        assert!(bounded.convergence.unwrap().holds());
        // Shedding reshapes cohorts, never loses work: same tentative load.
        assert_eq!(bounded.metrics.tentative_generated, unbounded.metrics.tentative_generated);
    }

    #[test]
    fn scheduler_modes_agree_under_storm_and_admission() {
        // The deferred queue is FIFO over the same deterministic arrival
        // order in both schedulers, so the byte-identity contract between
        // TickScan and EventQueue survives admission control and storms.
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::AdaptiveWindow { max_hb: 24 }, 53);
        cfg.connectivity = ConnectivityModel::OutageStorm {
            start: 100,
            outage_ticks: 30,
            surge_ticks: 20,
            fault_boost: 4.0,
        };
        cfg.admission = AdmissionConfig::bounded(2);
        cfg.scheduler = SchedulerMode::TickScan;
        let scan = Simulation::new(cfg.clone()).expect("valid sim config").run();
        cfg.scheduler = SchedulerMode::EventQueue;
        let events = Simulation::new(cfg).expect("valid sim config").run();
        assert_eq!(scan.final_master, events.final_master);
        assert_eq!(scan.base_commits, events.base_commits);
        assert_eq!(scan.metrics.normalized(), events.metrics.normalized());
        assert_eq!(scan.metrics.storm, events.metrics.storm);
    }

    #[test]
    fn outage_storm_silences_the_window_then_recovers() {
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 59);
        cfg.connectivity = ConnectivityModel::OutageStorm {
            start: 120,
            outage_ticks: 40,
            surge_ticks: 10,
            fault_boost: 1.0,
        };
        cfg.check_convergence = true;
        let report = Simulation::new(cfg).expect("valid sim config").run();
        assert!(report.metrics.syncs > 0);
        assert!(
            report.metrics.records.iter().all(|r| !(120..160).contains(&r.tick)),
            "no sync can land inside the outage window"
        );
        assert!(
            report.metrics.records.iter().any(|r| r.tick >= 160),
            "the fleet reconnects after the outage"
        );
        assert!(report.convergence.unwrap().holds());
    }

    #[test]
    fn retry_backoff_reconnects_abandoned_sessions_earlier() {
        // Under total message loss every session abandons. Without backoff
        // the mobile waits out its full jittered cadence; with backoff it
        // comes back after min(2^strikes, cap) ticks, so the same horizon
        // fits strictly more attempts — and the storm counters see them.
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 61);
        cfg.sync_path = SyncPath::Session;
        cfg.fault =
            FaultPlan::seeded(61, crate::fault::FaultRates::only(FaultKind::MessageLoss, 1.0));
        let flat = Simulation::new(cfg.clone()).expect("valid sim config").run();
        assert_eq!(flat.metrics.storm.backoff_reschedules, 0);

        cfg.session.backoff = crate::session::RetryBackoff::enabled();
        let backoff = Simulation::new(cfg).expect("valid sim config").run();
        let storm = backoff.metrics.storm;
        assert!(storm.backoff_reschedules > 0, "backoff never engaged");
        assert!(storm.backoff_delay_ticks > 0);
        assert!(
            backoff.metrics.fault.abandoned_sessions > flat.metrics.fault.abandoned_sessions,
            "earlier reconnects must fit more attempts: {} !> {}",
            backoff.metrics.fault.abandoned_sessions,
            flat.metrics.fault.abandoned_sessions
        );
    }

    #[test]
    fn backoff_under_transient_faults_still_converges() {
        // Moderate loss: sessions abandon, back off, reconnect early, and
        // eventually succeed — the success resets the ladder, and the
        // convergence oracle must hold over the mixed schedule.
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 150 }, 67);
        cfg.sync_path = SyncPath::Session;
        cfg.check_convergence = true;
        cfg.fault = FaultPlan::seeded(67, crate::fault::FaultRates::uniform(0.25));
        cfg.session.backoff = crate::session::RetryBackoff::enabled();
        let report = Simulation::new(cfg).expect("valid sim config").run();
        assert!(report.metrics.syncs > 0, "sessions complete despite faults");
        assert!(report.convergence.unwrap().holds(), "{:?}", report.convergence);
        assert_eq!(report.metrics.fault.double_resolutions, 0);
    }

    #[test]
    fn invalid_connectivity_is_rejected_at_construction() {
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 71);
        cfg.connectivity = ConnectivityModel::DutyCycle { period: 4, on_ticks: 0, seed: 1 };
        match Simulation::new(cfg) {
            Err(SimConfigError::InvalidConnectivity(_)) => {}
            Err(other) => panic!("expected InvalidConnectivity, got {other}"),
            Ok(_) => panic!("expected InvalidConnectivity, got a valid simulation"),
        }
    }
}
