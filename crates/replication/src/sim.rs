//! The discrete-time two-tier replication simulation.

use std::collections::BTreeMap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use histmerge_core::merge::{MergeAssist, MergeConfig, MergeOutcome, Merger};
use histmerge_core::prune::PruneMethod;
use histmerge_core::rewrite::{FixMode, RewriteAlgorithm};
use histmerge_history::{BaseEdgeCache, PrecedenceGraph, SerialHistory, TwoCycleOptimal, TxnArena};
use histmerge_semantics::{OracleStack, SemanticOracle, StaticAnalyzer};
use histmerge_txn::{DbState, TxnId, TxnKind, VarSet};
use histmerge_workload::canned_mix::{CannedMix, CannedMixParams};
use histmerge_workload::cost::{
    merging_cost, reprocessing_cost, CostParams, MergeStats, ReprocessStats,
};
use histmerge_workload::generator::{ScenarioParams, TxnFactory};

use crate::batch::{delta_invalidates, history_footprint, merge_batch, BatchJob, Parallelism};
use crate::cluster::BaseCluster;
use crate::metrics::{Metrics, SyncRecord};
use crate::mobile::MobileNode;
use crate::sync::SyncStrategy;

/// Which synchronization protocol the simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Protocol {
    /// The \[GHOS96\] baseline: re-execute every tentative transaction at
    /// the base.
    Reprocessing,
    /// The paper's merging protocol.
    Merging {
        /// The rewriting algorithm used by each merge.
        #[serde(skip)]
        algorithm: RewriteAlgorithm,
        /// The fix-computation mode.
        #[serde(skip)]
        fix_mode: FixMode,
    },
}

impl Protocol {
    /// The paper's recommended merging configuration.
    pub fn merging_default() -> Protocol {
        Protocol::Merging {
            algorithm: RewriteAlgorithm::CanFollowCanPrecede,
            fix_mode: FixMode::Lemma1,
        }
    }

    /// Short name for experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Reprocessing => "reprocessing",
            Protocol::Merging { .. } => "merging",
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of mobile nodes.
    pub n_mobiles: usize,
    /// Simulation length in ticks.
    pub duration: u64,
    /// Base transactions committed per tick (fractional rates accumulate).
    pub base_rate: f64,
    /// Tentative transactions per mobile per tick while disconnected.
    pub mobile_rate: f64,
    /// Mean ticks between reconnections of each mobile (jittered ±25%).
    pub connect_every: u64,
    /// The synchronization protocol.
    pub protocol: Protocol,
    /// The multi-history strategy (Section 2.2).
    pub strategy: SyncStrategy,
    /// Workload shape (variable space, transaction mix, hotspot skew).
    pub workload: ScenarioParams,
    /// Cost-model constants (Section 7.1).
    pub cost: CostParams,
    /// Base-node work capacity per tick, for backlog tracking.
    pub base_capacity: f64,
    /// Number of base partitions mastering the item space (multi-node base
    /// transactions coordinate via two-phase commit).
    pub base_nodes: usize,
    /// When set, transactions come from the typed canned mix (bank +
    /// promotions) instead of the random generator, and every merge uses
    /// the canned-system oracle (static analyzer + the libraries' declared
    /// tables). `workload` then only contributes its seed-independent
    /// simulation knobs; the item space and initial state come from the
    /// mix.
    pub canned: Option<CannedMixParams>,
    /// Worker threads for batched Strategy-2 merges when several mobiles
    /// reconnect in the same tick. The simulation outcome is identical for
    /// every setting — parallelism only changes wall-clock time.
    pub parallelism: Parallelism,
    /// When `true`, every mobile reconnects on the same fixed cadence
    /// (`connect_every`, no jitter), so reconnections arrive in batches —
    /// the regime the parallel merge pipeline targets.
    pub synchronized_reconnects: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_mobiles: 4,
            duration: 400,
            base_rate: 0.5,
            mobile_rate: 0.2,
            connect_every: 50,
            protocol: Protocol::merging_default(),
            strategy: SyncStrategy::WindowStart { window: 100 },
            workload: ScenarioParams::default(),
            cost: CostParams::default(),
            base_capacity: 200.0,
            base_nodes: 1,
            canned: None,
            parallelism: Parallelism::Auto,
            synchronized_reconnects: false,
        }
    }
}

/// The report a finished simulation returns.
#[derive(Debug)]
pub struct SimReport {
    /// Aggregated metrics.
    pub metrics: Metrics,
    /// The final master state.
    pub final_master: DbState,
    /// Base transactions committed in total (own load + installs +
    /// re-executions).
    pub base_commits: usize,
    /// Distribution statistics of the partitioned base tier.
    pub cluster: crate::cluster::ClusterStats,
}

/// Where the simulation's transactions come from.
enum TxnSource {
    /// The seeded random generator.
    Random(Box<TxnFactory>),
    /// The typed canned mix (bank + promotions).
    Canned(Box<CannedMix>),
}

impl TxnSource {
    fn next_txn(&mut self, arena: &mut TxnArena, kind: TxnKind) -> TxnId {
        match self {
            TxnSource::Random(f) => f.next_txn(arena, kind),
            TxnSource::Canned(m) => m.next_txn(arena, kind),
        }
    }
}

/// Builds a merger for the configured workload: the canned system gets the
/// static analyzer plus the libraries' declared tables, the random
/// workload the static analyzer alone. A free function (not a method) so
/// batch workers can each build their own from a shared `&TxnSource`.
fn build_merger(source: &TxnSource, algorithm: RewriteAlgorithm, fix_mode: FixMode) -> Merger {
    let oracle: Box<dyn SemanticOracle> = match source {
        TxnSource::Canned(mix) => Box::new(mix.oracle()),
        TxnSource::Random(_) => Box::new(OracleStack::new().with(Box::new(StaticAnalyzer::new()))),
    };
    Merger::new(MergeConfig {
        backout: Box::new(TwoCycleOptimal::new()),
        algorithm,
        fix_mode,
        prune: PruneMethod::Undo,
        oracle,
    })
}

/// The next reconnection tick: `tick + every`, shifted by
/// `draw − jitter ∈ [−jitter, +jitter]`, clamped to land strictly after
/// `tick`. Saturating arithmetic throughout — the old inline expression
/// mixed unsigned addition and subtraction in an order that could
/// underflow for jitters exceeding `tick + every`.
fn jittered_next_connect(tick: u64, every: u64, jitter: u64, draw: u64) -> u64 {
    tick.saturating_add(every).saturating_add(draw).saturating_sub(jitter).max(tick + 1)
}

/// A batch member's merge, computed concurrently against the pre-batch
/// snapshot and awaiting delta validation at install time.
struct Speculative {
    /// The pending history the merge consumed.
    hm: SerialHistory,
    /// Epoch-history length at the snapshot.
    hb_len: usize,
    /// Full base-log length at the snapshot (where the delta begins).
    log_len: usize,
    /// The speculative merge outcome.
    outcome: MergeOutcome,
    /// Items the pending history read (validation footprint).
    reads: VarSet,
    /// Items the pending history wrote (validation footprint).
    writes: VarSet,
}

/// The simulation state. Construct with [`Simulation::new`] and consume
/// with [`Simulation::run`].
pub struct Simulation {
    config: SimConfig,
    arena: TxnArena,
    base: BaseCluster,
    mobiles: Vec<MobileNode>,
    /// Epoch id of the base's current window, and per-mobile epoch ids.
    epoch: u64,
    mobile_epochs: Vec<u64>,
    source: TxnSource,
    rng: StdRng,
    metrics: Metrics,
    backlog: f64,
    base_accum: f64,
    mobile_accum: Vec<f64>,
    /// Incrementally maintained rule-2 edges of `epoch`'s base history.
    base_edge_cache: BaseEdgeCache,
    /// The epoch `base_edge_cache` belongs to (cleared on rollover).
    cache_epoch: u64,
}

impl Simulation {
    /// Creates a simulation in its initial state.
    pub fn new(config: SimConfig) -> Self {
        let source = match &config.canned {
            Some(params) => TxnSource::Canned(Box::new(CannedMix::new(params.clone()))),
            None => TxnSource::Random(Box::new(TxnFactory::new(config.workload.clone()))),
        };
        let initial = match &source {
            TxnSource::Canned(mix) => mix.initial_state(),
            TxnSource::Random(_) => histmerge_workload::generator::initial_state(&config.workload),
        };
        let base = BaseCluster::new(initial.clone(), config.base_nodes);
        let mut rng = StdRng::seed_from_u64(config.workload.seed ^ 0x5151_5151);
        let mobiles: Vec<MobileNode> = (0..config.n_mobiles)
            .map(|i| {
                let first = if config.synchronized_reconnects {
                    config.connect_every.max(1)
                } else {
                    1 + rng.gen_range(0..config.connect_every.max(1))
                };
                MobileNode::new(i, initial.clone(), 0, first)
            })
            .collect();
        let n = config.n_mobiles;
        Simulation {
            arena: TxnArena::new(),
            base,
            mobile_epochs: vec![0; n],
            epoch: 0,
            source,
            rng,
            metrics: Metrics::default(),
            backlog: 0.0,
            base_accum: 0.0,
            mobile_accum: vec![0.0; n],
            base_edge_cache: BaseEdgeCache::new(),
            cache_epoch: 0,
            mobiles,
            config,
        }
    }

    /// Runs the simulation to completion.
    pub fn run(mut self) -> SimReport {
        for tick in 0..self.config.duration {
            self.step(tick);
        }
        SimReport {
            base_commits: self.base.base().committed(),
            final_master: self.base.base().master().clone(),
            cluster: self.base.stats().clone(),
            metrics: self.metrics,
        }
    }

    fn step(&mut self, tick: u64) {
        let mut tick_base_work = 0.0;

        // Window boundary (Strategy 2, fixed or adaptive).
        match self.config.strategy {
            SyncStrategy::WindowStart { window } => {
                if tick > 0 && tick.is_multiple_of(window.max(1)) {
                    self.base.base_mut().start_window();
                    self.epoch += 1;
                }
            }
            SyncStrategy::AdaptiveWindow { max_hb } => {
                if self.base.base().epoch_len() >= max_hb.max(1) {
                    self.base.base_mut().start_window();
                    self.epoch += 1;
                }
            }
            SyncStrategy::PerDisconnectSnapshot => {}
        }

        // Base tier's own load.
        self.base_accum += self.config.base_rate;
        while self.base_accum >= 1.0 {
            self.base_accum -= 1.0;
            let id = self.source.next_txn(&mut self.arena, TxnKind::Base);
            self.base.commit(&self.arena, id);
            self.metrics.base_generated += 1;
            let stmts = self.arena.get(id).program().statement_count() as f64;
            tick_base_work +=
                stmts * self.config.cost.base_query_per_stmt + self.config.cost.base_io_force;
        }

        // Mobile tier, phase 1: every mobile generates its tentative work.
        // Generation is completed for the whole tier before any sync runs,
        // so transaction identities are allocated in one canonical order
        // regardless of how the sync phase below is scheduled.
        for i in 0..self.mobiles.len() {
            self.mobile_accum[i] += self.config.mobile_rate;
            while self.mobile_accum[i] >= 1.0 {
                self.mobile_accum[i] -= 1.0;
                let id = self.source.next_txn(&mut self.arena, TxnKind::Tentative);
                self.mobiles[i].run_tentative(&self.arena, id);
                self.metrics.tentative_generated += 1;
            }
        }

        // Mobile tier, phase 2: the tick's reconnect batch, merged (maybe
        // concurrently) and installed in mobile-id order.
        let batch: Vec<usize> =
            (0..self.mobiles.len()).filter(|&i| self.mobiles[i].next_connect() == tick).collect();
        if !batch.is_empty() {
            tick_base_work += self.sync_batch(&batch, tick);
            for &i in &batch {
                let next = self.schedule_next_connect(tick);
                self.mobiles[i].set_next_connect(next);
            }
        }

        // Backlog accounting.
        self.backlog = (self.backlog + tick_base_work - self.config.base_capacity).max(0.0);
        if self.backlog > self.metrics.peak_backlog {
            self.metrics.peak_backlog = self.backlog;
        }
        if tick.is_multiple_of(10) {
            self.metrics.backlog_series.push((tick, self.backlog));
        }
    }

    /// Draws the next reconnection tick (jittered unless reconnects are
    /// synchronized).
    fn schedule_next_connect(&mut self, tick: u64) -> u64 {
        let every = self.config.connect_every.max(1);
        if self.config.synchronized_reconnects {
            return tick + every;
        }
        let jitter = self.config.connect_every / 4;
        let draw = if jitter > 0 { self.rng.gen_range(0..=2 * jitter) } else { 0 };
        jittered_next_connect(tick, every, jitter, draw)
    }

    /// Synchronizes every member of a reconnect batch, installing results
    /// in mobile-id order. When the configuration allows, the merge phase
    /// of eligible Strategy-2 members runs concurrently against the
    /// pre-batch snapshot; each speculative outcome is validated against
    /// the base transactions earlier members appended, and invalidated
    /// members fall back to the live serial path. Returns base work units.
    fn sync_batch(&mut self, batch: &[usize], tick: u64) -> f64 {
        self.metrics.batch_sizes.push(batch.len());
        let mut speculated = self.speculate_batch(batch);
        let mut work = 0.0;
        for &i in batch {
            work += match speculated.remove(&i) {
                Some(spec) => self.install_speculative(i, tick, spec),
                None => self.sync_mobile(i, tick),
            };
        }
        work
    }

    /// Runs the concurrent merge phase for the batch members that can
    /// merge against the shared window-start snapshot. Members left out of
    /// the returned map (ineligible, or whose merge errored) take the live
    /// serial path, which reproduces serial error handling exactly.
    fn speculate_batch(&mut self, batch: &[usize]) -> BTreeMap<usize, Speculative> {
        let mut out = BTreeMap::new();
        let Protocol::Merging { algorithm, fix_mode } = self.config.protocol else {
            return out;
        };
        if matches!(self.config.strategy, SyncStrategy::PerDisconnectSnapshot) {
            return out; // Strategy 1 merges have per-mobile start states.
        }
        let eligible: Vec<usize> = batch
            .iter()
            .copied()
            .filter(|&i| self.mobiles[i].pending() > 0 && self.mobile_epochs[i] == self.epoch)
            .collect();
        let workers = self.config.parallelism.workers(eligible.len());
        if eligible.len() < 2 || workers < 2 {
            return out; // Nothing to overlap: merge live, one at a time.
        }

        self.sync_cache();
        let hb = self.base.base().epoch_history();
        let s0 = self.base.base().epoch_state().clone();
        let hb_final = self.base.base().master().clone();
        let log_len = self.base.base().committed();
        let hb_len = hb.len();
        let jobs: Vec<BatchJob> = eligible
            .iter()
            .map(|&i| BatchJob { mobile: i, hm: self.mobiles[i].history().clone() })
            .collect();

        let source = &self.source;
        let make_merger = move || build_merger(source, algorithm, fix_mode);
        let started = Instant::now();
        let results = merge_batch(
            &self.arena,
            &jobs,
            &hb,
            &s0,
            &hb_final,
            &self.base_edge_cache,
            &make_merger,
            workers,
        );
        self.metrics.parallel_merge_ns += started.elapsed().as_nanos() as u64;

        for (job, result) in jobs.into_iter().zip(results) {
            if let Ok(outcome) = result {
                let (reads, writes) = history_footprint(&self.arena, &job.hm);
                out.insert(
                    job.mobile,
                    Speculative { hm: job.hm, hb_len, log_len, outcome, reads, writes },
                );
            }
        }
        out
    }

    /// Installs a batch member's speculative merge if the base transactions
    /// appended since its snapshot leave it valid; otherwise re-merges on
    /// the live serial path. Returns base work units.
    fn install_speculative(&mut self, i: usize, tick: u64, spec: Speculative) -> f64 {
        let delta: Vec<TxnId> = self.base.base().full_history().order()[spec.log_len..].to_vec();
        if delta_invalidates(&self.arena, &delta, &spec.reads, &spec.writes) {
            self.metrics.speculative_retries += 1;
            return self.sync_mobile(i, tick);
        }
        // The delta only appends base-internal edges to the precedence
        // graph; fold them into the outcome's edge count so cost
        // accounting matches the live merge exactly.
        let live_hb_len = self.base.base().epoch_len();
        self.sync_cache();
        let appended_edges = self.base_edge_cache.edge_count(live_hb_len)
            - self.base_edge_cache.edge_count(spec.hb_len);
        let mut outcome = spec.outcome;
        outcome.graph_edges += appended_edges;
        self.metrics.speculative_hits += 1;
        self.apply_merge(i, tick, &spec.hm, live_hb_len, outcome, false)
    }

    /// Brings the epoch's base-edge cache up to date with the epoch
    /// history, resetting it on window rollover.
    fn sync_cache(&mut self) {
        if self.cache_epoch != self.epoch {
            self.base_edge_cache.clear();
            self.cache_epoch = self.epoch;
        }
        let hb = self.base.base().epoch_history();
        self.base_edge_cache.sync(&self.arena, &hb);
    }

    /// Synchronizes mobile `i`; returns the base-side work units incurred.
    fn sync_mobile(&mut self, i: usize, tick: u64) -> f64 {
        let pending = self.mobiles[i].pending();
        if pending == 0 {
            // Nothing to push: just refresh the origin.
            self.refresh_origin(i);
            return 0.0;
        }
        match self.config.protocol {
            Protocol::Reprocessing => self.reprocess_all(i, tick, false),
            Protocol::Merging { algorithm, fix_mode } => {
                match self.config.strategy {
                    SyncStrategy::WindowStart { .. } | SyncStrategy::AdaptiveWindow { .. } => {
                        if self.mobile_epochs[i] != self.epoch {
                            // Reconnected after its window closed: the
                            // history cannot be merged (Section 2.2) and is
                            // reprocessed instead.
                            self.metrics.window_misses += 1;
                            self.reprocess_all(i, tick, false)
                        } else {
                            self.merge_window(i, tick, algorithm, fix_mode)
                        }
                    }
                    SyncStrategy::PerDisconnectSnapshot => {
                        self.merge_snapshot(i, tick, algorithm, fix_mode)
                    }
                }
            }
        }
    }

    fn merger(&self, algorithm: RewriteAlgorithm, fix_mode: FixMode) -> Merger {
        build_merger(&self.source, algorithm, fix_mode)
    }

    /// Strategy 2 merge: against the window's base sub-history, from the
    /// shared window-start state. Reuses the epoch's base-edge cache and
    /// the current master (the state after `H_b`), so per-merge work is
    /// linear in the history growth instead of quadratic in `|H_b|`.
    fn merge_window(
        &mut self,
        i: usize,
        tick: u64,
        algorithm: RewriteAlgorithm,
        fix_mode: FixMode,
    ) -> f64 {
        let hm = self.mobiles[i].history().clone();
        let hb = self.base.base().epoch_history();
        let s0 = self.base.base().epoch_state().clone();
        let hb_final = self.base.base().master().clone();
        self.sync_cache();
        let merger = self.merger(algorithm, fix_mode);
        let assist =
            MergeAssist { base_edges: Some(&self.base_edge_cache), hb_final: Some(&hb_final) };
        match merger.merge_assisted(&self.arena, &hm, &hb, &s0, assist) {
            Ok(outcome) => self.apply_merge(i, tick, &hm, hb.len(), outcome, false),
            Err(_) => self.reprocess_all(i, tick, true),
        }
    }

    /// Strategy 1 merge: against the base log suffix from the mobile's own
    /// snapshot, if that snapshot is still a valid cut of the base history.
    fn merge_snapshot(
        &mut self,
        i: usize,
        tick: u64,
        algorithm: RewriteAlgorithm,
        fix_mode: FixMode,
    ) -> f64 {
        let origin_index = self.mobiles[i].origin_index();
        let hm = self.mobiles[i].history().clone();
        let s0 = self.mobiles[i].origin().clone();
        let full = self.base.base().full_history();
        let hb: SerialHistory = full.order()[origin_index..].iter().copied().collect();
        // Validity: replaying the suffix from the snapshot must reproduce
        // the current master. Retro-patched installs from other mobiles'
        // merges break this — the Strategy-1 failure mode.
        let valid = match histmerge_history::AugmentedHistory::execute(&self.arena, &hb, &s0) {
            Ok(aug) => aug.final_state() == self.base.base().master(),
            Err(_) => false,
        };
        if !valid {
            return self.reprocess_all(i, tick, true);
        }
        let merger = self.merger(algorithm, fix_mode);
        match merger.merge(&self.arena, &hm, &hb, &s0) {
            Ok(outcome) => self.apply_merge(i, tick, &hm, hb.len(), outcome, true),
            Err(_) => self.reprocess_all(i, tick, true),
        }
    }

    /// Installs a merge outcome on the base and records metrics. Returns
    /// base work units.
    fn apply_merge(
        &mut self,
        i: usize,
        tick: u64,
        hm: &SerialHistory,
        hb_len: usize,
        outcome: MergeOutcome,
        retroactive: bool,
    ) -> f64 {
        // Step 5: install forwarded updates.
        if retroactive {
            let from = self.mobiles[i].origin_index();
            self.base.base_mut().retro_patch(&self.arena, from, &outcome.forwarded);
        } else {
            let _ = self.base.install_updates(&mut self.arena, &outcome.forwarded);
        }
        // Step 6: re-execute backed-out transactions as base transactions.
        let mut backed_out_stmts = 0usize;
        for id in &outcome.backed_out {
            backed_out_stmts += self.arena.get(*id).program().statement_count();
            self.base.reexecute(&mut self.arena, *id);
        }

        let stats = self.merge_stats(hm, hb_len, &outcome, backed_out_stmts);
        let cost = merging_cost(&self.config.cost, &stats);
        self.metrics.record(
            SyncRecord {
                tick,
                mobile: i,
                pending: hm.len(),
                hb_len,
                saved: outcome.saved.len(),
                backed_out: outcome.backed_out.len(),
                reprocessed: 0,
                merge_failed: false,
            },
            cost,
        );
        self.refresh_origin(i);
        cost.base_cpu + cost.base_io
    }

    fn merge_stats(
        &self,
        hm: &SerialHistory,
        hb_len: usize,
        outcome: &MergeOutcome,
        backed_out_stmts: usize,
    ) -> MergeStats {
        let rw_entries: usize = hm
            .iter()
            .map(|id| {
                let t = self.arena.get(id);
                t.readset().len() + t.writeset().len()
            })
            .sum();
        let graph_edges =
            PrecedenceGraph::build(&self.arena, hm, &SerialHistory::new()).edges().len();
        MergeStats {
            hm_len: hm.len(),
            hb_len,
            rw_entries,
            graph_edges,
            full_graph_edges: outcome.graph_edges,
            n_saved: outcome.saved.len(),
            n_backed_out: outcome.backed_out.len(),
            backed_out_stmts,
            forwarded_items: outcome.forwarded.len(),
        }
    }

    /// Reprocesses every pending tentative transaction of mobile `i` the
    /// old way. Returns base work units.
    fn reprocess_all(&mut self, i: usize, tick: u64, merge_failed: bool) -> f64 {
        let pending: Vec<TxnId> = self.mobiles[i].history().iter().collect();
        let total_stmts: usize =
            pending.iter().map(|id| self.arena.get(*id).program().statement_count()).sum();
        for id in &pending {
            self.base.reexecute(&mut self.arena, *id);
        }
        let cost = reprocessing_cost(
            &self.config.cost,
            &ReprocessStats { n_txns: pending.len(), total_stmts },
        );
        self.metrics.record(
            SyncRecord {
                tick,
                mobile: i,
                pending: pending.len(),
                hb_len: 0,
                saved: 0,
                backed_out: 0,
                reprocessed: pending.len(),
                merge_failed,
            },
            cost,
        );
        self.refresh_origin(i);
        cost.base_cpu + cost.base_io
    }

    /// Resets mobile `i`'s origin according to the strategy.
    fn refresh_origin(&mut self, i: usize) {
        match self.config.strategy {
            SyncStrategy::WindowStart { .. } | SyncStrategy::AdaptiveWindow { .. } => {
                // Strategy 2: new tentative histories within the window
                // keep the window-start state as their origin.
                let origin = self.base.base().epoch_state().clone();
                self.mobiles[i].resync(origin, 0);
                self.mobile_epochs[i] = self.epoch;
            }
            SyncStrategy::PerDisconnectSnapshot => {
                // Strategy 1: snapshot the current master.
                let origin = self.base.base().master().clone();
                let index = self.base.base().committed();
                self.mobiles[i].resync(origin, index);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_workload(seed: u64) -> ScenarioParams {
        ScenarioParams {
            n_vars: 32,
            commutative_fraction: 0.5,
            guarded_fraction: 0.2,
            read_only_fraction: 0.1,
            hot_fraction: 0.1,
            hot_prob: 0.4,
            seed,
            ..ScenarioParams::default()
        }
    }

    fn config(protocol: Protocol, strategy: SyncStrategy, seed: u64) -> SimConfig {
        SimConfig {
            n_mobiles: 3,
            duration: 300,
            base_rate: 0.3,
            mobile_rate: 0.15,
            connect_every: 40,
            protocol,
            strategy,
            workload: quiet_workload(seed),
            cost: CostParams::default(),
            base_capacity: 100.0,
            base_nodes: 1,
            canned: None,
            parallelism: Parallelism::Auto,
            synchronized_reconnects: false,
        }
    }

    #[test]
    fn reprocessing_run_completes_and_reprocesses_everything() {
        let report = Simulation::new(config(
            Protocol::Reprocessing,
            SyncStrategy::WindowStart { window: 100 },
            1,
        ))
        .run();
        let m = &report.metrics;
        assert!(m.tentative_generated > 0);
        assert_eq!(m.saved, 0);
        assert!(m.reprocessed > 0);
        assert!(m.syncs > 0);
        // Everything synced so far was re-executed at the base.
        assert!(report.base_commits >= m.reprocessed + m.base_generated);
    }

    #[test]
    fn merging_run_saves_work() {
        // Window spanning the whole run: no window-miss reprocessing, so
        // the save ratio reflects pure conflict back-outs. The base history
        // grows over the window, so back-outs accumulate (the Section 2.2
        // trade-off) — the ratio is positive but far from 1.
        let report = Simulation::new(config(
            Protocol::merging_default(),
            SyncStrategy::WindowStart { window: 1000 },
            1,
        ))
        .run();
        let m = &report.metrics;
        assert!(m.saved > 0, "merging saved nothing: {m:?}");
        assert!(m.save_ratio() > 0.1, "save ratio too low: {}", m.save_ratio());
        assert_eq!(m.merge_failures, 0, "strategy 2 never fails to merge");
        assert_eq!(m.window_misses, 0);
    }

    #[test]
    fn commutative_workloads_save_more() {
        let run = |commutative: f64| {
            let mut cfg =
                config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 21);
            cfg.workload.commutative_fraction = commutative;
            cfg.workload.guarded_fraction = 0.0;
            cfg.workload.read_only_fraction = 0.0;
            Simulation::new(cfg).run().metrics.save_ratio()
        };
        let low = run(0.0);
        let high = run(1.0);
        assert!(high > low, "commutative workload should save more: {high} !> {low}");
    }

    #[test]
    fn merging_reduces_base_io_vs_reprocessing() {
        // Moderate contention so a healthy fraction of work survives the
        // merge (the regime Section 7.1 says merging targets).
        let strategies = SyncStrategy::WindowStart { window: 150 };
        let mut low = config(Protocol::Reprocessing, strategies, 7);
        low.workload.n_vars = 128;
        low.workload.hot_prob = 0.15;
        low.workload.commutative_fraction = 0.7;
        let mut low_m = low.clone();
        low_m.protocol = Protocol::merging_default();
        let rep = Simulation::new(low).run();
        let mer = Simulation::new(low_m).run();
        // Same workload seed: merging must force fewer log writes at the
        // base (one per merge vs one per transaction).
        assert!(
            mer.metrics.cost.base_io < rep.metrics.cost.base_io,
            "merging io {} !< reprocessing io {}",
            mer.metrics.cost.base_io,
            rep.metrics.cost.base_io
        );
    }

    #[test]
    fn strategy1_fails_merges_under_contention() {
        // High contention + several mobiles: merged installs retro-patch
        // the base log, invalidating other snapshots.
        let mut cfg = config(Protocol::merging_default(), SyncStrategy::PerDisconnectSnapshot, 3);
        cfg.workload.hot_prob = 0.9;
        cfg.workload.hot_fraction = 0.05;
        cfg.n_mobiles = 6;
        cfg.mobile_rate = 0.3;
        let report = Simulation::new(cfg).run();
        assert!(
            report.metrics.merge_failures > 0,
            "expected Strategy-1 merge failures: {:?}",
            report.metrics
        );
    }

    #[test]
    fn adaptive_window_bounds_hb_length() {
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::AdaptiveWindow { max_hb: 15 }, 13);
        cfg.base_rate = 0.5; // fast-growing base history
        let report = Simulation::new(cfg).run();
        let m = &report.metrics;
        // Every merge ran against a bounded base history.
        for r in &m.records {
            assert!(r.hb_len <= 15 + 1, "adaptive window let H_b grow to {}", r.hb_len);
        }
        assert!(m.syncs > 0);
        assert_eq!(m.merge_failures, 0);
    }

    #[test]
    fn window_misses_counted() {
        // Connect interval much longer than the window: every reconnection
        // lands in a later window and must reprocess.
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 20 }, 5);
        cfg.connect_every = 80;
        let report = Simulation::new(cfg).run();
        assert!(report.metrics.window_misses > 0);
        assert!(report.metrics.reprocessed > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Simulation::new(config(
            Protocol::merging_default(),
            SyncStrategy::WindowStart { window: 100 },
            9,
        ))
        .run();
        let b = Simulation::new(config(
            Protocol::merging_default(),
            SyncStrategy::WindowStart { window: 100 },
            9,
        ))
        .run();
        assert_eq!(a.final_master, b.final_master);
        assert_eq!(a.metrics.saved, b.metrics.saved);
        assert_eq!(a.metrics.records.len(), b.metrics.records.len());
    }

    #[test]
    fn canned_simulation_uses_declared_tables() {
        use histmerge_workload::canned_mix::CannedMixParams;
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 200 }, 41);
        cfg.canned = Some(CannedMixParams {
            n_accounts: 24,
            n_prices: 6,
            seed: 41,
            ..CannedMixParams::default()
        });
        let report = Simulation::new(cfg).run();
        let m = &report.metrics;
        assert!(m.tentative_generated > 0);
        assert!(m.saved > 0, "canned merging saved nothing: {m:?}");
        assert_eq!(m.merge_failures, 0);
        // Deterministic like everything else.
        let mut cfg2 =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 200 }, 41);
        cfg2.canned = Some(CannedMixParams {
            n_accounts: 24,
            n_prices: 6,
            seed: 41,
            ..CannedMixParams::default()
        });
        let again = Simulation::new(cfg2).run();
        assert_eq!(report.final_master, again.final_master);
    }

    #[test]
    fn partitioned_base_accounts_coordination() {
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 31);
        cfg.base_nodes = 4;
        cfg.workload.writes_per_txn = 3; // multi-partition footprints
        let report = Simulation::new(cfg).run();
        assert_eq!(report.cluster.per_node_commits.len(), 4);
        assert!(report.cluster.distributed_txns > 0, "wide transactions expected");
        assert!(report.cluster.two_pc_messages > 0);
        assert!(report.cluster.imbalance() >= 1.0);
        // A single-node base never coordinates.
        let mut cfg1 =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 100 }, 31);
        cfg1.workload.writes_per_txn = 3;
        let single = Simulation::new(cfg1).run();
        assert_eq!(single.cluster.two_pc_messages, 0);
        // Partitioning does not change the outcome, only the accounting.
        assert_eq!(single.final_master, report.final_master);
    }

    #[test]
    fn jittered_next_connect_is_clamped() {
        // Nominal case: base + draw − jitter.
        assert_eq!(jittered_next_connect(100, 40, 10, 0), 130);
        assert_eq!(jittered_next_connect(100, 40, 10, 20), 150);
        // Jitter exceeding tick + every must clamp, not underflow.
        assert_eq!(jittered_next_connect(0, 1, 100, 0), 1);
        assert_eq!(jittered_next_connect(5, 2, 1000, 0), 6);
        // Never schedules at or before the current tick.
        for draw in 0..=2 {
            assert!(jittered_next_connect(7, 1, 1, draw) > 7);
        }
    }

    #[test]
    fn tight_connect_interval_keeps_advancing() {
        // Regression: connect_every = 2 puts reconnects on nearly every
        // tick; scheduling arithmetic must keep producing strictly
        // advancing reconnect times (the old expression relied on unsigned
        // wraparound staying in range).
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 50 }, 17);
        cfg.connect_every = 2;
        cfg.duration = 200;
        let report = Simulation::new(cfg).run();
        let m = &report.metrics;
        assert!(m.syncs > 50, "tight interval should sync often: {}", m.syncs);
        // Per-mobile reconnect ticks strictly increase.
        for mobile in 0..3 {
            let ticks: Vec<u64> =
                m.records.iter().filter(|r| r.mobile == mobile).map(|r| r.tick).collect();
            assert!(ticks.windows(2).all(|w| w[0] < w[1]), "mobile {mobile}: {ticks:?}");
        }
    }

    #[test]
    fn synchronized_reconnects_form_batches() {
        let mut cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 200 }, 23);
        cfg.synchronized_reconnects = true;
        // Force a real worker pool: Auto degrades to serial on one CPU.
        cfg.parallelism = Parallelism::Threads(4);
        cfg.n_mobiles = 6;
        cfg.connect_every = 25;
        cfg.duration = 200;
        let report = Simulation::new(cfg).run();
        let m = &report.metrics;
        assert!(
            m.batch_sizes.contains(&6),
            "synchronized mobiles should reconnect together: {:?}",
            m.batch_sizes
        );
        assert!(m.speculative_hits > 0, "batched merges should speculate: {m:?}");
    }

    #[test]
    fn parallel_and_serial_runs_are_identical() {
        // The core tentpole claim, exercised at unit scope (the full
        // matrix lives in tests/parallel_determinism.rs): any Parallelism
        // setting produces the same simulation, byte for byte.
        let mut serial_cfg =
            config(Protocol::merging_default(), SyncStrategy::WindowStart { window: 200 }, 29);
        serial_cfg.synchronized_reconnects = true;
        serial_cfg.n_mobiles = 5;
        serial_cfg.connect_every = 30;
        let mut parallel_cfg = serial_cfg.clone();
        serial_cfg.parallelism = Parallelism::Serial;
        parallel_cfg.parallelism = Parallelism::Threads(4);
        let serial = Simulation::new(serial_cfg).run();
        let parallel = Simulation::new(parallel_cfg).run();
        assert_eq!(serial.final_master, parallel.final_master);
        assert_eq!(serial.metrics.saved, parallel.metrics.saved);
        assert_eq!(serial.metrics.cost.total(), parallel.metrics.cost.total());
        assert_eq!(serial.metrics.records.len(), parallel.metrics.records.len());
        // The parallel run actually took the speculative path.
        assert!(parallel.metrics.speculative_hits > 0);
        assert_eq!(serial.metrics.speculative_hits, 0);
    }

    #[test]
    fn backlog_grows_with_mobile_count_under_reprocessing() {
        let small = {
            let mut c =
                config(Protocol::Reprocessing, SyncStrategy::WindowStart { window: 100 }, 11);
            c.n_mobiles = 2;
            c.base_capacity = 30.0;
            Simulation::new(c).run()
        };
        let large = {
            let mut c =
                config(Protocol::Reprocessing, SyncStrategy::WindowStart { window: 100 }, 11);
            c.n_mobiles = 12;
            c.base_capacity = 30.0;
            Simulation::new(c).run()
        };
        assert!(
            large.metrics.peak_backlog > small.metrics.peak_backlog,
            "backlog should grow with mobiles: {} !> {}",
            large.metrics.peak_backlog,
            small.metrics.peak_backlog
        );
    }
}
