//! The discrete-time two-tier replication simulation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use histmerge_core::merge::{MergeConfig, MergeOutcome, Merger};
use histmerge_core::prune::PruneMethod;
use histmerge_core::rewrite::{FixMode, RewriteAlgorithm};
use histmerge_history::{PrecedenceGraph, SerialHistory, TwoCycleOptimal, TxnArena};
use histmerge_semantics::{OracleStack, StaticAnalyzer};
use histmerge_txn::{DbState, TxnId, TxnKind};
use histmerge_workload::cost::{
    merging_cost, reprocessing_cost, CostParams, MergeStats, ReprocessStats,
};
use histmerge_workload::canned_mix::{CannedMix, CannedMixParams};
use histmerge_workload::generator::{ScenarioParams, TxnFactory};

use crate::cluster::BaseCluster;
use crate::metrics::{Metrics, SyncRecord};
use crate::mobile::MobileNode;
use crate::sync::SyncStrategy;

/// Which synchronization protocol the simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Protocol {
    /// The \[GHOS96\] baseline: re-execute every tentative transaction at
    /// the base.
    Reprocessing,
    /// The paper's merging protocol.
    Merging {
        /// The rewriting algorithm used by each merge.
        #[serde(skip)]
        algorithm: RewriteAlgorithm,
        /// The fix-computation mode.
        #[serde(skip)]
        fix_mode: FixMode,
    },
}

impl Protocol {
    /// The paper's recommended merging configuration.
    pub fn merging_default() -> Protocol {
        Protocol::Merging {
            algorithm: RewriteAlgorithm::CanFollowCanPrecede,
            fix_mode: FixMode::Lemma1,
        }
    }

    /// Short name for experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Reprocessing => "reprocessing",
            Protocol::Merging { .. } => "merging",
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of mobile nodes.
    pub n_mobiles: usize,
    /// Simulation length in ticks.
    pub duration: u64,
    /// Base transactions committed per tick (fractional rates accumulate).
    pub base_rate: f64,
    /// Tentative transactions per mobile per tick while disconnected.
    pub mobile_rate: f64,
    /// Mean ticks between reconnections of each mobile (jittered ±25%).
    pub connect_every: u64,
    /// The synchronization protocol.
    pub protocol: Protocol,
    /// The multi-history strategy (Section 2.2).
    pub strategy: SyncStrategy,
    /// Workload shape (variable space, transaction mix, hotspot skew).
    pub workload: ScenarioParams,
    /// Cost-model constants (Section 7.1).
    pub cost: CostParams,
    /// Base-node work capacity per tick, for backlog tracking.
    pub base_capacity: f64,
    /// Number of base partitions mastering the item space (multi-node base
    /// transactions coordinate via two-phase commit).
    pub base_nodes: usize,
    /// When set, transactions come from the typed canned mix (bank +
    /// promotions) instead of the random generator, and every merge uses
    /// the canned-system oracle (static analyzer + the libraries' declared
    /// tables). `workload` then only contributes its seed-independent
    /// simulation knobs; the item space and initial state come from the
    /// mix.
    pub canned: Option<CannedMixParams>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_mobiles: 4,
            duration: 400,
            base_rate: 0.5,
            mobile_rate: 0.2,
            connect_every: 50,
            protocol: Protocol::merging_default(),
            strategy: SyncStrategy::WindowStart { window: 100 },
            workload: ScenarioParams::default(),
            cost: CostParams::default(),
            base_capacity: 200.0,
            base_nodes: 1,
            canned: None,
        }
    }
}

/// The report a finished simulation returns.
#[derive(Debug)]
pub struct SimReport {
    /// Aggregated metrics.
    pub metrics: Metrics,
    /// The final master state.
    pub final_master: DbState,
    /// Base transactions committed in total (own load + installs +
    /// re-executions).
    pub base_commits: usize,
    /// Distribution statistics of the partitioned base tier.
    pub cluster: crate::cluster::ClusterStats,
}

/// Where the simulation's transactions come from.
enum TxnSource {
    /// The seeded random generator.
    Random(Box<TxnFactory>),
    /// The typed canned mix (bank + promotions).
    Canned(Box<CannedMix>),
}

impl TxnSource {
    fn next_txn(&mut self, arena: &mut TxnArena, kind: TxnKind) -> TxnId {
        match self {
            TxnSource::Random(f) => f.next_txn(arena, kind),
            TxnSource::Canned(m) => m.next_txn(arena, kind),
        }
    }
}

/// The simulation state. Construct with [`Simulation::new`] and consume
/// with [`Simulation::run`].
pub struct Simulation {
    config: SimConfig,
    arena: TxnArena,
    base: BaseCluster,
    mobiles: Vec<MobileNode>,
    /// Epoch id of the base's current window, and per-mobile epoch ids.
    epoch: u64,
    mobile_epochs: Vec<u64>,
    source: TxnSource,
    rng: StdRng,
    metrics: Metrics,
    backlog: f64,
    base_accum: f64,
    mobile_accum: Vec<f64>,
}

impl Simulation {
    /// Creates a simulation in its initial state.
    pub fn new(config: SimConfig) -> Self {
        let source = match &config.canned {
            Some(params) => TxnSource::Canned(Box::new(CannedMix::new(params.clone()))),
            None => TxnSource::Random(Box::new(TxnFactory::new(config.workload.clone()))),
        };
        let initial = match &source {
            TxnSource::Canned(mix) => mix.initial_state(),
            TxnSource::Random(_) => {
                histmerge_workload::generator::initial_state(&config.workload)
            }
        };
        let base = BaseCluster::new(initial.clone(), config.base_nodes);
        let mut rng = StdRng::seed_from_u64(config.workload.seed ^ 0x5151_5151);
        let mobiles: Vec<MobileNode> = (0..config.n_mobiles)
            .map(|i| {
                let first = 1 + rng.gen_range(0..config.connect_every.max(1));
                MobileNode::new(i, initial.clone(), 0, first)
            })
            .collect();
        let n = config.n_mobiles;
        Simulation {
            arena: TxnArena::new(),
            base,
            mobile_epochs: vec![0; n],
            epoch: 0,
            source,
            rng,
            metrics: Metrics::default(),
            backlog: 0.0,
            base_accum: 0.0,
            mobile_accum: vec![0.0; n],
            mobiles,
            config,
        }
    }

    /// Runs the simulation to completion.
    pub fn run(mut self) -> SimReport {
        for tick in 0..self.config.duration {
            self.step(tick);
        }
        SimReport {
            base_commits: self.base.base().committed(),
            final_master: self.base.base().master().clone(),
            cluster: self.base.stats().clone(),
            metrics: self.metrics,
        }
    }

    fn step(&mut self, tick: u64) {
        let mut tick_base_work = 0.0;

        // Window boundary (Strategy 2, fixed or adaptive).
        match self.config.strategy {
            SyncStrategy::WindowStart { window } => {
                if tick > 0 && tick.is_multiple_of(window.max(1)) {
                    self.base.base_mut().start_window();
                    self.epoch += 1;
                }
            }
            SyncStrategy::AdaptiveWindow { max_hb } => {
                if self.base.base().epoch_len() >= max_hb.max(1) {
                    self.base.base_mut().start_window();
                    self.epoch += 1;
                }
            }
            SyncStrategy::PerDisconnectSnapshot => {}
        }

        // Base tier's own load.
        self.base_accum += self.config.base_rate;
        while self.base_accum >= 1.0 {
            self.base_accum -= 1.0;
            let id = self.source.next_txn(&mut self.arena, TxnKind::Base);
            self.base.commit(&self.arena, id);
            self.metrics.base_generated += 1;
            let stmts = self.arena.get(id).program().statement_count() as f64;
            tick_base_work +=
                stmts * self.config.cost.base_query_per_stmt + self.config.cost.base_io_force;
        }

        // Mobile tier: generate tentative work, then handle reconnects.
        for i in 0..self.mobiles.len() {
            self.mobile_accum[i] += self.config.mobile_rate;
            while self.mobile_accum[i] >= 1.0 {
                self.mobile_accum[i] -= 1.0;
                let id = self.source.next_txn(&mut self.arena, TxnKind::Tentative);
                self.mobiles[i].run_tentative(&self.arena, id);
                self.metrics.tentative_generated += 1;
            }
            if self.mobiles[i].next_connect() == tick {
                tick_base_work += self.sync_mobile(i, tick);
                let jitter = self.config.connect_every / 4;
                let next = tick
                    + self.config.connect_every.max(1)
                    + if jitter > 0 { self.rng.gen_range(0..=2 * jitter) } else { 0 }
                    - jitter.min(tick + self.config.connect_every);
                self.mobiles[i].set_next_connect(next.max(tick + 1));
            }
        }

        // Backlog accounting.
        self.backlog = (self.backlog + tick_base_work - self.config.base_capacity).max(0.0);
        if self.backlog > self.metrics.peak_backlog {
            self.metrics.peak_backlog = self.backlog;
        }
        if tick.is_multiple_of(10) {
            self.metrics.backlog_series.push((tick, self.backlog));
        }
    }

    /// Synchronizes mobile `i`; returns the base-side work units incurred.
    fn sync_mobile(&mut self, i: usize, tick: u64) -> f64 {
        let pending = self.mobiles[i].pending();
        if pending == 0 {
            // Nothing to push: just refresh the origin.
            self.refresh_origin(i);
            return 0.0;
        }
        match self.config.protocol {
            Protocol::Reprocessing => self.reprocess_all(i, tick, false),
            Protocol::Merging { algorithm, fix_mode } => {
                match self.config.strategy {
                    SyncStrategy::WindowStart { .. } | SyncStrategy::AdaptiveWindow { .. } => {
                        if self.mobile_epochs[i] != self.epoch {
                            // Reconnected after its window closed: the
                            // history cannot be merged (Section 2.2) and is
                            // reprocessed instead.
                            self.metrics.window_misses += 1;
                            self.reprocess_all(i, tick, false)
                        } else {
                            self.merge_window(i, tick, algorithm, fix_mode)
                        }
                    }
                    SyncStrategy::PerDisconnectSnapshot => {
                        self.merge_snapshot(i, tick, algorithm, fix_mode)
                    }
                }
            }
        }
    }

    fn merger(&self, algorithm: RewriteAlgorithm, fix_mode: FixMode) -> Merger {
        let oracle: Box<dyn histmerge_semantics::SemanticOracle> = match &self.source {
            // Canned system: static analysis + the offline-verified tables.
            TxnSource::Canned(mix) => Box::new(mix.oracle()),
            TxnSource::Random(_) => {
                Box::new(OracleStack::new().with(Box::new(StaticAnalyzer::new())))
            }
        };
        Merger::new(MergeConfig {
            backout: Box::new(TwoCycleOptimal::new()),
            algorithm,
            fix_mode,
            prune: PruneMethod::Undo,
            oracle,
        })
    }

    /// Strategy 2 merge: against the window's base sub-history, from the
    /// shared window-start state.
    fn merge_window(
        &mut self,
        i: usize,
        tick: u64,
        algorithm: RewriteAlgorithm,
        fix_mode: FixMode,
    ) -> f64 {
        let hm = self.mobiles[i].history().clone();
        let hb = self.base.base().epoch_history();
        let s0 = self.base.base().epoch_state().clone();
        let merger = self.merger(algorithm, fix_mode);
        match merger.merge(&self.arena, &hm, &hb, &s0) {
            Ok(outcome) => self.apply_merge(i, tick, &hm, hb.len(), outcome, false),
            Err(_) => self.reprocess_all(i, tick, true),
        }
    }

    /// Strategy 1 merge: against the base log suffix from the mobile's own
    /// snapshot, if that snapshot is still a valid cut of the base history.
    fn merge_snapshot(
        &mut self,
        i: usize,
        tick: u64,
        algorithm: RewriteAlgorithm,
        fix_mode: FixMode,
    ) -> f64 {
        let origin_index = self.mobiles[i].origin_index();
        let hm = self.mobiles[i].history().clone();
        let s0 = self.mobiles[i].origin().clone();
        let full = self.base.base().full_history();
        let hb: SerialHistory = full.order()[origin_index..].iter().copied().collect();
        // Validity: replaying the suffix from the snapshot must reproduce
        // the current master. Retro-patched installs from other mobiles'
        // merges break this — the Strategy-1 failure mode.
        let valid = match histmerge_history::AugmentedHistory::execute(&self.arena, &hb, &s0) {
            Ok(aug) => aug.final_state() == self.base.base().master(),
            Err(_) => false,
        };
        if !valid {
            return self.reprocess_all(i, tick, true);
        }
        let merger = self.merger(algorithm, fix_mode);
        match merger.merge(&self.arena, &hm, &hb, &s0) {
            Ok(outcome) => self.apply_merge(i, tick, &hm, hb.len(), outcome, true),
            Err(_) => self.reprocess_all(i, tick, true),
        }
    }

    /// Installs a merge outcome on the base and records metrics. Returns
    /// base work units.
    fn apply_merge(
        &mut self,
        i: usize,
        tick: u64,
        hm: &SerialHistory,
        hb_len: usize,
        outcome: MergeOutcome,
        retroactive: bool,
    ) -> f64 {
        // Step 5: install forwarded updates.
        if retroactive {
            let from = self.mobiles[i].origin_index();
            self.base.base_mut().retro_patch(&self.arena, from, &outcome.forwarded);
        } else {
            let _ = self.base.install_updates(&mut self.arena, &outcome.forwarded);
        }
        // Step 6: re-execute backed-out transactions as base transactions.
        let mut backed_out_stmts = 0usize;
        for id in &outcome.backed_out {
            backed_out_stmts += self.arena.get(*id).program().statement_count();
            self.base.reexecute(&mut self.arena, *id);
        }

        let stats = self.merge_stats(hm, hb_len, &outcome, backed_out_stmts);
        let cost = merging_cost(&self.config.cost, &stats);
        self.metrics.record(
            SyncRecord {
                tick,
                mobile: i,
                pending: hm.len(),
                hb_len,
                saved: outcome.saved.len(),
                backed_out: outcome.backed_out.len(),
                reprocessed: 0,
                merge_failed: false,
            },
            cost,
        );
        self.refresh_origin(i);
        cost.base_cpu + cost.base_io
    }

    fn merge_stats(
        &self,
        hm: &SerialHistory,
        hb_len: usize,
        outcome: &MergeOutcome,
        backed_out_stmts: usize,
    ) -> MergeStats {
        let rw_entries: usize = hm
            .iter()
            .map(|id| {
                let t = self.arena.get(id);
                t.readset().len() + t.writeset().len()
            })
            .sum();
        let graph_edges =
            PrecedenceGraph::build(&self.arena, hm, &SerialHistory::new()).edges().len();
        MergeStats {
            hm_len: hm.len(),
            hb_len,
            rw_entries,
            graph_edges,
            full_graph_edges: outcome.graph_edges,
            n_saved: outcome.saved.len(),
            n_backed_out: outcome.backed_out.len(),
            backed_out_stmts,
            forwarded_items: outcome.forwarded.len(),
        }
    }

    /// Reprocesses every pending tentative transaction of mobile `i` the
    /// old way. Returns base work units.
    fn reprocess_all(&mut self, i: usize, tick: u64, merge_failed: bool) -> f64 {
        let pending: Vec<TxnId> = self.mobiles[i].history().iter().collect();
        let total_stmts: usize = pending
            .iter()
            .map(|id| self.arena.get(*id).program().statement_count())
            .sum();
        for id in &pending {
            self.base.reexecute(&mut self.arena, *id);
        }
        let cost = reprocessing_cost(
            &self.config.cost,
            &ReprocessStats { n_txns: pending.len(), total_stmts },
        );
        self.metrics.record(
            SyncRecord {
                tick,
                mobile: i,
                pending: pending.len(),
                hb_len: 0,
                saved: 0,
                backed_out: 0,
                reprocessed: pending.len(),
                merge_failed,
            },
            cost,
        );
        self.refresh_origin(i);
        cost.base_cpu + cost.base_io
    }

    /// Resets mobile `i`'s origin according to the strategy.
    fn refresh_origin(&mut self, i: usize) {
        match self.config.strategy {
            SyncStrategy::WindowStart { .. } | SyncStrategy::AdaptiveWindow { .. } => {
                // Strategy 2: new tentative histories within the window
                // keep the window-start state as their origin.
                let origin = self.base.base().epoch_state().clone();
                self.mobiles[i].resync(origin, 0);
                self.mobile_epochs[i] = self.epoch;
            }
            SyncStrategy::PerDisconnectSnapshot => {
                // Strategy 1: snapshot the current master.
                let origin = self.base.base().master().clone();
                let index = self.base.base().committed();
                self.mobiles[i].resync(origin, index);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_workload(seed: u64) -> ScenarioParams {
        ScenarioParams {
            n_vars: 32,
            commutative_fraction: 0.5,
            guarded_fraction: 0.2,
            read_only_fraction: 0.1,
            hot_fraction: 0.1,
            hot_prob: 0.4,
            seed,
            ..ScenarioParams::default()
        }
    }

    fn config(protocol: Protocol, strategy: SyncStrategy, seed: u64) -> SimConfig {
        SimConfig {
            n_mobiles: 3,
            duration: 300,
            base_rate: 0.3,
            mobile_rate: 0.15,
            connect_every: 40,
            protocol,
            strategy,
            workload: quiet_workload(seed),
            cost: CostParams::default(),
            base_capacity: 100.0,
            base_nodes: 1,
            canned: None,
        }
    }

    #[test]
    fn reprocessing_run_completes_and_reprocesses_everything() {
        let report = Simulation::new(config(
            Protocol::Reprocessing,
            SyncStrategy::WindowStart { window: 100 },
            1,
        ))
        .run();
        let m = &report.metrics;
        assert!(m.tentative_generated > 0);
        assert_eq!(m.saved, 0);
        assert!(m.reprocessed > 0);
        assert!(m.syncs > 0);
        // Everything synced so far was re-executed at the base.
        assert!(report.base_commits >= m.reprocessed + m.base_generated);
    }

    #[test]
    fn merging_run_saves_work() {
        // Window spanning the whole run: no window-miss reprocessing, so
        // the save ratio reflects pure conflict back-outs. The base history
        // grows over the window, so back-outs accumulate (the Section 2.2
        // trade-off) — the ratio is positive but far from 1.
        let report = Simulation::new(config(
            Protocol::merging_default(),
            SyncStrategy::WindowStart { window: 1000 },
            1,
        ))
        .run();
        let m = &report.metrics;
        assert!(m.saved > 0, "merging saved nothing: {m:?}");
        assert!(m.save_ratio() > 0.1, "save ratio too low: {}", m.save_ratio());
        assert_eq!(m.merge_failures, 0, "strategy 2 never fails to merge");
        assert_eq!(m.window_misses, 0);
    }

    #[test]
    fn commutative_workloads_save_more() {
        let run = |commutative: f64| {
            let mut cfg = config(
                Protocol::merging_default(),
                SyncStrategy::WindowStart { window: 100 },
                21,
            );
            cfg.workload.commutative_fraction = commutative;
            cfg.workload.guarded_fraction = 0.0;
            cfg.workload.read_only_fraction = 0.0;
            Simulation::new(cfg).run().metrics.save_ratio()
        };
        let low = run(0.0);
        let high = run(1.0);
        assert!(
            high > low,
            "commutative workload should save more: {high} !> {low}"
        );
    }

    #[test]
    fn merging_reduces_base_io_vs_reprocessing() {
        // Moderate contention so a healthy fraction of work survives the
        // merge (the regime Section 7.1 says merging targets).
        let strategies = SyncStrategy::WindowStart { window: 150 };
        let mut low = config(Protocol::Reprocessing, strategies, 7);
        low.workload.n_vars = 128;
        low.workload.hot_prob = 0.15;
        low.workload.commutative_fraction = 0.7;
        let mut low_m = low.clone();
        low_m.protocol = Protocol::merging_default();
        let rep = Simulation::new(low).run();
        let mer = Simulation::new(low_m).run();
        // Same workload seed: merging must force fewer log writes at the
        // base (one per merge vs one per transaction).
        assert!(
            mer.metrics.cost.base_io < rep.metrics.cost.base_io,
            "merging io {} !< reprocessing io {}",
            mer.metrics.cost.base_io,
            rep.metrics.cost.base_io
        );
    }

    #[test]
    fn strategy1_fails_merges_under_contention() {
        // High contention + several mobiles: merged installs retro-patch
        // the base log, invalidating other snapshots.
        let mut cfg = config(
            Protocol::merging_default(),
            SyncStrategy::PerDisconnectSnapshot,
            3,
        );
        cfg.workload.hot_prob = 0.9;
        cfg.workload.hot_fraction = 0.05;
        cfg.n_mobiles = 6;
        cfg.mobile_rate = 0.3;
        let report = Simulation::new(cfg).run();
        assert!(
            report.metrics.merge_failures > 0,
            "expected Strategy-1 merge failures: {:?}",
            report.metrics
        );
    }

    #[test]
    fn adaptive_window_bounds_hb_length() {
        let mut cfg = config(
            Protocol::merging_default(),
            SyncStrategy::AdaptiveWindow { max_hb: 15 },
            13,
        );
        cfg.base_rate = 0.5; // fast-growing base history
        let report = Simulation::new(cfg).run();
        let m = &report.metrics;
        // Every merge ran against a bounded base history.
        for r in &m.records {
            assert!(
                r.hb_len <= 15 + 1,
                "adaptive window let H_b grow to {}",
                r.hb_len
            );
        }
        assert!(m.syncs > 0);
        assert_eq!(m.merge_failures, 0);
    }

    #[test]
    fn window_misses_counted() {
        // Connect interval much longer than the window: every reconnection
        // lands in a later window and must reprocess.
        let mut cfg = config(
            Protocol::merging_default(),
            SyncStrategy::WindowStart { window: 20 },
            5,
        );
        cfg.connect_every = 80;
        let report = Simulation::new(cfg).run();
        assert!(report.metrics.window_misses > 0);
        assert!(report.metrics.reprocessed > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Simulation::new(config(
            Protocol::merging_default(),
            SyncStrategy::WindowStart { window: 100 },
            9,
        ))
        .run();
        let b = Simulation::new(config(
            Protocol::merging_default(),
            SyncStrategy::WindowStart { window: 100 },
            9,
        ))
        .run();
        assert_eq!(a.final_master, b.final_master);
        assert_eq!(a.metrics.saved, b.metrics.saved);
        assert_eq!(a.metrics.records.len(), b.metrics.records.len());
    }

    #[test]
    fn canned_simulation_uses_declared_tables() {
        use histmerge_workload::canned_mix::CannedMixParams;
        let mut cfg = config(
            Protocol::merging_default(),
            SyncStrategy::WindowStart { window: 200 },
            41,
        );
        cfg.canned = Some(CannedMixParams {
            n_accounts: 24,
            n_prices: 6,
            seed: 41,
            ..CannedMixParams::default()
        });
        let report = Simulation::new(cfg).run();
        let m = &report.metrics;
        assert!(m.tentative_generated > 0);
        assert!(m.saved > 0, "canned merging saved nothing: {m:?}");
        assert_eq!(m.merge_failures, 0);
        // Deterministic like everything else.
        let mut cfg2 = config(
            Protocol::merging_default(),
            SyncStrategy::WindowStart { window: 200 },
            41,
        );
        cfg2.canned = Some(CannedMixParams {
            n_accounts: 24,
            n_prices: 6,
            seed: 41,
            ..CannedMixParams::default()
        });
        let again = Simulation::new(cfg2).run();
        assert_eq!(report.final_master, again.final_master);
    }

    #[test]
    fn partitioned_base_accounts_coordination() {
        let mut cfg = config(
            Protocol::merging_default(),
            SyncStrategy::WindowStart { window: 100 },
            31,
        );
        cfg.base_nodes = 4;
        cfg.workload.writes_per_txn = 3; // multi-partition footprints
        let report = Simulation::new(cfg).run();
        assert_eq!(report.cluster.per_node_commits.len(), 4);
        assert!(report.cluster.distributed_txns > 0, "wide transactions expected");
        assert!(report.cluster.two_pc_messages > 0);
        assert!(report.cluster.imbalance() >= 1.0);
        // A single-node base never coordinates.
        let mut cfg1 = config(
            Protocol::merging_default(),
            SyncStrategy::WindowStart { window: 100 },
            31,
        );
        cfg1.workload.writes_per_txn = 3;
        let single = Simulation::new(cfg1).run();
        assert_eq!(single.cluster.two_pc_messages, 0);
        // Partitioning does not change the outcome, only the accounting.
        assert_eq!(single.final_master, report.final_master);
    }

    #[test]
    fn backlog_grows_with_mobile_count_under_reprocessing() {
        let small = {
            let mut c = config(Protocol::Reprocessing, SyncStrategy::WindowStart { window: 100 }, 11);
            c.n_mobiles = 2;
            c.base_capacity = 30.0;
            Simulation::new(c).run()
        };
        let large = {
            let mut c = config(Protocol::Reprocessing, SyncStrategy::WindowStart { window: 100 }, 11);
            c.n_mobiles = 12;
            c.base_capacity = 30.0;
            Simulation::new(c).run()
        };
        assert!(
            large.metrics.peak_backlog > small.metrics.peak_backlog,
            "backlog should grow with mobiles: {} !> {}",
            large.metrics.peak_backlog,
            small.metrics.peak_backlog
        );
    }
}
