//! The base tier: master data and the committed base history.

use std::sync::Arc;

use histmerge_history::{SerialHistory, TxnArena};
use histmerge_txn::{
    DbState, Expr, Fix, Program, ProgramBuilder, Statement, Transaction, TxnId, TxnKind,
};

/// The (logically centralized) base tier: the master copy of every data
/// item plus the committed base history with per-commit after states.
///
/// The paper treats the base nodes as one serializable store ("base
/// transactions ... involve several base nodes" but produce one master
/// history); the simulator follows suit.
#[derive(Debug, Clone)]
pub struct BaseNode {
    master: DbState,
    /// Committed history: `(txn, state after commit)`, since the start of
    /// the simulation.
    log: Vec<(TxnId, DbState)>,
    /// Index into `log` where the current window (epoch) began, and the
    /// master state at that point — the common start state every merge in
    /// this window uses (Section 2.2, Strategy 2).
    epoch_start: usize,
    epoch_state: DbState,
    /// When `true`, commits record only transaction ids in the log — the
    /// per-commit after states stay empty. Scale mode: a million-mobile
    /// run cannot afford one full-state clone per commit, and nothing in
    /// the Strategy-2 window protocol reads them (merges need ids and the
    /// window-start state only). Incompatible with durability (WAL
    /// snapshots ship after states) and Strategy-1 retro-patching (which
    /// edits them); [`Simulation::new`] rejects those combinations.
    ///
    /// [`Simulation::new`]: crate::Simulation::new
    lean: bool,
}

impl BaseNode {
    /// Creates a base node owning `initial` as the master state.
    pub fn new(initial: DbState) -> Self {
        BaseNode::with_lean(initial, false)
    }

    /// Creates a base node, optionally with the lean (id-only) commit log.
    pub fn with_lean(initial: DbState, lean: bool) -> Self {
        BaseNode {
            epoch_state: initial.clone(),
            master: initial,
            log: Vec::new(),
            epoch_start: 0,
            lean,
        }
    }

    /// Rebuilds a base node from recovered durable state (checkpoint
    /// snapshot plus replayed WAL records). Recovery-only.
    pub(crate) fn from_parts(
        master: DbState,
        log: Vec<(TxnId, DbState)>,
        epoch_start: usize,
        epoch_state: DbState,
    ) -> Self {
        BaseNode { master, log, epoch_start, epoch_state, lean: false }
    }

    /// Re-appends a recovered commit: the durable log stores each commit's
    /// after state, so replay restores it directly instead of re-running
    /// the transaction. Recovery-only.
    pub(crate) fn restore_commit(&mut self, txn: TxnId, after: DbState) {
        self.master = after.clone();
        self.log.push((txn, after));
    }

    /// The current master state.
    pub fn master(&self) -> &DbState {
        &self.master
    }

    /// The master state at the start of the current window.
    pub fn epoch_state(&self) -> &DbState {
        &self.epoch_state
    }

    /// Number of committed base transactions since the simulation start.
    pub fn committed(&self) -> usize {
        self.log.len()
    }

    /// The committed log since simulation start: `(txn, after state)` per
    /// commit — the durable content a WAL checkpoint snapshots.
    pub fn log(&self) -> &[(TxnId, DbState)] {
        &self.log
    }

    /// Index into the committed log where the current window began.
    pub fn epoch_start(&self) -> usize {
        self.epoch_start
    }

    /// Length of the base history since the window start — the `H_b` every
    /// merge in this window runs against.
    pub fn epoch_len(&self) -> usize {
        self.log.len() - self.epoch_start
    }

    /// The base history since the window start.
    pub fn epoch_history(&self) -> SerialHistory {
        self.log[self.epoch_start..].iter().map(|(t, _)| *t).collect()
    }

    /// The full committed history since simulation start.
    pub fn full_history(&self) -> SerialHistory {
        self.log.iter().map(|(t, _)| *t).collect()
    }

    /// The committed transaction ids from log index `from` to the end —
    /// the delta a speculative merge is validated against. O(suffix),
    /// where materializing [`BaseNode::full_history`] and slicing it was
    /// O(total log) per sync (quadratic over a run).
    pub fn history_suffix(&self, from: usize) -> Vec<TxnId> {
        self.log[from..].iter().map(|(t, _)| *t).collect()
    }

    /// The most recent committed transaction whose footprint conflicts
    /// with `txn`'s (a shared item with at least one write), skipping
    /// `txn` itself and everything in `exclude`. Telemetry-only: the
    /// merge autopsy uses this to name the concrete base commit a
    /// reprocessed tentative transaction lost to. Scans newest-first so
    /// the partner named is the latest offender.
    pub fn latest_conflicting_commit(
        &self,
        arena: &TxnArena,
        txn: TxnId,
        exclude: &std::collections::BTreeSet<TxnId>,
    ) -> Option<TxnId> {
        self.log
            .iter()
            .rev()
            .map(|(t, _)| *t)
            .find(|&t| t != txn && !exclude.contains(&t) && arena.conflicts(txn, t))
    }

    /// The after state of the `i`-th committed transaction (0-based), or
    /// the initial state for `i == log length` counting from the back...
    /// use [`BaseNode::master`] for the latest state.
    pub fn state_after(&self, i: usize) -> &DbState {
        &self.log[i].1
    }

    /// Executes and commits a base transaction on the master.
    ///
    /// # Panics
    ///
    /// Panics if the transaction cannot execute — base transactions run
    /// against the always-consistent master, so failure indicates a
    /// harness bug.
    pub fn commit(&mut self, arena: &TxnArena, id: TxnId) {
        let txn = arena.get(id);
        let out = txn.execute(&self.master, &Fix::empty()).expect("base transaction executes");
        self.master = out.after;
        let after = if self.lean { DbState::new() } else { self.master.clone() };
        self.log.push((id, after));
    }

    /// Installs forwarded updates (protocol step 5) as a single *install*
    /// base transaction that reads and overwrites the forwarded items, and
    /// commits it. Returns the install transaction's id, or `None` when
    /// every forwarded value already matches the master (a no-op install
    /// would only manufacture conflicts for later merges in the window).
    pub fn install_updates(&mut self, arena: &mut TxnArena, forwarded: &DbState) -> Option<TxnId> {
        let changed: DbState = forwarded
            .iter()
            .filter(|(var, value)| self.master.try_get(*var) != Some(*value))
            .collect();
        if changed.is_empty() {
            return None;
        }
        let program = install_program(&changed);
        let id = arena.alloc(|id| {
            Transaction::new(
                id,
                format!("install@{}", self.log.len()),
                TxnKind::Base,
                program,
                vec![],
            )
        });
        self.commit(arena, id);
        Some(id)
    }

    /// Re-registers a backed-out tentative transaction as a base
    /// transaction (protocol step 6 / reprocessing) and commits it.
    /// Returns the new base transaction's id.
    pub fn reexecute(&mut self, arena: &mut TxnArena, tentative: TxnId) -> TxnId {
        let source = arena.get(tentative).clone();
        let id = arena.alloc(|id| source.with_id(id).with_kind(TxnKind::Base));
        self.commit(arena, id);
        id
    }

    /// Starts a new window: the current master becomes the shared original
    /// state for every tentative history begun in this window
    /// (Section 2.2's periodic resynchronization).
    pub fn start_window(&mut self) {
        self.epoch_start = self.log.len();
        self.epoch_state = self.master.clone();
    }

    /// Strategy 1 support: patches every recorded state from `from_index`
    /// onward with the given updates, *except* items later base
    /// transactions wrote themselves. This models retroactively inserting
    /// merged tentative updates at their serialization point, which is
    /// exactly what invalidates other mobiles' snapshots (Section 2.2's
    /// argument against Strategy 1).
    ///
    /// Fails when `from_index` lies beyond the committed log: such an
    /// index names a serialization point that does not exist, and the old
    /// behavior — skipping the log loop but still patching the master —
    /// silently corrupted the master without any matching history entry.
    pub fn retro_patch(
        &mut self,
        arena: &TxnArena,
        from_index: usize,
        updates: &DbState,
    ) -> Result<(), RetroPatchError> {
        if from_index > self.log.len() {
            return Err(RetroPatchError { from_index, log_len: self.log.len() });
        }
        let mut masked: std::collections::BTreeSet<histmerge_txn::VarId> = Default::default();
        for i in from_index..self.log.len() {
            let (txn, state) = &mut self.log[i];
            for var in arena.get(*txn).writeset().iter() {
                masked.insert(var);
            }
            for (var, value) in updates.iter() {
                if !masked.contains(&var) {
                    state.set(var, value);
                }
            }
        }
        for (var, value) in updates.iter() {
            if !masked.contains(&var) {
                self.master.set(var, value);
            }
        }
        Ok(())
    }
}

/// A retroactive patch named a serialization point beyond the committed
/// log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetroPatchError {
    /// The out-of-range index the patch asked for.
    pub from_index: usize,
    /// The committed log length at the time of the call.
    pub log_len: usize,
}

impl std::fmt::Display for RetroPatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "retro-patch from index {} exceeds the committed log (length {})",
            self.from_index, self.log_len
        )
    }
}

impl std::error::Error for RetroPatchError {}

/// Builds the install program for forwarded updates.
///
/// The install READS every item before overwriting it. This is not
/// cosmetic: protocol step 5's forwarding rule ("we only need the value of
/// d in the final state of the repaired history") is only sound while the
/// base history contains no blind writes — a blind-writing install would
/// let a later mobile's transaction that merely *reads* an installed item
/// serialize before the install without forming a cycle, and that mobile's
/// forwarded values would then silently clobber the newer install.
/// Reading first turns any write-write overlap into a 2-cycle, forcing the
/// conflicting tentative transaction to be backed out instead.
fn install_program(forwarded: &DbState) -> Arc<Program> {
    let mut builder = ProgramBuilder::new("install");
    for (var, _) in forwarded.iter() {
        builder = builder.read(var);
    }
    for (var, value) in forwarded.iter() {
        builder = builder.statement(Statement::Update { target: var, expr: Expr::konst(value) });
    }
    Arc::new(builder.build().expect("install program is well formed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::{Expr, VarId};

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn inc(arena: &mut TxnArena, name: &str, var: u32, k: i64) -> TxnId {
        let p: Arc<Program> = Arc::new(
            ProgramBuilder::new(name)
                .read(v(var))
                .update(v(var), Expr::var(v(var)) + Expr::konst(k))
                .build()
                .unwrap(),
        );
        arena.alloc(|id| Transaction::new(id, name, TxnKind::Base, p, vec![]))
    }

    #[test]
    fn commit_advances_master_and_log() {
        let mut arena = TxnArena::new();
        let mut base = BaseNode::new(DbState::uniform(2, 0));
        let t = inc(&mut arena, "t", 0, 5);
        base.commit(&arena, t);
        assert_eq!(base.master().get(v(0)), 5);
        assert_eq!(base.committed(), 1);
        assert_eq!(base.state_after(0).get(v(0)), 5);
        assert_eq!(base.full_history().order(), &[t]);
    }

    #[test]
    fn lean_log_keeps_ids_but_no_after_states() {
        let mut arena = TxnArena::new();
        let mut base = BaseNode::with_lean(DbState::uniform(2, 0), true);
        let t = inc(&mut arena, "t", 0, 5);
        base.commit(&arena, t);
        assert_eq!(base.master().get(v(0)), 5, "master still advances");
        assert_eq!(base.full_history().order(), &[t]);
        assert!(base.state_after(0).is_empty(), "lean log records no after state");
        let t2 = inc(&mut arena, "u", 1, 2);
        base.commit(&arena, t2);
        assert_eq!(base.history_suffix(1), vec![t2]);
        assert_eq!(base.history_suffix(0), base.full_history().order().to_vec());
        assert_eq!(base.history_suffix(2), Vec::new());
    }

    #[test]
    fn windows_reset_epoch() {
        let mut arena = TxnArena::new();
        let mut base = BaseNode::new(DbState::uniform(1, 0));
        let t1 = inc(&mut arena, "a", 0, 1);
        base.commit(&arena, t1);
        assert_eq!(base.epoch_len(), 1);
        base.start_window();
        assert_eq!(base.epoch_len(), 0);
        assert_eq!(base.epoch_state().get(v(0)), 1);
        let t2 = inc(&mut arena, "b", 0, 1);
        base.commit(&arena, t2);
        assert_eq!(base.epoch_history().order(), &[t2]);
        assert_eq!(base.committed(), 2);
    }

    #[test]
    fn install_blind_writes_values() {
        let mut arena = TxnArena::new();
        let mut base = BaseNode::new(DbState::uniform(3, 0));
        let updates: DbState = [(v(0), 10), (v(2), 30)].into_iter().collect();
        let id = base.install_updates(&mut arena, &updates).expect("values changed");
        assert_eq!(base.master().get(v(0)), 10);
        assert_eq!(base.master().get(v(1)), 0);
        assert_eq!(base.master().get(v(2)), 30);
        assert_eq!(arena.get(id).kind(), TxnKind::Base);
        // Re-installing identical values is a no-op (no new base txn).
        assert!(base.install_updates(&mut arena, &updates).is_none());
        // A mixed patch installs only the changed item.
        let mixed: DbState = [(v(0), 10), (v(2), 99)].into_iter().collect();
        let id2 = base.install_updates(&mut arena, &mixed).expect("one value changed");
        assert_eq!(arena.get(id2).writeset().len(), 1);
        assert_eq!(base.master().get(v(2)), 99);
        // Installs must NOT blind-write (forwarding soundness; see
        // `install_program`).
        assert!(!arena.get(id).program().has_blind_writes());
        assert_eq!(arena.get(id).readset(), arena.get(id).writeset());
    }

    #[test]
    fn reexecute_rebrands_as_base() {
        let mut arena = TxnArena::new();
        let mut base = BaseNode::new(DbState::uniform(1, 0));
        let p: Arc<Program> = Arc::new(
            ProgramBuilder::new("m")
                .read(v(0))
                .update(v(0), Expr::var(v(0)) + Expr::konst(7))
                .build()
                .unwrap(),
        );
        let tentative = arena.alloc(|id| Transaction::new(id, "m", TxnKind::Tentative, p, vec![]));
        let reexec = base.reexecute(&mut arena, tentative);
        assert_ne!(reexec, tentative);
        assert_eq!(arena.get(reexec).kind(), TxnKind::Base);
        assert_eq!(arena.get(tentative).kind(), TxnKind::Tentative);
        assert_eq!(base.master().get(v(0)), 7);
    }

    #[test]
    fn retro_patch_skips_overwritten_items() {
        let mut arena = TxnArena::new();
        let mut base = BaseNode::new(DbState::uniform(2, 0));
        let t1 = inc(&mut arena, "a", 0, 1); // writes d0
        base.commit(&arena, t1);
        let t2 = inc(&mut arena, "b", 1, 1); // writes d1
        base.commit(&arena, t2);
        // Patch from index 0 with d0 := 100, d1... d0 is written by t1 at
        // index 0 → masked everywhere; d1 written at index 1 → patched at
        // index 0 only.
        let updates: DbState = [(v(0), 100), (v(1), 50)].into_iter().collect();
        base.retro_patch(&arena, 0, &updates).unwrap();
        assert_eq!(base.state_after(0).get(v(0)), 1); // masked by t1's write
        assert_eq!(base.state_after(0).get(v(1)), 50); // patched
        assert_eq!(base.state_after(1).get(v(1)), 1); // masked by t2's write
        assert_eq!(base.master().get(v(1)), 1);
        assert_eq!(base.master().get(v(0)), 1);
    }

    #[test]
    fn retro_patch_rejects_out_of_range_index() {
        // Regression: an index past the log used to skip the masking loop
        // entirely and patch the master anyway — a silent no-op on the
        // history but a real (untracked) master mutation.
        let mut arena = TxnArena::new();
        let mut base = BaseNode::new(DbState::uniform(2, 0));
        let t = inc(&mut arena, "a", 0, 1);
        base.commit(&arena, t);
        let updates: DbState = [(v(1), 50)].into_iter().collect();
        let err = base.retro_patch(&arena, 2, &updates).unwrap_err();
        assert_eq!(err.from_index, 2);
        assert_eq!(err.log_len, 1);
        assert!(err.to_string().contains("exceeds the committed log"));
        // Nothing changed — neither the log nor the master.
        assert_eq!(base.master().get(v(1)), 0);
        assert_eq!(base.state_after(0).get(v(1)), 0);
        // The boundary index (== log length) is legal: it patches nothing
        // in the log but legitimately extends the final state.
        base.retro_patch(&arena, 1, &updates).unwrap();
        assert_eq!(base.master().get(v(1)), 50);
    }
}
