//! Structured connectivity models and base-side admission control.
//!
//! The fault plan (`fault.rs`) breaks individual handshake *messages*;
//! this module breaks the *link schedule* itself, the way real mobile
//! deployments do: radios that sleep on a duty cycle, loss that spikes
//! during cell handoff, and fleet-wide outages that end in a synchronized
//! reconnect storm. A [`ConnectivityModel`] is pure configuration — the
//! per-mobile link trace is a deterministic function of `(model, mobile,
//! tick)`, so two runs with the same model see byte-identical traces and
//! no randomness is consumed beyond the legacy cadence draws.
//!
//! Two hooks feed the simulation:
//!
//! * **cadence shaping** — [`LinkTrace::next_up`] rounds a drawn
//!   reconnection tick forward to the next tick the mobile's link is up.
//!   [`ConnectivityModel::AlwaysOn`] is the identity, so the default
//!   configuration reproduces today's jittered cadence byte-for-byte
//!   (pinned by the eighth `session_differential` run);
//! * **trace-conditioned faults** — [`LinkTrace::fault_scale`] multiplies
//!   the configured fault rates during handoff windows and post-outage
//!   surges, turning the i.i.d. per-message fault model into correlated
//!   bursts. A scale of exactly 1.0 leaves the fault stream untouched.
//!
//! The second half of the module is the base's defense against the storm
//! the models can now produce: [`AdmissionConfig`] bounds the per-tick
//! merge cohort. Excess reconnects are shed into a deterministic FIFO
//! deferred queue that the scheduler drains ahead of fresh arrivals every
//! tick, so every deferred mobile is admitted after at most
//! `⌈queue/max_batch⌉` ticks — graceful degradation without starvation,
//! and the convergence oracle holds under every model × fault mix.

use serde::Serialize;

/// A deterministic per-mobile link trace: when the link is up, and how
/// much the ambient fault rates are scaled by the link's current state.
/// [`ConnectivityModel`] is the canonical implementation; the trait keeps
/// the simulation generic over future trace sources (e.g. replayed real
/// traces).
pub trait LinkTrace {
    /// `true` when `mobile`'s link is up at `tick`.
    fn link_up(&self, mobile: usize, tick: u64) -> bool;

    /// The earliest tick `>= from` at which `mobile`'s link is up.
    fn next_up(&self, mobile: usize, from: u64) -> u64;

    /// The factor the fault rates are multiplied by for a handshake of
    /// `mobile` at `tick` (1.0 = unconditioned).
    fn fault_scale(&self, mobile: usize, tick: u64) -> f64;
}

/// A structured, deterministic connectivity model. Pure configuration:
/// the trace is a function of `(model, mobile, tick)` and every
/// per-mobile variation comes from hashing the model's seed with the
/// mobile id — no RNG stream is consumed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub enum ConnectivityModel {
    /// The link is always up and fault rates are never scaled — the
    /// legacy jittered cadence, byte-for-byte.
    #[default]
    AlwaysOn,
    /// The radio sleeps on a periodic duty cycle: each period of
    /// `period` ticks starts with `on_ticks` awake ticks (per-mobile
    /// phase offset drawn from `seed`), and reconnections drawn into the
    /// sleeping window slide to the next wake-up.
    DutyCycle {
        /// Full cycle length in ticks (must be > 0).
        period: u64,
        /// Awake ticks at the start of each cycle (1..=period).
        on_ticks: u64,
        /// Seed of the per-mobile phase offsets.
        seed: u64,
    },
    /// The link never drops, but each mobile periodically crosses a cell
    /// boundary and its loss/reorder-prone handoff window scales the
    /// fault rates — correlated fault bursts instead of i.i.d. noise.
    CellHandoff {
        /// Ticks between one mobile's successive handoffs (must be > 0).
        interval: u64,
        /// Length of the fault-prone window opening each handoff
        /// (0..=interval).
        handoff_ticks: u64,
        /// Factor the fault rates are multiplied by inside the window
        /// (>= 0; scaled rates are clamped to 1.0).
        fault_boost: f64,
        /// Seed of the per-mobile handoff phase offsets.
        seed: u64,
    },
    /// A fleet-wide outage: every link is down for
    /// `[start, start + outage_ticks)`, every reconnection drawn into
    /// that epoch lands on the first tick after it — the synchronized
    /// reconnect storm — and fault rates are boosted for the
    /// `surge_ticks` that follow (the congested drain).
    OutageStorm {
        /// First tick of the outage.
        start: u64,
        /// Outage length in ticks.
        outage_ticks: u64,
        /// Post-outage ticks during which fault rates are boosted.
        surge_ticks: u64,
        /// Factor the fault rates are multiplied by during the surge
        /// (>= 0; scaled rates are clamped to 1.0).
        fault_boost: f64,
    },
}

/// SplitMix64 finalizer — the per-mobile phase hash. Deterministic and
/// stream-free: traces never touch the simulation's RNGs.
fn mix(seed: u64, mobile: usize) -> u64 {
    let mut z = seed ^ (mobile as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ConnectivityModel {
    /// Short name for experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            ConnectivityModel::AlwaysOn => "always-on",
            ConnectivityModel::DutyCycle { .. } => "duty-cycle",
            ConnectivityModel::CellHandoff { .. } => "cell-handoff",
            ConnectivityModel::OutageStorm { .. } => "outage-storm",
        }
    }

    /// Checks the model's parameters are coherent: periods and intervals
    /// non-zero, windows inside their cycle, boosts finite and
    /// non-negative. Rejected up front by `Simulation::new` — a zero
    /// period would otherwise divide by zero mid-run.
    pub fn validate(&self) -> Result<(), InvalidConnectivity> {
        match *self {
            ConnectivityModel::AlwaysOn => Ok(()),
            ConnectivityModel::DutyCycle { period, on_ticks, .. } => {
                if period == 0 {
                    return Err(InvalidConnectivity { field: "period", value: 0.0 });
                }
                if on_ticks == 0 || on_ticks > period {
                    return Err(InvalidConnectivity { field: "on_ticks", value: on_ticks as f64 });
                }
                Ok(())
            }
            ConnectivityModel::CellHandoff { interval, handoff_ticks, fault_boost, .. } => {
                if interval == 0 {
                    return Err(InvalidConnectivity { field: "interval", value: 0.0 });
                }
                if handoff_ticks > interval {
                    return Err(InvalidConnectivity {
                        field: "handoff_ticks",
                        value: handoff_ticks as f64,
                    });
                }
                if !fault_boost.is_finite() || fault_boost < 0.0 {
                    return Err(InvalidConnectivity { field: "fault_boost", value: fault_boost });
                }
                Ok(())
            }
            ConnectivityModel::OutageStorm { fault_boost, .. } => {
                if !fault_boost.is_finite() || fault_boost < 0.0 {
                    return Err(InvalidConnectivity { field: "fault_boost", value: fault_boost });
                }
                Ok(())
            }
        }
    }

    /// The mobile's phase offset within a periodic model's cycle.
    fn phase(seed: u64, mobile: usize, period: u64) -> u64 {
        mix(seed, mobile) % period.max(1)
    }
}

impl LinkTrace for ConnectivityModel {
    fn link_up(&self, mobile: usize, tick: u64) -> bool {
        match *self {
            ConnectivityModel::AlwaysOn | ConnectivityModel::CellHandoff { .. } => true,
            ConnectivityModel::DutyCycle { period, on_ticks, seed } => {
                (tick + Self::phase(seed, mobile, period)) % period < on_ticks
            }
            ConnectivityModel::OutageStorm { start, outage_ticks, .. } => {
                !(start..start.saturating_add(outage_ticks)).contains(&tick)
            }
        }
    }

    fn next_up(&self, mobile: usize, from: u64) -> u64 {
        match *self {
            ConnectivityModel::AlwaysOn | ConnectivityModel::CellHandoff { .. } => from,
            ConnectivityModel::DutyCycle { period, on_ticks, seed } => {
                let phase = Self::phase(seed, mobile, period);
                let pos = (from + phase) % period;
                if pos < on_ticks {
                    from
                } else {
                    // Slide to the start of the next cycle's awake window.
                    from + (period - pos)
                }
            }
            ConnectivityModel::OutageStorm { start, outage_ticks, .. } => {
                let end = start.saturating_add(outage_ticks);
                if (start..end).contains(&from) {
                    end
                } else {
                    from
                }
            }
        }
    }

    fn fault_scale(&self, mobile: usize, tick: u64) -> f64 {
        match *self {
            ConnectivityModel::AlwaysOn | ConnectivityModel::DutyCycle { .. } => 1.0,
            ConnectivityModel::CellHandoff { interval, handoff_ticks, fault_boost, seed } => {
                if (tick + Self::phase(seed, mobile, interval)) % interval < handoff_ticks {
                    fault_boost
                } else {
                    1.0
                }
            }
            ConnectivityModel::OutageStorm { start, outage_ticks, surge_ticks, fault_boost } => {
                let end = start.saturating_add(outage_ticks);
                if (end..end.saturating_add(surge_ticks)).contains(&tick) {
                    fault_boost
                } else {
                    1.0
                }
            }
        }
    }
}

/// A connectivity-model parameter rejected by
/// [`ConnectivityModel::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidConnectivity {
    /// The offending parameter.
    pub field: &'static str,
    /// Its rejected value.
    pub value: f64,
}

impl std::fmt::Display for InvalidConnectivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "connectivity parameter `{}` is {} — out of range", self.field, self.value)
    }
}

impl std::error::Error for InvalidConnectivity {}

/// Base-side admission control: the cap on how many reconnecting mobiles
/// the base merges in one tick. E19's scale finding — a same-tick merge
/// cohort pays quadratically for its own installs into the shared epoch —
/// makes an unbounded reconnect storm a latent availability bug; the cap
/// turns it into bounded per-tick work plus a deterministic deferred
/// queue (drained FIFO, ahead of fresh arrivals, so no mobile starves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct AdmissionConfig {
    /// Maximum mobiles synced per tick; `0` disables admission control
    /// entirely (the default — byte-identical to the pre-admission
    /// scheduler).
    pub max_batch: usize,
}

impl AdmissionConfig {
    /// Admission control disabled: every reconnect is served the tick it
    /// arrives.
    pub fn unbounded() -> AdmissionConfig {
        AdmissionConfig { max_batch: 0 }
    }

    /// A per-tick cohort bound.
    pub fn bounded(max_batch: usize) -> AdmissionConfig {
        AdmissionConfig { max_batch }
    }

    /// `true` when a cap is in force.
    pub fn enabled(&self) -> bool {
        self.max_batch > 0
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_is_the_identity() {
        let m = ConnectivityModel::AlwaysOn;
        for mobile in 0..8 {
            for tick in 0..256 {
                assert!(m.link_up(mobile, tick));
                assert_eq!(m.next_up(mobile, tick), tick);
                assert_eq!(m.fault_scale(mobile, tick), 1.0);
            }
        }
    }

    #[test]
    fn duty_cycle_sleeps_and_wakes_on_schedule() {
        let m = ConnectivityModel::DutyCycle { period: 10, on_ticks: 3, seed: 7 };
        assert!(m.validate().is_ok());
        for mobile in 0..16 {
            let mut up_ticks = 0;
            for tick in 0..100 {
                let up = m.link_up(mobile, tick);
                up_ticks += up as usize;
                let next = m.next_up(mobile, tick);
                // next_up lands on an up tick, at or after the query, and
                // never skips an up tick in between.
                assert!(next >= tick);
                assert!(m.link_up(mobile, next), "next_up must land on an up tick");
                for t in tick..next {
                    assert!(!m.link_up(mobile, t), "next_up skipped an up tick");
                }
                assert_eq!(m.fault_scale(mobile, tick), 1.0);
            }
            assert_eq!(up_ticks, 30, "3 of every 10 ticks are awake");
        }
    }

    #[test]
    fn duty_cycle_phases_are_deterministic_and_seed_dependent() {
        let a = ConnectivityModel::DutyCycle { period: 16, on_ticks: 4, seed: 1 };
        let b = ConnectivityModel::DutyCycle { period: 16, on_ticks: 4, seed: 2 };
        let trace = |m: &ConnectivityModel, mobile: usize| {
            (0..64).map(|t| m.link_up(mobile, t)).collect::<Vec<_>>()
        };
        for mobile in 0..8 {
            assert_eq!(trace(&a, mobile), trace(&a, mobile), "same seed, same trace");
        }
        // At least one mobile's phase differs across seeds.
        assert!((0..8).any(|mobile| trace(&a, mobile) != trace(&b, mobile)));
        // And phases vary across mobiles (the fleet is staggered).
        assert!((1..8).any(|mobile| trace(&a, 0) != trace(&a, mobile)));
    }

    #[test]
    fn handoff_windows_boost_faults_periodically() {
        let m = ConnectivityModel::CellHandoff {
            interval: 20,
            handoff_ticks: 4,
            fault_boost: 5.0,
            seed: 3,
        };
        assert!(m.validate().is_ok());
        for mobile in 0..8 {
            let boosted: usize = (0..200).filter(|&t| m.fault_scale(mobile, t) > 1.0).count();
            assert_eq!(boosted, 40, "4 of every 20 ticks are handoff-prone");
            // The link itself never drops.
            assert!((0..200).all(|t| m.link_up(mobile, t)));
            assert_eq!(m.next_up(mobile, 17), 17);
        }
    }

    #[test]
    fn outage_storm_synchronizes_reconnects_and_surges() {
        let m = ConnectivityModel::OutageStorm {
            start: 50,
            outage_ticks: 30,
            surge_ticks: 10,
            fault_boost: 3.0,
        };
        assert!(m.validate().is_ok());
        for mobile in 0..4 {
            assert!(m.link_up(mobile, 49));
            assert!(!m.link_up(mobile, 50));
            assert!(!m.link_up(mobile, 79));
            assert!(m.link_up(mobile, 80));
            // Every reconnection drawn into the outage lands on its end —
            // the synchronized storm.
            for from in 50..80 {
                assert_eq!(m.next_up(mobile, from), 80);
            }
            assert_eq!(m.next_up(mobile, 49), 49);
            assert_eq!(m.next_up(mobile, 80), 80);
            // Fault rates surge for the drain window, then settle.
            assert_eq!(m.fault_scale(mobile, 79), 1.0);
            assert_eq!(m.fault_scale(mobile, 80), 3.0);
            assert_eq!(m.fault_scale(mobile, 89), 3.0);
            assert_eq!(m.fault_scale(mobile, 90), 1.0);
        }
    }

    #[test]
    fn validate_rejects_incoherent_parameters() {
        assert!(ConnectivityModel::DutyCycle { period: 0, on_ticks: 1, seed: 0 }
            .validate()
            .is_err());
        assert!(ConnectivityModel::DutyCycle { period: 4, on_ticks: 0, seed: 0 }
            .validate()
            .is_err());
        assert!(ConnectivityModel::DutyCycle { period: 4, on_ticks: 5, seed: 0 }
            .validate()
            .is_err());
        assert!(ConnectivityModel::CellHandoff {
            interval: 0,
            handoff_ticks: 0,
            fault_boost: 1.0,
            seed: 0
        }
        .validate()
        .is_err());
        assert!(ConnectivityModel::CellHandoff {
            interval: 10,
            handoff_ticks: 11,
            fault_boost: 1.0,
            seed: 0
        }
        .validate()
        .is_err());
        let err = ConnectivityModel::CellHandoff {
            interval: 10,
            handoff_ticks: 2,
            fault_boost: f64::NAN,
            seed: 0,
        }
        .validate()
        .unwrap_err();
        assert_eq!(err.field, "fault_boost");
        assert!(err.to_string().contains("fault_boost"));
        assert!(ConnectivityModel::OutageStorm {
            start: 0,
            outage_ticks: 1,
            surge_ticks: 0,
            fault_boost: -1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn admission_config_defaults_off() {
        assert!(!AdmissionConfig::default().enabled());
        assert_eq!(AdmissionConfig::default(), AdmissionConfig::unbounded());
        assert!(AdmissionConfig::bounded(8).enabled());
        assert_eq!(AdmissionConfig::bounded(8).max_batch, 8);
    }
}
