//! The deterministic event-driven scheduler.
//!
//! The original simulation loop owned every mobile inline and rescanned
//! the whole fleet twice per tick — once for tentative generation, once
//! for reconnections — making each tick O(fleet) even when nothing
//! happened. At the ROADMAP's million-mobile scale that scan *is* the
//! simulation. This module replaces it with a priority queue of
//! timestamped events: a tick only touches the mobiles that actually act
//! on it, so per-tick cost is O(events · log queue) instead of O(fleet).
//!
//! # Determinism contract
//!
//! Event-driven scheduling must be **byte-identical** to the tick scan it
//! replaces (the sixth `session_differential` run pins this). Three
//! properties carry the proof:
//!
//! 1. **Total event order.** [`Event`] orders by `(time, kind, mobile)`;
//!    [`EventKind::Generate`] sorts before [`EventKind::Connect`], so a
//!    tick's pops reproduce the legacy phase order (generation completes
//!    for the whole tier before any sync runs), and same-tick reconnects
//!    pop in mobile-id order — exactly the order the legacy fleet filter
//!    produced. Ties are impossible to break non-deterministically: the
//!    order is total.
//! 2. **Identical RNG draw order.** Reconnect jitter draws happen when a
//!    batch member is rescheduled, in batch (= mobile-id) order — the
//!    same stream positions as the legacy loop. The scheduler itself
//!    never draws.
//! 3. **Identical accumulator arithmetic.** Tentative generation uses the
//!    same `acc += rate; while acc >= 1.0` float sequence the per-mobile
//!    scan ran; because every mobile shares one rate and one starting
//!    accumulator, the whole fleet shares a single trajectory and one
//!    [`EventKind::Generate`] event per firing tick replays it exactly.
//!
//! [`fork_rng`] supplies domain-separated RNG streams for harness-level
//! sweeps (per-shard workers, fault schedules): child streams are
//! deterministic functions of the parent's position, so adding or
//! removing one consumer never perturbs another's draws.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Which machinery drives the per-tick mobile work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// The legacy loop: scan the whole fleet every tick. O(fleet)/tick;
    /// kept as the differential reference for the event queue.
    TickScan,
    /// The event-driven scheduler: a deterministic priority queue of
    /// timestamped events; a tick touches only the mobiles that act on
    /// it. Byte-identical to [`SchedulerMode::TickScan`] on every
    /// scenario.
    #[default]
    EventQueue,
}

/// What a scheduled event does when it fires.
///
/// Declaration order is load-bearing: the derived [`Ord`] puts
/// [`EventKind::Generate`] before [`EventKind::Connect`], which is how
/// same-tick pops reproduce the legacy generation-before-sync phase
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// The fleet-wide tentative-generation accumulator crossed 1.0: every
    /// mobile runs the tick's tentative transactions.
    Generate,
    /// One mobile reconnects and synchronizes.
    Connect,
}

/// A timestamped scheduler event. The derived [`Ord`] compares
/// `(time, kind, mobile)` — field order is the tie-break contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// The tick the event fires at.
    pub time: u64,
    /// What firing does.
    pub kind: EventKind,
    /// The acting mobile (0 for fleet-wide [`EventKind::Generate`]).
    pub mobile: usize,
}

/// A deterministic min-queue of [`Event`]s with push/pop counters.
///
/// The counters feed [`SchedStats`]: the regression suite asserts that in
/// event mode the queue's pops are the *only* per-tick mobile traversal
/// (no fleet scans), and that the queue was actually exercised.
///
/// [`SchedStats`]: crate::metrics::SchedStats
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    pushed: u64,
    popped: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules an event.
    pub fn push(&mut self, event: Event) {
        self.pushed += 1;
        self.heap.push(Reverse(event));
    }

    /// Pops the next event due exactly at `tick`, or `None` when the
    /// earliest event lies in the future (or the queue is empty). Events
    /// scheduled in the past would indicate a scheduling bug; they are
    /// also returned so invariant checks can see them.
    pub fn pop_at(&mut self, tick: u64) -> Option<Event> {
        if self.heap.peek().is_some_and(|Reverse(e)| e.time <= tick) {
            self.popped += 1;
            return self.heap.pop().map(|Reverse(e)| e);
        }
        None
    }

    /// Events currently scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events pushed over the queue's lifetime.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events popped over the queue's lifetime.
    pub fn popped(&self) -> u64 {
        self.popped
    }
}

/// Forks a child RNG off `base`: the child is seeded by the parent's next
/// draw, so it is a deterministic function of the parent's stream
/// position. Consumers that fork once and draw privately cannot perturb
/// each other — adding or removing one fork shifts later forks but never
/// reaches into sibling streams (the domain-separation idiom the
/// per-shard scale harness and the fault planner rely on).
pub fn fork_rng(base: &mut StdRng) -> StdRng {
    StdRng::seed_from_u64(base.next_u64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn ev(time: u64, kind: EventKind, mobile: usize) -> Event {
        Event { time, kind, mobile }
    }

    #[test]
    fn events_order_by_time_kind_mobile() {
        let a = ev(1, EventKind::Connect, 0);
        let b = ev(2, EventKind::Generate, 0);
        assert!(a < b, "time dominates");
        let g = ev(5, EventKind::Generate, 9);
        let c = ev(5, EventKind::Connect, 0);
        assert!(g < c, "generation precedes connects within a tick");
        let c0 = ev(5, EventKind::Connect, 0);
        let c1 = ev(5, EventKind::Connect, 1);
        assert!(c0 < c1, "same-tick connects pop in mobile-id order");
    }

    #[test]
    fn pop_at_drains_only_the_due_tick() {
        let mut q = EventQueue::new();
        q.push(ev(3, EventKind::Connect, 1));
        q.push(ev(2, EventKind::Connect, 0));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_at(1), None);
        assert_eq!(q.pop_at(2), Some(ev(2, EventKind::Connect, 0)));
        assert_eq!(q.pop_at(2), None);
        assert_eq!(q.pop_at(3), Some(ev(3, EventKind::Connect, 1)));
        assert!(q.is_empty());
        assert_eq!(q.pushed(), 2);
        assert_eq!(q.popped(), 2);
    }

    #[test]
    fn same_tick_pops_are_phase_then_id_ordered() {
        let mut q = EventQueue::new();
        q.push(ev(7, EventKind::Connect, 2));
        q.push(ev(7, EventKind::Connect, 0));
        q.push(ev(7, EventKind::Generate, 0));
        q.push(ev(7, EventKind::Connect, 1));
        let mut out = Vec::new();
        while let Some(e) = q.pop_at(7) {
            out.push(e);
        }
        assert_eq!(
            out,
            vec![
                ev(7, EventKind::Generate, 0),
                ev(7, EventKind::Connect, 0),
                ev(7, EventKind::Connect, 1),
                ev(7, EventKind::Connect, 2),
            ]
        );
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut base_a = StdRng::seed_from_u64(42);
        let mut base_b = StdRng::seed_from_u64(42);
        let mut fork_a = fork_rng(&mut base_a);
        let mut fork_b = fork_rng(&mut base_b);
        let draws_a: Vec<u64> = (0..8).map(|_| fork_a.gen_range(0..1000)).collect();
        // Draining fork_b differently has no effect on the parent stream:
        // the next fork of both parents still agrees.
        let _ = fork_b.gen_range(0..10u64);
        let second_a: StdRng = fork_rng(&mut base_a);
        let second_b: StdRng = fork_rng(&mut base_b);
        let mut sa = second_a;
        let mut sb = second_b;
        assert_eq!(sa.gen_range(0..u64::MAX), sb.gen_range(0..u64::MAX));
        // And re-deriving the first fork reproduces its draws.
        let mut base_c = StdRng::seed_from_u64(42);
        let mut fork_c = fork_rng(&mut base_c);
        let draws_c: Vec<u64> = (0..8).map(|_| fork_c.gen_range(0..1000)).collect();
        assert_eq!(draws_a, draws_c);
    }

    #[test]
    fn default_mode_is_event_queue() {
        assert_eq!(SchedulerMode::default(), SchedulerMode::EventQueue);
    }
}
