//! A partitioned base tier.
//!
//! The paper's base transactions "involve at most one connected-mobile node
//! and may involve several base nodes": master copies are partitioned
//! across always-connected base nodes, and a transaction touching items
//! mastered on several nodes commits with a two-phase protocol. The
//! cluster still produces ONE serializable base history (the paper's
//! lazy-master scheme gives "ACID serializability" at the base tier);
//! partitioning matters for *accounting* — per-node load balance and
//! base-to-base coordination messages — which this module layers on top of
//! [`BaseNode`].

use histmerge_txn::{DbState, TxnId, VarId};

use crate::base::BaseNode;
use histmerge_history::TxnArena;

/// Statistics of a partitioned base tier.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Commits each node participated in.
    pub per_node_commits: Vec<u64>,
    /// Base-to-base messages spent on two-phase commit: `4 × (p − 1)` per
    /// transaction with `p > 1` participants (prepare, vote, decide, ack).
    pub two_pc_messages: u64,
    /// Transactions that needed more than one participant.
    pub distributed_txns: u64,
}

impl ClusterStats {
    /// Load imbalance: max participation divided by the mean (1.0 =
    /// perfectly balanced). Returns 0.0 before any commit.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.per_node_commits.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / self.per_node_commits.len() as f64;
        let max = *self.per_node_commits.iter().max().expect("non-empty") as f64;
        max / mean
    }
}

/// A base tier of `n_nodes` partitions over one logical serializable
/// history.
///
/// Items are assigned to partitions by index modulo `n_nodes` (the
/// hash-partitioning a 1999 deployment would use). All [`BaseNode`]
/// operations delegate to the unified history; the cluster adds
/// participant tracking.
#[derive(Debug, Clone)]
pub struct BaseCluster {
    inner: BaseNode,
    n_nodes: usize,
    stats: ClusterStats,
}

impl BaseCluster {
    /// Creates a cluster of `n_nodes` partitions (min 1) over `initial`.
    pub fn new(initial: DbState, n_nodes: usize) -> Self {
        BaseCluster::with_lean(initial, n_nodes, false)
    }

    /// Creates a cluster whose unified base tier optionally keeps the
    /// lean (id-only) commit log — see [`BaseNode::with_lean`].
    pub fn with_lean(initial: DbState, n_nodes: usize, lean: bool) -> Self {
        let n_nodes = n_nodes.max(1);
        BaseCluster {
            inner: BaseNode::with_lean(initial, lean),
            stats: ClusterStats { per_node_commits: vec![0; n_nodes], ..ClusterStats::default() },
            n_nodes,
        }
    }

    /// The partition mastering `var`.
    pub fn node_of(&self, var: VarId) -> usize {
        var.index() as usize % self.n_nodes
    }

    /// Number of partitions.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The unified base tier (master state, history, windows).
    pub fn base(&self) -> &BaseNode {
        &self.inner
    }

    /// Mutable access to the unified base tier.
    pub fn base_mut(&mut self) -> &mut BaseNode {
        &mut self.inner
    }

    /// The accumulated distribution statistics.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// The partitions a transaction's footprint touches.
    pub fn participants(&self, arena: &TxnArena, id: TxnId) -> Vec<usize> {
        let txn = arena.get(id);
        let mut nodes: Vec<usize> =
            txn.readset().union(txn.writeset()).iter().map(|v| self.node_of(v)).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    fn account(&mut self, participants: &[usize]) {
        for p in participants {
            self.stats.per_node_commits[*p] += 1;
        }
        if participants.len() > 1 {
            self.stats.distributed_txns += 1;
            self.stats.two_pc_messages += 4 * (participants.len() as u64 - 1);
        }
    }

    /// Commits a base transaction, accounting its participants.
    pub fn commit(&mut self, arena: &TxnArena, id: TxnId) {
        let participants = self.participants(arena, id);
        self.account(&participants);
        self.inner.commit(arena, id);
    }

    /// Installs forwarded updates (protocol step 5). The install touches
    /// every partition mastering a changed item — a merge's single wide
    /// transaction, versus reprocessing's many narrow ones. No-op installs
    /// (every value already current) commit nothing and cost nothing.
    pub fn install_updates(&mut self, arena: &mut TxnArena, forwarded: &DbState) -> Option<TxnId> {
        let id = self.inner.install_updates(arena, forwarded)?;
        let nodes = self.participants(arena, id);
        self.account(&nodes);
        Some(id)
    }

    /// Re-executes a backed-out tentative transaction as a base
    /// transaction.
    pub fn reexecute(&mut self, arena: &mut TxnArena, tentative: TxnId) -> TxnId {
        let participants = self.participants(arena, tentative);
        self.account(&participants);
        self.inner.reexecute(arena, tentative)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::{Expr, Program, ProgramBuilder, Transaction, TxnKind};
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn txn_on(arena: &mut TxnArena, vars: &[u32]) -> TxnId {
        let mut b = ProgramBuilder::new("t");
        for i in vars {
            b = b.read(v(*i));
        }
        for i in vars {
            b = b.update(v(*i), Expr::var(v(*i)) + Expr::konst(1));
        }
        let p: Arc<Program> = Arc::new(b.build().unwrap());
        arena.alloc(|id| Transaction::new(id, "t", TxnKind::Base, p, vec![]))
    }

    #[test]
    fn partitioning_is_modular() {
        let c = BaseCluster::new(DbState::uniform(8, 0), 3);
        assert_eq!(c.node_of(v(0)), 0);
        assert_eq!(c.node_of(v(4)), 1);
        assert_eq!(c.node_of(v(5)), 2);
        assert_eq!(c.n_nodes(), 3);
    }

    #[test]
    fn single_partition_txn_needs_no_2pc() {
        let mut arena = TxnArena::new();
        let mut c = BaseCluster::new(DbState::uniform(8, 0), 4);
        let t = txn_on(&mut arena, &[0, 4]); // both on node 0
        assert_eq!(c.participants(&arena, t), vec![0]);
        c.commit(&arena, t);
        assert_eq!(c.stats().two_pc_messages, 0);
        assert_eq!(c.stats().distributed_txns, 0);
        assert_eq!(c.stats().per_node_commits, vec![1, 0, 0, 0]);
        assert_eq!(c.base().master().get(v(0)), 1);
    }

    #[test]
    fn distributed_txn_pays_2pc() {
        let mut arena = TxnArena::new();
        let mut c = BaseCluster::new(DbState::uniform(8, 0), 4);
        let t = txn_on(&mut arena, &[0, 1, 2]); // nodes 0, 1, 2
        assert_eq!(c.participants(&arena, t), vec![0, 1, 2]);
        c.commit(&arena, t);
        assert_eq!(c.stats().distributed_txns, 1);
        assert_eq!(c.stats().two_pc_messages, 8); // 4 × (3 − 1)
    }

    #[test]
    fn install_is_one_wide_transaction() {
        let mut arena = TxnArena::new();
        let mut c = BaseCluster::new(DbState::uniform(8, 0), 4);
        let forwarded: DbState = [(v(0), 5), (v(1), 6), (v(2), 7), (v(3), 8)].into_iter().collect();
        c.install_updates(&mut arena, &forwarded);
        assert_eq!(c.stats().distributed_txns, 1);
        assert_eq!(c.stats().two_pc_messages, 12); // 4 × (4 − 1)
        assert_eq!(c.base().master().get(v(3)), 8);
        // Reprocessing the same items as four narrow transactions instead:
        let mut c2 = BaseCluster::new(DbState::uniform(8, 0), 4);
        for i in 0..4u32 {
            let t = txn_on(&mut arena, &[i]);
            c2.reexecute(&mut arena, t);
        }
        assert_eq!(c2.stats().two_pc_messages, 0, "narrow txns never coordinate");
        assert_eq!(c2.stats().per_node_commits, vec![1, 1, 1, 1]);
    }

    #[test]
    fn imbalance_measured() {
        let mut arena = TxnArena::new();
        let mut c = BaseCluster::new(DbState::uniform(8, 0), 2);
        assert_eq!(c.stats().imbalance(), 0.0);
        for _ in 0..3 {
            let t = txn_on(&mut arena, &[0]); // always node 0
            c.commit(&arena, t);
        }
        // node 0: 3 commits, node 1: 0 → max/mean = 3 / 1.5 = 2.
        assert!((c.stats().imbalance() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_node_cluster_degenerates_to_base_node() {
        let mut arena = TxnArena::new();
        let mut c = BaseCluster::new(DbState::uniform(4, 0), 1);
        let t = txn_on(&mut arena, &[0, 1, 2, 3]);
        c.commit(&arena, t);
        assert_eq!(c.stats().two_pc_messages, 0);
        assert_eq!(c.stats().imbalance(), 1.0);
    }
}
