//! Error type for the merge core.

use std::fmt;

use histmerge_history::{BackoutError, HistoryError};
use histmerge_txn::{TxnError, TxnId};

/// Errors raised while rewriting, pruning, or merging histories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Executing a history failed.
    History(HistoryError),
    /// Computing the back-out set failed.
    Backout(BackoutError),
    /// A transaction needed for compensation has no compensating program.
    MissingInverse {
        /// The transaction lacking an inverse.
        txn: TxnId,
    },
    /// A fixed compensating transaction would violate Lemma 4's
    /// precondition `F ∩ writeset = ∅`.
    FixOverlapsWriteset {
        /// The transaction whose fix overlaps its write set.
        txn: TxnId,
    },
    /// Executing a compensating transaction or undo-repair action failed.
    Execution {
        /// The transaction involved.
        txn: TxnId,
        /// The underlying interpreter error.
        source: TxnError,
    },
    /// The rewriting model requires no blind writes (Section 3), but a
    /// tentative transaction blind-writes and the chosen configuration
    /// cannot handle it.
    BlindWrite {
        /// The offending transaction.
        txn: TxnId,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::History(e) => write!(f, "history execution failed: {e}"),
            CoreError::Backout(e) => write!(f, "back-out computation failed: {e}"),
            CoreError::MissingInverse { txn } => {
                write!(f, "{txn} has no compensating program")
            }
            CoreError::FixOverlapsWriteset { txn } => {
                write!(f, "fix of {txn} overlaps its write set; Lemma 4 does not apply")
            }
            CoreError::Execution { txn, source } => {
                write!(f, "executing repair for {txn} failed: {source}")
            }
            CoreError::BlindWrite { txn } => {
                write!(f, "{txn} issues blind writes, unsupported by this configuration")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::History(e) => Some(e),
            CoreError::Backout(e) => Some(e),
            CoreError::Execution { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<HistoryError> for CoreError {
    fn from(e: HistoryError) -> Self {
        CoreError::History(e)
    }
}

impl From<BackoutError> for CoreError {
    fn from(e: BackoutError) -> Self {
        CoreError::Backout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::MissingInverse { txn: TxnId::new(3) };
        assert!(e.to_string().contains("T3"));
        assert!(std::error::Error::source(&e).is_none());

        let inner = HistoryError::Execution {
            txn: TxnId::new(1),
            source: TxnError::MissingVariable { var: histmerge_txn::VarId::new(0) },
        };
        let e: CoreError = inner.into();
        assert!(e.to_string().contains("history"));
        assert!(std::error::Error::source(&e).is_some());

        let e: CoreError = CoreError::Execution {
            txn: TxnId::new(2),
            source: TxnError::MissingVariable { var: histmerge_txn::VarId::new(9) },
        };
        assert!(e.to_string().contains("T2"));
        let e = CoreError::FixOverlapsWriteset { txn: TxnId::new(4) };
        assert!(e.to_string().contains("Lemma 4"));
        let e = CoreError::BlindWrite { txn: TxnId::new(5) };
        assert!(e.to_string().contains("blind"));
    }
}
