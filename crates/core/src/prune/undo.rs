//! The undo approach (Section 6.2): before-image restoration plus
//! undo-repair actions (Algorithm 3).
//!
//! Pruning by undo first restores, in reverse order, the logged
//! before-images of every transaction in `H_e^s − H_r^s`. That wipes not
//! only the pruned transactions' effects but also the writes that *saved
//! affected* transactions made to items the pruned transactions touched —
//! Algorithm 3 therefore builds, for each affected transaction in the
//! repaired prefix, an **undo-repair action** that re-establishes exactly
//! the lost part of its effect:
//!
//! * an update whose target no pruned transaction wrote is dropped (its
//!   effect survived the undo);
//! * an update whose target only *later* pruned transactions wrote is
//!   replaced by a direct assignment of the logged after-image value;
//! * any other update is re-executed, with each operand that no *earlier*
//!   pruned transaction wrote bound to its logged before-image value (the
//!   remaining operands deliberately read the post-undo state, which holds
//!   their repaired values).
//!
//! Guard variables are bound by the same rule, extending Algorithm 3's
//! per-operand treatment to control flow.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use histmerge_history::{AugmentedHistory, TxnArena};
use histmerge_txn::{
    DbState, Expr, OverlayState, Pred, Program, ProgramBuilder, Statement, TxnId, Value, VarId,
    VarSet,
};

use crate::error::CoreError;
use crate::rewrite::RewrittenHistory;

/// Prunes `rewritten` by the undo approach: restores before-images of every
/// suffix transaction (reverse order), then executes the undo-repair
/// actions of the affected transactions saved in the prefix (prefix order).
///
/// `affected` is the full affected set `AG` computed from the back-out set;
/// only its members appearing in the repaired prefix get repair actions
/// (Theorem 5).
///
/// # Errors
///
/// Returns [`CoreError::Execution`] if building or executing an undo-repair
/// action fails.
pub fn undo(
    arena: &TxnArena,
    original: &AugmentedHistory,
    rewritten: &RewrittenHistory,
    affected: &BTreeSet<TxnId>,
) -> Result<DbState, CoreError> {
    // One copy-on-write overlay over the final state: restores and repairs
    // write O(touched items) and materialize once at the end, instead of
    // cloning the full state per repair execution.
    let mut view = OverlayState::new(original.final_state());
    let undone: BTreeSet<TxnId> = rewritten.suffix().iter().map(|(t, _)| *t).collect();

    // Phase 1: restore before-images in reverse original order. The suffix
    // preserves the original relative order (Theorem 2), so its reverse is
    // the reverse original order.
    for (id, _) in rewritten.suffix().iter().rev() {
        let pos = original.position(*id).expect("suffix txn is in the original");
        let outcome = original.outcome(pos);
        let txn = arena.get(*id);
        for var in txn.writeset().iter() {
            view.set(var, outcome.before_image.get(var));
        }
    }

    // Phase 2: undo-repair actions for saved affected transactions.
    for (id, _) in rewritten.prefix() {
        if !affected.contains(id) {
            continue;
        }
        if let Some(ura) = build_undo_repair(arena, original, *id, &undone)? {
            let txn = arena.get(*id);
            let delta = histmerge_txn::exec::execute_view(
                &ura,
                txn.params(),
                &view,
                &histmerge_txn::Fix::empty(),
            )
            .map_err(|source| CoreError::Execution { txn: *id, source })?;
            view.apply_writes(&delta.writes);
        }
    }
    Ok(view.materialize())
}

/// Builds the undo-repair action for affected transaction `ag_k`
/// (Algorithm 3). Returns `Ok(None)` when every update was dropped (the
/// whole effect survived the undo).
///
/// # Errors
///
/// Returns [`CoreError::Execution`] if the transformed program fails to
/// validate (cannot happen for programs accepted by the builder, kept as a
/// defensive path).
pub fn build_undo_repair(
    arena: &TxnArena,
    original: &AugmentedHistory,
    ag_k: TxnId,
    undone: &BTreeSet<TxnId>,
) -> Result<Option<Program>, CoreError> {
    let txn = arena.get(ag_k);
    let pos_k = original.position(ag_k).expect("affected txn is in the original");
    let outcome = original.outcome(pos_k);

    // Which items were written by pruned transactions — at all, and before
    // ag_k specifically.
    let mut undone_writes = VarSet::new();
    let mut undone_writes_before = VarSet::new();
    for id in undone {
        let Some(p) = original.position(*id) else { continue };
        let w = arena.get(*id).writeset();
        undone_writes.extend_from(w);
        if p < pos_k {
            undone_writes_before.extend_from(w);
        }
    }

    let mut ctx = UraContext {
        undone_writes,
        undone_writes_before,
        before: &outcome.before_image,
        after: &outcome.after_image,
    };

    let mut prev_updated = VarSet::new();
    let mut local_known: BTreeMap<VarId, Value> = BTreeMap::new();
    let body = ctx.transform_block(txn.program().statements(), &mut prev_updated, &mut local_known);
    if !contains_update(&body) {
        return Ok(None);
    }

    // Re-synthesize reads for every variable the transformed body still
    // references (Algorithm 3 step 3 drops the now-useless reads; building
    // from scratch achieves the same minimal read set).
    let mut referenced = VarSet::new();
    collect_referenced(&body, &mut referenced);
    let mut builder = ProgramBuilder::new(format!("ura-{}", txn.name())).allow_blind_writes();
    for var in referenced.iter() {
        builder = builder.read(var);
    }
    for stmt in body {
        builder = builder.statement(stmt);
    }
    builder.build().map(Some).map_err(|source| CoreError::Execution { txn: ag_k, source })
}

struct UraContext<'a> {
    undone_writes: VarSet,
    undone_writes_before: VarSet,
    before: &'a DbState,
    after: &'a DbState,
}

impl UraContext<'_> {
    fn transform_block(
        &mut self,
        stmts: &[Statement],
        prev_updated: &mut VarSet,
        local_known: &mut BTreeMap<VarId, Value>,
    ) -> Vec<Statement> {
        let mut out = Vec::new();
        for stmt in stmts {
            match stmt {
                // Reads are re-synthesized by the caller.
                Statement::Read(_) => {}
                Statement::Update { target, expr } => {
                    let x = *target;
                    if !self.undone_writes.contains(x) {
                        // Case 1: no pruned transaction wrote x — the effect
                        // survived the undo. Drop the statement, but record
                        // the computed value for later operand uses.
                        if let Some(v) = self.after.try_get(x) {
                            local_known.insert(x, v);
                        }
                        prev_updated.insert(x);
                    } else if !self.undone_writes_before.contains(x) {
                        // Case 2: only later pruned transactions wrote x —
                        // re-assert the logged after value.
                        out.push(Statement::Update {
                            target: x,
                            expr: Expr::Const(self.after.get(x)),
                        });
                        prev_updated.insert(x);
                        local_known.remove(&x);
                    } else {
                        // Case 3: re-execute with operand binding.
                        let new_expr = self.subst_expr(expr, prev_updated, local_known);
                        out.push(Statement::Update { target: x, expr: new_expr });
                        prev_updated.insert(x);
                        local_known.remove(&x);
                    }
                }
                Statement::If { cond, then_branch, else_branch } => {
                    let new_cond = self.subst_pred(cond, prev_updated, local_known);
                    let mut t_upd = prev_updated.clone();
                    let mut t_known = local_known.clone();
                    let tb = self.transform_block(then_branch, &mut t_upd, &mut t_known);
                    let mut e_upd = prev_updated.clone();
                    let mut e_known = local_known.clone();
                    let eb = self.transform_block(else_branch, &mut e_upd, &mut e_known);
                    // Textual union, matching Algorithm 3's flat reading of
                    // "updated by any preceding statement".
                    *prev_updated = t_upd.union(&e_upd);
                    local_known
                        .retain(|k, v| t_known.get(k) == Some(v) && e_known.get(k) == Some(v));
                    if !tb.is_empty() || !eb.is_empty() {
                        out.push(Statement::If {
                            cond: new_cond,
                            then_branch: tb,
                            else_branch: eb,
                        });
                    }
                }
            }
        }
        out
    }

    /// Binds a variable reference per Algorithm 3's operand rule. Returns
    /// `Some(value)` when the reference must become a constant.
    fn bind(
        &self,
        y: VarId,
        prev_updated: &VarSet,
        local_known: &BTreeMap<VarId, Value>,
    ) -> Option<Value> {
        if let Some(v) = local_known.get(&y) {
            // The original program computed y earlier, but the statement
            // was dropped (case 1): use the logged computed value.
            return Some(*v);
        }
        if prev_updated.contains(y) {
            // A kept earlier statement computes y: read the local value at
            // run time.
            return None;
        }
        if !self.undone_writes_before.contains(y) {
            // Untouched by earlier pruned transactions: what ag_k read
            // originally is what it must read now.
            return self.before.try_get(y);
        }
        // An earlier pruned transaction wrote y: the post-undo state holds
        // the repaired value — read it at run time.
        None
    }

    fn subst_expr(
        &self,
        expr: &Expr,
        prev_updated: &VarSet,
        local_known: &BTreeMap<VarId, Value>,
    ) -> Expr {
        match expr {
            Expr::Const(_) | Expr::Param(_) => expr.clone(),
            Expr::Var(y) => match self.bind(*y, prev_updated, local_known) {
                Some(v) => Expr::Const(v),
                None => expr.clone(),
            },
            Expr::Add(a, b) => Expr::Add(
                Box::new(self.subst_expr(a, prev_updated, local_known)),
                Box::new(self.subst_expr(b, prev_updated, local_known)),
            ),
            Expr::Sub(a, b) => Expr::Sub(
                Box::new(self.subst_expr(a, prev_updated, local_known)),
                Box::new(self.subst_expr(b, prev_updated, local_known)),
            ),
            Expr::Mul(a, b) => Expr::Mul(
                Box::new(self.subst_expr(a, prev_updated, local_known)),
                Box::new(self.subst_expr(b, prev_updated, local_known)),
            ),
            Expr::Div(a, b) => Expr::Div(
                Box::new(self.subst_expr(a, prev_updated, local_known)),
                Box::new(self.subst_expr(b, prev_updated, local_known)),
            ),
            Expr::Mod(a, b) => Expr::Mod(
                Box::new(self.subst_expr(a, prev_updated, local_known)),
                Box::new(self.subst_expr(b, prev_updated, local_known)),
            ),
            Expr::Min(a, b) => Expr::Min(
                Box::new(self.subst_expr(a, prev_updated, local_known)),
                Box::new(self.subst_expr(b, prev_updated, local_known)),
            ),
            Expr::Max(a, b) => Expr::Max(
                Box::new(self.subst_expr(a, prev_updated, local_known)),
                Box::new(self.subst_expr(b, prev_updated, local_known)),
            ),
            Expr::Neg(a) => Expr::Neg(Box::new(self.subst_expr(a, prev_updated, local_known))),
        }
    }

    fn subst_pred(
        &self,
        pred: &Pred,
        prev_updated: &VarSet,
        local_known: &BTreeMap<VarId, Value>,
    ) -> Pred {
        match pred {
            Pred::True => Pred::True,
            Pred::Cmp(op, a, b) => Pred::Cmp(
                *op,
                self.subst_expr(a, prev_updated, local_known),
                self.subst_expr(b, prev_updated, local_known),
            ),
            Pred::And(a, b) => Pred::And(
                Box::new(self.subst_pred(a, prev_updated, local_known)),
                Box::new(self.subst_pred(b, prev_updated, local_known)),
            ),
            Pred::Or(a, b) => Pred::Or(
                Box::new(self.subst_pred(a, prev_updated, local_known)),
                Box::new(self.subst_pred(b, prev_updated, local_known)),
            ),
            Pred::Not(a) => Pred::Not(Box::new(self.subst_pred(a, prev_updated, local_known))),
        }
    }
}

fn contains_update(stmts: &[Statement]) -> bool {
    stmts.iter().any(|s| match s {
        Statement::Read(_) => false,
        Statement::Update { .. } => true,
        Statement::If { then_branch, else_branch, .. } => {
            contains_update(then_branch) || contains_update(else_branch)
        }
    })
}

fn collect_referenced(stmts: &[Statement], out: &mut VarSet) {
    for s in stmts {
        match s {
            Statement::Read(v) => {
                out.insert(*v);
            }
            Statement::Update { expr, .. } => out.extend_from(&expr.vars()),
            Statement::If { cond, then_branch, else_branch } => {
                out.extend_from(&cond.vars());
                collect_referenced(then_branch, out);
                collect_referenced(else_branch, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::{rewrite, FixMode, RewriteAlgorithm};
    use histmerge_history::readsfrom::affected_set;
    use histmerge_history::SerialHistory;
    use histmerge_semantics::{OracleStack, StaticAnalyzer};
    use histmerge_txn::{Expr, ProgramBuilder, Transaction, TxnKind};
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn inc(arena: &mut TxnArena, name: &str, var: u32, k: i64) -> TxnId {
        let p: Arc<Program> = Arc::new(
            ProgramBuilder::new(name)
                .read(v(var))
                .update(v(var), Expr::var(v(var)) + Expr::konst(k))
                .build()
                .unwrap(),
        );
        arena.alloc(|id| Transaction::new(id, name, TxnKind::Tentative, p, vec![]))
    }

    /// Runs the full pipeline on a history and checks Theorem 5: undo +
    /// URAs equals re-executing the repaired prefix from the initial state.
    fn check_theorem5(
        arena: &TxnArena,
        order: &[TxnId],
        bad: &BTreeSet<TxnId>,
        s0: &DbState,
        alg: RewriteAlgorithm,
    ) -> (Vec<TxnId>, DbState) {
        let h = AugmentedHistory::execute(arena, &SerialHistory::from_order(order.to_vec()), s0)
            .unwrap();
        let oracle = StaticAnalyzer::new();
        let rw = rewrite(arena, &h, bad, alg, FixMode::Lemma1, &oracle);
        let ag = affected_set(arena, &h.order(), bad);
        let pruned = undo(arena, &h, &rw, &ag).unwrap();
        let expect = AugmentedHistory::execute(arena, &rw.repaired_history(), s0).unwrap();
        assert_eq!(&pruned, expect.final_state(), "Theorem 5 violated for {}", alg.name());
        (rw.saved(), pruned)
    }

    #[test]
    fn pure_undo_for_algorithm1() {
        // bad writes d0; g reads d0 (affected); h independent.
        let mut arena = TxnArena::new();
        let bad = inc(&mut arena, "bad", 0, 100);
        let g = inc(&mut arena, "g", 0, 10);
        let other = inc(&mut arena, "h", 1, 5);
        let s0: DbState = [(v(0), 0), (v(1), 0)].into_iter().collect();
        let bads: BTreeSet<TxnId> = [bad].into_iter().collect();
        // Algorithm 1 cannot save g (it reads d0 which bad writes), so
        // pruning is pure undo of {bad, g}.
        let (saved, state) =
            check_theorem5(&arena, &[bad, g, other], &bads, &s0, RewriteAlgorithm::CanFollow);
        assert_eq!(saved, vec![other]);
        assert_eq!(state.get(v(0)), 0);
        assert_eq!(state.get(v(1)), 5);
    }

    #[test]
    fn ura_case3_recomputes_on_post_undo_state() {
        // Algorithm 2 saves g (increments commute): after undoing bad,
        // g's URA re-executes d0 := d0 + 10 on the restored d0 = 0.
        let mut arena = TxnArena::new();
        let bad = inc(&mut arena, "bad", 0, 100);
        let g = inc(&mut arena, "g", 0, 10);
        let s0: DbState = [(v(0), 0)].into_iter().collect();
        let bads: BTreeSet<TxnId> = [bad].into_iter().collect();
        let (saved, state) =
            check_theorem5(&arena, &[bad, g], &bads, &s0, RewriteAlgorithm::CanFollowCanPrecede);
        assert_eq!(saved, vec![g]);
        assert_eq!(state.get(v(0)), 10);
    }

    #[test]
    fn ura_case2_reasserts_after_image() {
        // g: d0 += 2 (affected via d0 read from bad1), AND d1 += 1 where d1
        // is written only by the LATER pruned bad2: case 2 re-asserts g's
        // logged after value of d1.
        let mut arena = TxnArena::new();
        let bad1 = inc(&mut arena, "bad1", 0, 100);
        let g = {
            let p: Arc<Program> = Arc::new(
                ProgramBuilder::new("g")
                    .read(v(0))
                    .read(v(1))
                    .update(v(0), Expr::var(v(0)) + Expr::konst(2))
                    .update(v(1), Expr::var(v(1)) + Expr::konst(1))
                    .build()
                    .unwrap(),
            );
            arena.alloc(|id| Transaction::new(id, "g", TxnKind::Tentative, p, vec![]))
        };
        let bad2 = inc(&mut arena, "bad2", 1, 50);
        let s0: DbState = [(v(0), 0), (v(1), 0)].into_iter().collect();
        let bads: BTreeSet<TxnId> = [bad1, bad2].into_iter().collect();
        let (saved, state) = check_theorem5(
            &arena,
            &[bad1, g, bad2],
            &bads,
            &s0,
            RewriteAlgorithm::CanFollowCanPrecede,
        );
        assert_eq!(saved, vec![g]);
        assert_eq!(state.get(v(0)), 2);
        assert_eq!(state.get(v(1)), 1);
    }

    #[test]
    fn ura_case1_drops_surviving_updates() {
        // g increments d0 (affected) and d2; no pruned transaction touches
        // d2, so the URA must NOT touch d2 (whose state value already
        // includes g's increment).
        let mut arena = TxnArena::new();
        let bad = inc(&mut arena, "bad", 0, 100);
        let g = {
            let p: Arc<Program> = Arc::new(
                ProgramBuilder::new("g")
                    .read(v(0))
                    .read(v(2))
                    .update(v(0), Expr::var(v(0)) + Expr::konst(2))
                    .update(v(2), Expr::var(v(2)) + Expr::konst(9))
                    .build()
                    .unwrap(),
            );
            arena.alloc(|id| Transaction::new(id, "g", TxnKind::Tentative, p, vec![]))
        };
        let s0: DbState = [(v(0), 0), (v(2), 0)].into_iter().collect();
        let bads: BTreeSet<TxnId> = [bad].into_iter().collect();
        let h =
            AugmentedHistory::execute(&arena, &SerialHistory::from_order([bad, g]), &s0).unwrap();
        let undone: BTreeSet<TxnId> = bads.clone();
        let ura = build_undo_repair(&arena, &h, g, &undone).unwrap().unwrap();
        // Only the d0 statement survives.
        assert!(ura.writeset().contains(v(0)));
        assert!(!ura.writeset().contains(v(2)));
        let (saved, state) =
            check_theorem5(&arena, &[bad, g], &bads, &s0, RewriteAlgorithm::CanFollowCanPrecede);
        assert_eq!(saved, vec![g]);
        assert_eq!(state.get(v(0)), 2);
        assert_eq!(state.get(v(2)), 9);
    }

    #[test]
    fn ura_none_when_untangled() {
        // g is affected only through a read; it writes nothing a pruned
        // transaction wrote — the URA is empty (None).
        let mut arena = TxnArena::new();
        let bad = inc(&mut arena, "bad", 0, 100);
        // g: reads d0 (tainted), writes d1 which nobody else writes.
        // NOTE: such a g is NOT saveable by our oracles (Property 1), so
        // this exercises build_undo_repair directly.
        let g = {
            let p: Arc<Program> = Arc::new(
                ProgramBuilder::new("g")
                    .read(v(0))
                    .read(v(1))
                    .update(v(1), Expr::var(v(1)) + Expr::var(v(0)))
                    .build()
                    .unwrap(),
            );
            arena.alloc(|id| Transaction::new(id, "g", TxnKind::Tentative, p, vec![]))
        };
        let s0: DbState = [(v(0), 0), (v(1), 0)].into_iter().collect();
        let h =
            AugmentedHistory::execute(&arena, &SerialHistory::from_order([bad, g]), &s0).unwrap();
        let undone: BTreeSet<TxnId> = [bad].into_iter().collect();
        assert!(build_undo_repair(&arena, &h, g, &undone).unwrap().is_none());
    }

    #[test]
    fn guarded_affected_transaction_repairs() {
        // g: if d0 >= 0 then d0 += 10 — guard reads the tainted item
        // itself... that makes d0 a guard var, so the static analyzer will
        // not save g; exercise the URA directly to check guard binding: the
        // guard reads the post-undo state (d0 written by earlier pruned).
        let mut arena = TxnArena::new();
        let bad = inc(&mut arena, "bad", 0, 100);
        let g = {
            let p: Arc<Program> = Arc::new(
                ProgramBuilder::new("g")
                    .read(v(0))
                    .branch(
                        Expr::var(v(0)).ge(Expr::konst(0)),
                        |b| b.update(v(0), Expr::var(v(0)) + Expr::konst(10)),
                        |b| b,
                    )
                    .build()
                    .unwrap(),
            );
            arena.alloc(|id| Transaction::new(id, "g", TxnKind::Tentative, p, vec![]))
        };
        let s0: DbState = [(v(0), 0)].into_iter().collect();
        let h =
            AugmentedHistory::execute(&arena, &SerialHistory::from_order([bad, g]), &s0).unwrap();
        let undone: BTreeSet<TxnId> = [bad].into_iter().collect();
        let ura = build_undo_repair(&arena, &h, g, &undone).unwrap().unwrap();
        // Executing the URA on the post-undo state (d0 = 0) re-runs the
        // guarded increment.
        let post_undo: DbState = [(v(0), 0)].into_iter().collect();
        let out = ura.execute(&[], &post_undo, &histmerge_txn::Fix::empty()).unwrap();
        assert_eq!(out.after.get(v(0)), 10);
    }

    #[test]
    fn operand_bound_to_before_state() {
        // g: d0 := d0 + d3 where d3 is untouched by pruned transactions
        // but modified by a LATER saved transaction. The URA must bind d3
        // to what g originally read, not the current state value.
        let mut arena = TxnArena::new();
        let bad = inc(&mut arena, "bad", 0, 100);
        let g = {
            let p: Arc<Program> = Arc::new(
                ProgramBuilder::new("g")
                    .read(v(0))
                    .read(v(3))
                    .update(v(0), Expr::var(v(0)) + Expr::var(v(3)))
                    .build()
                    .unwrap(),
            );
            arena.alloc(|id| Transaction::new(id, "g", TxnKind::Tentative, p, vec![]))
        };
        let s0: DbState = [(v(0), 0), (v(3), 7)].into_iter().collect();
        let h =
            AugmentedHistory::execute(&arena, &SerialHistory::from_order([bad, g]), &s0).unwrap();
        let undone: BTreeSet<TxnId> = [bad].into_iter().collect();
        let ura = build_undo_repair(&arena, &h, g, &undone).unwrap().unwrap();
        // Even if d3 has since changed to 999, the URA uses the logged 7.
        let post_undo: DbState = [(v(0), 0), (v(3), 999)].into_iter().collect();
        let out = ura.execute(&[], &post_undo, &histmerge_txn::Fix::empty()).unwrap();
        assert_eq!(out.after.get(v(0)), 7);
    }

    #[test]
    fn ura_preserves_input_parameters() {
        // Algorithm 3 step 1: "Assign URA_k with the same input parameters
        // and the same values associated with them as AG_k."
        let mut arena = TxnArena::new();
        let bad = inc(&mut arena, "bad", 0, 100);
        let g = {
            let p: Arc<Program> = Arc::new(
                ProgramBuilder::new("g")
                    .read(v(0))
                    .update(v(0), Expr::var(v(0)) + Expr::param(0))
                    .build()
                    .unwrap(),
            );
            arena.alloc(|id| Transaction::new(id, "g", TxnKind::Tentative, p, vec![13]))
        };
        let s0: DbState = [(v(0), 0)].into_iter().collect();
        let bads: BTreeSet<TxnId> = [bad].into_iter().collect();
        let (saved, state) =
            check_theorem5(&arena, &[bad, g], &bads, &s0, RewriteAlgorithm::CanFollowCanPrecede);
        assert_eq!(saved, vec![g]);
        assert_eq!(state.get(v(0)), 13, "the URA re-applied g's +p0 with p0 = 13");
    }

    #[test]
    fn ura_handles_nested_conditionals() {
        // g: if flag > 0 then (if mode > 5 then x += 10 else x += 20) —
        // the guards read items untouched by the pruned transaction, so the
        // URA binds them to logged before values and re-takes the same
        // branch.
        let mut arena = TxnArena::new();
        let bad = inc(&mut arena, "bad", 0, 100); // writes x = d0
        let g = {
            let p: Arc<Program> = Arc::new(
                ProgramBuilder::new("g")
                    .read(v(0))
                    .read(v(1)) // flag
                    .read(v(2)) // mode
                    .branch(
                        Expr::var(v(1)).gt(Expr::konst(0)),
                        |b| {
                            b.branch(
                                Expr::var(v(2)).gt(Expr::konst(5)),
                                |c| c.update(v(0), Expr::var(v(0)) + Expr::konst(10)),
                                |c| c.update(v(0), Expr::var(v(0)) + Expr::konst(20)),
                            )
                        },
                        |b| b,
                    )
                    .build()
                    .unwrap(),
            );
            arena.alloc(|id| Transaction::new(id, "g", TxnKind::Tentative, p, vec![]))
        };
        let s0: DbState = [(v(0), 0), (v(1), 1), (v(2), 9)].into_iter().collect();
        let h =
            AugmentedHistory::execute(&arena, &SerialHistory::from_order([bad, g]), &s0).unwrap();
        let undone: BTreeSet<TxnId> = [bad].into_iter().collect();
        let ura = build_undo_repair(&arena, &h, g, &undone).unwrap().unwrap();
        // Execute on the post-undo state; guards bound to flag=1, mode=9.
        let post_undo: DbState = [(v(0), 0), (v(1), -1), (v(2), 0)].into_iter().collect();
        let out = ura.execute(&[], &post_undo, &histmerge_txn::Fix::empty()).unwrap();
        // Even though the CURRENT flag is -1, the URA replays the original
        // branch decision (flag was 1, mode was 9): x += 10.
        assert_eq!(out.after.get(v(0)), 10);
    }

    #[test]
    fn ura_mixes_cases_in_one_transaction() {
        // g updates three items with different Algorithm-3 fates:
        //   d0 — written by an EARLIER pruned txn  → case 3 (recompute);
        //   d1 — written by a LATER pruned txn     → case 2 (after image);
        //   d2 — written by no pruned txn          → case 1 (dropped).
        let mut arena = TxnArena::new();
        let bad1 = inc(&mut arena, "bad1", 0, 100);
        let g = {
            let p: Arc<Program> = Arc::new(
                ProgramBuilder::new("g")
                    .read(v(0))
                    .read(v(1))
                    .read(v(2))
                    .update(v(0), Expr::var(v(0)) + Expr::konst(1))
                    .update(v(1), Expr::var(v(1)) + Expr::konst(2))
                    .update(v(2), Expr::var(v(2)) + Expr::konst(3))
                    .build()
                    .unwrap(),
            );
            arena.alloc(|id| Transaction::new(id, "g", TxnKind::Tentative, p, vec![]))
        };
        let bad2 = inc(&mut arena, "bad2", 1, 50);
        let s0: DbState = [(v(0), 0), (v(1), 0), (v(2), 0)].into_iter().collect();
        let bads: BTreeSet<TxnId> = [bad1, bad2].into_iter().collect();
        let h = AugmentedHistory::execute(&arena, &SerialHistory::from_order([bad1, g, bad2]), &s0)
            .unwrap();
        let ura = build_undo_repair(&arena, &h, g, &bads).unwrap().unwrap();
        assert!(ura.writeset().contains(v(0)), "case 3 kept");
        assert!(ura.writeset().contains(v(1)), "case 2 kept");
        assert!(!ura.writeset().contains(v(2)), "case 1 dropped");
        let (saved, state) = check_theorem5(
            &arena,
            &[bad1, g, bad2],
            &bads,
            &s0,
            RewriteAlgorithm::CanFollowCanPrecede,
        );
        assert_eq!(saved, vec![g]);
        assert_eq!(state.get(v(0)), 1);
        assert_eq!(state.get(v(1)), 2);
        assert_eq!(state.get(v(2)), 3);
    }

    #[test]
    fn paper_h4_undo_repair_narrative() {
        // Section 5.1's own walk-through of the undo approach on H4 =
        // B1 G2 G3 with B = {B1}:
        //   "After B is undone the value of u is unchanged ... The value of
        //    z is unchanged ... The effect of G3 on x is wiped out ...
        //    However x can be repaired by re-executing the corresponding
        //    part of G3's code, that is, x = x + 10, and the cumulative
        //    effect is that of history G2 G3."
        let (u, x, y, z) = (v(0), v(1), v(2), v(3));
        let mut arena = TxnArena::new();
        let b1 = {
            let p: Arc<Program> = Arc::new(
                ProgramBuilder::new("B1")
                    .read(u)
                    .read(x)
                    .read(y)
                    .branch(
                        Expr::var(u).gt(Expr::konst(10)),
                        |b| {
                            b.update(x, Expr::var(x) + Expr::konst(100))
                                .update(y, Expr::var(y) - Expr::konst(20))
                        },
                        |b| b,
                    )
                    .build()
                    .unwrap(),
            );
            arena.alloc(|id| Transaction::new(id, "B1", TxnKind::Tentative, p, vec![]))
        };
        let g2 = {
            let p: Arc<Program> = Arc::new(
                ProgramBuilder::new("G2")
                    .read(u)
                    .update(u, Expr::var(u) - Expr::konst(20))
                    .build()
                    .unwrap(),
            );
            arena.alloc(|id| Transaction::new(id, "G2", TxnKind::Tentative, p, vec![]))
        };
        let g3 = {
            let p: Arc<Program> = Arc::new(
                ProgramBuilder::new("G3")
                    .read(x)
                    .read(z)
                    .update(x, Expr::var(x) + Expr::konst(10))
                    .update(z, Expr::var(z) + Expr::konst(30))
                    .build()
                    .unwrap(),
            );
            arena.alloc(|id| Transaction::new(id, "G3", TxnKind::Tentative, p, vec![]))
        };
        let s0: DbState = [(u, 20), (x, 5), (y, 50), (z, 0)].into_iter().collect();
        let bad: BTreeSet<TxnId> = [b1].into_iter().collect();
        let h = AugmentedHistory::execute(&arena, &SerialHistory::from_order([b1, g2, g3]), &s0)
            .unwrap();
        // Algorithm 2 saves BOTH good transactions (G2 can follow B1; G3
        // can precede B1^{u}).
        let oracle = StaticAnalyzer::new();
        let rw = rewrite(
            &arena,
            &h,
            &bad,
            RewriteAlgorithm::CanFollowCanPrecede,
            FixMode::Lemma1,
            &oracle,
        );
        assert_eq!(rw.saved(), vec![g2, g3]);

        // The URA for G3 (affected: it read x from B1) keeps exactly the
        // x-statement and drops the z-statement.
        let ag = affected_set(&arena, &h.order(), &bad);
        assert_eq!(ag, [g3].into_iter().collect());
        let undone: BTreeSet<TxnId> = [b1].into_iter().collect();
        let ura = build_undo_repair(&arena, &h, g3, &undone).unwrap().unwrap();
        assert!(ura.writeset().contains(x), "x is re-executed");
        assert!(!ura.writeset().contains(z), "z survived the undo untouched");

        // Full undo pruning yields the cumulative effect of G2 G3.
        let pruned = undo(&arena, &h, &rw, &ag).unwrap();
        let g2g3 =
            AugmentedHistory::execute(&arena, &SerialHistory::from_order([g2, g3]), &s0).unwrap();
        assert_eq!(&pruned, g2g3.final_state());
        assert_eq!(pruned.get(u), 0); // u unchanged by the undo of B1
        assert_eq!(pruned.get(x), 15); // 5 + 10: B1's +100 gone, G3's +10 repaired
        assert_eq!(pruned.get(y), 50); // B1's -20 undone
        assert_eq!(pruned.get(z), 30); // G3's z-effect survived untouched
    }

    #[test]
    fn rftc_prunes_by_pure_undo() {
        let mut arena = TxnArena::new();
        let bad = inc(&mut arena, "bad", 0, 100);
        let g1 = inc(&mut arena, "g1", 0, 10); // affected
        let g2 = inc(&mut arena, "g2", 1, 5); // clean
        let s0: DbState = [(v(0), 3), (v(1), 4)].into_iter().collect();
        let bads: BTreeSet<TxnId> = [bad].into_iter().collect();
        let h = AugmentedHistory::execute(&arena, &SerialHistory::from_order([bad, g1, g2]), &s0)
            .unwrap();
        let rw = rewrite(
            &arena,
            &h,
            &bads,
            RewriteAlgorithm::ReadsFromClosure,
            FixMode::Lemma1,
            &OracleStack::new(),
        );
        let ag = affected_set(&arena, &h.order(), &bads);
        let pruned = undo(&arena, &h, &rw, &ag).unwrap();
        let expect = AugmentedHistory::execute(&arena, &rw.repaired_history(), &s0).unwrap();
        assert_eq!(&pruned, expect.final_state());
        assert_eq!(pruned.get(v(0)), 3);
        assert_eq!(pruned.get(v(1)), 9);
    }

    #[test]
    fn empty_suffix_is_identity() {
        let mut arena = TxnArena::new();
        let g = inc(&mut arena, "g", 0, 1);
        let s0: DbState = [(v(0), 0)].into_iter().collect();
        let h = AugmentedHistory::execute(&arena, &SerialHistory::from_order([g]), &s0).unwrap();
        let rw = rewrite(
            &arena,
            &h,
            &BTreeSet::new(),
            RewriteAlgorithm::CanFollow,
            FixMode::Lemma1,
            &OracleStack::new(),
        );
        let state = undo(&arena, &h, &rw, &BTreeSet::new()).unwrap();
        assert_eq!(&state, h.final_state());
    }
}
