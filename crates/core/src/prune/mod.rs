//! Pruning rewritten histories (Section 6).
//!
//! After rewriting, the repaired history `H_r^s` is a prefix of the
//! rewritten history `H_e^s`. Pruning produces the *database state* of the
//! repaired history without re-executing it, starting from the final state
//! of the original history:
//!
//! * [`compensate`] — Section 6.1: run the *fixed compensating transaction*
//!   `T^(-1,F)` of every suffix transaction, in reverse order. Direct, but
//!   requires every suffix transaction to declare an inverse.
//! * [`undo`] — Section 6.2: restore before-images of the suffix
//!   transactions from the log, then run the *undo-repair actions* built by
//!   Algorithm 3 for the affected transactions that were saved.
//!
//! Both must produce exactly the state of executing the repaired prefix
//! from the initial state (Theorem 5 for undo; Lemma 4 for compensation) —
//! the workspace's property tests check them against each other and
//! against re-execution.

mod compensate;
mod undo;

pub use compensate::compensate;
pub use undo::{build_undo_repair, undo};

/// Which pruning approach the merge pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruneMethod {
    /// Undo from logged before-images plus undo-repair actions
    /// (Section 6.2). Works for every rewriter, including the RFTC
    /// baseline; requires no compensating programs.
    #[default]
    Undo,
    /// Fixed compensating transactions (Section 6.1). Requires inverses on
    /// every pruned transaction and a final-state-equivalent rewriting
    /// (i.e. not the RFTC baseline).
    Compensate,
}

impl PruneMethod {
    /// Short name for experiment reports.
    pub fn name(self) -> &'static str {
        match self {
            PruneMethod::Undo => "undo",
            PruneMethod::Compensate => "compensate",
        }
    }
}
