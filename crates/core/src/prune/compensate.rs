//! The compensation approach (Section 6.1).

use histmerge_history::{AugmentedHistory, TxnArena};
use histmerge_txn::{DbState, OverlayState};

use crate::error::CoreError;
use crate::rewrite::RewrittenHistory;

/// Prunes `rewritten` by compensation: starting from the final state of the
/// original history, executes the fixed compensating transaction
/// `T^(-1,F)` (Definition 5) of every suffix transaction, in reverse order.
///
/// Because the rewritten history is final-state equivalent to the original
/// and suffix transactions keep their relative order (Theorem 2), this
/// unwinds the suffix exactly, leaving the state of the repaired prefix.
///
/// # Errors
///
/// * [`CoreError::MissingInverse`] — a suffix transaction declared no
///   compensating program.
/// * [`CoreError::FixOverlapsWriteset`] — a suffix fix intersects the
///   transaction's write set, violating Lemma 4's precondition (cannot
///   happen for histories produced by Algorithms 1 and 2, whose fixes are
///   always subsets of `readset − writeset`).
/// * [`CoreError::Execution`] — the compensating program failed to execute.
pub fn compensate(
    arena: &TxnArena,
    original: &AugmentedHistory,
    rewritten: &RewrittenHistory,
) -> Result<DbState, CoreError> {
    let mut view = OverlayState::new(original.final_state());
    for (id, fix) in rewritten.suffix().iter().rev() {
        let txn = arena.get(*id);
        // Read-only transactions change no state: nothing to compensate.
        if txn.writeset().is_empty() {
            continue;
        }
        // Lemma 4 precondition: F ∩ T.writeset = ∅.
        if fix.vars().intersects(txn.writeset()) {
            return Err(CoreError::FixOverlapsWriteset { txn: *id });
        }
        if txn.inverse().is_none() {
            return Err(CoreError::MissingInverse { txn: *id });
        }
        let delta = txn
            .compensate_delta(&view, fix)
            .map_err(|source| CoreError::Execution { txn: *id, source })?;
        view.apply_writes(&delta.writes);
    }
    Ok(view.materialize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::{rewrite, FixMode, RewriteAlgorithm};
    use histmerge_history::SerialHistory;
    use histmerge_semantics::OracleStack;
    use histmerge_txn::{Expr, Fix, Program, ProgramBuilder, Transaction, TxnId, TxnKind, VarId};
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    /// deposit(k): bal += k, with inverse bal -= k.
    fn deposit(arena: &mut TxnArena, name: &str, var: u32, k: i64) -> TxnId {
        let fwd: Arc<Program> = Arc::new(
            ProgramBuilder::new(name)
                .read(v(var))
                .update(v(var), Expr::var(v(var)) + Expr::konst(k))
                .build()
                .unwrap(),
        );
        let inv: Arc<Program> = Arc::new(
            ProgramBuilder::new(format!("{name}^-1"))
                .read(v(var))
                .update(v(var), Expr::var(v(var)) - Expr::konst(k))
                .build()
                .unwrap(),
        );
        arena.alloc(|id| {
            Transaction::new(id, name, TxnKind::Tentative, fwd, vec![]).with_inverse(inv)
        })
    }

    /// A guarded increment: if g > 0 then x += k, where the guard item g is
    /// read but never written. Its inverse mirrors the conditional.
    fn guarded_inc(arena: &mut TxnArena, name: &str, g: u32, x: u32, k: i64) -> TxnId {
        let fwd: Arc<Program> = Arc::new(
            ProgramBuilder::new(name)
                .read(v(g))
                .read(v(x))
                .branch(
                    Expr::var(v(g)).gt(Expr::konst(0)),
                    |b| b.update(v(x), Expr::var(v(x)) + Expr::konst(k)),
                    |b| b,
                )
                .build()
                .unwrap(),
        );
        let inv: Arc<Program> = Arc::new(
            ProgramBuilder::new(format!("{name}^-1"))
                .read(v(g))
                .read(v(x))
                .branch(
                    Expr::var(v(g)).gt(Expr::konst(0)),
                    |b| b.update(v(x), Expr::var(v(x)) - Expr::konst(k)),
                    |b| b,
                )
                .build()
                .unwrap(),
        );
        arena.alloc(|id| {
            Transaction::new(id, name, TxnKind::Tentative, fwd, vec![]).with_inverse(inv)
        })
    }

    #[test]
    fn compensation_yields_repaired_state() {
        // History: bad deposit on d0; good deposits on d0 and d1.
        let mut arena = TxnArena::new();
        let bad = deposit(&mut arena, "bad", 0, 100);
        let g1 = deposit(&mut arena, "g1", 0, 7); // cannot follow? reads d0 which bad writes
        let g2 = deposit(&mut arena, "g2", 1, 5);
        let s0: DbState = [(v(0), 0), (v(1), 0)].into_iter().collect();
        let h = AugmentedHistory::execute(&arena, &SerialHistory::from_order([bad, g1, g2]), &s0)
            .unwrap();
        let bads: BTreeSet<TxnId> = [bad].into_iter().collect();
        let rw = rewrite(
            &arena,
            &h,
            &bads,
            RewriteAlgorithm::CanFollow,
            FixMode::Lemma1,
            &OracleStack::new(),
        );
        // g1 reads d0 (written by bad): cannot follow... rather `bad` can't
        // follow `g1`? can_follow(bad, g1): bad.writeset {d0} ∩ g1.readset
        // {d0} ≠ ∅ → g1 stays. g2 moves.
        assert_eq!(rw.saved(), vec![g2]);
        let pruned_state = compensate(&arena, &h, &rw).unwrap();
        // Repaired state: only g2 applied.
        let expect = AugmentedHistory::execute(&arena, &rw.repaired_history(), &s0).unwrap();
        assert_eq!(&pruned_state, expect.final_state());
        assert_eq!(pruned_state.get(v(0)), 0);
        assert_eq!(pruned_state.get(v(1)), 5);
    }

    #[test]
    fn fixed_compensation_replays_guard_from_fix() {
        // Lemma 4 at work: a transaction whose guard read was pinned by a
        // fix must be compensated under the SAME fix, so both take the same
        // branch even though the state value of the guard item disagrees.
        let mut arena = TxnArena::new();
        let t = guarded_inc(&mut arena, "t", 0, 1, 10);
        // State says g = -1 (branch would NOT run), but the fix pins g = 5.
        let s1: DbState = [(v(0), -1), (v(1), 100)].into_iter().collect();
        let fix: Fix = [(v(0), 5)].into_iter().collect();
        let txn = arena.get(t);
        // F ∩ writeset = ∅ holds (g is never written): Lemma 4 applies.
        assert!(!fix.vars().intersects(txn.writeset()));
        let fwd = txn.execute(&s1, &fix).unwrap();
        assert_eq!(fwd.after.get(v(1)), 110); // branch ran due to the fix
        let back = txn.compensate(&fwd.after, &fix).unwrap();
        assert_eq!(&back.after, &s1);
        // Without the fix the inverse would skip the branch and fail to
        // restore s1.
        let wrong = txn.compensate(&fwd.after, &Fix::empty()).unwrap();
        assert_ne!(&wrong.after, &s1);
    }

    #[test]
    fn missing_inverse_reported() {
        let mut arena = TxnArena::new();
        let prog: Arc<Program> = Arc::new(
            ProgramBuilder::new("noinv")
                .read(v(0))
                .update(v(0), Expr::var(v(0)) + Expr::konst(1))
                .build()
                .unwrap(),
        );
        let bad = arena.alloc(|id| Transaction::new(id, "noinv", TxnKind::Tentative, prog, vec![]));
        let s0: DbState = [(v(0), 0)].into_iter().collect();
        let h = AugmentedHistory::execute(&arena, &SerialHistory::from_order([bad]), &s0).unwrap();
        let bads: BTreeSet<TxnId> = [bad].into_iter().collect();
        let rw = rewrite(
            &arena,
            &h,
            &bads,
            RewriteAlgorithm::CanFollow,
            FixMode::Lemma1,
            &OracleStack::new(),
        );
        assert_eq!(
            compensate(&arena, &h, &rw).unwrap_err(),
            CoreError::MissingInverse { txn: bad }
        );
    }

    #[test]
    fn empty_suffix_returns_final_state() {
        let mut arena = TxnArena::new();
        let g = deposit(&mut arena, "g", 0, 3);
        let s0: DbState = [(v(0), 0)].into_iter().collect();
        let h = AugmentedHistory::execute(&arena, &SerialHistory::from_order([g]), &s0).unwrap();
        let rw = rewrite(
            &arena,
            &h,
            &BTreeSet::new(),
            RewriteAlgorithm::CanFollow,
            FixMode::Lemma1,
            &OracleStack::new(),
        );
        let state = compensate(&arena, &h, &rw).unwrap();
        assert_eq!(&state, h.final_state());
    }
}
