//! The merging protocol (Section 2.1): steps 1–6 behind one call.

use std::collections::BTreeSet;

use histmerge_history::{
    run_to_final, AugmentedHistory, BackoutStrategy, BaseEdgeCache, ClosureScratch, ClosureTable,
    DenseBits, GraphScratch, PrecedenceGraph, SerialHistory, TwoCycleOptimal, TxnArena,
};
use histmerge_obs::{Phase, TraceEvent, TracerHandle};
use histmerge_semantics::{OracleStack, SemanticOracle, StaticAnalyzer};
use histmerge_txn::{DbState, Fix, OverlayState, TxnId, VarSet};

use crate::error::CoreError;
use crate::prune::{compensate, undo, PruneMethod};
use crate::rewrite::{rewrite, FixMode, RewriteAlgorithm, RewrittenHistory};

/// Configuration of a [`Merger`].
pub struct MergeConfig {
    /// Strategy for computing the back-out set `B` (step 2).
    pub backout: Box<dyn BackoutStrategy>,
    /// Rewriting algorithm (step 3).
    pub algorithm: RewriteAlgorithm,
    /// Fix computation mode.
    pub fix_mode: FixMode,
    /// Pruning approach (step 4).
    pub prune: PruneMethod,
    /// Semantic oracle consulted by Algorithm 2 and CBTR.
    pub oracle: Box<dyn SemanticOracle>,
}

impl Default for MergeConfig {
    /// The paper's recommended configuration: two-cycle-optimal back-out,
    /// Algorithm 2 with the static analyzer, Lemma 1 fixes, undo pruning.
    fn default() -> Self {
        MergeConfig {
            backout: Box::new(TwoCycleOptimal::new()),
            algorithm: RewriteAlgorithm::CanFollowCanPrecede,
            fix_mode: FixMode::Lemma1,
            prune: PruneMethod::Undo,
            oracle: Box::new(OracleStack::new().with(Box::new(StaticAnalyzer::new()))),
        }
    }
}

impl std::fmt::Debug for MergeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergeConfig")
            .field("backout", &self.backout.name())
            .field("algorithm", &self.algorithm.name())
            .field("fix_mode", &self.fix_mode)
            .field("prune", &self.prune.name())
            .field("oracle", &self.oracle.name())
            .finish()
    }
}

/// The result of merging a tentative history into a base history.
#[derive(Debug)]
pub struct MergeOutcome {
    /// Step 2's back-out set `B` (undesirable transactions).
    pub bad: BTreeSet<TxnId>,
    /// The affected set `AG` of `B`.
    pub affected: BTreeSet<TxnId>,
    /// The rewritten history (step 3).
    pub rewritten: RewrittenHistory,
    /// Tentative transactions whose work was saved, in repaired order.
    pub saved: Vec<TxnId>,
    /// Tentative transactions backed out (to be re-executed), in original
    /// order.
    pub backed_out: Vec<TxnId>,
    /// The repaired history's final state (after pruning).
    pub repaired_state: DbState,
    /// The values forwarded to the base nodes (step 5): for each item
    /// modified by a saved transaction, its value in the repaired state.
    pub forwarded: DbState,
    /// The master state after installing the forwarded updates on the base
    /// history's final state.
    pub new_master: DbState,
    /// Results of re-executing the backed-out transactions (step 6) on the
    /// new master state, in execution order: `(txn, succeeded)`.
    pub reexecuted: Vec<(TxnId, bool)>,
    /// An equivalent merged serial history over the base transactions and
    /// the saved tentative transactions (Theorem 1), for inspection.
    /// `None` when the caller deferred witness materialization
    /// ([`MergeAssist::defer_witness`]) — the install path derives the new
    /// master without it.
    pub merged_history: Option<SerialHistory>,
    /// Number of edges in the full precedence graph `G(H_m, H_b)` (cost
    /// accounting input). Exact even on the fast path: rule-1 pairs are
    /// counted directly and rule-2 edges read from the cache; a disjoint
    /// merge has no rule-3 edges by definition.
    pub graph_edges: usize,
    /// `true` if the merge took the conflict-free fast path (pending
    /// history disjoint from the entire concurrent base slice): graph and
    /// closure construction were skipped, with a byte-identical outcome.
    pub fast_path: bool,
}

/// The durable, resumable half of a [`MergeOutcome`]: everything a base
/// node must retain — write-ahead, atomically with the install commit — to
/// finish a merge whose handshake is interrupted after step 5. A node that
/// crashes between installing the forwarded values and re-executing the
/// backed-out transactions recovers by reloading the plan and running only
/// the remaining step-6 re-executions; re-applying the plan is idempotent
/// because the install is a constant-write transaction and re-execution
/// progress is tracked alongside the plan (see `replication::session`).
///
/// Unlike the full outcome (which owns the rewritten history, repaired
/// states, and the merged witness history), the plan is small, cloneable,
/// and comparable — the shape a recovering node can dedupe retransmissions
/// against.
#[derive(Debug, Clone, PartialEq)]
pub struct InstallPlan {
    /// Step 5: per saved-written item, its final repaired value.
    pub forwarded: DbState,
    /// Step 6: the transactions still to re-execute as base transactions,
    /// in their original order.
    pub reexecute: Vec<TxnId>,
    /// The transactions whose work the merge saved (informational — needed
    /// by the completion report, not by recovery itself).
    pub saved: Vec<TxnId>,
}

impl MergeOutcome {
    /// Extracts the durable install plan from this outcome.
    pub fn install_plan(&self) -> InstallPlan {
        InstallPlan {
            forwarded: self.forwarded.clone(),
            reexecute: self.backed_out.clone(),
            saved: self.saved.clone(),
        }
    }
}

/// Precomputed inputs a caller can lend to [`Merger::merge_assisted`] to
/// skip redundant work when merging repeatedly against a growing base
/// history (the batched sync path).
///
/// Both fields are optional; an empty assist makes `merge_assisted`
/// behave exactly like [`Merger::merge`].
#[derive(Default, Clone, Copy)]
pub struct MergeAssist<'a> {
    /// Incrementally maintained rule-2 edges of the epoch's base history.
    /// Must cover `hb` (see [`PrecedenceGraph::build_with_base_cache`]).
    pub base_edges: Option<&'a BaseEdgeCache>,
    /// The final state of executing `hb` from `s0`. Base nodes already
    /// hold this (it is the current master), so re-executing the whole
    /// epoch log per merge is pure waste.
    pub hb_final: Option<&'a DbState>,
    /// Allow the conflict-free fast path: when the pending history's
    /// footprint union is disjoint from the cached base slice's footprint
    /// union (`base_edges` must cover *all* of `hb`), skip precedence-graph
    /// and closure construction entirely. Pure mechanism — the outcome is
    /// byte-identical; the flag exists so legacy-comparison runs can hold
    /// the old code path.
    pub fastpath: bool,
    /// Skip materializing [`MergeOutcome::merged_history`] on the slow
    /// path. The witness topological sort is O(|H_b ∪ H_m|²) with the
    /// deterministic base-first tie-break, and the replication install
    /// path never reads it (the new master is derived from `hb_final`
    /// plus the forwarded updates) — per-cohort it is the dominant
    /// super-linear term. Callers that assert Theorem 1's witness (tests,
    /// the worked example) leave this off. The fast path still emits its
    /// witness: there it is a cheap concatenation.
    pub defer_witness: bool,
}

/// Reusable working memory for repeated merges (the zero-realloc hot
/// path): precedence-graph id maps and reads-from closure buffers that
/// would otherwise be reallocated per merge. A caller merging once per
/// window step holds one `MergeScratch` and threads it through
/// [`Merger::merge_scratch`]; each merge leaves the buffers grown to the
/// high-water mark of the histories seen so far, so steady-state merges
/// allocate nothing for these structures.
///
/// Reuse is observation-free: a merge through a used scratch is
/// byte-identical to one through [`MergeScratch::new`] (the
/// `session_differential` suite pins this).
#[derive(Default)]
pub struct MergeScratch {
    /// Flat id→node map reused by [`PrecedenceGraph::build_with_scratch`].
    pub graph: GraphScratch,
    /// Last-writer and row buffers reused by
    /// [`ClosureTable::build_with_scratch`].
    pub closure: ClosureScratch,
}

impl MergeScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        MergeScratch::default()
    }
}

/// Runs the merging protocol of Section 2.1.
pub struct Merger {
    config: MergeConfig,
}

impl Merger {
    /// Creates a merger with the given configuration.
    pub fn new(config: MergeConfig) -> Self {
        Merger { config }
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &MergeConfig {
        &self.config
    }

    /// Merges tentative history `hm` into base history `hb`. Both must
    /// start from the same database state `s0` (Section 2.1's footnote:
    /// otherwise the correctness of the merger cannot be ensured — see the
    /// synchronization strategies of Section 2.2).
    ///
    /// # Errors
    ///
    /// Propagates history-execution, back-out, and pruning errors.
    pub fn merge(
        &self,
        arena: &TxnArena,
        hm: &SerialHistory,
        hb: &SerialHistory,
        s0: &DbState,
    ) -> Result<MergeOutcome, CoreError> {
        self.merge_assisted(arena, hm, hb, s0, MergeAssist::default())
    }

    /// Like [`merge`](Self::merge), but reuses caller-precomputed inputs:
    /// the epoch's incrementally maintained base-conflict edges and/or the
    /// base history's final state. The outcome is identical to the
    /// unassisted merge; only redundant recomputation is skipped. This is
    /// the entry point of the batched base-tier sync path, where many
    /// merges in one window share the same growing `hb`.
    ///
    /// # Errors
    ///
    /// Propagates history-execution, back-out, and pruning errors.
    pub fn merge_assisted(
        &self,
        arena: &TxnArena,
        hm: &SerialHistory,
        hb: &SerialHistory,
        s0: &DbState,
        assist: MergeAssist<'_>,
    ) -> Result<MergeOutcome, CoreError> {
        self.merge_traced(arena, hm, hb, s0, assist, &TracerHandle::noop())
    }

    /// Like [`merge_assisted`](Self::merge_assisted), but emits trace
    /// events and per-step wall-clock spans to `tracer`. Tracing is
    /// observation-only: the outcome is byte-identical to the untraced
    /// merge, and a disabled tracer costs one branch per step.
    ///
    /// # Errors
    ///
    /// Propagates history-execution, back-out, and pruning errors.
    pub fn merge_traced(
        &self,
        arena: &TxnArena,
        hm: &SerialHistory,
        hb: &SerialHistory,
        s0: &DbState,
        assist: MergeAssist<'_>,
        tracer: &TracerHandle,
    ) -> Result<MergeOutcome, CoreError> {
        self.merge_traced_scratch(arena, hm, hb, s0, assist, tracer, &mut MergeScratch::new())
    }

    /// Like [`merge_assisted`](Self::merge_assisted), but reusing a
    /// caller-held [`MergeScratch`] so repeated merges stop reallocating
    /// their graph and closure working memory.
    ///
    /// # Errors
    ///
    /// Propagates history-execution, back-out, and pruning errors.
    pub fn merge_scratch(
        &self,
        arena: &TxnArena,
        hm: &SerialHistory,
        hb: &SerialHistory,
        s0: &DbState,
        assist: MergeAssist<'_>,
        scratch: &mut MergeScratch,
    ) -> Result<MergeOutcome, CoreError> {
        self.merge_traced_scratch(arena, hm, hb, s0, assist, &TracerHandle::noop(), scratch)
    }

    /// The full-control entry point: tracing and scratch reuse together.
    /// Every other merge method delegates here.
    ///
    /// # Errors
    ///
    /// Propagates history-execution, back-out, and pruning errors.
    #[allow(clippy::too_many_arguments)]
    pub fn merge_traced_scratch(
        &self,
        arena: &TxnArena,
        hm: &SerialHistory,
        hb: &SerialHistory,
        s0: &DbState,
        assist: MergeAssist<'_>,
        tracer: &TracerHandle,
        scratch: &mut MergeScratch,
    ) -> Result<MergeOutcome, CoreError> {
        // Execute the tentative history to obtain its log (before/after
        // images and original read values). In a deployment these logs
        // already exist; re-deriving them here keeps the API
        // self-contained. The base history's final state is either lent by
        // the caller (base nodes hold it as the current master) or derived
        // log-free: a merge only needs `hb`'s FINAL state, never its
        // per-step images, so `run_to_final` skips the augmented log.
        let span = tracer.span_start();
        let hm_aug = AugmentedHistory::execute(arena, hm, s0)?;
        let hb_final = match assist.hb_final {
            Some(state) => state.clone(),
            None => run_to_final(arena, hb, s0)?,
        };
        tracer.span_end(Phase::Exec, span);

        // Conflict-free fast-path gate: when the caller allows it and the
        // epoch edge cache covers ALL of `hb` (its footprint union is only
        // meaningful at full length), a pending history disjoint from the
        // whole concurrent base slice draws no rule-3 edge against any
        // prefix. Both sub-histories are then forward-edge DAGs, so the
        // graph is acyclic, every back-out strategy returns ∅, and the
        // entire graph/closure machinery can be skipped — O(words) gate,
        // O(m²) rule-1 pair count, byte-identical outcome.
        let fast_path = assist.fastpath
            && assist.base_edges.is_some_and(|cache| cache.len() == hb.len())
            && {
                let mut hm_bits = DenseBits::new();
                for id in hm.iter() {
                    hm_bits.union_with(arena.read_bits(id));
                    hm_bits.union_with(arena.write_bits(id));
                }
                let cache = assist.base_edges.expect("gated above");
                !hm_bits.intersects(cache.footprint_bits())
            };

        // Step 1: the precedence graph. On the fast path the graph is
        // never materialized — only its exact edge count is derived (rule-1
        // pairs counted directly, rule-2 read from the cache, rule-3 zero
        // by disjointness), because `graph_edges` feeds the cost model.
        let span = tracer.span_start();
        let graph = if fast_path {
            None
        } else {
            Some(match assist.base_edges {
                Some(cache) => PrecedenceGraph::build_with_base_cache_scratch(
                    arena,
                    hm,
                    hb,
                    cache,
                    &mut scratch.graph,
                ),
                None => PrecedenceGraph::build_with_scratch(arena, hm, hb, &mut scratch.graph),
            })
        };
        let graph_edges = match &graph {
            Some(graph) => graph.edges().len(),
            None => {
                let hm_order: Vec<TxnId> = hm.iter().collect();
                let mut edges =
                    assist.base_edges.map_or(0, |cache| cache.edge_count(hb.len()));
                for (i, &ti) in hm_order.iter().enumerate() {
                    for &tj in &hm_order[i + 1..] {
                        if arena.conflicts(ti, tj) {
                            edges += 1;
                        }
                    }
                }
                edges
            }
        };
        tracer.span_end(Phase::GraphBuild, span);
        tracer.emit(|| TraceEvent::GraphBuilt {
            hm_len: hm.len(),
            hb_len: hb.len(),
            edges: graph_edges,
        });

        // Step 2: the back-out set, weighted by reads-from closure sizes.
        // One closure-table pass serves both the back-out weights and the
        // affected set AG(B): the seed walked the reads-from closure once
        // per transaction for the weights and then again for AG. On the
        // fast path the graph is acyclic by construction, so B = AG = ∅
        // without consulting any strategy (all built-ins return ∅ on
        // acyclic graphs) and the closure table is never built.
        let span = tracer.span_start();
        let (bad, affected) = match &graph {
            Some(graph) => {
                let table = ClosureTable::build_with_scratch(arena, hm, &mut scratch.closure);
                let weights = table.weights();
                let weight = move |id: TxnId| weights.get(&id).copied().unwrap_or(1);
                let bad = self.config.backout.compute(graph, &weight)?;
                let affected = table.affected_of(&bad);
                (bad, affected)
            }
            None => (BTreeSet::new(), BTreeSet::new()),
        };
        tracer.span_end(Phase::Backout, span);
        tracer.emit(|| TraceEvent::CycleBreak { backed_out: bad.len(), affected: affected.len() });

        // Step 3: rewrite.
        let span = tracer.span_start();
        let rewritten = rewrite(
            arena,
            &hm_aug,
            &bad,
            self.config.algorithm,
            self.config.fix_mode,
            self.config.oracle.as_ref(),
        );
        tracer.span_end(Phase::Rewrite, span);
        tracer.emit(|| TraceEvent::Rewrite {
            saved: rewritten.prefix().len(),
            backed_out: rewritten.suffix().len(),
        });

        // Step 4: prune.
        let span = tracer.span_start();
        let repaired_state = match self.config.prune {
            PruneMethod::Undo => undo(arena, &hm_aug, &rewritten, &affected)?,
            PruneMethod::Compensate => compensate(arena, &hm_aug, &rewritten)?,
        };
        tracer.span_end(Phase::Prune, span);
        tracer.emit(|| TraceEvent::Prune { method: self.config.prune.name() });

        // Step 5: forward updates — only the final repaired value of each
        // item some saved transaction modified.
        let mut saved_writes = VarSet::new();
        for (id, _) in rewritten.prefix() {
            saved_writes.extend_from(arena.get(*id).writeset());
        }
        let forwarded = repaired_state.project(&saved_writes);
        let mut new_master = hb_final;
        new_master.apply(&forwarded);

        // Step 6: re-execute backed-out transactions on the new master
        // state, in their original order. "Failed reexecutions will be
        // informed to the users together with the corresponding reasons":
        // a re-execution fails when the transaction's declared
        // precondition does not hold on the state it now runs against
        // (e.g. a withdrawal that no longer clears), or when it cannot run
        // at all. Only the per-transaction verdicts escape this loop, so
        // the chain runs on an overlay over the master — no state clone.
        let span = tracer.span_start();
        let mut reexecuted = Vec::new();
        let mut view = OverlayState::new(&new_master);
        for (id, _) in rewritten.suffix() {
            let txn = arena.get(*id);
            let precondition_ok = txn.check_precondition_on(&view, &Fix::empty()).unwrap_or(false);
            match txn.execute_delta(&view, &Fix::empty()) {
                Ok(delta) => {
                    view.apply_writes(&delta.writes);
                    reexecuted.push((*id, precondition_ok));
                }
                Err(_) => reexecuted.push((*id, false)),
            }
        }
        drop(view);
        tracer.span_end(Phase::Reexecute, span);

        let saved = rewritten.saved();
        let backed_out = rewritten.pruned();
        let removed: BTreeSet<TxnId> = backed_out.iter().copied().collect();
        // On the fast path the witness history is written down directly:
        // with no cross edges, Kahn's tie-break (base kind first, then
        // node index) emits exactly `hb` in order followed by `hm` in
        // order — the same history the slow path's topological sort
        // produces on a disjoint graph.
        let merged_history = match &graph {
            Some(_) if assist.defer_witness => None,
            Some(graph) => graph.merged_history_without(&removed),
            None => Some(SerialHistory::from_order(hb.iter().chain(hm.iter()))),
        };

        Ok(MergeOutcome {
            bad,
            affected,
            rewritten,
            saved,
            backed_out,
            repaired_state,
            forwarded,
            new_master,
            reexecuted,
            merged_history,
            graph_edges,
            fast_path,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_history::fixtures::example1;
    use histmerge_history::{ExactMinimum, GreedyScc};
    use histmerge_txn::VarId;

    fn d(i: u32) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn example1_end_to_end() {
        let ex = example1();
        let outcome =
            Merger::new(MergeConfig::default()).merge(&ex.arena, &ex.hm, &ex.hb, &ex.s0).unwrap();
        // B = {Tm3}, AG = {Tm4}.
        assert_eq!(outcome.bad, [ex.m[2]].into_iter().collect());
        assert_eq!(outcome.affected, [ex.m[3]].into_iter().collect());
        assert_eq!(outcome.saved, vec![ex.m[0], ex.m[1]]);
        assert_eq!(outcome.backed_out, vec![ex.m[2], ex.m[3]]);
        // The merged history of Example 1: Tb1 Tb2 Tm1 Tm2.
        assert_eq!(
            outcome.merged_history.as_ref().unwrap().order(),
            &[ex.b[0], ex.b[1], ex.m[0], ex.m[1]]
        );
        // Both backed-out transactions re-execute fine on the new master.
        assert!(outcome.reexecuted.iter().all(|(_, ok)| *ok));
        assert_eq!(outcome.reexecuted.len(), 2);
    }

    #[test]
    fn example1_master_state_matches_merged_history_execution() {
        // The new master state (base final + forwarded values) must equal
        // the state of executing the merged history Tb1 Tb2 Tm1 Tm2 from
        // s0 — the correctness claim of protocol step 5.
        let ex = example1();
        let outcome =
            Merger::new(MergeConfig::default()).merge(&ex.arena, &ex.hm, &ex.hb, &ex.s0).unwrap();
        let merged = outcome.merged_history.clone().unwrap();
        let replay = AugmentedHistory::execute(&ex.arena, &merged, &ex.s0).unwrap();
        assert_eq!(&outcome.new_master, replay.final_state());
    }

    #[test]
    fn example1_forwarded_values_are_saved_writes_only() {
        let ex = example1();
        let outcome =
            Merger::new(MergeConfig::default()).merge(&ex.arena, &ex.hm, &ex.hb, &ex.s0).unwrap();
        // Saved = {Tm1, Tm2}: writes {d1, d2} ∪ {d3, d4, d5, d6}.
        let vars = outcome.forwarded.vars();
        assert_eq!(vars, [d(1), d(2), d(3), d(4), d(5), d(6)].into_iter().collect());
        // d0 and d7 (padding) are never forwarded.
        assert!(!outcome.forwarded.contains(d(0)));
        assert!(!outcome.forwarded.contains(d(7)));
    }

    #[test]
    fn acyclic_merge_saves_everything() {
        // Merging the tentative history against an EMPTY base history:
        // no conflicts, everything saved, nothing re-executed.
        let ex = example1();
        let outcome = Merger::new(MergeConfig::default())
            .merge(&ex.arena, &ex.hm, &SerialHistory::new(), &ex.s0)
            .unwrap();
        assert!(outcome.bad.is_empty());
        assert!(outcome.backed_out.is_empty());
        assert_eq!(outcome.saved.len(), 4);
        // New master = repaired state = full tentative execution.
        let hm_aug = AugmentedHistory::execute(&ex.arena, &ex.hm, &ex.s0).unwrap();
        assert_eq!(&outcome.new_master, hm_aug.final_state());
    }

    #[test]
    fn all_configurations_agree_on_example1_master_state() {
        // Alg1/Alg2 × Lemma1/Lemma2 × undo, plus RFTC with undo: all
        // configurations must produce the SAME new master state (they may
        // save different sets; in Example 1 the saved sets coincide).
        let ex = example1();
        let mut masters = Vec::new();
        for algorithm in [
            RewriteAlgorithm::CanFollow,
            RewriteAlgorithm::CanFollowCanPrecede,
            RewriteAlgorithm::ReadsFromClosure,
        ] {
            for fix_mode in [FixMode::Lemma1, FixMode::Lemma2] {
                let config = MergeConfig {
                    backout: Box::new(ExactMinimum::new()),
                    algorithm,
                    fix_mode,
                    prune: PruneMethod::Undo,
                    oracle: Box::new(StaticAnalyzer::new()),
                };
                let outcome = Merger::new(config).merge(&ex.arena, &ex.hm, &ex.hb, &ex.s0).unwrap();
                assert_eq!(outcome.saved.len(), 2, "{}", algorithm.name());
                masters.push(outcome.new_master);
            }
        }
        assert!(masters.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn assisted_merge_matches_unassisted() {
        let ex = example1();
        let merger = Merger::new(MergeConfig::default());
        let plain = merger.merge(&ex.arena, &ex.hm, &ex.hb, &ex.s0).unwrap();

        let mut cache = BaseEdgeCache::new();
        cache.sync(&ex.arena, &ex.hb);
        let hb_final =
            AugmentedHistory::execute(&ex.arena, &ex.hb, &ex.s0).unwrap().final_state().clone();
        let assist = MergeAssist {
            base_edges: Some(&cache),
            hb_final: Some(&hb_final),
            ..MergeAssist::default()
        };
        let assisted = merger.merge_assisted(&ex.arena, &ex.hm, &ex.hb, &ex.s0, assist).unwrap();

        assert_eq!(plain.bad, assisted.bad);
        assert_eq!(plain.affected, assisted.affected);
        assert_eq!(plain.saved, assisted.saved);
        assert_eq!(plain.backed_out, assisted.backed_out);
        assert_eq!(plain.repaired_state, assisted.repaired_state);
        assert_eq!(plain.forwarded, assisted.forwarded);
        assert_eq!(plain.new_master, assisted.new_master);
        assert_eq!(plain.reexecuted, assisted.reexecuted);
        assert_eq!(
            plain.merged_history.as_ref().map(|h| h.order().to_vec()),
            assisted.merged_history.as_ref().map(|h| h.order().to_vec())
        );
        assert_eq!(plain.graph_edges, assisted.graph_edges);
    }

    #[test]
    fn install_plan_captures_base_side_effects() {
        let ex = example1();
        let outcome =
            Merger::new(MergeConfig::default()).merge(&ex.arena, &ex.hm, &ex.hb, &ex.s0).unwrap();
        let plan = outcome.install_plan();
        assert_eq!(plan.forwarded, outcome.forwarded);
        assert_eq!(plan.reexecute, outcome.backed_out);
        assert_eq!(plan.saved, outcome.saved);
        // Cloneable and comparable — a recovering node dedupes
        // retransmitted plans by equality.
        assert_eq!(plan, plan.clone());
    }

    #[test]
    fn greedy_backout_also_merges() {
        let ex = example1();
        let config = MergeConfig { backout: Box::new(GreedyScc::new()), ..MergeConfig::default() };
        let outcome = Merger::new(config).merge(&ex.arena, &ex.hm, &ex.hb, &ex.s0).unwrap();
        // Greedy may back out more than the optimum, but the result must
        // still be conflict-free.
        assert!(!outcome.bad.is_empty());
        assert!(outcome.merged_history.is_some());
    }

    #[test]
    fn traced_merge_matches_untraced_and_emits_step_events() {
        use histmerge_obs::{JsonlSink, Tracer};
        let ex = example1();
        let merger = Merger::new(MergeConfig::default());
        let plain = merger.merge(&ex.arena, &ex.hm, &ex.hb, &ex.s0).unwrap();

        let sink = std::sync::Arc::new(JsonlSink::new());
        let traced = merger
            .merge_traced(
                &ex.arena,
                &ex.hm,
                &ex.hb,
                &ex.s0,
                MergeAssist::default(),
                &TracerHandle::new(sink.clone()),
            )
            .unwrap();

        // Observation-only: every outcome field agrees.
        assert_eq!(plain.bad, traced.bad);
        assert_eq!(plain.saved, traced.saved);
        assert_eq!(plain.backed_out, traced.backed_out);
        assert_eq!(plain.new_master, traced.new_master);
        assert_eq!(plain.reexecuted, traced.reexecuted);
        assert_eq!(plain.graph_edges, traced.graph_edges);

        // Every protocol step left an event and a span.
        let dump = sink.dump_jsonl().unwrap();
        for needle in [
            "graph_built",
            "cycle_break",
            "\"rewrite\"",
            "\"prune\"",
            "\"exec\"",
            "graph_build",
            "backout",
            "reexecute",
        ] {
            assert!(dump.contains(needle), "missing {needle} in {dump}");
        }
        let spans = dump.lines().filter(|l| l.contains("\"type\":\"span\"")).count();
        assert_eq!(spans, 6, "one span per merge phase:\n{dump}");
    }

    #[test]
    fn scratch_reuse_matches_fresh_merges() {
        // One MergeScratch threaded through repeated merges (with and
        // without a base-edge cache) must produce outcomes identical to
        // fresh merges — reuse is observation-free.
        let ex = example1();
        let merger = Merger::new(MergeConfig::default());
        let mut scratch = MergeScratch::new();
        let mut cache = BaseEdgeCache::new();
        cache.sync(&ex.arena, &ex.hb);
        let hb_final =
            AugmentedHistory::execute(&ex.arena, &ex.hb, &ex.s0).unwrap().final_state().clone();
        for round in 0..3 {
            let plain = merger.merge(&ex.arena, &ex.hm, &ex.hb, &ex.s0).unwrap();
            let assist = if round % 2 == 0 {
                MergeAssist::default()
            } else {
                MergeAssist {
                    base_edges: Some(&cache),
                    hb_final: Some(&hb_final),
                    ..MergeAssist::default()
                }
            };
            let reused = merger
                .merge_scratch(&ex.arena, &ex.hm, &ex.hb, &ex.s0, assist, &mut scratch)
                .unwrap();
            assert_eq!(plain.bad, reused.bad, "round {round}");
            assert_eq!(plain.affected, reused.affected, "round {round}");
            assert_eq!(plain.saved, reused.saved, "round {round}");
            assert_eq!(plain.backed_out, reused.backed_out, "round {round}");
            assert_eq!(plain.repaired_state, reused.repaired_state, "round {round}");
            assert_eq!(plain.forwarded, reused.forwarded, "round {round}");
            assert_eq!(plain.new_master, reused.new_master, "round {round}");
            assert_eq!(plain.reexecuted, reused.reexecuted, "round {round}");
            assert_eq!(plain.graph_edges, reused.graph_edges, "round {round}");
            assert_eq!(
                plain.merged_history.as_ref().map(|h| h.order().to_vec()),
                reused.merged_history.as_ref().map(|h| h.order().to_vec()),
                "round {round}"
            );
        }
    }

    #[test]
    fn config_debug_prints_components() {
        let config = MergeConfig::default();
        let text = format!("{config:?}");
        assert!(text.contains("two-cycle-optimal"));
        assert!(text.contains("algorithm2-can-precede"));
        assert!(text.contains("undo"));
    }
}
