//! The history-merging core of `histmerge` — the primary contribution of
//! *"Incorporating Transaction Semantics to Reduce Reprocessing Overhead in
//! Replicated Mobile Data Applications"* (Liu, Ammann, Jajodia, ICDCS 1999).
//!
//! Two-tier replication re-executes every tentative transaction at the base
//! nodes. This crate instead **merges** the tentative history `H_m` into the
//! base history `H_b` (Section 2.1):
//!
//! 1. build the precedence graph `G(H_m, H_b)`;
//! 2. compute the back-out set `B` of undesirable tentative transactions;
//! 3. **rewrite** `H_m` so that `B` (and the affected transactions that
//!    cannot be saved) move to the end — [`rewrite`];
//! 4. **prune** the rewritten suffix by compensation or undo — [`prune`];
//! 5. forward the repaired history's final values to the base;
//! 6. re-execute the backed-out transactions the old way.
//!
//! The [`merge`] module packages steps 1–6 behind one call.
//!
//! # Example
//!
//! ```rust
//! use histmerge_core::merge::{MergeConfig, Merger};
//! use histmerge_history::fixtures::example1;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ex = example1();
//! let outcome = Merger::new(MergeConfig::default())
//!     .merge(&ex.arena, &ex.hm, &ex.hb, &ex.s0)?;
//! // Example 1 of the paper: B = {Tm3}, affected = {Tm4}, and the work of
//! // Tm1 and Tm2 is saved without reprocessing.
//! assert_eq!(outcome.backed_out.len(), 2);
//! assert_eq!(outcome.saved, vec![ex.m[0], ex.m[1]]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod merge;
pub mod prune;
pub mod rewrite;

pub use error::CoreError;
pub use rewrite::{FixMode, RewriteAlgorithm, RewrittenHistory};
