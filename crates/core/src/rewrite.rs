//! History rewriting: Algorithms 1 and 2, plus the two baselines.
//!
//! Given a serial tentative history `H^s` and the back-out set `B`, a
//! rewriter produces a permutation of `H^s` (with fixes) whose **prefix**
//! contains only desirable transactions — the *repaired history* — and
//! whose suffix holds `B` plus whatever affected transactions could not be
//! saved. The rewritten history must be final-state equivalent to the
//! original (Theorem 2), which is what the fixes (Definition 1, Lemma 1)
//! guarantee.
//!
//! Four algorithms:
//!
//! * [`RewriteAlgorithm::CanFollow`] — **Algorithm 1**: purely syntactic;
//!   saves exactly `G − AG` (Theorems 2 and 3) while producing an
//!   equivalent rewritten history whose suffix can be pruned semantically.
//! * [`RewriteAlgorithm::CanFollowCanPrecede`] — **Algorithm 2**: also
//!   moves a transaction when the oracle says it *can precede* a blocking
//!   transaction for its current fix (Definition 4), potentially saving
//!   affected transactions too. Under Property 1 it dominates the
//!   commutativity baseline (Theorem 4).
//! * [`RewriteAlgorithm::CommutesBackward`] — **CBTR**: Algorithm 1 with
//!   can-follow replaced by commutes-backward-through (Section 5.2's
//!   baseline); no fixes are produced.
//! * [`RewriteAlgorithm::ReadsFromClosure`] — **RFTC**: the classical
//!   Davidson-style back-out of `B` plus its whole reads-from closure; no
//!   rewriting at all. Its result is the yardstick of Theorem 3. Unlike
//!   the other three, its full entry sequence is *not* final-state
//!   equivalent to the original — only its prefix is meaningful, and
//!   pruning must use the undo approach.

use std::collections::BTreeSet;

use histmerge_history::readsfrom::affected_set;
use histmerge_history::{AugmentedHistory, SerialHistory, TxnArena};
use histmerge_semantics::SemanticOracle;
use histmerge_txn::{Fix, Transaction, TxnId};

/// Which rewriting algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewriteAlgorithm {
    /// Algorithm 1 (can-follow rewriting).
    CanFollow,
    /// Algorithm 2 (can-follow and can-precede rewriting).
    CanFollowCanPrecede,
    /// The commutes-backward-through baseline rewriter.
    CommutesBackward,
    /// The reads-from transitive-closure baseline (no rewriting).
    ReadsFromClosure,
}

impl RewriteAlgorithm {
    /// Short name for experiment reports.
    pub fn name(self) -> &'static str {
        match self {
            RewriteAlgorithm::CanFollow => "algorithm1-can-follow",
            RewriteAlgorithm::CanFollowCanPrecede => "algorithm2-can-precede",
            RewriteAlgorithm::CommutesBackward => "cbtr",
            RewriteAlgorithm::ReadsFromClosure => "rftc",
        }
    }
}

/// How fixes are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FixMode {
    /// Lemma 1: augment the fix of each jumped transaction incrementally by
    /// `T'.readset ∩ T.writeset` at every jump.
    #[default]
    Lemma1,
    /// Lemma 2: run the Lemma 1 bookkeeping, then replace every non-empty
    /// fix with the whole `readset − writeset` (values from the original
    /// before state). Cheaper in systems that log `readset − writeset` per
    /// transaction; valid for Algorithm 2 only under Property 1 (Lemma 3).
    Lemma2,
}

/// The result of rewriting a history.
#[derive(Debug, Clone)]
pub struct RewrittenHistory {
    entries: Vec<(TxnId, Fix)>,
    prefix_len: usize,
    algorithm: RewriteAlgorithm,
}

impl RewrittenHistory {
    /// The full rewritten sequence with fixes.
    pub fn entries(&self) -> &[(TxnId, Fix)] {
        &self.entries
    }

    /// Length of the repaired prefix.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// The repaired history `H_r^s`: the prefix of saved transactions.
    pub fn prefix(&self) -> &[(TxnId, Fix)] {
        &self.entries[..self.prefix_len]
    }

    /// The suffix of transactions to be pruned (`H_e^s − H_r^s`).
    pub fn suffix(&self) -> &[(TxnId, Fix)] {
        &self.entries[self.prefix_len..]
    }

    /// Ids of the saved transactions, in repaired-history order.
    pub fn saved(&self) -> Vec<TxnId> {
        self.prefix().iter().map(|(t, _)| *t).collect()
    }

    /// Ids of the pruned transactions, in suffix order.
    pub fn pruned(&self) -> Vec<TxnId> {
        self.suffix().iter().map(|(t, _)| *t).collect()
    }

    /// The repaired history as a [`SerialHistory`] (fixes in the prefix are
    /// always empty — Theorem 2, point 3).
    pub fn repaired_history(&self) -> SerialHistory {
        self.prefix().iter().map(|(t, _)| *t).collect()
    }

    /// The algorithm that produced this rewriting.
    pub fn algorithm(&self) -> RewriteAlgorithm {
        self.algorithm
    }
}

/// Can `stayer` follow `mover` for rewriting purposes?
///
/// Definition 3 (`stayer.writeset ∩ mover.readset = ∅`) plus an explicit
/// write-write disjointness clause, which Definition 3 subsumes when the
/// mover has no blind writes (then `writeset ⊆ readset`) but which must be
/// stated for set-level transactions that write blindly: otherwise a swap
/// would flip which write lands last.
fn can_follow_for_rewrite(stayer: &Transaction, mover: &Transaction) -> bool {
    !stayer.write_mask().intersects(mover.read_mask())
        && !stayer.write_mask().intersects(mover.write_mask())
}

/// Rewrites `original` (the executed tentative history) against the
/// back-out set `bad`, using `algorithm`, `fix_mode`, and `oracle`.
///
/// The oracle is only consulted by [`RewriteAlgorithm::CanFollowCanPrecede`]
/// and [`RewriteAlgorithm::CommutesBackward`]; pass any oracle (e.g. an
/// empty stack) for the other two.
pub fn rewrite(
    arena: &TxnArena,
    original: &AugmentedHistory,
    bad: &BTreeSet<TxnId>,
    algorithm: RewriteAlgorithm,
    fix_mode: FixMode,
    oracle: &dyn SemanticOracle,
) -> RewrittenHistory {
    if algorithm == RewriteAlgorithm::ReadsFromClosure {
        return rftc(arena, original, bad);
    }

    let mut entries: Vec<(TxnId, Fix)> = original.entries().to_vec();
    // Track which entries would carry a non-empty fix under Lemma 1, for
    // the Lemma 2 post-pass.
    let mut jumped: BTreeSet<TxnId> = BTreeSet::new();

    let Some(mut b1_pos) = entries.iter().position(|(t, _)| bad.contains(t)) else {
        // Nothing to back out: the whole history is the repaired prefix.
        let len = entries.len();
        return RewrittenHistory { entries, prefix_len: len, algorithm };
    };

    // Scan forward from the first good transaction after B1 (Algorithm 1).
    let scan: Vec<TxnId> =
        entries[b1_pos + 1..].iter().map(|(t, _)| *t).filter(|t| !bad.contains(t)).collect();

    for t in scan {
        let pos = entries.iter().position(|(id, _)| *id == t).expect("scanned transaction present");
        let mover = arena.get(t);

        let movable = entries[b1_pos..pos].iter().all(|(tj, fixj)| {
            let stayer = arena.get(*tj);
            match algorithm {
                RewriteAlgorithm::CanFollow => can_follow_for_rewrite(stayer, mover),
                RewriteAlgorithm::CanFollowCanPrecede => {
                    can_follow_for_rewrite(stayer, mover)
                        || oracle.can_precede(mover, stayer, &fixj.vars())
                }
                RewriteAlgorithm::CommutesBackward => {
                    oracle.commutes_backward_through(mover, stayer)
                }
                RewriteAlgorithm::ReadsFromClosure => unreachable!("handled above"),
            }
        });
        if !movable {
            continue;
        }

        // Fix maintenance (Lemma 1): every block transaction that the mover
        // passes via can-follow conceptually moves right past it and must
        // pin its reads of the mover's writes to original values.
        if matches!(algorithm, RewriteAlgorithm::CanFollow | RewriteAlgorithm::CanFollowCanPrecede)
        {
            for entry in entries.iter_mut().take(pos).skip(b1_pos) {
                let (tj, fixj) = entry;
                let stayer = arena.get(*tj);
                if !can_follow_for_rewrite(stayer, mover) {
                    // Algorithm 2 passed this one via can-precede: swap
                    // without touching the fix.
                    continue;
                }
                let pins = stayer.readset().intersection(mover.writeset());
                if pins.is_empty() {
                    continue;
                }
                let orig_pos = original.position(*tj).expect("stayer is in the original");
                for var in pins.iter() {
                    let value = original
                        .value_before(orig_pos, var)
                        .expect("pinned item existed when the stayer originally ran");
                    fixj.pin(var, value);
                }
                jumped.insert(*tj);
            }
        }

        let entry = entries.remove(pos);
        entries.insert(b1_pos, entry);
        b1_pos += 1;
    }

    // Lemma 2 post-pass: replace every non-empty fix with
    // readset − writeset, valued from the original before state.
    if fix_mode == FixMode::Lemma2 {
        for (tj, fixj) in entries.iter_mut().skip(b1_pos) {
            if !jumped.contains(tj) {
                continue;
            }
            let txn = arena.get(*tj);
            let orig_pos = original.position(*tj).expect("entry is in the original");
            *fixj = txn
                .read_only_set()
                .iter()
                .map(|v| {
                    let value = original
                        .value_before(orig_pos, v)
                        .expect("read item existed when the transaction originally ran");
                    (v, value)
                })
                .collect();
        }
    }

    RewrittenHistory { entries, prefix_len: b1_pos, algorithm }
}

/// The reads-from transitive-closure baseline: saved = `G − AG`, everything
/// else appended in original order with no fixes.
fn rftc(arena: &TxnArena, original: &AugmentedHistory, bad: &BTreeSet<TxnId>) -> RewrittenHistory {
    let order = original.order();
    let ag = affected_set(arena, &order, bad);
    let mut prefix: Vec<(TxnId, Fix)> = Vec::new();
    let mut suffix: Vec<(TxnId, Fix)> = Vec::new();
    for id in order.iter() {
        if bad.contains(&id) || ag.contains(&id) {
            suffix.push((id, Fix::empty()));
        } else {
            prefix.push((id, Fix::empty()));
        }
    }
    let prefix_len = prefix.len();
    prefix.extend(suffix);
    RewrittenHistory { entries: prefix, prefix_len, algorithm: RewriteAlgorithm::ReadsFromClosure }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_history::fixtures::example1;
    use histmerge_semantics::{OracleStack, StaticAnalyzer};
    use histmerge_txn::{DbState, Expr, Program, ProgramBuilder, Transaction, TxnKind, VarId};
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn none() -> OracleStack {
        OracleStack::new()
    }

    fn static_oracle() -> StaticAnalyzer {
        StaticAnalyzer::new()
    }

    /// H4 of Section 5.1: B1 G2 G3 with B = {B1}.
    /// B1: if u > 10 then x := x + 100, y := y - 20
    /// G2: u := u - 20
    /// G3: x := x + 10, z := z + 30
    fn h4() -> (TxnArena, AugmentedHistory, BTreeSet<TxnId>, [TxnId; 3], DbState) {
        let mut arena = TxnArena::new();
        let b1: Arc<Program> = Arc::new(
            ProgramBuilder::new("B1")
                .read(v(0))
                .read(v(1))
                .read(v(2))
                .branch(
                    Expr::var(v(0)).gt(Expr::konst(10)),
                    |b| {
                        b.update(v(1), Expr::var(v(1)) + Expr::konst(100))
                            .update(v(2), Expr::var(v(2)) - Expr::konst(20))
                    },
                    |b| b,
                )
                .build()
                .unwrap(),
        );
        let g2: Arc<Program> = Arc::new(
            ProgramBuilder::new("G2")
                .read(v(0))
                .update(v(0), Expr::var(v(0)) - Expr::konst(20))
                .build()
                .unwrap(),
        );
        let g3: Arc<Program> = Arc::new(
            ProgramBuilder::new("G3")
                .read(v(1))
                .read(v(3))
                .update(v(1), Expr::var(v(1)) + Expr::konst(10))
                .update(v(3), Expr::var(v(3)) + Expr::konst(30))
                .build()
                .unwrap(),
        );
        let tb1 = arena.alloc(|id| Transaction::new(id, "B1", TxnKind::Tentative, b1, vec![]));
        let tg2 = arena.alloc(|id| Transaction::new(id, "G2", TxnKind::Tentative, g2, vec![]));
        let tg3 = arena.alloc(|id| Transaction::new(id, "G3", TxnKind::Tentative, g3, vec![]));
        let s0: DbState = [(v(0), 20), (v(1), 5), (v(2), 50), (v(3), 0)].into_iter().collect();
        let h = AugmentedHistory::execute(&arena, &SerialHistory::from_order([tb1, tg2, tg3]), &s0)
            .unwrap();
        let bad: BTreeSet<TxnId> = [tb1].into_iter().collect();
        (arena, h, bad, [tb1, tg2, tg3], s0)
    }

    #[test]
    fn h4_algorithm1_saves_g2_only() {
        // The paper: "The result of Algorithm 1 is the history
        // G2 B1^{u} G3, thus G3 need to be undone."
        let (arena, h, bad, [tb1, tg2, tg3], _) = h4();
        let rw = rewrite(&arena, &h, &bad, RewriteAlgorithm::CanFollow, FixMode::Lemma1, &none());
        assert_eq!(rw.saved(), vec![tg2]);
        assert_eq!(rw.pruned(), vec![tb1, tg3]);
        // B1 carries the fix {u}.
        let (id, fix) = &rw.entries()[1];
        assert_eq!(*id, tb1);
        assert_eq!(fix.vars(), [v(0)].into_iter().collect());
        assert_eq!(fix.get(v(0)), Some(20)); // original read value of u
                                             // G3 was never jumped: empty fix.
        assert!(rw.entries()[2].1.is_empty());
    }

    #[test]
    fn h4_algorithm2_saves_g3_too() {
        // G3 can precede B1^{u}, so Algorithm 2 produces G2 G3 B1^{u}.
        let (arena, h, bad, [tb1, tg2, tg3], _) = h4();
        let rw = rewrite(
            &arena,
            &h,
            &bad,
            RewriteAlgorithm::CanFollowCanPrecede,
            FixMode::Lemma1,
            &static_oracle(),
        );
        assert_eq!(rw.saved(), vec![tg2, tg3]);
        assert_eq!(rw.pruned(), vec![tb1]);
    }

    #[test]
    fn h4_rewritten_histories_are_final_state_equivalent() {
        // Theorem 2(4): replaying the rewritten history (with fixes)
        // reproduces the original final state — for every algorithm that
        // claims equivalence.
        let (arena, h, bad, _, s0) = h4();
        for (alg, fix_mode) in [
            (RewriteAlgorithm::CanFollow, FixMode::Lemma1),
            (RewriteAlgorithm::CanFollow, FixMode::Lemma2),
            (RewriteAlgorithm::CanFollowCanPrecede, FixMode::Lemma1),
            (RewriteAlgorithm::CanFollowCanPrecede, FixMode::Lemma2),
            (RewriteAlgorithm::CommutesBackward, FixMode::Lemma1),
        ] {
            let rw = rewrite(&arena, &h, &bad, alg, fix_mode, &static_oracle());
            let replay = AugmentedHistory::execute_with_fixes(&arena, rw.entries(), &s0).unwrap();
            assert!(
                replay.final_state_equivalent(&h),
                "{} with {:?} broke final-state equivalence",
                alg.name(),
                fix_mode
            );
        }
    }

    #[test]
    fn h4_lemma2_fix_is_whole_read_only_set() {
        let (arena, h, bad, [tb1, _, _], _) = h4();
        let rw = rewrite(&arena, &h, &bad, RewriteAlgorithm::CanFollow, FixMode::Lemma2, &none());
        let (id, fix) = &rw.entries()[1];
        assert_eq!(*id, tb1);
        // B1.readset − B1.writeset = {u}; here it coincides with Lemma 1's
        // answer, but the values must come from the original before state.
        assert_eq!(fix.vars(), [v(0)].into_iter().collect());
        assert_eq!(fix.get(v(0)), Some(20));
    }

    #[test]
    fn example1_algorithm1_matches_rftc() {
        // Theorem 3 on Example 1: the RFTC prefix equals Algorithm 1's.
        let ex = example1();
        let h = AugmentedHistory::execute(&ex.arena, &ex.hm, &ex.s0).unwrap();
        let bad: BTreeSet<TxnId> = [ex.m[2]].into_iter().collect();
        let alg1 =
            rewrite(&ex.arena, &h, &bad, RewriteAlgorithm::CanFollow, FixMode::Lemma1, &none());
        let rftc = rewrite(
            &ex.arena,
            &h,
            &bad,
            RewriteAlgorithm::ReadsFromClosure,
            FixMode::Lemma1,
            &none(),
        );
        assert_eq!(alg1.saved(), rftc.saved());
        assert_eq!(alg1.saved(), vec![ex.m[0], ex.m[1]]);
        assert_eq!(rftc.pruned(), vec![ex.m[2], ex.m[3]]);
        assert_eq!(rftc.algorithm(), RewriteAlgorithm::ReadsFromClosure);
    }

    #[test]
    fn no_bad_transactions_saves_everything() {
        let (arena, h, _, [a, b, c], _) = h4();
        let rw = rewrite(
            &arena,
            &h,
            &BTreeSet::new(),
            RewriteAlgorithm::CanFollow,
            FixMode::Lemma1,
            &none(),
        );
        assert_eq!(rw.saved(), vec![a, b, c]);
        assert!(rw.suffix().is_empty());
        assert_eq!(rw.prefix_len(), 3);
    }

    #[test]
    fn all_bad_saves_nothing() {
        let (arena, h, _, [a, b, c], _) = h4();
        let bad: BTreeSet<TxnId> = [a, b, c].into_iter().collect();
        for alg in [
            RewriteAlgorithm::CanFollow,
            RewriteAlgorithm::CanFollowCanPrecede,
            RewriteAlgorithm::CommutesBackward,
            RewriteAlgorithm::ReadsFromClosure,
        ] {
            let rw = rewrite(&arena, &h, &bad, alg, FixMode::Lemma1, &static_oracle());
            assert!(rw.saved().is_empty(), "{}", alg.name());
            assert_eq!(rw.pruned(), vec![a, b, c]);
        }
    }

    #[test]
    fn goods_before_first_bad_always_saved() {
        // History G B: G precedes the first bad transaction and is saved
        // without being scanned.
        let (arena, _, _, [tb1, tg2, _], s0) = h4();
        let h =
            AugmentedHistory::execute(&arena, &SerialHistory::from_order([tg2, tb1]), &s0).unwrap();
        let bad: BTreeSet<TxnId> = [tb1].into_iter().collect();
        let rw = rewrite(&arena, &h, &bad, RewriteAlgorithm::CanFollow, FixMode::Lemma1, &none());
        assert_eq!(rw.saved(), vec![tg2]);
    }

    #[test]
    fn theorem2_prefix_fixes_are_empty_and_orders_preserved() {
        let (arena, h, bad, _, _) = h4();
        for alg in [RewriteAlgorithm::CanFollow, RewriteAlgorithm::CanFollowCanPrecede] {
            let rw = rewrite(&arena, &h, &bad, alg, FixMode::Lemma1, &static_oracle());
            for (_, fix) in rw.prefix() {
                assert!(fix.is_empty(), "Theorem 2(3) violated by {}", alg.name());
            }
            // Theorem 2(2): saved and pruned orders follow the original.
            let orig = h.order();
            let pos = |id: TxnId| orig.position(id).unwrap();
            let saved = rw.saved();
            assert!(saved.windows(2).all(|w| pos(w[0]) < pos(w[1])));
            let pruned = rw.pruned();
            assert!(pruned.windows(2).all(|w| pos(w[0]) < pos(w[1])));
        }
    }

    #[test]
    fn blind_writer_blocked_by_write_write_clause() {
        // B reads/writes x; G blind-writes x (reading only y). Plain
        // Definition 3 would let B "follow" G (B.writeset ∩ G.readset = ∅),
        // but swapping them flips which write to x lands last — the
        // explicit write-write clause must block the move.
        let mut arena = TxnArena::new();
        let b_prog: Arc<Program> = Arc::new(
            ProgramBuilder::new("B")
                .read(v(0))
                .update(v(0), Expr::var(v(0)) + Expr::konst(1))
                .build()
                .unwrap(),
        );
        let g_prog: Arc<Program> = Arc::new(
            ProgramBuilder::new("G")
                .allow_blind_writes()
                .read(v(1))
                .update(v(0), Expr::var(v(1)) * Expr::konst(2))
                .build()
                .unwrap(),
        );
        let b = arena.alloc(|id| Transaction::new(id, "B", TxnKind::Tentative, b_prog, vec![]));
        let g = arena.alloc(|id| Transaction::new(id, "G", TxnKind::Tentative, g_prog, vec![]));
        let s0: DbState = [(v(0), 10), (v(1), 3)].into_iter().collect();
        let h = AugmentedHistory::execute(&arena, &SerialHistory::from_order([b, g]), &s0).unwrap();
        let bad: BTreeSet<TxnId> = [b].into_iter().collect();
        let rw = rewrite(&arena, &h, &bad, RewriteAlgorithm::CanFollow, FixMode::Lemma1, &none());
        assert!(rw.saved().is_empty(), "blind writer must not jump a same-item writer");
        // Equivalence still holds trivially (no moves happened).
        let replay = AugmentedHistory::execute_with_fixes(&arena, rw.entries(), &s0).unwrap();
        assert!(replay.final_state_equivalent(&h));
    }

    #[test]
    fn example1_rewrites_remain_equivalent_despite_blind_writes() {
        // Example 1's Tm2/Tm3 blind-write several items; every rewriting
        // must still be final-state equivalent to the original H_m.
        let ex = example1();
        let h = AugmentedHistory::execute(&ex.arena, &ex.hm, &ex.s0).unwrap();
        let bad: BTreeSet<TxnId> = [ex.m[2]].into_iter().collect();
        for alg in [
            RewriteAlgorithm::CanFollow,
            RewriteAlgorithm::CanFollowCanPrecede,
            RewriteAlgorithm::CommutesBackward,
        ] {
            let rw = rewrite(&ex.arena, &h, &bad, alg, FixMode::Lemma1, &static_oracle());
            let replay =
                AugmentedHistory::execute_with_fixes(&ex.arena, rw.entries(), &ex.s0).unwrap();
            assert!(replay.final_state_equivalent(&h), "{}", alg.name());
        }
    }

    #[test]
    fn cbtr_subset_of_algorithm2_on_h4() {
        // Theorem 4 instance: CBTR(H4) ⊆ FPR(H4).
        let (arena, h, bad, _, _) = h4();
        let oracle = static_oracle();
        let cbtr =
            rewrite(&arena, &h, &bad, RewriteAlgorithm::CommutesBackward, FixMode::Lemma1, &oracle);
        let fpr = rewrite(
            &arena,
            &h,
            &bad,
            RewriteAlgorithm::CanFollowCanPrecede,
            FixMode::Lemma1,
            &oracle,
        );
        let cbtr_saved: BTreeSet<TxnId> = cbtr.saved().into_iter().collect();
        let fpr_saved: BTreeSet<TxnId> = fpr.saved().into_iter().collect();
        assert!(cbtr_saved.is_subset(&fpr_saved));
        // And here strictly: G2 does not commute backward through B1
        // (it writes the guard u), but it CAN follow it.
        assert!(cbtr_saved.len() < fpr_saved.len());
    }
}
