//! The *can follow* relation (Definition 3).
//!
//! Transaction `T` **can follow** a sequence of transactions `R` if
//! `T.writeset ∩ R.readset = ∅` — i.e. `T` can be moved to the right past
//! `R` because no transaction in `R` reads anything `T` writes.
//!
//! Properties (all stated in Section 4 of the paper and tested below):
//!
//! 1. if `T.writeset` is non-empty, `T` cannot follow itself;
//! 2. can-follow is not transitive;
//! 3. read-only transactions can follow any transaction;
//! 4. `T` can follow `R` iff `T` can follow every transaction in `R`.

use histmerge_txn::Transaction;

/// Returns `true` if `t` can follow the single transaction `r`
/// (Definition 3 with a one-element sequence).
///
/// Tested on the precomputed footprint masks: one `u64` AND answers the
/// common disjoint case, with an exact sorted-merge confirming collisions.
pub fn can_follow(t: &Transaction, r: &Transaction) -> bool {
    !t.write_mask().intersects(r.read_mask())
}

/// Returns `true` if `t` can follow the sequence `r` (Definition 3).
///
/// Equivalent to checking [`can_follow`] pairwise (property 4), because
/// `R.readset` is the union of the member read sets.
pub fn can_follow_sequence<'a, I>(t: &Transaction, r: I) -> bool
where
    I: IntoIterator<Item = &'a Transaction>,
{
    r.into_iter().all(|ri| can_follow(t, ri))
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::{Expr, Program, ProgramBuilder, Transaction, TxnId, TxnKind, VarId};
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn txn(name: &str, reads: &[u32], writes: &[u32]) -> Transaction {
        let mut b = ProgramBuilder::new(name);
        let all: std::collections::BTreeSet<u32> =
            reads.iter().chain(writes.iter()).copied().collect();
        for i in &all {
            b = b.read(v(*i));
        }
        for w in writes {
            b = b.update(v(*w), Expr::var(v(*w)) + Expr::konst(1));
        }
        let p: Arc<Program> = Arc::new(b.build().unwrap());
        Transaction::new(TxnId::new(0), name, TxnKind::Tentative, p, vec![])
    }

    #[test]
    fn property1_cannot_follow_itself() {
        let t = txn("t", &[], &[0]);
        assert!(!can_follow(&t, &t));
        let ro = txn("ro", &[0], &[]);
        assert!(can_follow(&ro, &ro));
    }

    #[test]
    fn property2_not_transitive() {
        // Ti can follow Tj, Tj can follow Tk, but Ti cannot follow Tk.
        let ti = txn("ti", &[], &[0]);
        let tj = txn("tj", &[1], &[1]);
        let tk = txn("tk", &[0], &[2]);
        assert!(can_follow(&ti, &tj));
        assert!(can_follow(&tj, &tk));
        assert!(!can_follow(&ti, &tk));
    }

    #[test]
    fn property3_read_only_follows_anything() {
        let ro = txn("ro", &[0, 1, 2], &[]);
        for other in [txn("a", &[0], &[0]), txn("b", &[1, 2], &[1, 2]), txn("c", &[], &[])] {
            assert!(can_follow(&ro, &other));
        }
    }

    #[test]
    fn property4_sequence_iff_pairwise() {
        let t = txn("t", &[3], &[3]);
        let r1 = txn("r1", &[0], &[0]);
        let r2 = txn("r2", &[1], &[1]);
        let r3 = txn("r3", &[3], &[]); // reads what t writes
        assert!(can_follow_sequence(&t, [&r1, &r2]));
        assert!(!can_follow_sequence(&t, [&r1, &r3]));
        assert_eq!(
            can_follow_sequence(&t, [&r1, &r2, &r3]),
            [&r1, &r2, &r3].iter().all(|r| can_follow(&t, r))
        );
    }

    #[test]
    fn empty_sequence_always_followable() {
        let t = txn("t", &[], &[0]);
        assert!(can_follow_sequence(&t, []));
    }
}
