//! Conservative static detection of commutativity and can-precede.
//!
//! Section 5.1: "can precede relation can be detected by analyzing the
//! semantics of transaction profiles (or codes)". This module implements
//! that analysis over the statement AST of `histmerge-txn` programs.
//!
//! # Soundness and conservatism
//!
//! Every `true` answer is sound (the workspace property-tests analyzer
//! verdicts against differential execution). The analyzer rejects
//! relations that hold only through *correlated guards* — e.g. history `H5`
//! of the paper, where `T3` commutes backward through `T1` only because
//! both branch on the same `y` — because such relations are precisely the
//! ones a fix can silently break. Canned systems declare those pairs in a
//! [`DeclaredTable`](crate::DeclaredTable) instead.
//!
//! # Rules
//!
//! With `R1/W1` and `R2/W2` the static read/write sets, `F` the fix
//! variables of `t1` (`∅` when testing plain commutativity), and
//! `R1F = R1 − F` (pinned reads do not touch the state):
//!
//! * **read-only**: if `W2 = ∅` or `W1 = ∅`, the pair commutes for any fix.
//! * **disjoint**: `W2 ∩ (R1F ∪ W1) = ∅` and `W1 ∩ R2 = ∅`.
//! * **commuting updates**: with `S = W1 ∩ W2` the shared written items,
//!   1. `(W1 − S) ∩ R2 = ∅` and `(W2 − S) ∩ R1F = ∅`;
//!   2. every pair of updates of a shared item has commuting
//!      [`OpClass`](crate::summary::OpClass)es (e.g. increment/increment);
//!   3. no shared item appears in a guard of either transaction, nor as an
//!      operand of an update targeting a *different* item.
//!
//! These conditions imply Property 1 of the paper, so the analyzer is a
//! valid oracle for Lemma 3 / Theorem 4 preconditions.

use histmerge_txn::{Transaction, VarSet};

use crate::oracle::SemanticOracle;
use crate::summary::TxnSummary;

/// The static program analyzer. Stateless; construct freely.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticAnalyzer;

impl StaticAnalyzer {
    /// Creates the analyzer.
    pub fn new() -> Self {
        StaticAnalyzer
    }

    /// The shared relation check; `fix_vars` is empty for plain
    /// commutes-backward-through.
    fn relation(t2: &Transaction, t1: &Transaction, fix_vars: &VarSet) -> bool {
        let (r2, w2) = (t2.readset(), t2.writeset());
        let (r1, w1) = (t1.readset(), t1.writeset());

        // Property 1 gate. A read-only mover that reads the stayer's
        // writes would still be final-state commuting, but accepting it
        // would make the oracle violate Property 1, invalidating the cheap
        // Lemma 2 fix computation (Lemma 3) and the Theorem 4 dominance
        // argument. We model a system WITH Property 1, as Section 5.2
        // assumes.
        if !crate::property1::satisfies_property1(t2, t1, fix_vars) {
            return false;
        }

        // Read-only rule: a transaction that writes nothing (and, past the
        // gate above, reads nothing the other writes) commutes with
        // anything — the final state only reflects the writer.
        if w2.is_empty() || w1.is_empty() {
            return true;
        }

        // Disjoint rule, mask fast path first: R1F ⊆ R1, so footprint
        // masks that never collide prove disjointness without building the
        // difference set. Only a mask collision pays for the exact check.
        let masks_disjoint = !t2.write_mask().intersects(t1.read_mask())
            && !t2.write_mask().intersects(t1.write_mask())
            && !t1.write_mask().intersects(t2.read_mask());
        if masks_disjoint {
            return true;
        }
        let r1f = r1.difference(fix_vars);
        let disjoint = !w2.intersects(&r1f) && !w2.intersects(w1) && !w1.intersects(r2);
        if disjoint {
            return true;
        }

        // Commuting-updates rule.
        let shared = w1.intersection(w2);
        if shared.is_empty() {
            return false;
        }
        let w1_only = w1.difference(&shared);
        let w2_only = w2.difference(&shared);
        if w1_only.intersects(r2) || w2_only.intersects(&r1f) {
            return false;
        }

        let s1 = TxnSummary::of(t1);
        let s2 = TxnSummary::of(t2);
        for v in shared.iter() {
            // 2. Classes must pairwise commute across all paths.
            let u1: Vec<_> = s1.updates_of(v).collect();
            let u2: Vec<_> = s2.updates_of(v).collect();
            if u1.is_empty() || u2.is_empty() {
                // Static writeset says shared, but no update found — never
                // happens with our builders; stay conservative.
                return false;
            }
            let all_commute = u1.iter().all(|a| u2.iter().all(|b| a.op.commutes_with(&b.op)));
            if !all_commute {
                return false;
            }
            // 3. Shared items must not steer control flow or feed other
            // items' updates.
            if s1.all_guard_vars.contains(v) || s2.all_guard_vars.contains(v) {
                return false;
            }
            let feeds_other = |s: &TxnSummary| {
                s.updates.iter().any(|u| u.target != v && u.operand_vars.contains(v))
            };
            if feeds_other(&s1) || feeds_other(&s2) {
                return false;
            }
        }
        true
    }
}

impl SemanticOracle for StaticAnalyzer {
    fn commutes_backward_through(&self, t2: &Transaction, t1: &Transaction) -> bool {
        Self::relation(t2, t1, &VarSet::new())
    }

    fn can_precede(&self, t2: &Transaction, t1: &Transaction, fix_vars: &VarSet) -> bool {
        Self::relation(t2, t1, fix_vars)
    }

    fn name(&self) -> &'static str {
        "static-analyzer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::{Expr, Program, ProgramBuilder, TxnId, TxnKind, VarId};
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn txn(p: Program) -> Transaction {
        Transaction::new(
            TxnId::new(0),
            p.name().to_string(),
            TxnKind::Tentative,
            Arc::new(p),
            vec![],
        )
    }

    /// B1 of history H4: if u > 10 then x := x + 100, y := y - 20.
    fn h4_b1() -> Transaction {
        txn(ProgramBuilder::new("B1")
            .read(v(0)) // u
            .read(v(1)) // x
            .read(v(2)) // y
            .branch(
                Expr::var(v(0)).gt(Expr::konst(10)),
                |b| {
                    b.update(v(1), Expr::var(v(1)) + Expr::konst(100))
                        .update(v(2), Expr::var(v(2)) - Expr::konst(20))
                },
                |b| b,
            )
            .build()
            .unwrap())
    }

    /// G2 of H4: u := u - 20.
    fn h4_g2() -> Transaction {
        txn(ProgramBuilder::new("G2")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) - Expr::konst(20))
            .build()
            .unwrap())
    }

    /// G3 of H4: x := x + 10, z := z + 30.
    fn h4_g3() -> Transaction {
        txn(ProgramBuilder::new("G3")
            .read(v(1))
            .read(v(3))
            .update(v(1), Expr::var(v(1)) + Expr::konst(10))
            .update(v(3), Expr::var(v(3)) + Expr::konst(30))
            .build()
            .unwrap())
    }

    #[test]
    fn h4_g3_can_precede_b1_with_fix_u() {
        // "G3 commutes backward through B1^{u} for any value of u" — the
        // motivating example of Section 5.1.
        let a = StaticAnalyzer::new();
        let fix: VarSet = [v(0)].into_iter().collect();
        assert!(a.can_precede(&h4_g3(), &h4_b1(), &fix));
        // It also commutes backward through plain B1 (shared x, both
        // increments, guard var u untouched by G3).
        assert!(a.commutes_backward_through(&h4_g3(), &h4_b1()));
    }

    #[test]
    fn h4_g2_does_not_commute_with_b1() {
        // G2 writes u, which guards B1's updates: order changes B1's branch.
        let a = StaticAnalyzer::new();
        assert!(!a.commutes_backward_through(&h4_g2(), &h4_b1()));
        // But with B1's read of u pinned by a fix, G2's write to u cannot
        // influence B1 any more.
        let fix: VarSet = [v(0)].into_iter().collect();
        assert!(a.can_precede(&h4_g2(), &h4_b1(), &fix));
    }

    /// T1 of history H5: if y > 200 then x := x + 100 else x := x * 2.
    fn h5_t1() -> Transaction {
        txn(ProgramBuilder::new("T1")
            .read(v(0)) // x
            .read(v(1)) // y
            .branch(
                Expr::var(v(1)).gt(Expr::konst(200)),
                |b| b.update(v(0), Expr::var(v(0)) + Expr::konst(100)),
                |b| b.update(v(0), Expr::var(v(0)) * Expr::konst(2)),
            )
            .build()
            .unwrap())
    }

    /// T3 of H5: if y > 200 then x := x - 10 else x := x / 2.
    fn h5_t3() -> Transaction {
        txn(ProgramBuilder::new("T3")
            .read(v(0))
            .read(v(1))
            .branch(
                Expr::var(v(1)).gt(Expr::konst(200)),
                |b| b.update(v(0), Expr::var(v(0)) - Expr::konst(10)),
                |b| b.update(v(0), Expr::var(v(0)) / Expr::konst(2)),
            )
            .build()
            .unwrap())
    }

    #[test]
    fn h5_t3_cannot_precede_t1_with_fix_y() {
        // The paper's counterexample: T3 commutes backward through T1 (the
        // correlated guard keeps both in matching branches) but NOT through
        // T1^{y}. The static analyzer conservatively rejects both; the
        // crucial soundness property is that it never accepts the fixed
        // variant.
        let a = StaticAnalyzer::new();
        let fix: VarSet = [v(1)].into_iter().collect();
        assert!(!a.can_precede(&h5_t3(), &h5_t1(), &fix));
        assert!(!a.commutes_backward_through(&h5_t3(), &h5_t1()));
    }

    #[test]
    fn read_only_commutes_when_footprints_disjoint() {
        let a = StaticAnalyzer::new();
        // Reads d5, d6 — disjoint from T1's {x=d0, y=d1} footprint.
        let ro = txn(ProgramBuilder::new("ro").read(v(5)).read(v(6)).build().unwrap());
        assert!(a.commutes_backward_through(&ro, &h5_t1()));
        assert!(a.commutes_backward_through(&h5_t1(), &ro));
        assert!(a.can_precede(&ro, &h5_t1(), &[v(1)].into_iter().collect()));
    }

    #[test]
    fn read_only_reading_stayers_writes_rejected_by_property1_gate() {
        // A read-only mover that reads x (written by T1) commutes in final
        // state, but accepting it would violate Property 1 — the analyzer
        // models a Property-1 system, so it declines.
        let a = StaticAnalyzer::new();
        let ro = txn(ProgramBuilder::new("ro").read(v(0)).build().unwrap());
        assert!(!a.commutes_backward_through(&ro, &h5_t1()));
        assert!(!a.can_precede(&ro, &h5_t1(), &[v(1)].into_iter().collect()));
    }

    #[test]
    fn disjoint_transactions_commute() {
        let a = StaticAnalyzer::new();
        let t1 = txn(ProgramBuilder::new("a")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) * Expr::konst(7))
            .build()
            .unwrap());
        let t2 = txn(ProgramBuilder::new("b")
            .read(v(1))
            .update(v(1), Expr::konst(3) - Expr::var(v(1)))
            .build()
            .unwrap());
        assert!(a.commutes_backward_through(&t2, &t1));
        assert!(a.commutes_backward_through(&t1, &t2));
    }

    #[test]
    fn same_account_deposits_commute() {
        let a = StaticAnalyzer::new();
        let dep = |amt: i64| {
            txn(ProgramBuilder::new("dep")
                .read(v(0))
                .update(v(0), Expr::var(v(0)) + Expr::konst(amt))
                .build()
                .unwrap())
        };
        assert!(a.commutes_backward_through(&dep(5), &dep(9)));
    }

    #[test]
    fn increment_and_scale_do_not_commute() {
        let a = StaticAnalyzer::new();
        let inc = txn(ProgramBuilder::new("inc")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) + Expr::konst(1))
            .build()
            .unwrap());
        let scale = txn(ProgramBuilder::new("scale")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) * Expr::konst(2))
            .build()
            .unwrap());
        assert!(!a.commutes_backward_through(&inc, &scale));
        assert!(!a.commutes_backward_through(&scale, &inc));
        assert!(a.commutes_backward_through(&scale, &scale));
    }

    #[test]
    fn min_caps_commute_max_floors_commute() {
        let a = StaticAnalyzer::new();
        let cap = |k: i64| {
            txn(ProgramBuilder::new("cap")
                .read(v(0))
                .update(v(0), Expr::var(v(0)).min(Expr::konst(k)))
                .build()
                .unwrap())
        };
        let floor = |k: i64| {
            txn(ProgramBuilder::new("floor")
                .read(v(0))
                .update(v(0), Expr::var(v(0)).max(Expr::konst(k)))
                .build()
                .unwrap())
        };
        assert!(a.commutes_backward_through(&cap(5), &cap(9)));
        assert!(a.commutes_backward_through(&floor(5), &floor(9)));
        assert!(!a.commutes_backward_through(&cap(5), &floor(9)));
    }

    #[test]
    fn shared_var_feeding_other_update_rejected() {
        // t1: x += 1; t2: x += 1, y := y + x — x feeds y's update, so the
        // order of the x-increments leaks into y.
        let a = StaticAnalyzer::new();
        let t1 = txn(ProgramBuilder::new("t1")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) + Expr::konst(1))
            .build()
            .unwrap());
        let t2 = txn(ProgramBuilder::new("t2")
            .read(v(0))
            .read(v(1))
            .update(v(0), Expr::var(v(0)) + Expr::konst(1))
            .update(v(1), Expr::var(v(1)) + Expr::var(v(0)))
            .build()
            .unwrap());
        assert!(!a.commutes_backward_through(&t2, &t1));
    }

    #[test]
    fn shared_var_in_guard_rejected() {
        // t2 branches on the shared counter: increments do not commute with
        // a guard reading the counter.
        let a = StaticAnalyzer::new();
        let t1 = txn(ProgramBuilder::new("t1")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) + Expr::konst(1))
            .build()
            .unwrap());
        let t2 = txn(ProgramBuilder::new("t2")
            .read(v(0))
            .branch(
                Expr::var(v(0)).gt(Expr::konst(0)),
                |b| b.update(v(0), Expr::var(v(0)) + Expr::konst(5)),
                |b| b.update(v(0), Expr::var(v(0)) - Expr::konst(5)),
            )
            .build()
            .unwrap());
        assert!(!a.commutes_backward_through(&t2, &t1));
    }

    #[test]
    fn one_way_read_dependency_rejected() {
        // t1 writes x; t2 reads x and writes y: swapping changes t2's input.
        let a = StaticAnalyzer::new();
        let t1 = txn(ProgramBuilder::new("t1")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) + Expr::konst(1))
            .build()
            .unwrap());
        let t2 = txn(ProgramBuilder::new("t2")
            .read(v(0))
            .read(v(1))
            .update(v(1), Expr::var(v(1)) + Expr::var(v(0)))
            .build()
            .unwrap());
        assert!(!a.commutes_backward_through(&t2, &t1));
        // Unless t2's read of x is pinned by a fix.
        let fix: VarSet = [v(0)].into_iter().collect();
        // Note: the fix belongs to t1 in can_precede(t2, t1, F) — pin the
        // OTHER direction instead: t1 carries the fix and reads x... here
        // the dependency is t2-reads-t1's-write, which no fix on t1 can
        // remove, so this must still be rejected.
        assert!(!a.can_precede(&t2, &t1, &fix));
    }

    #[test]
    fn fix_on_t1_read_removes_dependency() {
        // t1 reads x (which t2 writes) and writes y; t2 writes x. With
        // F = {x} pinned, t2's write cannot influence t1^F.
        let a = StaticAnalyzer::new();
        let t1 = txn(ProgramBuilder::new("t1")
            .read(v(0))
            .read(v(1))
            .update(v(1), Expr::var(v(1)) + Expr::var(v(0)))
            .build()
            .unwrap());
        let t2 = txn(ProgramBuilder::new("t2")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) + Expr::konst(1))
            .build()
            .unwrap());
        assert!(!a.commutes_backward_through(&t2, &t1));
        let fix: VarSet = [v(0)].into_iter().collect();
        assert!(a.can_precede(&t2, &t1, &fix));
    }

    #[test]
    fn overwrites_never_commute() {
        let a = StaticAnalyzer::new();
        let set = |k: i64| {
            txn(ProgramBuilder::new("set")
                .read(v(0))
                .update(v(0), Expr::konst(k) + Expr::konst(0))
                .build()
                .unwrap())
        };
        assert!(!a.commutes_backward_through(&set(1), &set(2)));
    }
}
