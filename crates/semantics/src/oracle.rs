//! The [`SemanticOracle`] trait and composition.

use histmerge_txn::{Transaction, VarSet};

/// A source of semantic relations between transactions.
///
/// Implementations must be **sound**: answering `true` asserts the relation
/// genuinely holds (rewriting relies on it for final-state equivalence);
/// answering `false` is always safe and merely loses an optimization
/// opportunity. The purely syntactic *can follow* relation needs no oracle
/// (see [`canfollow`](crate::canfollow)).
///
/// Oracles are consulted concurrently by the parallel merge pipeline, so
/// implementations must be `Send + Sync` (all relations are pure functions
/// of their arguments; interior mutability would need its own locking).
pub trait SemanticOracle: Send + Sync {
    /// Does `t2` commute backward through `t1`? (`T2(T1(s)) = T1(T2(s))`
    /// for every state `s` on which `T1 T2` is defined.)
    fn commutes_backward_through(&self, t2: &Transaction, t1: &Transaction) -> bool;

    /// Can `t2` precede `t1` carrying a fix over `fix_vars`
    /// (Definition 4)? Must hold for **any** assignment of values to the
    /// fix variables, not just the recorded ones.
    fn can_precede(&self, t2: &Transaction, t1: &Transaction, fix_vars: &VarSet) -> bool;

    /// Back-end name for experiment reports.
    fn name(&self) -> &'static str;
}

/// Composition of oracles: a relation holds if **any** layer says it holds.
///
/// Sound because each layer is individually sound. Typical canned-system
/// stack: [`StaticAnalyzer`](crate::StaticAnalyzer) first (cheap), then a
/// [`DeclaredTable`](crate::DeclaredTable) for the type pairs the analyzer
/// is too conservative for.
#[derive(Default)]
pub struct OracleStack {
    layers: Vec<Box<dyn SemanticOracle>>,
}

impl OracleStack {
    /// Creates an empty stack (answers `false` to everything — i.e.
    /// semantics-free, degrading Algorithm 2 to Algorithm 1).
    pub fn new() -> Self {
        OracleStack { layers: Vec::new() }
    }

    /// Adds a layer. Layers are consulted in insertion order.
    #[must_use]
    pub fn with(mut self, layer: Box<dyn SemanticOracle>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the stack has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl SemanticOracle for OracleStack {
    fn commutes_backward_through(&self, t2: &Transaction, t1: &Transaction) -> bool {
        self.layers.iter().any(|l| l.commutes_backward_through(t2, t1))
    }

    fn can_precede(&self, t2: &Transaction, t1: &Transaction, fix_vars: &VarSet) -> bool {
        self.layers.iter().any(|l| l.can_precede(t2, t1, fix_vars))
    }

    fn name(&self) -> &'static str {
        "oracle-stack"
    }
}

impl std::fmt::Debug for OracleStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleStack")
            .field("layers", &self.layers.iter().map(|l| l.name()).collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::{Expr, ProgramBuilder, TxnId, TxnKind, VarId};
    use std::sync::Arc;

    struct Always(bool);
    impl SemanticOracle for Always {
        fn commutes_backward_through(&self, _: &Transaction, _: &Transaction) -> bool {
            self.0
        }
        fn can_precede(&self, _: &Transaction, _: &Transaction, _: &VarSet) -> bool {
            self.0
        }
        fn name(&self) -> &'static str {
            "always"
        }
    }

    fn t() -> Transaction {
        let x = VarId::new(0);
        let p = Arc::new(
            ProgramBuilder::new("t")
                .read(x)
                .update(x, Expr::var(x) + Expr::konst(1))
                .build()
                .unwrap(),
        );
        Transaction::new(TxnId::new(0), "t", TxnKind::Tentative, p, vec![])
    }

    #[test]
    fn empty_stack_denies_everything() {
        let s = OracleStack::new();
        assert!(s.is_empty());
        assert!(!s.commutes_backward_through(&t(), &t()));
        assert!(!s.can_precede(&t(), &t(), &VarSet::new()));
    }

    #[test]
    fn any_layer_suffices() {
        let s = OracleStack::new().with(Box::new(Always(false))).with(Box::new(Always(true)));
        assert_eq!(s.len(), 2);
        assert!(s.commutes_backward_through(&t(), &t()));
        assert!(s.can_precede(&t(), &t(), &VarSet::new()));
        let dbg = format!("{s:?}");
        assert!(dbg.contains("always"));
    }
}
