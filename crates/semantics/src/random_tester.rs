//! Randomized differential detection of semantic relations.
//!
//! Section 5.1's middle option: "For some non-canned systems where codes of
//! transactions are recorded, the can-precede relation can be detected at
//! the time of repair." This back-end does that detection by *differential
//! execution*: run both orders on many random states (and, for
//! can-precede, random fix values) and accept only if every sample agrees.
//!
//! # Probabilistic soundness
//!
//! A `true` answer can in principle be wrong (some untested state could
//! disagree), so this oracle is **not** used to assert the paper's theorems
//! in tests — it models the detection *cost* and detection *power* of
//! repair-time analysis in the experiments, and doubles as the verifier
//! cross-checking the other oracles (whose `true` answers it must never
//! refute).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use histmerge_txn::{DbState, Expr, Fix, Pred, Statement, Transaction, Value, VarSet};

use crate::oracle::SemanticOracle;

/// Differential-execution oracle.
#[derive(Debug, Clone)]
pub struct RandomizedTester {
    /// Number of random samples per query.
    pub samples: usize,
    /// Values are drawn from `[-range, range]`, mixed with constants found
    /// in the programs under test (±1) so guard boundaries get exercised.
    pub range: Value,
    /// RNG seed, for reproducible experiments.
    pub seed: u64,
}

impl Default for RandomizedTester {
    fn default() -> Self {
        RandomizedTester { samples: 64, range: 1_000, seed: 0xC0FFEE }
    }
}

impl RandomizedTester {
    /// Creates a tester with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tester with an explicit sample count and seed.
    pub fn with_config(samples: usize, range: Value, seed: u64) -> Self {
        RandomizedTester { samples, range, seed }
    }

    fn sample_value(&self, rng: &mut StdRng, interesting: &[Value]) -> Value {
        // 50%: uniform; 50%: near an interesting constant.
        if interesting.is_empty() || rng.gen_bool(0.5) {
            rng.gen_range(-self.range..=self.range)
        } else {
            let base = interesting[rng.gen_range(0..interesting.len())];
            base.saturating_add(rng.gen_range(-2..=2))
        }
    }

    fn sample_state(&self, rng: &mut StdRng, vars: &VarSet, interesting: &[Value]) -> DbState {
        vars.iter().map(|v| (v, self.sample_value(rng, interesting))).collect()
    }

    /// Differentially tests `t1^{F} t2  ==  t2 t1^{F}` over random states
    /// and random fix values for `fix_vars`.
    fn orders_agree(&self, t2: &Transaction, t1: &Transaction, fix_vars: &VarSet) -> bool {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let footprint = t1.readset().union(t1.writeset()).union(&t2.readset().union(t2.writeset()));
        let mut interesting = collect_constants(t1);
        interesting.extend(collect_constants(t2));
        for _ in 0..self.samples {
            let state = self.sample_state(&mut rng, &footprint, &interesting);
            let fix: Fix =
                fix_vars.iter().map(|v| (v, self.sample_value(&mut rng, &interesting))).collect();
            // Order A: t1^F then t2.
            let a = t1.execute(&state, &fix).and_then(|o| t2.execute(&o.after, &Fix::empty()));
            // Order B: t2 then t1^F.
            let b = t2.execute(&state, &Fix::empty()).and_then(|o| t1.execute(&o.after, &fix));
            match (a, b) {
                (Ok(a), Ok(b)) if a.after == b.after => {}
                _ => return false,
            }
        }
        true
    }
}

/// Collects every literal constant from a transaction's program, to bias
/// sampling toward guard boundaries.
fn collect_constants(t: &Transaction) -> Vec<Value> {
    let mut out = Vec::new();
    collect_stmts(t.program().statements(), &mut out);
    out.extend(t.params().iter().copied());
    out
}

fn collect_stmts(stmts: &[Statement], out: &mut Vec<Value>) {
    for s in stmts {
        match s {
            Statement::Read(_) => {}
            Statement::Update { expr, .. } => collect_expr(expr, out),
            Statement::If { cond, then_branch, else_branch } => {
                collect_pred(cond, out);
                collect_stmts(then_branch, out);
                collect_stmts(else_branch, out);
            }
        }
    }
}

fn collect_expr(e: &Expr, out: &mut Vec<Value>) {
    match e {
        Expr::Const(v) => out.push(*v),
        Expr::Var(_) | Expr::Param(_) => {}
        Expr::Add(a, b)
        | Expr::Sub(a, b)
        | Expr::Mul(a, b)
        | Expr::Div(a, b)
        | Expr::Mod(a, b)
        | Expr::Min(a, b)
        | Expr::Max(a, b) => {
            collect_expr(a, out);
            collect_expr(b, out);
        }
        Expr::Neg(a) => collect_expr(a, out),
    }
}

fn collect_pred(p: &Pred, out: &mut Vec<Value>) {
    match p {
        Pred::True => {}
        Pred::Cmp(_, a, b) => {
            collect_expr(a, out);
            collect_expr(b, out);
        }
        Pred::And(a, b) | Pred::Or(a, b) => {
            collect_pred(a, out);
            collect_pred(b, out);
        }
        Pred::Not(a) => collect_pred(a, out),
    }
}

impl SemanticOracle for RandomizedTester {
    fn commutes_backward_through(&self, t2: &Transaction, t1: &Transaction) -> bool {
        self.orders_agree(t2, t1, &VarSet::new())
    }

    fn can_precede(&self, t2: &Transaction, t1: &Transaction, fix_vars: &VarSet) -> bool {
        self.orders_agree(t2, t1, fix_vars)
    }

    fn name(&self) -> &'static str {
        "randomized-tester"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histmerge_txn::{ProgramBuilder, TxnId, TxnKind, VarId};
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn txn(p: histmerge_txn::Program) -> Transaction {
        Transaction::new(
            TxnId::new(0),
            p.name().to_string(),
            TxnKind::Tentative,
            Arc::new(p),
            vec![],
        )
    }

    fn h5_t1() -> Transaction {
        txn(ProgramBuilder::new("T1")
            .read(v(0))
            .read(v(1))
            .branch(
                Expr::var(v(1)).gt(Expr::konst(200)),
                |b| b.update(v(0), Expr::var(v(0)) + Expr::konst(100)),
                |b| b.update(v(0), Expr::var(v(0)) * Expr::konst(2)),
            )
            .build()
            .unwrap())
    }

    /// H5's T3, with the else-branch `x := x / 2` replaced by `x := x * 3`:
    /// the paper's division example assumes real arithmetic (`(x*2)/2 = x`
    /// but `(x/2)*2 ≠ x` over integers), so we use a second scale, which
    /// preserves the guard-correlated commutativity the example is about.
    fn h5_t3() -> Transaction {
        txn(ProgramBuilder::new("T3")
            .read(v(0))
            .read(v(1))
            .branch(
                Expr::var(v(1)).gt(Expr::konst(200)),
                |b| b.update(v(0), Expr::var(v(0)) - Expr::konst(10)),
                |b| b.update(v(0), Expr::var(v(0)) * Expr::konst(3)),
            )
            .build()
            .unwrap())
    }

    #[test]
    fn h5_detected_dynamically() {
        // The randomized tester captures what the static analyzer cannot:
        // T3 DOES commute backward through T1 (correlated guards) …
        let tester = RandomizedTester::new();
        assert!(tester.commutes_backward_through(&h5_t3(), &h5_t1()));
        // … but does NOT once T1's read of y is pinned by a fix.
        let fix: VarSet = [v(1)].into_iter().collect();
        assert!(!tester.can_precede(&h5_t3(), &h5_t1(), &fix));
    }

    #[test]
    fn increments_commute_overwrites_do_not() {
        let inc = |k: i64| {
            txn(ProgramBuilder::new("inc")
                .read(v(0))
                .update(v(0), Expr::var(v(0)) + Expr::konst(k))
                .build()
                .unwrap())
        };
        let tester = RandomizedTester::new();
        assert!(tester.commutes_backward_through(&inc(3), &inc(8)));
        let set = |k: i64| {
            txn(ProgramBuilder::new("set")
                .read(v(0))
                .update(v(0), Expr::konst(k) + Expr::konst(0))
                .build()
                .unwrap())
        };
        assert!(!tester.commutes_backward_through(&set(1), &set(2)));
    }

    #[test]
    fn guard_boundary_is_hit() {
        // These two differ only for x exactly equal to 7 — uniform sampling
        // over ±1000 would rarely hit it, constant-biased sampling must.
        let a = txn(ProgramBuilder::new("a")
            .read(v(0))
            .read(v(1))
            .branch(
                Expr::var(v(0)).eq_(Expr::konst(7)),
                |b| b.update(v(1), Expr::var(v(1)) + Expr::konst(1)),
                |b| b,
            )
            .build()
            .unwrap());
        let bump_x = txn(ProgramBuilder::new("b")
            .read(v(0))
            .update(v(0), Expr::var(v(0)) + Expr::konst(1))
            .build()
            .unwrap());
        let tester = RandomizedTester::new();
        assert!(!tester.commutes_backward_through(&a, &bump_x));
    }

    #[test]
    fn deterministic_across_runs() {
        let tester1 = RandomizedTester::with_config(32, 100, 42);
        let tester2 = RandomizedTester::with_config(32, 100, 42);
        let r1 = tester1.commutes_backward_through(&h5_t3(), &h5_t1());
        let r2 = tester2.commutes_backward_through(&h5_t3(), &h5_t1());
        assert_eq!(r1, r2);
    }
}
