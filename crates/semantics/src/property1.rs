//! Property 1 of the paper (Section 5.2).
//!
//! > Transaction `T_j` can precede transaction `T_i` for a fix `F_i` only
//! > if `(T_i.readset − T_i.writeset − F_i) ∩ T_j.writeset = ∅` and
//! > `(T_j.readset − T_j.writeset) ∩ T_i.writeset = ∅`.
//!
//! Property 1 is the precondition under which the cheap fix computation of
//! Lemma 2 remains valid for Algorithm 2 (Lemma 3) and under which
//! Algorithm 2 dominates the pure commutativity rewriter (Theorem 4). The
//! built-in [`StaticAnalyzer`](crate::StaticAnalyzer) only answers `true`
//! when these conditions hold, so systems using it automatically satisfy
//! the property; [`DeclaredTable`](crate::DeclaredTable) entries should be
//! checked with [`satisfies_property1`] at declaration time.

use histmerge_txn::{Transaction, VarSet};

/// Checks Property 1 for the triple (`t_j` can precede `t_i` for `fix`).
///
/// Returns `true` iff the two set conditions hold. A `can_precede`
/// implementation that answers `true` where this returns `false` would
/// break Lemma 3's fix bookkeeping (and "usually can not result in the same
/// final state", as the paper notes).
pub fn satisfies_property1(t_j: &Transaction, t_i: &Transaction, fix: &VarSet) -> bool {
    // Mask fast path: pure reads are subsets of the read sets, so if
    // neither transaction's reads touch the other's writes at all, both
    // conditions hold without building any difference set.
    if !t_i.read_mask().intersects(t_j.write_mask())
        && !t_j.read_mask().intersects(t_i.write_mask())
    {
        return true;
    }
    let i_pure_reads = t_i.readset().difference(t_i.writeset()).difference(fix);
    if i_pure_reads.intersects(t_j.writeset()) {
        return false;
    }
    let j_pure_reads = t_j.readset().difference(t_j.writeset());
    !j_pure_reads.intersects(t_i.writeset())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SemanticOracle, StaticAnalyzer};
    use histmerge_txn::{Expr, ProgramBuilder, TxnId, TxnKind, VarId};
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn txn(name: &str, reads: &[u32], writes: &[u32]) -> Transaction {
        let mut b = ProgramBuilder::new(name);
        let all: std::collections::BTreeSet<u32> =
            reads.iter().chain(writes.iter()).copied().collect();
        for i in &all {
            b = b.read(v(*i));
        }
        for w in writes {
            b = b.update(v(*w), Expr::var(v(*w)) + Expr::konst(1));
        }
        Transaction::new(
            TxnId::new(0),
            name,
            TxnKind::Tentative,
            Arc::new(b.build().unwrap()),
            vec![],
        )
    }

    #[test]
    fn pure_read_overlap_fails() {
        // t_i purely reads d0; t_j writes d0.
        let ti = txn("ti", &[0], &[1]);
        let tj = txn("tj", &[], &[0]);
        assert!(!satisfies_property1(&tj, &ti, &VarSet::new()));
        // Pinning d0 in the fix removes the dependency.
        assert!(satisfies_property1(&tj, &ti, &[v(0)].into_iter().collect()));
    }

    #[test]
    fn reverse_direction_fails() {
        // t_j purely reads d1; t_i writes d1. No fix can help (the fix
        // belongs to t_i, not t_j).
        let ti = txn("ti", &[], &[1]);
        let tj = txn("tj", &[1], &[2]);
        assert!(!satisfies_property1(&tj, &ti, &VarSet::new()));
        assert!(!satisfies_property1(&tj, &ti, &[v(1)].into_iter().collect()));
    }

    #[test]
    fn shared_written_vars_allowed() {
        // Both write d0 (reading it as part of the update): the conditions
        // only constrain PURE reads, so this passes.
        let ti = txn("ti", &[], &[0]);
        let tj = txn("tj", &[], &[0]);
        assert!(satisfies_property1(&tj, &ti, &VarSet::new()));
    }

    #[test]
    fn static_analyzer_respects_property1() {
        // Exhaustive-ish check over small read/write set combinations: the
        // static analyzer never answers `true` where Property 1 fails.
        let a = StaticAnalyzer::new();
        let sets: &[&[u32]] = &[&[], &[0], &[1], &[0, 1]];
        for ri in sets {
            for wi in sets {
                for rj in sets {
                    for wj in sets {
                        let ti = txn("ti", ri, wi);
                        let tj = txn("tj", rj, wj);
                        for fix_vars in [VarSet::new(), [v(0)].into_iter().collect::<VarSet>()] {
                            if a.can_precede(&tj, &ti, &fix_vars) {
                                assert!(
                                    satisfies_property1(&tj, &ti, &fix_vars),
                                    "analyzer accepted a pair violating Property 1: \
                                     ri={ri:?} wi={wi:?} rj={rj:?} wj={wj:?}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
